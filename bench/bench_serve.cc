/**
 * @file
 * Load generator for `risspgen serve`: an in-process HttpServer on a
 * loopback port, hammered by real client threads over real sockets —
 * the same tests/http_client.hh the black-box tests use, so the
 * measured path is byte-for-byte the production path (accept thread,
 * scheduler handoff, JSON parse, dispatch, flow::toJson, framing).
 *
 * Each scenario runs N concurrent clients (default 16) for a fixed
 * wall-clock window and reports throughput plus p50/p95/p99 request
 * latency. Results go to BENCH_serve.json so CI tracks the serving
 * overhead trajectory the same way BENCH_simspeed.json tracks sim
 * throughput.
 *
 * Connections are decoupled from compute since the reactor rework:
 * every fd is owned by one nonblocking event loop and `--threads`
 * (here: one worker per client) sizes the scheduler only. The
 * idle_keepalive_512 scenario pins that contract — 512 parked
 * keep-alive connections must not tax the active clients' req/s —
 * and ci.sh compares it against serve_characterize_hot as a soft
 * perf smoke.
 *
 *   bench_serve [--json <path>] [--clients <n>] [--min-time <s>]
 *               [--quick]
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "flow/flow.hh"
#include "net/server.hh"
#include "tests/http_client.hh"
#include "util/json.hh"

namespace
{

using namespace rissp;
using Clock = std::chrono::steady_clock;

struct Scenario
{
    std::string name;
    std::string method;
    std::string target;
    std::string body;
    bool keepAlive = true; ///< false: fresh connection per request
    /** Keep-alive connections parked (after one warmup request)
     *  for the scenario's whole window — load the reactor's fd
     *  table without consuming a single scheduler thread. */
    unsigned idlePool = 0;
};

/** Park @p count keep-alive connections, each proven live by one
 *  /healthz round trip. Destroying the vector drops them all. */
std::vector<std::unique_ptr<testutil::HttpClient>>
parkIdleConnections(uint16_t port, unsigned count)
{
    std::vector<std::unique_ptr<testutil::HttpClient>> pool;
    pool.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        auto client = std::make_unique<testutil::HttpClient>();
        if (!client->connect(port) ||
            !client->request("GET", "/healthz", "", true)) {
            std::fprintf(stderr,
                         "bench_serve: failed to park idle "
                         "connection %u of %u\n",
                         i + 1, count);
            std::exit(1);
        }
        pool.push_back(std::move(client));
    }
    return pool;
}

struct LoadResult
{
    std::string name;
    unsigned clients = 0;
    uint64_t requests = 0;
    uint64_t errors = 0;
    double seconds = 0;
    double p50Ms = 0, p95Ms = 0, p99Ms = 0;

    double rate() const
    {
        return seconds > 0 ? requests / seconds : 0;
    }
};

double
percentile(const std::vector<double> &sorted_ms, double q)
{
    if (sorted_ms.empty())
        return 0;
    const size_t rank = std::min(
        sorted_ms.size() - 1,
        static_cast<size_t>(q * (sorted_ms.size() - 1) + 0.5));
    return sorted_ms[rank];
}

/** Run one scenario: @p clients threads, each looping requests on
 *  its own connection until the deadline. */
LoadResult
runScenario(uint16_t port, const Scenario &scenario,
            unsigned clients, double seconds)
{
    LoadResult result;
    result.name = scenario.name;
    result.clients = clients;

    std::vector<std::vector<double>> latencies(clients);
    std::vector<uint64_t> errors(clients, 0);
    std::atomic<bool> go{false};

    std::vector<std::thread> workers;
    for (unsigned c = 0; c < clients; ++c)
        workers.emplace_back([&, c] {
            testutil::HttpClient client;
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            const auto deadline =
                Clock::now() +
                std::chrono::duration<double>(seconds);
            while (Clock::now() < deadline) {
                if (!client.connected() &&
                    !client.connect(port)) {
                    ++errors[c];
                    continue;
                }
                const auto start = Clock::now();
                const auto response = client.request(
                    scenario.method, scenario.target,
                    scenario.body, scenario.keepAlive);
                const double ms =
                    std::chrono::duration<double, std::milli>(
                        Clock::now() - start)
                        .count();
                if (!response || response->status != 200) {
                    ++errors[c];
                    client.disconnect();
                    continue;
                }
                latencies[c].push_back(ms);
                if (!scenario.keepAlive)
                    client.disconnect();
            }
        });

    const auto start = Clock::now();
    go.store(true, std::memory_order_release);
    for (std::thread &worker : workers)
        worker.join();
    result.seconds =
        std::chrono::duration<double>(Clock::now() - start)
            .count();

    std::vector<double> merged;
    for (unsigned c = 0; c < clients; ++c) {
        merged.insert(merged.end(), latencies[c].begin(),
                      latencies[c].end());
        result.errors += errors[c];
    }
    result.requests = merged.size();
    std::sort(merged.begin(), merged.end());
    result.p50Ms = percentile(merged, 0.50);
    result.p95Ms = percentile(merged, 0.95);
    result.p99Ms = percentile(merged, 0.99);
    return result;
}

void
writeJson(const std::string &path,
          const std::vector<LoadResult> &results)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "bench_serve: cannot write %s\n",
                     path.c_str());
        std::exit(1);
    }
    out << "{\n  \"schema\": \"rissp-serve-v1\",\n"
        << "  \"benchmarks\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const LoadResult &r = results[i];
        out << "    {\"name\": \"" << jsonEscape(r.name)
            << "\", \"clients\": " << r.clients
            << ", \"requests\": " << r.requests
            << ", \"errors\": " << r.errors
            << ", \"seconds\": " << jsonNum(r.seconds)
            << ", \"requests_per_second\": " << jsonNum(r.rate())
            << ", \"p50_ms\": " << jsonNum(r.p50Ms)
            << ", \"p95_ms\": " << jsonNum(r.p95Ms)
            << ", \"p99_ms\": " << jsonNum(r.p99Ms)
            << (i + 1 < results.size() ? "},\n" : "}\n");
    }
    out << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_serve.json";
    unsigned clients = 16;
    double min_time = 2.0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--clients") &&
                   i + 1 < argc) {
            clients = static_cast<unsigned>(
                std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--min-time") &&
                   i + 1 < argc) {
            min_time = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--quick")) {
            min_time = 0.4;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json <path>] "
                         "[--clients <n>] [--min-time <seconds>] "
                         "[--quick]\n",
                         argv[0]);
            return 2;
        }
    }
    if (clients == 0)
        clients = 1;

    // One scheduler worker per client; connection capacity sized
    // for the parked idle_keepalive_512 pool on top of the active
    // clients, with headroom in the admission queue.
    constexpr unsigned kIdlePool = 512;
    const flow::FlowService service(nullptr, clients);
    net::ServeOptions options;
    options.maxQueue = clients * 4;
    options.maxConnections = kIdlePool + clients * 2 + 16;
    net::HttpServer server(service, options);
    const Status status = server.start();
    if (!status.isOk()) {
        std::fprintf(stderr, "bench_serve: %s\n",
                     status.toString().c_str());
        return 1;
    }

    const Scenario scenarios[] = {
        // Pure serving overhead: no dispatch behind the endpoint.
        {"serve_healthz", "GET", "/healthz", "", true},
        // Cache-hot verb dispatch: the steady state of a daemon.
        {"serve_characterize_hot", "POST", "/api/v1/characterize",
         R"({"workload": "crc32"})", true},
        {"serve_run_hot", "POST", "/api/v1/run",
         R"({"workload": "crc32"})", true},
        // Connection churn: accept + admission + teardown included.
        {"serve_connect_per_request", "POST",
         "/api/v1/characterize", R"({"workload": "crc32"})",
         false},
        // The reactor's headline: cache-hot dispatch through a
        // crowd of parked keep-alive connections. Compare its
        // req/s against serve_characterize_hot — parked fds must
        // be (close to) free.
        {"idle_keepalive_512", "POST", "/api/v1/characterize",
         R"({"workload": "crc32"})", true, kIdlePool},
    };

    // Warm the stage caches so "hot" scenarios measure serving, not
    // one cold compile in one unlucky client.
    for (const Scenario &scenario : scenarios)
        if (scenario.method == "POST")
            testutil::httpRequest(server.port(), "POST",
                                  scenario.target, scenario.body);

    std::vector<LoadResult> results;
    uint64_t total_errors = 0;
    for (const Scenario &scenario : scenarios) {
        std::vector<std::unique_ptr<testutil::HttpClient>> parked;
        if (scenario.idlePool > 0)
            parked = parkIdleConnections(server.port(),
                                         scenario.idlePool);
        results.push_back(runScenario(server.port(), scenario,
                                      clients, min_time));
        const LoadResult &r = results.back();
        total_errors += r.errors;
        std::printf("%-26s %9.0f req/s  p50 %7.3fms  p95 %7.3fms"
                    "  p99 %7.3fms  (%llu reqs, %u clients"
                    ", %llu errors)\n",
                    r.name.c_str(), r.rate(), r.p50Ms, r.p95Ms,
                    r.p99Ms,
                    static_cast<unsigned long long>(r.requests),
                    r.clients,
                    static_cast<unsigned long long>(r.errors));
        std::fflush(stdout);
    }

    server.requestShutdown();
    server.waitUntilStopped();

    writeJson(json_path, results);
    std::printf("wrote %s\n", json_path.c_str());
    return total_errors == 0 ? 0 : 1;
}
