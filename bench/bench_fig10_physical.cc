/**
 * @file
 * Figure 10: full physical implementation of the three extreme-edge
 * RISSPs and the two baselines at 300 kHz / 3 V: die dimensions,
 * die area, FF share and total power.
 */

#include "bench/bench_util.hh"

#include "physimpl/physical.hh"
#include "serv/serv_model.hh"

using namespace rissp;

int
main()
{
    bench::banner("Figure 10: physical implementation at 300 kHz");
    SynthesisModel model;
    PhysicalModel phys;

    std::vector<PhysReport> reports;
    reports.push_back(phys.implement(
        model.synthesize(InstrSubset::fullRv32e(), "RISSP-RV32E"),
        RfStyle::LatchArray));
    for (const std::string &name : extremeEdgeNames()) {
        const Workload &wl = workloadByName(name);
        reports.push_back(phys.implement(
            model.synthesize(bench::subsetAtO2(wl),
                             "RISSP-" + name),
            RfStyle::LatchArray));
    }
    reports.push_back(
        phys.implement(ServModel().synthReport(),
                       RfStyle::RamMacro));

    std::printf("%-18s %7s %9s %9s %9s %6s %8s\n", "design",
                "instrs", "X um", "Y um", "area mm2", "FF %",
                "P mW");
    bench::rule(72);
    for (const PhysReport &r : reports) {
        std::printf("%-18s %7zu %9.0f %9.0f %9.2f %6.1f %8.3f\n",
                    r.name.c_str(), r.numInstrs, r.dieXUm, r.dieYUm,
                    r.dieAreaMm2, r.ffAreaFraction * 100.0,
                    r.powerMw);
    }

    const PhysReport &full = reports[0];
    const PhysReport &serv = reports.back();
    std::printf("\nRelative areas (paper: af_detect -8%%, armpit "
                "-35%%, xgboost -42%% vs RV32E; xgboost ~11%% "
                "below Serv):\n");
    for (size_t i = 1; i + 1 < reports.size(); ++i) {
        std::printf("  %-16s %+6.1f%% vs RISSP-RV32E, %+6.1f%% vs "
                    "Serv\n", reports[i].name.c_str(),
                    (reports[i].dieAreaMm2 / full.dieAreaMm2 - 1.0) *
                        100.0,
                    (reports[i].dieAreaMm2 / serv.dieAreaMm2 - 1.0) *
                        100.0);
    }
    std::printf("  %-16s %+6.1f%% vs RISSP-RV32E\n",
                serv.name.c_str(),
                (serv.dieAreaMm2 / full.dieAreaMm2 - 1.0) * 100.0);
    return 0;
}
