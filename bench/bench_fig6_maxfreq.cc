/**
 * @file
 * Figure 6: maximum clock frequency (kHz) for every RISSP, the
 * RISSP-RV32E baseline and Serv, from the 100 kHz - 3 MHz / 25 kHz
 * synthesis sweep.
 */

#include "bench/bench_util.hh"

#include "serv/serv_model.hh"

using namespace rissp;

int
main()
{
    bench::banner("Figure 6: maximum frequency (kHz) per design");
    SynthesisModel model;
    const SynthReport full =
        model.synthesize(InstrSubset::fullRv32e(), "RISSP-RV32E");
    const SynthReport serv = ServModel().synthReport();

    std::printf("%-18s %8s %10s\n", "design", "instrs",
                "fmax kHz");
    bench::rule(40);
    for (const Workload &wl : allWorkloads()) {
        const SynthReport r = model.synthesize(
            bench::subsetAtO2(wl), "RISSP-" + wl.name);
        std::printf("%-18s %8zu %10.0f\n", r.name.c_str(),
                    r.subsetSize, r.fmaxKhz);
    }
    bench::rule(40);
    std::printf("%-18s %8zu %10.0f   (baseline)\n",
                full.name.c_str(), full.subsetSize, full.fmaxKhz);
    std::printf("%-18s %8s %10.0f   (baseline)\n",
                serv.name.c_str(), "full", serv.fmaxKhz);
    std::printf("\npaper: RISSPs 1500-1850 kHz, RISSP-RV32E up to "
                "1700 kHz, Serv up to 2050 kHz\n");
    return 0;
}
