/**
 * @file
 * Ablation: the §6 pipelined-RISSP extension ("the methodology can
 * be extended to generate pipelined RISSPs if higher clock
 * frequencies are required"). Two-stage fetch|execute RISSPs are
 * synthesized next to the single-cycle ones; taken-transfer
 * fractions are measured per workload with the cycle simulator to
 * price the branch bubbles, and the throughput/energy trade is
 * printed. The paper's conclusion — extreme edge does not need the
 * extra speed — falls out of the numbers.
 */

#include "bench/bench_util.hh"

#include "core/rissp.hh"

using namespace rissp;

namespace
{

/** Dynamic fraction of taken control transfers for a workload. */
double
takenFraction(const Program &program, const InstrSubset &subset)
{
    Rissp chip(subset, "probe");
    chip.reset(program);
    uint64_t taken = 0;
    uint64_t total = 0;
    while (true) {
        RetireEvent ev = chip.step();
        if (ev.halt || ev.trap)
            break;
        ++total;
        if ((isBranch(ev.op) && ev.nextPc != ev.pc + 4) ||
            isJump(ev.op))
            ++taken;
        if (total > 50'000'000)
            break;
    }
    return total ? static_cast<double>(taken) /
        static_cast<double>(total) : 0.0;
}

} // namespace

int
main()
{
    bench::banner("Ablation: two-stage pipelined RISSPs (§6)");
    SynthesisModel model;
    const Technology &tech = model.tech();

    std::printf("%-14s | %8s %8s | %8s %8s %6s | %8s %8s | %7s\n",
                "workload", "1c fmax", "1c MIPS", "2s fmax",
                "2s MIPS", "CPI", "1c nJ/i", "2s nJ/i", "speedup");
    bench::rule(100);
    for (const char *name : {"armpit", "xgboost", "af_detect",
                             "crc32", "matmult-int", "nsichneu",
                             "wikisort"}) {
        const Workload &wl = workloadByName(name);
        minic::CompileResult cr =
            minic::compile(wl.source, minic::OptLevel::O2);
        InstrSubset subset = InstrSubset::fromProgram(cr.program);

        SynthReport single =
            model.synthesize(subset, "RISSP-" + wl.name);
        SynthReport piped =
            model.synthesizePipelined(subset, "RISSP2-" + wl.name);
        const double taken = takenFraction(cr.program, subset);
        const double cpi = SynthesisModel::pipelinedCpi(taken);

        const double mips_1c = single.fmaxKhz / 1000.0;
        const double mips_2s = piped.fmaxKhz / 1000.0 / cpi;
        std::printf("%-14s | %8.0f %8.2f | %8.0f %8.2f %6.2f |"
                    " %8.2f %8.2f | %6.2fx\n", name,
                    single.fmaxKhz, mips_1c, piped.fmaxKhz,
                    mips_2s, cpi,
                    single.epiNanojoules(1.0, tech),
                    piped.epiNanojoules(cpi, tech),
                    mips_2s / mips_1c);
    }
    std::printf("\nreading: splitting fetch off raises fmax ~15%%, "
                "but branch bubbles eat most of it — net throughput "
                "gains are only 0-8%% while energy per instruction "
                "rises ~30%%. For Hz-kHz extreme-edge sampling "
                "rates (§1) the single-cycle microarchitecture the "
                "paper ships is strictly better; deeper pipelines "
                "would only pay off once the execute stage itself "
                "were split\n");
    return 0;
}
