/**
 * @file
 * Shared helpers for the figure/table regeneration binaries.
 */

#ifndef RISSP_BENCH_BENCH_UTIL_HH
#define RISSP_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "compiler/driver.hh"
#include "core/subset.hh"
#include "explore/explorer.hh"
#include "synth/synthesis.hh"
#include "workloads/workloads.hh"

namespace rissp::bench
{

/** Compile one workload at -O2 and extract its subset. */
inline InstrSubset
subsetAtO2(const Workload &wl)
{
    minic::CompileResult cr =
        minic::compile(wl.source, minic::OptLevel::O2);
    return InstrSubset::fromProgram(cr.program);
}

/** All bundled workload names in Table 3 order. */
inline std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const Workload &wl : allWorkloads())
        names.push_back(wl.name);
    return names;
}

/**
 * Characterize every bundled workload (Step 1 only: compile at -O2
 * and extract the subset) through the parallel exploration engine.
 * One row per workload, Table 3 order.
 */
inline explore::ResultTable
characterizeAll()
{
    explore::ExplorerOptions options;
    options.simulate = false;
    options.synthesize = false;
    explore::Explorer engine(options);
    return engine.explore(
        explore::ExplorationPlan::perWorkloadRissps(
            allWorkloadNames()));
}

/**
 * Synthesize the per-application RISSP of every bundled workload
 * through the parallel exploration engine. One row per workload in
 * Table 3 order, then (when @p include_full_baseline) one final
 * RISSP-RV32E row.
 */
inline explore::ResultTable
synthesizeAll(bool include_full_baseline)
{
    explore::ExplorerOptions options;
    options.simulate = false;
    explore::Explorer engine(options);
    return engine.explore(
        explore::ExplorationPlan::perWorkloadRissps(
            allWorkloadNames(), include_full_baseline));
}

/** Print a separator line sized to the table. */
inline void
rule(int width)
{
    for (int i = 0; i < width; ++i)
        std::fputc('-', stdout);
    std::fputc('\n', stdout);
}

/** Header banner naming the figure being regenerated. */
inline void
banner(const std::string &title)
{
    rule(72);
    std::printf("%s\n", title.c_str());
    rule(72);
}

} // namespace rissp::bench

#endif // RISSP_BENCH_BENCH_UTIL_HH
