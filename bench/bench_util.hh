/**
 * @file
 * Shared helpers for the figure/table regeneration binaries.
 */

#ifndef RISSP_BENCH_BENCH_UTIL_HH
#define RISSP_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "compiler/driver.hh"
#include "core/subset.hh"
#include "synth/synthesis.hh"
#include "workloads/workloads.hh"

namespace rissp::bench
{

/** Compile one workload at -O2 and extract its subset. */
inline InstrSubset
subsetAtO2(const Workload &wl)
{
    minic::CompileResult cr =
        minic::compile(wl.source, minic::OptLevel::O2);
    return InstrSubset::fromProgram(cr.program);
}

/** Print a separator line sized to the table. */
inline void
rule(int width)
{
    for (int i = 0; i < width; ++i)
        std::fputc('-', stdout);
    std::fputc('\n', stdout);
}

/** Header banner naming the figure being regenerated. */
inline void
banner(const std::string &title)
{
    rule(72);
    std::printf("%s\n", title.c_str());
    rule(72);
}

} // namespace rissp::bench

#endif // RISSP_BENCH_BENCH_UTIL_HH
