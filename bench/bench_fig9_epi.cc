/**
 * @file
 * Figure 9: energy per instruction (nJ) at each design's maximum
 * frequency. EPI = P(fmax) / fmax * CPI; RISSPs are single cycle
 * (CPI = 1), Serv is bit-serial (CPI ~ 32, measured per workload by
 * its cycle model).
 */

#include "bench/bench_util.hh"

#include "serv/serv_model.hh"

using namespace rissp;

int
main()
{
    bench::banner("Figure 9: energy per instruction (nJ) at fmax");
    const FlexIcTech &tech = FlexIcTech::defaults();
    SynthesisModel model;
    ServModel serv_model;
    const SynthReport full =
        model.synthesize(InstrSubset::fullRv32e(), "RISSP-RV32E");
    const SynthReport serv = serv_model.synthReport();
    const double epi_full = full.epiNanojoules(1.0, tech);

    std::printf("%-18s %10s %12s %12s %10s\n", "design",
                "EPI nJ", "Serv CPI", "Serv EPI nJ", "ratio");
    bench::rule(68);
    double ratio_sum = 0.0;
    for (const Workload &wl : allWorkloads()) {
        minic::CompileResult cr =
            minic::compile(wl.source, minic::OptLevel::O2);
        const SynthReport r = model.synthesize(
            InstrSubset::fromProgram(cr.program),
            "RISSP-" + wl.name);
        const double epi = r.epiNanojoules(1.0, tech);
        // Serv's CPI on this very workload, from the cycle model.
        const ServRunStats st = serv_model.run(cr.program);
        const double serv_epi =
            serv.epiNanojoules(st.cpi(), tech);
        ratio_sum += serv_epi / epi;
        std::printf("%-18s %10.2f %12.1f %12.1f %9.1fx\n",
                    r.name.c_str(), epi, st.cpi(), serv_epi,
                    serv_epi / epi);
    }
    bench::rule(68);
    std::printf("%-18s %10.2f\n", full.name.c_str(), epi_full);
    std::printf("%-18s %10.1f (at nominal CPI %.0f)\n",
                serv.name.c_str(),
                serv.epiNanojoules(ServModel::kNominalCpi, tech),
                ServModel::kNominalCpi);
    std::printf("\nServ/RISSP EPI ratio: avg %.0fx across RISSPs "
                "(paper: ~40x); vs RISSP-RV32E %.0fx (paper: "
                "~35x)\n",
                ratio_sum / allWorkloads().size(),
                serv.epiNanojoules(ServModel::kNominalCpi, tech) /
                    epi_full);
    return 0;
}
