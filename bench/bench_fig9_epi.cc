/**
 * @file
 * Figure 9: energy per instruction (nJ) at each design's maximum
 * frequency. EPI = P(fmax) / fmax * CPI; RISSPs are single cycle
 * (CPI = 1, the engine's epi_nj column), Serv is bit-serial (CPI ~ 32,
 * measured per workload by its cycle model). RISSP synthesis runs
 * through the exploration engine; its compile cache then feeds the
 * Serv cycle-model runs.
 */

#include "bench/bench_util.hh"

#include "serv/serv_model.hh"

using namespace rissp;

int
main()
{
    bench::banner("Figure 9: energy per instruction (nJ) at fmax");
    const Technology tech; // registry default: flexic-0.6um

    explore::ExplorerOptions options;
    options.simulate = false;
    explore::Explorer engine(options);
    const explore::ResultTable table = engine.explore(
        explore::ExplorationPlan::perWorkloadRissps(
            bench::allWorkloadNames(), true));
    const explore::ExplorationResult &full =
        table.row(table.size() - 1);

    ServModel serv_model;
    const SynthReport serv = serv_model.synthReport();
    const double epi_full = full.epiNj;

    std::printf("%-18s %10s %12s %12s %10s\n", "design",
                "EPI nJ", "Serv CPI", "Serv EPI nJ", "ratio");
    bench::rule(68);
    double ratio_sum = 0.0;
    for (size_t i = 0; i + 1 < table.size(); ++i) {
        const explore::ExplorationResult &r = table.row(i);
        // Serv's CPI on this very workload, from the cycle model;
        // the program comes from the engine's memoized compile.
        const ServRunStats st = serv_model.run(
            engine.compileWorkload(r.workloadName,
                                   minic::OptLevel::O2).program);
        const double serv_epi = serv.epiNanojoules(st.cpi(), tech);
        ratio_sum += serv_epi / r.epiNj;
        std::printf("%-18s %10.2f %12.1f %12.1f %9.1fx\n",
                    r.subsetName.c_str(), r.epiNj, st.cpi(),
                    serv_epi, serv_epi / r.epiNj);
    }
    bench::rule(68);
    std::printf("%-18s %10.2f\n", full.subsetName.c_str(), epi_full);
    std::printf("%-18s %10.1f (at nominal CPI %.0f)\n",
                serv.name.c_str(),
                serv.epiNanojoules(ServModel::kNominalCpi, tech),
                ServModel::kNominalCpi);
    std::printf("\nServ/RISSP EPI ratio: avg %.0fx across RISSPs "
                "(paper: ~40x); vs RISSP-RV32E %.0fx (paper: "
                "~35x)\n",
                ratio_sum / allWorkloads().size(),
                serv.epiNanojoules(ServModel::kNominalCpi, tech) /
                    epi_full);
    return 0;
}
