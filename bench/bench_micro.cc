/**
 * @file
 * google-benchmark microbenchmarks for the toolchain itself:
 * decoder, reference ISS, RISSP cycle simulator, assembler, MiniC
 * compiler and the synthesis model. These are repo-health numbers
 * (simulation throughput), not paper figures.
 */

#include <benchmark/benchmark.h>

#include "assembler/assembler.hh"
#include "compiler/driver.hh"
#include "core/rissp.hh"
#include "core/subset.hh"
#include "sim/refsim.hh"
#include "synth/synthesis.hh"
#include "util/rng.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace rissp;

void
BM_Decode(benchmark::State &state)
{
    Rng rng(42);
    std::vector<uint32_t> words;
    for (int i = 0; i < 4096; ++i)
        words.push_back(rng.next32());
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(decode(words[i++ & 4095]));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Decode);

const char *kLoopSrc =
    "int main() { int s = 0;"
    "  for (int i = 0; i < 1000; i++) s += i * 3 + (s >> 2);"
    "  return s & 0xFF; }";

void
BM_RefSimRun(benchmark::State &state)
{
    minic::CompileResult cr =
        minic::compile(kLoopSrc, minic::OptLevel::O2);
    RefSim sim;
    uint64_t instret = 0;
    for (auto _ : state) {
        sim.reset(cr.program);
        RunResult r = sim.run(10'000'000);
        instret += r.instret;
    }
    state.SetItemsProcessed(static_cast<int64_t>(instret));
}
BENCHMARK(BM_RefSimRun);

void
BM_RisspSimRun(benchmark::State &state)
{
    minic::CompileResult cr =
        minic::compile(kLoopSrc, minic::OptLevel::O2);
    InstrSubset subset = InstrSubset::fromProgram(cr.program);
    Rissp rissp(subset, "bench");
    uint64_t instret = 0;
    for (auto _ : state) {
        rissp.reset(cr.program);
        RunResult r = rissp.run(10'000'000);
        instret += r.instret;
    }
    state.SetItemsProcessed(static_cast<int64_t>(instret));
}
BENCHMARK(BM_RisspSimRun);

void
BM_CompileCrc32(benchmark::State &state)
{
    const std::string src = workloadByName("crc32").source;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            minic::compile(src, minic::OptLevel::O2));
    }
}
BENCHMARK(BM_CompileCrc32);

void
BM_AssembleRuntime(benchmark::State &state)
{
    minic::CompileResult cr = minic::compile(
        workloadByName("crc32").source, minic::OptLevel::O2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            minic::linkProgram(cr.appAsm, cr.helpers));
    }
}
BENCHMARK(BM_AssembleRuntime);

void
BM_SynthesizeFullIsa(benchmark::State &state)
{
    SynthesisModel model;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.synthesize(
            InstrSubset::fullRv32e(), "RISSP-RV32E"));
    }
}
BENCHMARK(BM_SynthesizeFullIsa);

} // namespace

BENCHMARK_MAIN();
