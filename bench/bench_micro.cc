/**
 * @file
 * Sim-throughput microbenchmarks for the toolchain itself: decoder,
 * reference ISS, RISSP cycle simulator, lock-step cosimulation,
 * assembler, MiniC compiler, the synthesis model (whole runs and
 * frequency-sweep points/s) and the P&R model. These are repo-health
 * numbers (simulation throughput), not paper figures.
 *
 * Self-contained timing harness (no google-benchmark dependency) so
 * every CI configuration can run it. Besides the human-readable
 * table, results are written to BENCH_simspeed.json (see
 * docs/BENCHMARKS.md for the schema) so the throughput trajectory is
 * tracked across PRs.
 *
 *   bench_micro [--json <path>] [--min-time <seconds>] [--quick]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "assembler/assembler.hh"
#include "compiler/driver.hh"
#include "core/rissp.hh"
#include "core/subset.hh"
#include "exec/scheduler.hh"
#include "flow/flow.hh"
#include "physimpl/physical.hh"
#include "sim/refsim.hh"
#include "synth/synthesis.hh"
#include "util/json.hh"
#include "util/rng.hh"
#include "verify/integration_verify.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace rissp;

struct BenchResult
{
    std::string name;
    uint64_t items = 0;       ///< work units processed
    double seconds = 0;       ///< wall time spent processing them
    const char *unit = "items";

    double rate() const { return seconds > 0 ? items / seconds : 0; }
};

/**
 * Run @p fn (which returns the number of items it processed)
 * repeatedly until at least @p min_time seconds elapsed.
 */
template <typename Fn>
BenchResult
measure(const std::string &name, const char *unit, double min_time,
        Fn &&fn)
{
    using clock = std::chrono::steady_clock;
    BenchResult r;
    r.name = name;
    r.unit = unit;
    const auto start = clock::now();
    do {
        r.items += fn();
        r.seconds =
            std::chrono::duration<double>(clock::now() - start)
                .count();
    } while (r.seconds < min_time);
    return r;
}

const char *kLoopSrc =
    "int main() { int s = 0;"
    "  for (int i = 0; i < 1000; i++) s += i * 3 + (s >> 2);"
    "  return s & 0xFF; }";

void
writeJson(const std::string &path,
          const std::vector<BenchResult> &results)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "bench_micro: cannot write %s\n",
                     path.c_str());
        std::exit(1);
    }
    out << "{\n  \"schema\": \"rissp-simspeed-v1\",\n"
        << "  \"benchmarks\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const BenchResult &r = results[i];
        out << "    {\"name\": \"" << jsonEscape(r.name)
            << "\", \"unit\": \"" << jsonEscape(r.unit)
            << "\", \"items\": " << r.items
            << ", \"seconds\": " << jsonNum(r.seconds)
            << ", \"items_per_second\": " << jsonNum(r.rate())
            << (i + 1 < results.size() ? "},\n" : "}\n");
    }
    out << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_simspeed.json";
    double min_time = 1.0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--min-time") &&
                   i + 1 < argc) {
            min_time = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--quick")) {
            min_time = 0.2;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json <path>] "
                         "[--min-time <seconds>] [--quick]\n",
                         argv[0]);
            return 2;
        }
    }

    std::vector<BenchResult> results;
    auto bench = [&](const std::string &name, const char *unit,
                     auto &&fn) {
        results.push_back(measure(name, unit, min_time, fn));
        const BenchResult &r = results.back();
        std::printf("%-18s %12.3e %s/s  (%llu in %.2fs)\n",
                    r.name.c_str(), r.rate(), r.unit,
                    static_cast<unsigned long long>(r.items),
                    r.seconds);
        std::fflush(stdout);
    };

    // Decoder on a pool of random words.
    {
        Rng rng(42);
        std::vector<uint32_t> words;
        for (int i = 0; i < 4096; ++i)
            words.push_back(rng.next32());
        size_t next = 0;
        bench("decode", "instr", [&] {
            uint32_t acc = 0;
            for (int i = 0; i < 4096; ++i)
                acc += static_cast<uint32_t>(
                    decode(words[next++ & 4095]).op);
            // Defeat dead-code elimination without observable output.
            if (acc == 0xFFFFFFFFu)
                std::fputc(0, stderr);
            return 4096;
        });
    }

    minic::CompileResult cr =
        minic::compile(kLoopSrc, minic::OptLevel::O2);
    InstrSubset subset = InstrSubset::fromProgram(cr.program);

    // Reference ISS instruction throughput — the default-dispatch
    // row tracks the historical trajectory; the per-mode rows pin
    // the switch-vs-threaded ratio (CI's soft perf gate).
    {
        RefSim sim;
        bench("refsim_run", "instret", [&] {
            sim.reset(cr.program);
            return sim.run(10'000'000).instret;
        });
        SimRunOptions opts;
        opts.maxSteps = 10'000'000;
        opts.dispatch = DispatchMode::Switch;
        bench("refsim_run_switch", "instret", [&] {
            sim.reset(cr.program);
            return sim.run(opts).instret;
        });
        opts.dispatch = DispatchMode::Threaded;
        bench("refsim_run_threaded", "instret", [&] {
            sim.reset(cr.program);
            return sim.run(opts).instret;
        });
    }

    // RISSP cycle-simulator throughput: default (subset-specialized
    // interpreter), the gate-level structural engine (what run()
    // always was before specialization), and the specialized core
    // under an explicitly resolved dispatch mode.
    {
        Rissp chip(subset, "bench");
        bench("rissp_run", "instret", [&] {
            chip.reset(cr.program);
            return chip.run(10'000'000).instret;
        });
        RisspRunOptions opts;
        opts.maxSteps = 10'000'000;
        opts.gateLevel = true;
        bench("rissp_run_generic", "instret", [&] {
            chip.reset(cr.program);
            return chip.run(opts).instret;
        });
        opts.gateLevel = false;
        bench("rissp_run_specialized", "instret", [&] {
            chip.reset(cr.program);
            return chip.run(opts).instret;
        });
    }

    // Lock-step cosimulation (both simulators plus trace compare).
    bench("cosim", "instret", [&] {
        return cosimulate(cr.program, subset, 10'000'000).instret;
    });

    // Compiler front half of the flow.
    bench("compile_crc32", "compile", [&] {
        minic::CompileResult c = minic::compile(
            workloadByName("crc32").source, minic::OptLevel::O2);
        return c.program.segments.empty() ? 0 : 1;
    });

    // Assembler + runtime link.
    {
        minic::CompileResult crc = minic::compile(
            workloadByName("crc32").source, minic::OptLevel::O2);
        bench("assemble_runtime", "link", [&] {
            Program p = minic::linkProgram(crc.appAsm, crc.helpers);
            return p.segments.empty() ? 0 : 1;
        });
    }

    // Synthesis model on the full ISA.
    {
        SynthesisModel model;
        bench("synth_full_isa", "synth", [&] {
            SynthReport rpt = model.synthesize(
                InstrSubset::fullRv32e(), "RISSP-RV32E");
            return rpt.fmaxKhz > 0 ? 1 : 0;
        });
    }

    // Frequency-sweep throughput in points/s, isolated from netlist
    // construction: re-runs the sweep on a prepared report, which is
    // exactly the loop the incremental-sweep change optimized (the
    // old per-point report copy was ~9x slower here).
    {
        SynthesisModel model;
        SynthReport rpt = model.synthesize(
            InstrSubset::fullRv32e(), "RISSP-RV32E");
        bench("synth_sweep", "point", [&] {
            runFrequencySweep(rpt, model.tech());
            return rpt.sweep.size();
        });
    }

    // P&R model throughput on a pre-synthesized design.
    {
        SynthesisModel model;
        PhysicalModel phys;
        const SynthReport full_rpt =
            model.synthesize(InstrSubset::fullRv32e(), "RISSP-RV32E");
        bench("pnr_impl", "impl", [&] {
            PhysReport rpt =
                phys.implement(full_rpt, RfStyle::LatchArray);
            return rpt.totalGe > 0 ? 1 : 0;
        });
    }

    // Scheduler dispatch cost: how much the execution layer charges
    // per stage before the stage does any work — a graph of no-op
    // stages run to completion on the default worker pool.
    bench("sched_overhead", "task", [&] {
        exec::TaskGraph graph;
        for (int i = 0; i < 4096; ++i)
            graph.add([] {});
        exec::Scheduler scheduler;
        scheduler.runToCompletion(std::move(graph));
        return 4096;
    });

    // Flow-service throughput on an 8-request mixed batch,
    // sequential dispatch vs runBatch. Each iteration uses a fresh
    // service (cold caches), so the batched number wins by stage
    // overlap on the scheduler, not by cache reuse across
    // iterations; within one iteration both modes share work the
    // same way (the two synth requests reuse one baseline sweep).
    {
        std::vector<flow::Request> requests;
        flow::CharacterizeRequest characterize;
        characterize.source = flow::SourceRef::bundled("crc32");
        requests.push_back(characterize);
        characterize.source = flow::SourceRef::bundled("edn");
        requests.push_back(characterize);
        flow::RunRequest run;
        run.source = flow::SourceRef::bundled("armpit");
        requests.push_back(run);
        run.source = flow::SourceRef::bundled("crc32");
        run.verify = true;
        requests.push_back(run);
        flow::SynthRequest synth;
        synth.source = flow::SourceRef::bundled("crc32");
        requests.push_back(synth);
        synth.source = flow::SourceRef::bundled("edn");
        requests.push_back(synth);
        flow::RetargetRequest retarget;
        retarget.source = flow::SourceRef::bundled("crc32");
        requests.push_back(retarget);
        run.source = flow::SourceRef::bundled("aha-mont64");
        run.verify = false;
        requests.push_back(run);

        bench("flow_sequential", "request", [&] {
            const flow::FlowService service;
            for (const flow::Request &request : requests) {
                if (!flow::responseStatus(service.dispatch(request))
                         .isOk())
                    std::exit(1); // bench requests must be valid
            }
            return requests.size();
        });
        bench("flow_batch", "request", [&] {
            const flow::FlowService service;
            const std::vector<flow::Response> responses =
                service.runBatch(requests);
            for (const flow::Response &response : responses) {
                if (!flow::responseStatus(response).isOk())
                    std::exit(1);
            }
            return requests.size();
        });
    }

    writeJson(json_path, results);
    std::printf("wrote %s\n", json_path.c_str());
    return 0;
}
