/**
 * @file
 * Figure 5 + §4.1: instruction profiling and characterization.
 *
 * For every workload and every optimization flag (-O0, -O1, -O2,
 * -O3, -Oz): code size (KBytes of static instructions) and number of
 * distinct RV32E instructions. Also reproduces the section's summary
 * statistics: average static instruction counts per flag, the
 * 24-86% subset-usage observation, and the per-extreme-edge-app
 * -O0 -> -O2 code shrink.
 */

#include "bench/bench_util.hh"

using namespace rissp;
using minic::OptLevel;

int
main()
{
    bench::banner("Figure 5: codesize and distinct instructions per "
                  "optimization flag");

    const auto levels = minic::allOptLevels();
    std::printf("%-16s |", "application");
    for (OptLevel lv : levels)
        std::printf("   %-4s      |", minic::optLevelName(lv).c_str());
    std::printf("\n%-16s |", "");
    for (size_t i = 0; i < levels.size(); ++i)
        std::printf(" KB    distinct|");
    std::printf("\n");
    bench::rule(16 + 15 * static_cast<int>(levels.size()));

    std::vector<double> static_sum(levels.size(), 0.0);
    double frac_min = 1.0;
    double frac_max = 0.0;
    double distinct_sum = 0.0;
    size_t distinct_n = 0;
    std::map<std::string, std::map<int, size_t>> static_counts;

    for (const Workload &wl : allWorkloads()) {
        std::printf("%-16s |", wl.name.c_str());
        for (size_t li = 0; li < levels.size(); ++li) {
            minic::CompileResult cr =
                minic::compile(wl.source, levels[li]);
            const InstrSubset subset =
                InstrSubset::fromProgram(cr.program);
            const size_t instrs = cr.staticInstructions();
            static_counts[wl.name][static_cast<int>(li)] = instrs;
            static_sum[li] += static_cast<double>(instrs);
            distinct_sum += static_cast<double>(subset.size());
            ++distinct_n;
            frac_min = std::min(frac_min,
                                subset.fractionOfFullIsa());
            frac_max = std::max(frac_max,
                                subset.fractionOfFullIsa());
            std::printf(" %5.2f %6zu  |",
                        static_cast<double>(instrs) * 4.0 / 1024.0,
                        subset.size());
        }
        std::printf("\n");
    }

    std::printf("\nSummary (paper section 4.1):\n");
    std::printf("  avg static instructions per flag:");
    for (size_t li = 0; li < levels.size(); ++li)
        std::printf(" %s=%.0f",
                    minic::optLevelName(levels[li]).c_str(),
                    static_sum[li] / allWorkloads().size());
    std::printf("\n  (paper: O0=2027 O1=1149 O2=1207 O3=1586 "
                "Oz=1018)\n");
    std::printf("  distinct instructions: avg %.1f across all "
                "apps/flags (paper: ~19)\n",
                distinct_sum / static_cast<double>(distinct_n));
    std::printf("  subset usage: %.0f%% .. %.0f%% of the full ISA "
                "(paper: 24%% .. 86%%)\n",
                frac_min * 100.0, frac_max * 100.0);

    std::printf("\nExtreme-edge codesize reduction -O0 -> -O2 "
                "(paper: 75%%/74%%/69%%):\n");
    for (const std::string &name : extremeEdgeNames()) {
        const double o0 = static_cast<double>(static_counts[name][0]);
        const double o2 = static_cast<double>(static_counts[name][2]);
        std::printf("  %-10s %4.0f -> %4.0f instructions "
                    "(%.0f%% smaller)\n", name.c_str(), o0, o2,
                    100.0 * (1.0 - o2 / o0));
    }
    return 0;
}
