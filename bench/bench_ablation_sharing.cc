/**
 * @file
 * Ablation: what the "redundancy removal by synthesis tools" step
 * (Figure 2, Step 3) is worth. §3.3 argues the methodology can leave
 * all optimization to synthesis because resource sharing recovers
 * the redundancy of stitching self-contained blocks; this bench
 * quantifies that by synthesizing each design with sharing disabled
 * (every block keeps private datapath primitives).
 */

#include "bench/bench_util.hh"

using namespace rissp;

int
main()
{
    bench::banner("Ablation: resource sharing across instruction "
                  "blocks (Figure 2 Step 3)");
    SynthesisModel model;

    std::printf("%-18s %8s %12s %12s %9s\n", "design", "instrs",
                "shared GE", "unshared GE", "saved");
    bench::rule(64);
    auto row = [&](const InstrSubset &subset,
                   const std::string &name) {
        SynthReport s = model.synthesize(subset, name);
        SynthReport u = model.synthesizeUnshared(subset, name);
        std::printf("%-18s %8zu %12.0f %12.0f %8.1f%%\n",
                    name.c_str(), subset.size(), s.baseAreaGe,
                    u.baseAreaGe,
                    (1.0 - s.baseAreaGe / u.baseAreaGe) * 100.0);
        return u.baseAreaGe / s.baseAreaGe;
    };

    double worst = 1.0;
    for (const char *name : {"armpit", "xgboost", "af_detect",
                             "crc32", "md5sum", "picojpeg",
                             "nsichneu"}) {
        const Workload &wl = workloadByName(name);
        worst = std::max(worst, row(bench::subsetAtO2(wl),
                                    "RISSP-" + wl.name));
    }
    worst = std::max(worst, row(InstrSubset::fullRv32e(),
                                "RISSP-RV32E"));
    std::printf("\nwithout sharing the stitched full-ISA netlist "
                "would be %.1fx larger — the synthesis step is what "
                "makes block-level modularity affordable (§3.3)\n",
                worst);
    return 0;
}
