/**
 * @file
 * Figure 8: average power (static + dynamic, mW) across the
 * positive-slack sweep points, per design, vs the two baselines.
 * Per-application sweeps run through the exploration engine.
 */

#include "bench/bench_util.hh"

#include "serv/serv_model.hh"

using namespace rissp;

int
main()
{
    bench::banner("Figure 8: average power (mW, static + dynamic)");
    const explore::ResultTable table = bench::synthesizeAll(true);
    const explore::ExplorationResult &full =
        table.row(table.size() - 1);
    const SynthReport serv = ServModel().synthReport();

    std::printf("%-18s %8s %10s %14s\n", "design", "instrs",
                "avg mW", "vs RV32E");
    bench::rule(54);
    double min_red = 1.0;
    double max_red = 0.0;
    for (size_t i = 0; i + 1 < table.size(); ++i) {
        const explore::ExplorationResult &r = table.row(i);
        const double red = 1.0 - r.avgPowerMw / full.avgPowerMw;
        min_red = std::min(min_red, red);
        max_red = std::max(max_red, red);
        std::printf("%-18s %8zu %10.3f %12.1f%%\n",
                    r.subsetName.c_str(), r.subsetSize, r.avgPowerMw,
                    red * 100.0);
    }
    bench::rule(54);
    std::printf("%-18s %8zu %10.3f %13s\n", full.subsetName.c_str(),
                full.subsetSize, full.avgPowerMw, "--");
    std::printf("%-18s %8s %10.3f %13s\n", serv.name.c_str(),
                "full", serv.avgPowerMw, "--");
    std::printf("\npower reduction range: %.0f%% .. %.0f%% "
                "(paper: 3%% .. 30%%)\n", min_red * 100.0,
                max_red * 100.0);
    std::printf("Serv consumes %.0f%% more power than RISSP-RV32E "
                "(paper: ~40%%)\n",
                (serv.avgPowerMw / full.avgPowerMw - 1.0) * 100.0);
    return 0;
}
