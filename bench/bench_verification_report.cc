/**
 * @file
 * §3.4 verification-flow report: certifies the full ISA hardware
 * library (Figure 4 flow) and runs the §3.4.2 integration checks on
 * a generated RISSP, summarizing vectors, mutants and properties —
 * the repo's equivalent of the paper's verification statement.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "verify/block_verify.hh"
#include "verify/integration_verify.hh"

using namespace rissp;

int
main()
{
    bench::banner("Verification report: Figure 4 flow + "
                  "integration checks");

    std::printf("%-8s %8s %8s %8s %8s %6s\n", "block", "vectors",
                "mutants", "killed", "equiv", "cert");
    bench::rule(56);
    HwLibrary lib;
    unsigned total_vectors = 0;
    unsigned total_mutants = 0;
    for (Op op : lib.ops()) {
        auto vecs = blockVectors(op, 0xB10C, 200);
        TestbenchReport tb = runBlockTestbench(op, vecs);
        MutationReport mc = runMutationCoverage(op, vecs);
        bool props = true;
        for (const PropertyResult &p :
             checkBlockProperties(op, vecs))
            props = props && p.violations == 0;
        BlockCert cert;
        cert.functional = tb.passed();
        cert.mutationCovered = mc.fullCoverage();
        cert.formal = props;
        cert.vectorsRun = tb.vectorsRun;
        cert.mutantsKilled = mc.mutantsKilled;
        cert.mutantsTotal = mc.mutantsGenerated;
        lib.certify(op, cert);
        total_vectors += tb.vectorsRun;
        total_mutants += mc.mutantsGenerated;
        std::printf("%-8s %8u %8u %8u %8u %6s\n",
                    std::string(opName(op)).c_str(), tb.vectorsRun,
                    mc.mutantsGenerated, mc.mutantsKilled,
                    mc.mutantsEquivalent,
                    cert.preVerified() ? "PASS" : "FAIL");
    }
    std::printf("\nlibrary fully pre-verified: %s "
                "(%u vectors, %u mutants)\n",
                lib.fullyVerified() ? "yes" : "NO", total_vectors,
                total_mutants);

    // Integration level (RISCOF + riscv-formal analogs).
    std::printf("\nIntegration: per-instruction signature tests on "
                "the full-ISA RISSP\n");
    unsigned passed = 0;
    for (Op op : lib.ops()) {
        Program prog = archTestProgram(op);
        std::set<Op> ops = InstrSubset::fullRv32e().ops();
        ops.insert(op); // custom-extension ops are opt-in
        CosimReport rpt = cosimulate(prog, InstrSubset(ops),
                                     100'000);
        if (rpt.passed)
            ++passed;
        else
            std::printf("  %s: %s\n",
                        std::string(opName(op)).c_str(),
                        rpt.firstDivergence.c_str());
    }
    std::printf("  %u/%zu signature tests match the reference\n",
                passed, kNumOps);

    std::printf("\nRVFI monitor over constrained-random programs\n");
    unsigned fuzz_ok = 0;
    const unsigned kRuns = 8;
    for (unsigned seed = 0; seed < kRuns; ++seed) {
        Program prog = randomProgram(0xF00D + seed, 250,
                                     InstrSubset::fullRv32e());
        CosimReport rpt =
            cosimulate(prog, InstrSubset::fullRv32e(), 100'000);
        if (rpt.passed)
            ++fuzz_ok;
    }
    std::printf("  %u/%u random-program co-simulations clean\n",
                fuzz_ok, kRuns);
    return lib.fullyVerified() && passed == kNumOps &&
        fuzz_ok == kRuns ? 0 : 1;
}
