/**
 * @file
 * Ablation: the §6 custom-instruction extension. Adds the cmul
 * block (custom-0 opcode, single-cycle 32x32 low multiply) to the
 * pre-verified library, recompiles multiply-heavy workloads against
 * it, and weighs the silicon cost against the cycle/energy win —
 * the trade a RISSP designer would actually evaluate.
 */

#include "bench/bench_util.hh"

#include "core/rissp.hh"
#include "sim/refsim.hh"
#include "verify/block_verify.hh"

using namespace rissp;

int
main()
{
    bench::banner("Ablation: custom cmul instruction block (§6)");

    // The custom block enters the library through the same Figure 4
    // flow as every base instruction.
    BlockCert cert = certifyBlock(Op::Cmul, 0xC0C0, 300);
    std::printf("cmul block certification: functional=%d "
                "mutation=%u/%u formal=%d\n", cert.functional,
                cert.mutantsKilled, cert.mutantsTotal, cert.formal);
    if (!cert.preVerified())
        return 1;

    SynthesisModel model;
    const Technology &tech = model.tech();
    std::printf("\n%-14s | %10s %10s %8s | %10s %10s %8s | %7s\n",
                "workload", "base cyc", "base GE", "base nJ",
                "cmul cyc", "cmul GE", "cmul nJ", "E ratio");
    bench::rule(100);

    for (const char *name : {"matmult-int", "edn", "st", "nbody",
                             "aha-mont64"}) {
        const Workload &wl = workloadByName(name);

        minic::CompileResult base =
            minic::compile(wl.source, minic::OptLevel::O2);
        minic::MachineOptions machine;
        machine.customMul = true;
        minic::CompileResult custom =
            minic::compile(wl.source, minic::OptLevel::O2, machine);

        InstrSubset base_sub = InstrSubset::fromProgram(base.program);
        InstrSubset cust_sub =
            InstrSubset::fromProgram(custom.program);

        Rissp base_chip(base_sub, "base");
        base_chip.reset(base.program);
        RunResult base_run = base_chip.run(400'000'000);
        Rissp cust_chip(cust_sub, "cmul");
        cust_chip.reset(custom.program);
        RunResult cust_run = cust_chip.run(400'000'000);
        if (base_run.reason != StopReason::Halted ||
            cust_run.reason != StopReason::Halted ||
            base_run.exitCode != cust_run.exitCode) {
            std::printf("%-14s FUNCTIONAL MISMATCH\n", name);
            return 1;
        }

        SynthReport bs = model.synthesize(base_sub, "base");
        SynthReport cs = model.synthesize(cust_sub, "cmul");
        // Energy per task = EPI * retired instructions.
        const double base_nj =
            bs.epiNanojoules(1.0, tech) *
            static_cast<double>(base_run.instret);
        const double cust_nj =
            cs.epiNanojoules(1.0, tech) *
            static_cast<double>(cust_run.instret);
        std::printf("%-14s | %10llu %10.0f %8.0f | %10llu %10.0f "
                    "%8.0f | %6.2fx\n", name,
                    static_cast<unsigned long long>(
                        base_run.instret), bs.avgAreaGe, base_nj,
                    static_cast<unsigned long long>(
                        cust_run.instret), cs.avgAreaGe, cust_nj,
                    base_nj / cust_nj);
    }
    std::printf("\nreading: cmul adds a ~2.7 kGE multiplier (and "
                "lowers fmax via its deep array) but removes the "
                "__mulsi3 call from the dynamic stream; for "
                "multiply-bound kernels the energy-per-task win is "
                "what the paper's custom-instruction path is for\n");
    return 0;
}
