/**
 * @file
 * Figure 7: average NAND2-equivalent gate count across the
 * positive-slack sweep points, per design, vs the two baselines.
 * The 25 per-application synthesis sweeps plus the RISSP-RV32E
 * baseline run through the exploration engine (parallel + memoized).
 */

#include "bench/bench_util.hh"

#include "serv/serv_model.hh"

using namespace rissp;

int
main()
{
    bench::banner("Figure 7: average area (NAND2-equivalents)");
    const explore::ResultTable table = bench::synthesizeAll(true);
    const explore::ExplorationResult &full =
        table.row(table.size() - 1);
    const SynthReport serv = ServModel().synthReport();

    std::printf("%-18s %8s %12s %14s\n", "design", "instrs",
                "avg area GE", "vs RV32E");
    bench::rule(56);
    double min_red = 1.0;
    double max_red = 0.0;
    const explore::ExplorationResult *smallest = &full;
    for (size_t i = 0; i + 1 < table.size(); ++i) {
        const explore::ExplorationResult &r = table.row(i);
        const double red = 1.0 - r.avgAreaGe / full.avgAreaGe;
        min_red = std::min(min_red, red);
        max_red = std::max(max_red, red);
        if (r.avgAreaGe < smallest->avgAreaGe)
            smallest = &r;
        std::printf("%-18s %8zu %12.0f %12.1f%%\n",
                    r.subsetName.c_str(), r.subsetSize, r.avgAreaGe,
                    red * 100.0);
    }
    bench::rule(56);
    std::printf("%-18s %8zu %12.0f %13s\n", full.subsetName.c_str(),
                full.subsetSize, full.avgAreaGe, "--");
    std::printf("%-18s %8s %12.0f %13s\n", serv.name.c_str(),
                "full", serv.avgAreaGe, "--");
    std::printf("\narea reduction range: %.0f%% .. %.0f%% "
                "(paper: 8%% .. 43%%)\n", min_red * 100.0,
                max_red * 100.0);
    std::printf("smallest RISSP (%s) is %.0f%% larger than Serv "
                "(paper: xgboost, 23%%)\n",
                smallest->subsetName.c_str(),
                (smallest->avgAreaGe / serv.avgAreaGe - 1.0) * 100.0);
    return 0;
}
