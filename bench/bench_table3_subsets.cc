/**
 * @file
 * Table 3: the list of distinct instructions per application when
 * compiled with -O2.
 */

#include "bench/bench_util.hh"

using namespace rissp;

int
main()
{
    bench::banner("Table 3: distinct instructions per application "
                  "(-O2)");
    for (const Workload &wl : allWorkloads()) {
        const InstrSubset subset = bench::subsetAtO2(wl);
        std::printf("%-16s (%2zu) %s\n", wl.name.c_str(),
                    subset.size(), subset.describe().c_str());
    }
    return 0;
}
