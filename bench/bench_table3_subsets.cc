/**
 * @file
 * Table 3: the list of distinct instructions per application when
 * compiled with -O2. Characterization runs through the exploration
 * engine (subset extraction only), which compiles the 25 workloads on
 * the work-stealing pool instead of one at a time.
 */

#include "bench/bench_util.hh"

using namespace rissp;

int
main()
{
    bench::banner("Table 3: distinct instructions per application "
                  "(-O2)");
    const explore::ResultTable table = bench::characterizeAll();
    for (const explore::ExplorationResult &r : table.rows())
        std::printf("%-16s (%2zu) %s\n", r.workloadName.c_str(),
                    r.subsetSize, r.subset.describe().c_str());
    return 0;
}
