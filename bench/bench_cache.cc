/**
 * @file
 * Benchmarks for the persistent artifact store: what a warm
 * --cache-dir actually buys, and what the store itself costs.
 *
 *  - cache_cold_boot / cache_warm_boot: the same explore sweep run
 *    by a fresh FlowService over an empty store directory, then by a
 *    second fresh service over the now-populated one — the process
 *    restart scenario. Reports wall seconds, the store hit rate of
 *    the warm boot and the cold/warm speedup.
 *  - store_publish / store_load: raw DiskStore throughput (MB/s) on
 *    synthetic payloads, isolating the frame+fsync+rename cost from
 *    pipeline compute.
 *
 * Results go to BENCH_cache.json so CI tracks the restart-resume
 * win alongside the other benchmark trajectories.
 *
 *   bench_cache [--json <path>] [--records <n>] [--quick]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "flow/flow.hh"
#include "store/disk_store.hh"
#include "util/json.hh"

namespace
{

using namespace rissp;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

struct BootResult
{
    double coldSeconds = 0;
    double warmSeconds = 0;
    uint64_t warmStoreHits = 0;
    uint64_t warmStoreMisses = 0;
    uint64_t coldWrites = 0;
    uint64_t storeBytes = 0; ///< on-disk footprint after cold boot

    double speedup() const
    {
        return warmSeconds > 0 ? coldSeconds / warmSeconds : 0;
    }

    double hitRate() const
    {
        const uint64_t total = warmStoreHits + warmStoreMisses;
        return total > 0
            ? static_cast<double>(warmStoreHits) / total : 0;
    }
};

/** The restart scenario: cold explore populating the store, then
 *  the identical sweep from a fresh service over the same dir. */
BootResult
runBootScenario(const std::string &dir, bool quick)
{
    flow::ExploreRequest request;
    request.planText = quick
        ? "mode cartesian\n"
          "workload crc32\n"
          "subset fit  = @crc32\n"
          "subset full = @full\n"
        : "mode cartesian\n"
          "workload crc32 aha-mont64 armpit\n"
          "subset crc32  = @crc32\n"
          "subset armpit = @armpit\n"
          "subset full   = @full\n";

    BootResult result;
    flow::ServiceOptions options;
    options.cacheDir = dir;
    {
        const flow::FlowService cold(options);
        const auto start = Clock::now();
        const flow::ExploreResponse response = cold.explore(request);
        result.coldSeconds = secondsSince(start);
        if (!response.status.isOk()) {
            std::fprintf(stderr, "bench_cache: cold explore: %s\n",
                         response.status.toString().c_str());
            std::exit(1);
        }
        result.coldWrites =
            cold.caches()->artifacts->stats().writes;
    }
    {
        Result<std::shared_ptr<store::DiskStore>> opened =
            store::DiskStore::open(dir);
        if (opened.isOk())
            result.storeBytes = opened.value()->usage().bytes;
    }

    const flow::FlowService warm(options);
    const auto start = Clock::now();
    const flow::ExploreResponse response = warm.explore(request);
    result.warmSeconds = secondsSince(start);
    if (!response.status.isOk()) {
        std::fprintf(stderr, "bench_cache: warm explore: %s\n",
                     response.status.toString().c_str());
        std::exit(1);
    }
    const store::StoreStats stats =
        warm.caches()->artifacts->stats();
    result.warmStoreHits = stats.hits;
    result.warmStoreMisses = stats.misses;
    if (stats.writes != 0)
        std::fprintf(stderr,
                     "bench_cache: WARNING: warm boot recomputed "
                     "%llu artifacts\n",
                     static_cast<unsigned long long>(stats.writes));
    return result;
}

struct IoResult
{
    uint64_t records = 0;
    uint64_t payloadBytes = 0;
    double publishSeconds = 0;
    double loadSeconds = 0;

    double publishMbps() const
    {
        return publishSeconds > 0
            ? payloadBytes / publishSeconds / 1e6 : 0;
    }

    double loadMbps() const
    {
        return loadSeconds > 0
            ? payloadBytes / loadSeconds / 1e6 : 0;
    }
};

/** Raw store throughput on @p records synthetic 16 KiB payloads. */
IoResult
runIoScenario(const std::string &dir, uint64_t records)
{
    IoResult result;
    result.records = records;
    Result<std::shared_ptr<store::DiskStore>> opened =
        store::DiskStore::open(dir);
    if (!opened.isOk()) {
        std::fprintf(stderr, "bench_cache: %s\n",
                     opened.status().toString().c_str());
        std::exit(1);
    }
    std::shared_ptr<store::DiskStore> diskStore = opened.take();

    constexpr size_t kPayload = 16 * 1024;
    std::vector<uint8_t> payload(kPayload);
    for (size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<uint8_t>(i * 31 + 7);

    const auto publishStart = Clock::now();
    for (uint64_t i = 0; i < records; ++i) {
        payload[0] = static_cast<uint8_t>(i); // distinct contents
        diskStore->publish(store::ArtifactKind::Sim, {i, 0x5EED},
                           payload);
    }
    result.publishSeconds = secondsSince(publishStart);

    std::vector<uint8_t> out;
    const auto loadStart = Clock::now();
    for (uint64_t i = 0; i < records; ++i)
        diskStore->load(store::ArtifactKind::Sim, {i, 0x5EED}, out);
    result.loadSeconds = secondsSince(loadStart);
    result.payloadBytes = records * kPayload;
    return result;
}

void
writeJson(const std::string &path, const BootResult &boot,
          const IoResult &io)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "bench_cache: cannot write %s\n",
                     path.c_str());
        std::exit(1);
    }
    out << "{\n  \"schema\": \"rissp-cache-v1\",\n"
        << "  \"benchmarks\": [\n"
        << "    {\"name\": \"cache_cold_boot\", \"seconds\": "
        << jsonNum(boot.coldSeconds)
        << ", \"store_writes\": " << boot.coldWrites
        << ", \"store_bytes\": " << boot.storeBytes << "},\n"
        << "    {\"name\": \"cache_warm_boot\", \"seconds\": "
        << jsonNum(boot.warmSeconds)
        << ", \"store_hits\": " << boot.warmStoreHits
        << ", \"store_misses\": " << boot.warmStoreMisses
        << ", \"hit_rate\": " << jsonNum(boot.hitRate())
        << ", \"speedup_vs_cold\": " << jsonNum(boot.speedup())
        << "},\n"
        << "    {\"name\": \"store_publish\", \"records\": "
        << io.records
        << ", \"seconds\": " << jsonNum(io.publishSeconds)
        << ", \"mb_per_second\": " << jsonNum(io.publishMbps())
        << "},\n"
        << "    {\"name\": \"store_load\", \"records\": "
        << io.records
        << ", \"seconds\": " << jsonNum(io.loadSeconds)
        << ", \"mb_per_second\": " << jsonNum(io.loadMbps())
        << "}\n  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_cache.json";
    uint64_t records = 512;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--records") &&
                   i + 1 < argc) {
            records = static_cast<uint64_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (!std::strcmp(argv[i], "--quick")) {
            quick = true;
            records = 128;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json <path>] "
                         "[--records <n>] [--quick]\n",
                         argv[0]);
            return 2;
        }
    }

    namespace fs = std::filesystem;
    std::string root =
        (fs::temp_directory_path() / "rissp-bench-cache-XXXXXX")
            .string();
    if (::mkdtemp(root.data()) == nullptr) {
        std::fprintf(stderr,
                     "bench_cache: cannot create temp dir\n");
        return 1;
    }

    const BootResult boot =
        runBootScenario(root + "/boot-store", quick);
    std::printf("cache_cold_boot : %8.3f s (%llu records, %llu "
                "bytes)\n",
                boot.coldSeconds,
                static_cast<unsigned long long>(boot.coldWrites),
                static_cast<unsigned long long>(boot.storeBytes));
    std::printf("cache_warm_boot : %8.3f s (hit rate %.0f%%, "
                "%.1fx vs cold)\n",
                boot.warmSeconds, boot.hitRate() * 100.0,
                boot.speedup());

    const IoResult io = runIoScenario(root + "/io-store", records);
    std::printf("store_publish   : %8.1f MB/s (%llu records)\n",
                io.publishMbps(),
                static_cast<unsigned long long>(io.records));
    std::printf("store_load      : %8.1f MB/s\n", io.loadMbps());

    writeJson(json_path, boot, io);
    std::printf("wrote %s\n", json_path.c_str());

    std::error_code ec;
    fs::remove_all(root, ec);
    return 0;
}
