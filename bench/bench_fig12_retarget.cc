/**
 * @file
 * Figure 12: code size and distinct-instruction comparison between
 * the initial -O2 binaries of the three long-lasting extreme-edge
 * applications and their versions retargeted to the minimal
 * 12-instruction subset {addi, add, and, xori, sll, sra, jal, jalr,
 * blt, bltu, lw, sw} (§5).
 */

#include "bench/bench_util.hh"

#include "retarget/retargeter.hh"
#include "sim/refsim.hh"

using namespace rissp;

int
main()
{
    bench::banner("Figure 12: LLM-analog retargeting to the minimal "
                  "subset");
    const InstrSubset target = Retargeter::minimalSubset();
    std::printf("target subset (%zu): %s\n\n", target.size(),
                target.describe().c_str());

    std::printf("%-12s %10s %12s %8s %10s %10s %8s\n", "app",
                "init B", "retarget B", "growth", "init ops",
                "final ops", "macros");
    bench::rule(76);
    for (const std::string &name : extremeEdgeNames()) {
        const Workload &wl = workloadByName(name);
        minic::CompileResult cr =
            minic::compile(wl.source, minic::OptLevel::O2);
        Retargeter rt(target);
        RetargetResult res = rt.retarget(cr.program);
        if (!res.ok) {
            std::printf("%-12s retarget FAILED: %s\n", name.c_str(),
                        res.error.c_str());
            return 1;
        }
        // Functional check: the retargeted binary must agree with
        // the original on the reference ISS.
        RefSim a;
        a.reset(cr.program);
        RefSim b;
        b.reset(res.program);
        const RunResult ra = a.run(400'000'000);
        const RunResult rb = b.run(400'000'000);
        const bool same = ra.reason == StopReason::Halted &&
            rb.reason == StopReason::Halted &&
            ra.exitCode == rb.exitCode &&
            a.outputWords() == b.outputWords();
        unsigned total_attempts = 0;
        for (const MacroExpansion &m : res.macros)
            total_attempts += m.attempts;
        std::printf("%-12s %10zu %12zu %+7.1f%% %10zu %10zu %8zu"
                    "  %s\n", name.c_str(), res.initialTextBytes,
                    res.retargetedTextBytes,
                    res.codeGrowth() * 100.0,
                    res.initialSubset.size(),
                    res.finalSubset.size(), res.macros.size(),
                    same ? "(verified)" : "(MISMATCH!)");
        std::printf("%-12s macro synthesis attempts: %u for %zu "
                    "macros (paper: < 10 per macro)\n", "",
                    total_attempts, res.macros.size());
    }
    std::printf("\npaper: code growth +13%% (armpit), +5.2%% "
                "(xgboost), +36%% (af_detect); distinct ops for "
                "af_detect 23 -> 12\n");
    return 0;
}
