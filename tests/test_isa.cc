/**
 * @file
 * Unit tests for the RV32E encode/decode layer.
 */

#include <gtest/gtest.h>

#include "isa/instr.hh"
#include "isa/reg.hh"
#include "util/bits.hh"
#include "util/rng.hh"

namespace rissp
{
namespace
{

TEST(OpInfo, NamesRoundTrip)
{
    for (size_t i = 0; i < kNumOps; ++i) {
        Op op = static_cast<Op>(i);
        auto back = opFromName(opName(op));
        ASSERT_TRUE(back.has_value()) << opName(op);
        EXPECT_EQ(*back, op);
    }
    EXPECT_FALSE(opFromName("mul").has_value());
    EXPECT_FALSE(opFromName("").has_value());
}

TEST(OpInfo, Classification)
{
    EXPECT_TRUE(isLoad(Op::Lbu));
    EXPECT_FALSE(isLoad(Op::Sw));
    EXPECT_TRUE(isStore(Op::Sh));
    EXPECT_TRUE(isBranch(Op::Bgeu));
    EXPECT_FALSE(isBranch(Op::Jal));
    EXPECT_TRUE(isJump(Op::Jalr));
    EXPECT_TRUE(writesRd(Op::Lui));
    EXPECT_FALSE(writesRd(Op::Sw));
    EXPECT_FALSE(writesRd(Op::Beq));
    EXPECT_TRUE(readsRs1(Op::Addi));
    EXPECT_FALSE(readsRs1(Op::Lui));
    EXPECT_TRUE(readsRs2(Op::Sw));
    EXPECT_FALSE(readsRs2(Op::Lw));
}

TEST(Reg, Names)
{
    EXPECT_EQ(regName(0), "zero");
    EXPECT_EQ(regName(2), "sp");
    EXPECT_EQ(regName(10), "a0");
    EXPECT_EQ(regFromName("a5"), 15u);
    EXPECT_EQ(regFromName("x13"), 13u);
    EXPECT_EQ(regFromName("fp"), 8u);
    EXPECT_FALSE(regFromName("x16").has_value()); // RV32E limit
    EXPECT_FALSE(regFromName("t3").has_value());  // x28 not in E
    EXPECT_FALSE(regFromName("bogus").has_value());
}

TEST(Decode, KnownWords)
{
    // add a0, a1, a2 == 0x00C58533
    Instr in = decode(0x00C58533);
    EXPECT_EQ(in.op, Op::Add);
    EXPECT_EQ(in.rd, 10);
    EXPECT_EQ(in.rs1, 11);
    EXPECT_EQ(in.rs2, 12);

    // addi sp, sp, -16 == 0xFF010113
    in = decode(0xFF010113);
    EXPECT_EQ(in.op, Op::Addi);
    EXPECT_EQ(in.rd, 2);
    EXPECT_EQ(in.rs1, 2);
    EXPECT_EQ(in.imm, -16);

    // lw a0, 8(sp) == 0x00812503
    in = decode(0x00812503);
    EXPECT_EQ(in.op, Op::Lw);
    EXPECT_EQ(in.imm, 8);

    // sw a0, 12(sp) == 0x00A12623
    in = decode(0x00A12623);
    EXPECT_EQ(in.op, Op::Sw);
    EXPECT_EQ(in.rs2, 10);
    EXPECT_EQ(in.imm, 12);

    // ecall / ebreak
    EXPECT_EQ(decode(0x00000073).op, Op::Ecall);
    EXPECT_EQ(decode(0x00100073).op, Op::Ebreak);
}

TEST(Decode, RejectsGarbage)
{
    EXPECT_FALSE(decode(0x00000000).valid());
    EXPECT_FALSE(decode(0xFFFFFFFF).valid());
    // funct7 garbage on add
    EXPECT_FALSE(decode(0x40C58533 ^ 0x02000000).valid());
}

TEST(Decode, Rv32eRegisterLimit)
{
    // add x16, x0, x0 is valid RV32I but not RV32E.
    uint32_t word = (0u << 25) | (0u << 20) | (0u << 15) | (0u << 12) |
        (16u << 7) | 0x33u;
    EXPECT_FALSE(decode(word, /*rve=*/true).valid());
    EXPECT_TRUE(decode(word, /*rve=*/false).valid());
}

TEST(Encode, RoundTripDirected)
{
    struct Case { uint32_t word; };
    const uint32_t words[] = {
        encodeR(Op::Sub, 1, 2, 3),
        encodeR(Op::Sra, 15, 14, 13),
        encodeI(Op::Addi, 10, 10, -2048),
        encodeI(Op::Addi, 10, 10, 2047),
        encodeI(Op::Slli, 4, 5, 31),
        encodeI(Op::Srai, 4, 5, 1),
        encodeI(Op::Lw, 6, 2, 124),
        encodeI(Op::Jalr, 1, 5, -4),
        encodeS(Op::Sb, 2, 7, -1),
        encodeS(Op::Sw, 2, 7, 2044),
        encodeB(Op::Beq, 3, 4, -4096),
        encodeB(Op::Bgeu, 3, 4, 4094),
        encodeU(Op::Lui, 8, 0x7FFFF),
        encodeU(Op::Auipc, 8, -1),
        encodeJ(Op::Jal, 1, -1048576),
        encodeJ(Op::Jal, 0, 1048574),
        encodeSys(Op::Ecall),
        encodeSys(Op::Ebreak),
    };
    for (uint32_t w : words) {
        Instr in = decode(w);
        ASSERT_TRUE(in.valid()) << std::hex << w;
        EXPECT_EQ(in.raw, w);
    }
}

/** Property: encode(decode-fields) == original for random instrs. */
TEST(Encode, RoundTripRandomized)
{
    Rng rng(1234);
    for (int iter = 0; iter < 20000; ++iter) {
        Op op = static_cast<Op>(rng.below(kNumOps));
        unsigned rd = rng.below(kNumRegsE);
        unsigned rs1 = rng.below(kNumRegsE);
        unsigned rs2 = rng.below(kNumRegsE);
        uint32_t word = 0;
        int32_t imm = 0;
        switch (opInfo(op).type) {
          case InstrType::R:
            word = encodeR(op, rd, rs1, rs2);
            break;
          case InstrType::I:
            if (op == Op::Slli || op == Op::Srli || op == Op::Srai)
                imm = rng.range(0, 31);
            else
                imm = rng.range(-2048, 2047);
            word = encodeI(op, rd, rs1, imm);
            break;
          case InstrType::S:
            imm = rng.range(-2048, 2047);
            word = encodeS(op, rs1, rs2, imm);
            break;
          case InstrType::B:
            imm = rng.range(-2048, 2047) * 2;
            word = encodeB(op, rs1, rs2, imm);
            break;
          case InstrType::U:
            imm = rng.range(-(1 << 19), (1 << 19) - 1);
            word = encodeU(op, rd, imm);
            break;
          case InstrType::J:
            imm = rng.range(-(1 << 19), (1 << 19) - 1) * 2;
            word = encodeJ(op, rd, imm);
            break;
          case InstrType::Sys:
            word = encodeSys(op);
            break;
        }
        Instr in = decode(word);
        ASSERT_TRUE(in.valid());
        EXPECT_EQ(in.op, op);
        switch (opInfo(op).type) {
          case InstrType::R:
            EXPECT_EQ(in.rd, rd);
            EXPECT_EQ(in.rs1, rs1);
            EXPECT_EQ(in.rs2, rs2);
            break;
          case InstrType::I:
            EXPECT_EQ(in.rd, rd);
            EXPECT_EQ(in.rs1, rs1);
            EXPECT_EQ(in.imm, imm);
            break;
          case InstrType::S:
          case InstrType::B:
            EXPECT_EQ(in.rs1, rs1);
            EXPECT_EQ(in.rs2, rs2);
            EXPECT_EQ(in.imm, imm);
            break;
          case InstrType::U:
            EXPECT_EQ(in.rd, rd);
            EXPECT_EQ(in.imm, imm << 12);
            break;
          case InstrType::J:
            EXPECT_EQ(in.rd, rd);
            EXPECT_EQ(in.imm, imm);
            break;
          case InstrType::Sys:
            break;
        }
    }
}

TEST(Disasm, Formats)
{
    EXPECT_EQ(disassemble(encodeR(Op::Add, 10, 11, 12)),
              "add a0, a1, a2");
    EXPECT_EQ(disassemble(encodeI(Op::Addi, 2, 2, -16)),
              "addi sp, sp, -16");
    EXPECT_EQ(disassemble(encodeI(Op::Lw, 10, 2, 8)),
              "lw a0, 8(sp)");
    EXPECT_EQ(disassemble(encodeS(Op::Sw, 2, 10, 12)),
              "sw a0, 12(sp)");
    EXPECT_EQ(disassemble(encodeB(Op::Bne, 10, 0, -8)),
              "bne a0, zero, -8");
    EXPECT_EQ(disassemble(encodeU(Op::Lui, 2, 0x80)),
              "lui sp, 0x80");
    EXPECT_EQ(disassemble(encodeJ(Op::Jal, 1, 16)), "jal ra, 16");
    EXPECT_EQ(disassemble(encodeSys(Op::Ecall)), "ecall");
    EXPECT_EQ(disassemble(0u), ".word 0x00000000");
}

TEST(Bits, Helpers)
{
    EXPECT_EQ(bits(0xDEADBEEF, 31, 28), 0xDu);
    EXPECT_EQ(bits(0xDEADBEEF, 3, 0), 0xFu);
    EXPECT_EQ(bits(0xDEADBEEF, 31, 0), 0xDEADBEEFu);
    EXPECT_EQ(bit(0x80000000, 31), 1u);
    EXPECT_EQ(sext(0xFFF, 12), -1);
    EXPECT_EQ(sext(0x7FF, 12), 2047);
    EXPECT_EQ(sext(0x800, 12), -2048);
    EXPECT_TRUE(fitsSigned(-2048, 12));
    EXPECT_FALSE(fitsSigned(2048, 12));
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(37), 6u);
}

} // namespace
} // namespace rissp
