/**
 * @file
 * Tests for the in-repo project linter (tools/lint).
 *
 * The linter is self-testing: every registered check is pinned by a
 * good/bad fixture pair under tests/lint_fixtures/. A check without
 * fixtures fails here, as does a fixture whose findings drift — so
 * the registry and the fixtures cannot rot apart.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.hh"

#ifndef RISSP_LINT_FIXTURE_DIR
#error "build must define RISSP_LINT_FIXTURE_DIR"
#endif

namespace rissp::lint
{
namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open fixture " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Fixture file names use '_' where check names use '-'. */
std::string
fixtureStem(const std::string &check)
{
    std::string stem = check;
    std::replace(stem.begin(), stem.end(), '-', '_');
    return stem;
}

/**
 * Load a fixture classified as library code (src/<name>), the same
 * reclassification `rissp_lint --as-library` performs, so src/-only
 * checks apply to it.
 */
SourceFile
loadFixture(const std::string &name)
{
    std::string path = std::string(RISSP_LINT_FIXTURE_DIR) + "/" + name;
    return makeSourceFile("src/" + name, readFile(path));
}

bool
fixtureExists(const std::string &name)
{
    std::ifstream in(std::string(RISSP_LINT_FIXTURE_DIR) + "/" + name);
    return in.good();
}

/** Resolve <stem>.{good,bad}.{cc,hh} — each check picks one ext. */
std::string
fixtureName(const std::string &check, const std::string &kind)
{
    for (const char *ext : {".cc", ".hh"}) {
        std::string name = fixtureStem(check) + "." + kind + ext;
        if (fixtureExists(name))
            return name;
    }
    return {};
}

TEST(LintRegistry, EveryCheckHasAFixturePair)
{
    ASSERT_FALSE(checkRegistry().empty());
    for (const Check &check : checkRegistry()) {
        EXPECT_FALSE(fixtureName(check.name, "good").empty())
            << "check '" << check.name << "' lacks a .good fixture";
        EXPECT_FALSE(fixtureName(check.name, "bad").empty())
            << "check '" << check.name << "' lacks a .bad fixture";
    }
}

TEST(LintRegistry, BadFixturesTripTheirCheck)
{
    for (const Check &check : checkRegistry()) {
        SourceFile file = loadFixture(fixtureName(check.name, "bad"));
        std::vector<Finding> findings = lintFile(file, check.name);
        EXPECT_FALSE(findings.empty())
            << "bad fixture for '" << check.name
            << "' produced no findings";
        for (const Finding &f : findings) {
            EXPECT_EQ(f.check, check.name);
            EXPECT_GT(f.line, 0u);
            EXPECT_FALSE(f.message.empty());
        }
    }
}

TEST(LintRegistry, GoodFixturesPassEveryCheck)
{
    // Good fixtures must be clean under ALL checks, not just their
    // own — otherwise "the good raw-mutex fixture" could smuggle a
    // banned call past review.
    for (const Check &check : checkRegistry()) {
        SourceFile file = loadFixture(fixtureName(check.name, "good"));
        std::vector<Finding> findings = lintFile(file);
        EXPECT_TRUE(findings.empty())
            << "good fixture " << file.path << " tripped '"
            << findings.front().check
            << "': " << findings.front().message;
    }
}

TEST(LintRegistry, AnnotatedMutexPassesRawMutexFails)
{
    // The acceptance pair for the thread-safety layer, spelled out:
    // the rissp::Mutex idiom is clean, a raw std::mutex member is a
    // finding.
    SourceFile good = loadFixture("raw_mutex.good.hh");
    EXPECT_TRUE(lintFile(good, "raw-mutex").empty());

    SourceFile bad = loadFixture("raw_mutex.bad.hh");
    std::vector<Finding> findings = lintFile(bad, "raw-mutex");
    ASSERT_FALSE(findings.empty());
    EXPECT_EQ(findings.front().check, "raw-mutex");
}

TEST(LintScrub, LiteralsAndCommentsAreBlanked)
{
    SourceFile file = makeSourceFile("src/x.cc",
        "int a; // strcpy in a comment\n"
        "const char *s = \"strcpy in a string\";\n"
        "/* strcpy\n   across lines */ char c = 'x';\n"
        "auto r = R\"(strcpy raw)\";\n");
    EXPECT_EQ(file.scrubbed.find("strcpy"), std::string::npos);
    // Newlines survive so findings keep correct line numbers.
    EXPECT_EQ(std::count(file.scrubbed.begin(), file.scrubbed.end(),
                         '\n'),
              std::count(file.content.begin(), file.content.end(),
                         '\n'));
    EXPECT_TRUE(lintFile(file).empty());
}

TEST(LintScrub, DigitSeparatorIsNotACharLiteral)
{
    // 1'000 must not open a char literal that swallows the rest of
    // the file (hiding real violations after it).
    SourceFile file = makeSourceFile("src/x.cc",
        "int n = 1'000;\n"
        "void f(char *d, const char *s) { strcpy(d, s); }\n");
    std::vector<Finding> findings = lintFile(file, "banned-call");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings.front().line, 2u);
}

TEST(LintAllow, SuppressionIsPerLineAndPerCheck)
{
    SourceFile file = makeSourceFile("src/x.cc",
        "void f(char *d) {\n"
        "    strcpy(d, d); // rissp-lint: allow(banned-call)\n"
        "    strcpy(d, d);\n"
        "}\n");
    std::vector<Finding> findings = lintFile(file, "banned-call");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings.front().line, 3u);

    // The allow names one check; others on that line still fire.
    SourceFile other = makeSourceFile("src/y.cc",
        "void g() { exit(1); } // rissp-lint: allow(banned-call)\n");
    EXPECT_FALSE(lintFile(other, "no-terminate").empty());
}

TEST(LintPaths, ClassificationMatchesLayout)
{
    EXPECT_TRUE(isLibraryPath("src/exec/scheduler.cc"));
    EXPECT_FALSE(isLibraryPath("tools/risspgen.cc"));
    EXPECT_FALSE(isLibraryPath("tests/test_exec.cc"));
    EXPECT_TRUE(isHeaderPath("src/exec/scheduler.hh"));
    EXPECT_TRUE(isHeaderPath("tests/http_client.hh"));
    EXPECT_FALSE(isHeaderPath("src/exec/scheduler.cc"));
}

TEST(LintChecks, PragmaOnceSatisfiesIncludeGuard)
{
    SourceFile file = makeSourceFile("src/x.hh",
        "#pragma once\nint f();\n");
    EXPECT_TRUE(lintFile(file, "include-guard").empty());
}

TEST(LintChecks, MismatchedGuardIsAFinding)
{
    SourceFile file = makeSourceFile("src/x.hh",
        "#ifndef A_HH\n#define B_HH\n#endif\n");
    EXPECT_FALSE(lintFile(file, "include-guard").empty());
}

TEST(LintChecks, RawFsPublishExemptsTheStore)
{
    // The same write-and-rename sequence is the violation outside
    // src/store/ and the sanctioned implementation inside it.
    const char *text =
        "#include <cstdio>\n"
        "#include <fstream>\n"
        "void publish(const char *tmp, const char *dst) {\n"
        "    std::ofstream out(tmp);\n"
        "    std::rename(tmp, dst);\n"
        "}\n";
    SourceFile outside = makeSourceFile("src/flow/service.cc", text);
    std::vector<Finding> findings =
        lintFile(outside, "raw-fs-publish");
    EXPECT_EQ(findings.size(), 2u); // the ofstream and the rename

    SourceFile inside = makeSourceFile("src/store/disk_store.cc",
                                       text);
    EXPECT_TRUE(lintFile(inside, "raw-fs-publish").empty());
}

TEST(LintChecks, RawFsPublishIgnoresToolsAndReads)
{
    // The CLI edge may write files freely...
    SourceFile tool = makeSourceFile("tools/x.cc",
        "#include <fstream>\n"
        "void dump() { std::ofstream out(\"t.csv\"); }\n");
    EXPECT_TRUE(lintFile(tool, "raw-fs-publish").empty());
    // ...and read-only IO in library code is not publishing.
    SourceFile reader = makeSourceFile("src/x.cc",
        "#include <fstream>\n"
        "void load() { std::ifstream in(\"t.bin\"); }\n");
    EXPECT_TRUE(lintFile(reader, "raw-fs-publish").empty());
}

TEST(LintChecks, LibraryOnlyChecksIgnoreToolCode)
{
    // printf and raw mutexes are fine outside src/ — the CLIs print
    // and the tests may use std::mutex scaffolding directly.
    SourceFile file = makeSourceFile("tools/x.cc",
        "#include <mutex>\n"
        "std::mutex mu;\n"
        "int main() { printf(\"ok\\n\"); }\n");
    EXPECT_TRUE(lintFile(file, "no-stdout").empty());
    EXPECT_TRUE(lintFile(file, "raw-mutex").empty());
    // ...but reentrancy rules still apply everywhere.
    SourceFile banned = makeSourceFile("tools/y.cc",
        "int main() { return rand(); }\n");
    EXPECT_FALSE(lintFile(banned, "banned-call").empty());
}

} // namespace
} // namespace rissp::lint
