/**
 * @file
 * Tests for the §6 custom-instruction extension path: the cmul
 * block behaves like a library citizen end to end — encode/decode,
 * Figure 4 certification, RISSP execution, compiler targeting, and
 * synthesis cost.
 */

#include <gtest/gtest.h>

#include "compiler/driver.hh"
#include "assembler/assembler.hh"
#include "util/bits.hh"
#include "core/rissp.hh"
#include "sim/refsim.hh"
#include "synth/synthesis.hh"
#include "util/rng.hh"
#include "verify/block_verify.hh"
#include "verify/integration_verify.hh"

namespace rissp
{
namespace
{

TEST(CustomInstr, EncodeDecodeRoundTrip)
{
    uint32_t word = encodeR(Op::Cmul, 10, 11, 12);
    Instr in = decode(word);
    ASSERT_TRUE(in.valid());
    EXPECT_EQ(in.op, Op::Cmul);
    EXPECT_EQ(bits(word, 6, 0), 0x0Bu); // custom-0 opcode space
    EXPECT_EQ(disassemble(word), "cmul a0, a1, a2");
    EXPECT_TRUE(isCustom(Op::Cmul));
    EXPECT_FALSE(isCustom(Op::Add));
}

TEST(CustomInstr, NotPartOfBaseIsa)
{
    InstrSubset full = InstrSubset::fullRv32e();
    EXPECT_FALSE(full.contains(Op::Cmul));
    EXPECT_EQ(full.size(), kFullIsaSize);
}

TEST(CustomInstr, StructuralMultiplyMatchesSpec)
{
    Rng rng(0xCAFE);
    for (int i = 0; i < 5000; ++i) {
        uint32_t a = rng.next32();
        uint32_t b = rng.next32();
        EXPECT_EQ(structMul(a, b), a * b);
    }
    EXPECT_EQ(structMul(0, 0xFFFFFFFF), 0u);
    EXPECT_EQ(structMul(0xFFFFFFFF, 0xFFFFFFFF), 1u);
    EXPECT_EQ(structMul(0x10000, 0x10000), 0u); // overflow wraps
}

TEST(CustomInstr, BlockCertifiesLikeBaseOps)
{
    BlockCert cert = certifyBlock(Op::Cmul, 0xC0C0, 250);
    EXPECT_TRUE(cert.functional);
    EXPECT_TRUE(cert.mutationCovered);
    EXPECT_TRUE(cert.formal);
}

TEST(CustomInstr, AdderMutationsPropagateIntoProducts)
{
    Mutation mut{Mutation::Kind::CarryChainBreak, 3};
    auto vecs = blockVectors(Op::Cmul, 0xC0C0, 250);
    EXPECT_FALSE(runBlockTestbench(Op::Cmul, vecs, &mut).passed());
}

TEST(CustomInstr, RisspExecutesCmul)
{
    Program p = assemble(R"(
        li a0, 1234
        li a1, -567
        cmul a2, a0, a1
        ecall
    )");
    std::set<Op> ops = InstrSubset::fromNames(
        {"addi", "lui", "jal"}).ops();
    ops.insert(Op::Cmul);
    Rissp chip(InstrSubset(ops), "cmul-chip");
    chip.reset(p);
    RunResult run = chip.run(100);
    ASSERT_EQ(run.reason, StopReason::Halted);
    EXPECT_EQ(chip.reg(12),
              static_cast<uint32_t>(1234 * -567));

    // A RISSP without the custom block traps on it.
    Rissp plain(InstrSubset::fromNames({"addi", "lui", "jal"}),
                "plain");
    plain.reset(p);
    EXPECT_EQ(plain.run(100).reason, StopReason::Trapped);
}

TEST(CustomInstr, CompilerTargetsCmul)
{
    const char *src =
        "int main(void) { int s = 0;"
        "  for (int i = 1; i <= 20; i++) s += i * s + i * 7;"
        "  return s & 0xFF; }";
    minic::MachineOptions machine;
    machine.customMul = true;
    auto with = minic::compile(src, minic::OptLevel::O2, machine);
    auto without = minic::compile(src, minic::OptLevel::O2);

    InstrSubset with_sub = InstrSubset::fromProgram(with.program);
    EXPECT_TRUE(with_sub.contains(Op::Cmul));
    EXPECT_TRUE(with.helpers.empty()); // no __mulsi3 needed
    EXPECT_TRUE(without.helpers.count("__mulsi3"));

    // Same answer, fewer dynamic instructions.
    RefSim a;
    a.reset(with.program);
    RunResult ra = a.run(10'000'000);
    RefSim b;
    b.reset(without.program);
    RunResult rb = b.run(10'000'000);
    ASSERT_EQ(ra.reason, StopReason::Halted);
    ASSERT_EQ(rb.reason, StopReason::Halted);
    EXPECT_EQ(ra.exitCode, rb.exitCode);
    EXPECT_LT(ra.instret, rb.instret);
}

TEST(CustomInstr, SynthesisPricesTheMultiplier)
{
    SynthesisModel model;
    std::set<Op> base_ops = InstrSubset::fromNames(
        {"addi", "add", "lw", "sw", "jal", "jalr", "beq"}).ops();
    std::set<Op> with_ops = base_ops;
    with_ops.insert(Op::Cmul);
    SynthReport base = model.synthesize(InstrSubset(base_ops), "b");
    SynthReport with = model.synthesize(InstrSubset(with_ops), "w");
    // The multiplier is the most expensive primitive and the
    // deepest path: area up, fmax down.
    EXPECT_GT(with.combGates, base.combGates + 2000.0);
    EXPECT_LT(with.fmaxKhz, base.fmaxKhz);
}

TEST(CustomInstr, CosimWithCmulSubset)
{
    std::set<Op> ops = InstrSubset::fullRv32e().ops();
    ops.insert(Op::Cmul);
    InstrSubset subset{ops};
    Program prog = archTestProgram(Op::Cmul);
    CosimReport rpt = cosimulate(prog, subset, 100'000);
    EXPECT_TRUE(rpt.passed) << rpt.firstDivergence;
}

} // namespace
} // namespace rissp
