/**
 * @file
 * Tests for the persistent artifact tier: the byte codecs
 * (flow/persist.hh), the DiskStore's atomic publish / corruption
 * quarantine / eviction machinery (store/disk_store.hh), and the
 * store-aware StageCaches lookups that stitch the two together.
 *
 * The corruption tests simulate every crash point of the publish
 * protocol by hand — truncated records at several byte boundaries,
 * flipped checksum bits, garbled manifests, stale tmp files — and
 * assert the recovery contract: a bad record is a miss plus a
 * quarantined file, never a crash or a wrong answer, and the next
 * compute republishes a clean record.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "flow/flow.hh"
#include "flow/json.hh"
#include "flow/persist.hh"
#include "store/bytes.hh"
#include "store/disk_store.hh"

namespace rissp
{
namespace
{

namespace fs = std::filesystem;

/** A fresh directory under the system temp root, removed on exit. */
class TempDir
{
  public:
    TempDir()
    {
        std::string tmpl =
            (fs::temp_directory_path() / "rissp-store-XXXXXX")
                .string();
        EXPECT_NE(::mkdtemp(tmpl.data()), nullptr);
        dir = tmpl;
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(dir, ec);
    }

    /** A path under the directory (not created). */
    std::string path(const std::string &name) const
    {
        return (fs::path(dir) / name).string();
    }

    std::string dir;
};

std::vector<uint8_t>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return bytes;
}

void
writeAll(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

std::shared_ptr<store::DiskStore>
openStore(const std::string &dir)
{
    Result<std::shared_ptr<store::DiskStore>> opened =
        store::DiskStore::open(dir);
    EXPECT_TRUE(opened.isOk()) << opened.status().toString();
    return opened.take();
}

// ------------------------------------------------------ byte layer

TEST(StoreBytes, WriterReaderRoundtrip)
{
    store::ByteWriter w;
    w.u8(0xAB);
    w.u32(0xDEADBEEF);
    w.u64(0x0123456789ABCDEFull);
    w.f64(-1234.5678);
    w.str("hello");
    const std::vector<uint8_t> bytes = w.take();

    store::ByteReader r(bytes.data(), bytes.size());
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.f64(), -1234.5678);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
}

TEST(StoreBytes, ReaderIsBoundsCheckedAndSticky)
{
    store::ByteWriter w;
    w.u32(7);
    const std::vector<uint8_t> bytes = w.take();
    store::ByteReader r(bytes.data(), bytes.size());
    EXPECT_EQ(r.u32(), 7u);
    // Past the end: zero values, error latched, never UB.
    EXPECT_EQ(r.u64(), 0u);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.u32(), 0u);
    EXPECT_FALSE(r.ok());
}

TEST(StoreBytes, ChecksumDetectsEveryByteFlip)
{
    const std::vector<uint8_t> data = {1, 2, 3, 4, 5, 6, 7, 8};
    const uint64_t sum = store::checksum64(data.data(), data.size());
    for (size_t i = 0; i < data.size(); ++i) {
        std::vector<uint8_t> flipped = data;
        flipped[i] ^= 0x40;
        EXPECT_NE(store::checksum64(flipped.data(), flipped.size()),
                  sum)
            << "flip at byte " << i;
    }
}

// ---------------------------------------------------- the codecs

minic::CompileResult
sampleCompile()
{
    minic::CompileResult result;
    result.appAsm = "add x1, x2, x3\n";
    result.helpers = {"__mulsi3", "__divsi3"};
    result.program.entry = 0x100;
    result.program.textBase = 0x100;
    result.program.textSize = 8;
    Segment text;
    text.base = 0x100;
    text.bytes = {0x13, 0x00, 0x00, 0x00, 0x93, 0x00, 0x00, 0x00};
    Segment data;
    data.base = 0x2000;
    data.bytes = {1, 2, 3};
    result.program.segments = {text, data};
    result.program.symbols = {{"main", 0x100}, {"_end", 0x2003}};
    return result;
}

TEST(PersistCodec, CompileRoundtripIsExact)
{
    const Result<minic::CompileResult> value = sampleCompile();
    const std::vector<uint8_t> payload =
        flow::persist::encodeCompile(value);
    const std::optional<Result<minic::CompileResult>> back =
        flow::persist::decodeCompile(payload);
    ASSERT_TRUE(back.has_value());
    ASSERT_TRUE(back->isOk());
    const minic::CompileResult &got = back->value();
    EXPECT_EQ(got.appAsm, value.value().appAsm);
    EXPECT_EQ(got.helpers, value.value().helpers);
    EXPECT_EQ(got.program.entry, 0x100u);
    EXPECT_EQ(got.program.textSize, 8u);
    ASSERT_EQ(got.program.segments.size(), 2u);
    EXPECT_EQ(got.program.segments[0].bytes,
              value.value().program.segments[0].bytes);
    EXPECT_EQ(got.program.segments[1].base, 0x2000u);
    EXPECT_EQ(got.program.symbols, value.value().program.symbols);
    // Determinism: encoding the decoded value is byte-identical.
    EXPECT_EQ(flow::persist::encodeCompile(*back), payload);
}

TEST(PersistCodec, CompileErrorResultRoundtrips)
{
    const Result<minic::CompileResult> error = Status::error(
        ErrorCode::CompileError, "line 3: expected ';'");
    const std::vector<uint8_t> payload =
        flow::persist::encodeCompile(error);
    const std::optional<Result<minic::CompileResult>> back =
        flow::persist::decodeCompile(payload);
    ASSERT_TRUE(back.has_value());
    ASSERT_FALSE(back->isOk());
    EXPECT_EQ(back->status().code(), ErrorCode::CompileError);
    EXPECT_EQ(back->status().message(), "line 3: expected ';'");
}

TEST(PersistCodec, SimOutcomeRoundtripsBitExactly)
{
    flow::SimOutcome sim;
    sim.trapped = false;
    sim.cosimPassed = true;
    sim.cycles = 123456789;
    sim.exitCode = 55;
    sim.signature = 0xFEEDFACECAFEBEEFull;
    const std::optional<flow::SimOutcome> back =
        flow::persist::decodeSim(flow::persist::encodeSim(sim));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->trapped, sim.trapped);
    EXPECT_EQ(back->cosimPassed, sim.cosimPassed);
    EXPECT_EQ(back->cycles, sim.cycles);
    EXPECT_EQ(back->exitCode, sim.exitCode);
    EXPECT_EQ(back->signature, sim.signature);
}

TEST(PersistCodec, SynthOutcomeDoublesTravelAsRawBits)
{
    flow::SynthOutcome synth;
    synth.fmaxKhz = 475.0;
    synth.avgAreaGe = 6543.2109876543;
    synth.avgPowerMw = 0.123456789012345;
    synth.epiNj = 1e-17; // denormal-adjacent values must survive
    synth.physRun = true;
    synth.dieAreaMm2 = 35.999999999999996;
    synth.physPowerMw = 7.25;
    const std::optional<flow::SynthOutcome> back =
        flow::persist::decodeSynth(flow::persist::encodeSynth(synth));
    ASSERT_TRUE(back.has_value());
    // Bit equality, not approximate: the result table must be
    // byte-identical when served from the store.
    EXPECT_EQ(back->fmaxKhz, synth.fmaxKhz);
    EXPECT_EQ(back->avgAreaGe, synth.avgAreaGe);
    EXPECT_EQ(back->avgPowerMw, synth.avgPowerMw);
    EXPECT_EQ(back->epiNj, synth.epiNj);
    EXPECT_EQ(back->physRun, synth.physRun);
    EXPECT_EQ(back->dieAreaMm2, synth.dieAreaMm2);
    EXPECT_EQ(back->physPowerMw, synth.physPowerMw);
}

TEST(PersistCodec, SynthReportRoundtripsWithSweep)
{
    SynthReport report;
    report.name = "RISSP-crc32";
    report.subsetSize = 14;
    report.combGates = 1234.5;
    report.ffCount = 321;
    report.baseAreaGe = 2222.25;
    report.criticalPathNs = 104.5;
    report.fmaxKhz = 475;
    report.avgAreaGe = 2500.5;
    report.avgPowerMw = 0.5;
    report.combActivity = 0.25;
    report.ffActivity = 0.125;
    for (int i = 1; i <= 3; ++i) {
        FreqPoint pt;
        pt.targetKhz = 25.0 * i;
        pt.slackNs = 10.0 - i;
        pt.areaGe = 2000.0 + i;
        pt.powerMw = 0.1 * i;
        report.sweep.push_back(pt);
    }
    const Result<SynthReport> value = report;
    const std::optional<Result<SynthReport>> back =
        flow::persist::decodeSynthReport(
            flow::persist::encodeSynthReport(value));
    ASSERT_TRUE(back.has_value());
    ASSERT_TRUE(back->isOk());
    const SynthReport &got = back->value();
    EXPECT_EQ(got.name, report.name);
    EXPECT_EQ(got.subsetSize, report.subsetSize);
    EXPECT_EQ(got.fmaxKhz, report.fmaxKhz);
    ASSERT_EQ(got.sweep.size(), 3u);
    EXPECT_EQ(got.sweep[2].targetKhz, 75.0);
    EXPECT_EQ(got.sweep[2].slackNs, 7.0);
    EXPECT_EQ(got.sweep[2].areaGe, 2003.0);

    const Result<SynthReport> error = Status::error(
        ErrorCode::InvalidArgument, "impossible corner");
    const std::optional<Result<SynthReport>> errBack =
        flow::persist::decodeSynthReport(
            flow::persist::encodeSynthReport(error));
    ASSERT_TRUE(errBack.has_value());
    EXPECT_FALSE(errBack->isOk());
    EXPECT_EQ(errBack->status().code(), ErrorCode::InvalidArgument);
}

TEST(PersistCodec, DecodersRejectMalformedPayloads)
{
    const std::vector<uint8_t> good =
        flow::persist::encodeSim(flow::SimOutcome{});
    // Truncation at every length strictly inside the payload.
    for (size_t n = 0; n < good.size(); ++n) {
        const std::vector<uint8_t> cut(good.begin(),
                                       good.begin() +
                                           static_cast<long>(n));
        EXPECT_FALSE(flow::persist::decodeSim(cut).has_value())
            << "decoded a " << n << "-byte prefix";
    }
    // Trailing garbage is rejected, not ignored.
    std::vector<uint8_t> padded = good;
    padded.push_back(0);
    EXPECT_FALSE(flow::persist::decodeSim(padded).has_value());
    // An unknown payload version means "recompute", not "misread".
    std::vector<uint8_t> versioned = good;
    versioned[0] = 0xFF;
    EXPECT_FALSE(flow::persist::decodeSim(versioned).has_value());

    EXPECT_FALSE(flow::persist::decodeCompile({1, 2, 3}).has_value());
    EXPECT_FALSE(
        flow::persist::decodeSynthReport({0xFF, 0xFF}).has_value());
    EXPECT_FALSE(flow::persist::decodeSynth({}).has_value());
}

// --------------------------------------------------- NullStore

TEST(NullStore, IsAStrictNoOp)
{
    store::NullStore null;
    std::vector<uint8_t> payload;
    EXPECT_FALSE(null.load(store::ArtifactKind::Sim, {1, 2},
                           payload));
    EXPECT_TRUE(null.publish(store::ArtifactKind::Sim, {1, 2},
                             {9, 9, 9}));
    EXPECT_FALSE(null.load(store::ArtifactKind::Sim, {1, 2},
                           payload));
    const store::StoreStats stats = null.stats();
    EXPECT_EQ(stats.hits + stats.misses + stats.writes, 0u);
}

// --------------------------------------------------- DiskStore

TEST(DiskStore, OpenCreatesLayoutAndManifest)
{
    TempDir tmp;
    const std::string dir = tmp.path("store");
    auto diskStore = openStore(dir);
    ASSERT_NE(diskStore, nullptr);
    EXPECT_TRUE(fs::is_directory(dir + "/compile"));
    EXPECT_TRUE(fs::is_directory(dir + "/sim"));
    EXPECT_TRUE(fs::is_directory(dir + "/synth"));
    EXPECT_TRUE(fs::is_directory(dir + "/synthreport"));
    EXPECT_TRUE(fs::is_directory(dir + "/tmp"));
    EXPECT_TRUE(fs::is_directory(dir + "/quarantine"));
    EXPECT_TRUE(fs::is_regular_file(dir + "/MANIFEST"));
    EXPECT_TRUE(
        store::DiskStore::open("").status().code() ==
        ErrorCode::InvalidArgument);
}

TEST(DiskStore, PublishLoadRoundtripAndStats)
{
    TempDir tmp;
    auto diskStore = openStore(tmp.path("store"));
    const store::ArtifactKey key{0x1111222233334444ull,
                                 0x5555666677778888ull};
    const std::vector<uint8_t> payload = {10, 20, 30, 40, 50};

    std::vector<uint8_t> out;
    EXPECT_FALSE(
        diskStore->load(store::ArtifactKind::Synth, key, out));
    EXPECT_TRUE(
        diskStore->publish(store::ArtifactKind::Synth, key, payload));
    EXPECT_TRUE(
        diskStore->load(store::ArtifactKind::Synth, key, out));
    EXPECT_EQ(out, payload);
    // Kinds shard the namespace: the same key under another kind
    // is a different record.
    EXPECT_FALSE(
        diskStore->load(store::ArtifactKind::Sim, key, out));

    const store::StoreStats stats = diskStore->stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.writes, 1u);
    EXPECT_EQ(stats.writeErrors, 0u);
    EXPECT_EQ(stats.bytesWritten, payload.size());
    EXPECT_EQ(stats.bytesRead, payload.size());
    // No publish debris: tmp/ drained, nothing quarantined.
    const store::DiskStore::Usage usage = diskStore->usage();
    EXPECT_EQ(usage.tmpFiles, 0u);
    EXPECT_EQ(usage.quarantineFiles, 0u);
    EXPECT_EQ(usage.records, 1u);
    EXPECT_EQ(
        usage.kinds[static_cast<unsigned>(
                        store::ArtifactKind::Synth)]
            .records,
        1u);
}

TEST(DiskStore, RecordsSurviveReopen)
{
    TempDir tmp;
    const std::string dir = tmp.path("store");
    const store::ArtifactKey key{42, 43};
    const std::vector<uint8_t> payload = {1, 2, 3};
    {
        auto first = openStore(dir);
        EXPECT_TRUE(first->publish(store::ArtifactKind::Compile,
                                   key, payload));
    }
    auto second = openStore(dir);
    std::vector<uint8_t> out;
    EXPECT_TRUE(
        second->load(store::ArtifactKind::Compile, key, out));
    EXPECT_EQ(out, payload);
}

/** Corrupt-record contract, exercised at every truncation length a
 *  crash mid-write could leave (the publish protocol makes these
 *  impossible under a live name, but bit rot and operator error do
 *  not read protocols). */
TEST(DiskStore, TruncatedRecordIsMissPlusQuarantine)
{
    TempDir tmp;
    auto diskStore = openStore(tmp.path("store"));
    const store::ArtifactKey key{7, 9};
    const std::vector<uint8_t> payload = {9, 8, 7, 6, 5, 4, 3, 2, 1};
    ASSERT_TRUE(
        diskStore->publish(store::ArtifactKind::Sim, key, payload));
    const std::string path =
        diskStore->recordPath(store::ArtifactKind::Sim, key);
    const std::vector<uint8_t> intact = readAll(path);

    // A spread of cut points: empty file, inside the magic, inside
    // the header, inside the payload, one byte short of complete.
    const size_t cuts[] = {0, 2, 10, 33, intact.size() / 2,
                           intact.size() - 1};
    uint64_t quarantined = 0;
    for (const size_t cut : cuts) {
        writeAll(path, std::vector<uint8_t>(
                           intact.begin(),
                           intact.begin() + static_cast<long>(cut)));
        std::vector<uint8_t> out;
        EXPECT_FALSE(
            diskStore->load(store::ArtifactKind::Sim, key, out))
            << "served a record truncated to " << cut << " bytes";
        ++quarantined;
        EXPECT_EQ(diskStore->usage().quarantineFiles, quarantined);
        // The bad file was moved aside, so the next load is a plain
        // absent-file miss, and a republish heals the record.
        EXPECT_FALSE(fs::exists(path));
    }
    ASSERT_TRUE(
        diskStore->publish(store::ArtifactKind::Sim, key, payload));
    std::vector<uint8_t> out;
    EXPECT_TRUE(diskStore->load(store::ArtifactKind::Sim, key, out));
    EXPECT_EQ(out, payload);
    EXPECT_EQ(diskStore->stats().quarantined, quarantined);
}

TEST(DiskStore, FlippedBitFailsChecksumAndQuarantines)
{
    TempDir tmp;
    auto diskStore = openStore(tmp.path("store"));
    const store::ArtifactKey key{0xAA, 0xBB};
    const std::vector<uint8_t> payload(256, 0x5A);
    ASSERT_TRUE(diskStore->publish(store::ArtifactKind::SynthReport,
                                   key, payload));
    const std::string path =
        diskStore->recordPath(store::ArtifactKind::SynthReport, key);
    std::vector<uint8_t> bytes = readAll(path);
    bytes[bytes.size() / 2] ^= 0x01; // one bit, mid-payload
    writeAll(path, bytes);

    std::vector<uint8_t> out;
    EXPECT_FALSE(diskStore->load(store::ArtifactKind::SynthReport,
                                 key, out));
    EXPECT_EQ(diskStore->stats().quarantined, 1u);
    EXPECT_EQ(diskStore->usage().quarantineFiles, 1u);
}

TEST(DiskStore, RecordUnderTheWrongNameIsNeverServed)
{
    TempDir tmp;
    auto diskStore = openStore(tmp.path("store"));
    const store::ArtifactKey key{1, 1};
    const store::ArtifactKey other{2, 2};
    const std::vector<uint8_t> payload = {0xCA, 0xFE};
    ASSERT_TRUE(
        diskStore->publish(store::ArtifactKind::Compile, key,
                           payload));
    // Simulate a misplaced record (wrong copy, bad script): the
    // key inside the frame disagrees with the file name.
    fs::copy_file(
        diskStore->recordPath(store::ArtifactKind::Compile, key),
        diskStore->recordPath(store::ArtifactKind::Compile, other));
    std::vector<uint8_t> out;
    EXPECT_FALSE(
        diskStore->load(store::ArtifactKind::Compile, other, out));
    // The original is untouched.
    EXPECT_TRUE(
        diskStore->load(store::ArtifactKind::Compile, key, out));
    EXPECT_EQ(out, payload);
}

TEST(DiskStore, GarbledManifestIsQuarantinedAndRewritten)
{
    TempDir tmp;
    const std::string dir = tmp.path("store");
    const store::ArtifactKey key{5, 6};
    const std::vector<uint8_t> payload = {1, 1, 2, 3, 5, 8};
    {
        auto first = openStore(dir);
        ASSERT_TRUE(first->publish(store::ArtifactKind::Synth, key,
                                   payload));
    }
    writeAll(dir + "/MANIFEST",
             {'b', 'o', 'g', 'u', 's', '\n'});

    auto second = openStore(dir);
    ASSERT_NE(second, nullptr);
    // Manifest restored, bad one kept as evidence, records intact.
    const std::vector<uint8_t> manifest = readAll(dir + "/MANIFEST");
    EXPECT_NE(std::string(manifest.begin(), manifest.end())
                  .find("rissp-artifact-store"),
              std::string::npos);
    EXPECT_EQ(second->usage().quarantineFiles, 1u);
    std::vector<uint8_t> out;
    EXPECT_TRUE(second->load(store::ArtifactKind::Synth, key, out));
    EXPECT_EQ(out, payload);

    // A truncated (empty) manifest recovers the same way.
    writeAll(dir + "/MANIFEST", {});
    auto third = openStore(dir);
    ASSERT_NE(third, nullptr);
    EXPECT_TRUE(third->load(store::ArtifactKind::Synth, key, out));
}

TEST(DiskStore, GcPurgesDebrisAndEvictsBySize)
{
    TempDir tmp;
    auto diskStore = openStore(tmp.path("store"));
    // Publish four 1 KiB records with distinct mtimes (oldest
    // first), plus crash debris: a stale tmp file and a quarantined
    // record.
    for (uint64_t i = 0; i < 4; ++i) {
        const std::vector<uint8_t> payload(1024,
                                           static_cast<uint8_t>(i));
        ASSERT_TRUE(diskStore->publish(store::ArtifactKind::Sim,
                                       {i, 0}, payload));
        const fs::path path =
            diskStore->recordPath(store::ArtifactKind::Sim, {i, 0});
        // Backdate so eviction order is deterministic without
        // sleeping: record i is (4 - i) hours old.
        fs::last_write_time(
            path, fs::file_time_type::clock::now() -
                      std::chrono::hours(4 - i));
    }
    writeAll(diskStore->directory() + "/tmp/123-45.tmp",
             {0xDE, 0xAD});
    writeAll(diskStore->directory() + "/quarantine/old.art.1",
             {0xBE, 0xEF});

    store::DiskStore::GcPolicy policy;
    policy.maxTotalBytes = 2200; // room for two records, not three
    const store::DiskStore::GcReport report = diskStore->gc(policy);
    EXPECT_EQ(report.tmpPurged, 1u);
    EXPECT_EQ(report.quarantinePurged, 1u);
    EXPECT_EQ(report.scannedRecords, 4u);
    EXPECT_EQ(report.evictedRecords, 2u);
    EXPECT_EQ(report.remainingRecords, 2u);
    EXPECT_LE(report.remainingBytes, policy.maxTotalBytes);
    EXPECT_EQ(diskStore->stats().evictions, 2u);

    // Oldest evicted, newest kept.
    std::vector<uint8_t> out;
    EXPECT_FALSE(
        diskStore->load(store::ArtifactKind::Sim, {0, 0}, out));
    EXPECT_FALSE(
        diskStore->load(store::ArtifactKind::Sim, {1, 0}, out));
    EXPECT_TRUE(
        diskStore->load(store::ArtifactKind::Sim, {2, 0}, out));
    EXPECT_TRUE(
        diskStore->load(store::ArtifactKind::Sim, {3, 0}, out));
}

TEST(DiskStore, GcEvictsByAge)
{
    TempDir tmp;
    auto diskStore = openStore(tmp.path("store"));
    ASSERT_TRUE(diskStore->publish(store::ArtifactKind::Compile,
                                   {1, 0}, {1}));
    ASSERT_TRUE(diskStore->publish(store::ArtifactKind::Compile,
                                   {2, 0}, {2}));
    fs::last_write_time(
        diskStore->recordPath(store::ArtifactKind::Compile, {1, 0}),
        fs::file_time_type::clock::now() - std::chrono::hours(48));

    store::DiskStore::GcPolicy policy;
    policy.maxAgeSeconds = 24 * 3600;
    const store::DiskStore::GcReport report = diskStore->gc(policy);
    EXPECT_EQ(report.evictedRecords, 1u);
    EXPECT_EQ(report.remainingRecords, 1u);
    std::vector<uint8_t> out;
    EXPECT_FALSE(
        diskStore->load(store::ArtifactKind::Compile, {1, 0}, out));
    EXPECT_TRUE(
        diskStore->load(store::ArtifactKind::Compile, {2, 0}, out));
}

TEST(DiskStore, AutoGcBoundsTheDirectory)
{
    TempDir tmp;
    store::DiskStore::Options options;
    options.autoGcBytes = 4096;
    Result<std::shared_ptr<store::DiskStore>> opened =
        store::DiskStore::open(tmp.path("store"), options);
    ASSERT_TRUE(opened.isOk());
    auto diskStore = opened.take();
    // Publish far past the budget; the publish path must collect.
    for (uint64_t i = 0; i < 16; ++i)
        ASSERT_TRUE(diskStore->publish(store::ArtifactKind::Sim,
                                       {i, i}, std::vector<uint8_t>(
                                                   1024, 0x11)));
    EXPECT_GT(diskStore->stats().evictions, 0u);
    EXPECT_LE(diskStore->usage().bytes, options.autoGcBytes);
}

TEST(DiskStore, ConcurrentPublishersAndLoadersAreSafe)
{
    // The TSan target for the store: many threads hammering
    // overlapping keys with publishes, loads and a gc.
    TempDir tmp;
    auto diskStore = openStore(tmp.path("store"));
    constexpr int kThreads = 8;
    constexpr uint64_t kKeys = 16;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&diskStore, t] {
            std::vector<uint8_t> out;
            for (uint64_t i = 0; i < 64; ++i) {
                const store::ArtifactKey key{i % kKeys, 7};
                const std::vector<uint8_t> payload(
                    64, static_cast<uint8_t>(key.a));
                if ((i + static_cast<uint64_t>(t)) % 3 == 0) {
                    diskStore->publish(store::ArtifactKind::Synth,
                                       key, payload);
                } else if (diskStore->load(
                               store::ArtifactKind::Synth, key,
                               out)) {
                    // Content-addressed: a hit always carries the
                    // one true payload for that key.
                    EXPECT_EQ(out, payload);
                }
            }
        });
    }
    store::DiskStore::GcPolicy policy;
    policy.maxTotalBytes = 2048;
    diskStore->gc(policy);
    for (std::thread &worker : workers)
        worker.join();
    const store::StoreStats stats = diskStore->stats();
    EXPECT_GT(stats.writes, 0u);
    EXPECT_EQ(stats.quarantined, 0u);
}

// --------------------------------- StageCaches over the store

TEST(StageCachesStore, LookupWithoutStoreComputesOnce)
{
    flow::StageCaches caches; // artifacts == nullptr
    int computes = 0;
    bool hit = true;
    const flow::SimOutcome first = caches.simLookup(
        {1, 2},
        [&] {
            ++computes;
            flow::SimOutcome sim;
            sim.cycles = 99;
            return sim;
        },
        &hit);
    EXPECT_FALSE(hit);
    const flow::SimOutcome second = caches.simLookup(
        {1, 2},
        [&] {
            ++computes;
            return flow::SimOutcome{};
        },
        &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(computes, 1);
    EXPECT_EQ(first.cycles, 99u);
    EXPECT_EQ(second.cycles, 99u);
}

TEST(StageCachesStore, SecondProcessLoadsInsteadOfComputing)
{
    TempDir tmp;
    const std::string dir = tmp.path("store");
    const explore::FingerprintPair key{11, 22};

    // "First process": computes and publishes.
    {
        flow::StageCaches caches;
        caches.artifacts = openStore(dir);
        const flow::SynthOutcome out = caches.synthLookup(key, [] {
            flow::SynthOutcome synth;
            synth.fmaxKhz = 475;
            synth.avgAreaGe = 2500.125;
            return synth;
        });
        EXPECT_EQ(out.fmaxKhz, 475.0);
    }

    // "Second process": fresh memo caches, same directory. The
    // compute lambda must never run.
    flow::StageCaches caches;
    auto diskStore = openStore(dir);
    caches.artifacts = diskStore;
    bool hit = true;
    const flow::SynthOutcome out = caches.synthLookup(
        key,
        []() -> flow::SynthOutcome {
            ADD_FAILURE() << "computed despite a warm store";
            return {};
        },
        &hit);
    EXPECT_FALSE(hit); // a memo miss served by the store tier
    EXPECT_EQ(out.fmaxKhz, 475.0);
    EXPECT_EQ(out.avgAreaGe, 2500.125);
    EXPECT_EQ(diskStore->stats().hits, 1u);

    // Third lookup in the same process: pure memo hit, no disk.
    caches.synthLookup(
        key,
        []() -> flow::SynthOutcome {
            ADD_FAILURE() << "computed despite a warm memo";
            return {};
        },
        &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(diskStore->stats().hits, 1u);
}

TEST(StageCachesStore, CorruptRecordRecomputesAndRepublishes)
{
    TempDir tmp;
    const std::string dir = tmp.path("store");
    const uint64_t key = 777;
    {
        flow::StageCaches caches;
        caches.artifacts = openStore(dir);
        caches.compileLookup(key, [] {
            return Result<minic::CompileResult>(sampleCompile());
        });
    }
    // Garble the record on disk.
    auto diskStore = openStore(dir);
    const std::string path = diskStore->recordPath(
        store::ArtifactKind::Compile, {key, 0});
    std::vector<uint8_t> bytes = readAll(path);
    bytes[bytes.size() - 3] ^= 0xFF;
    writeAll(path, bytes);

    flow::StageCaches caches;
    caches.artifacts = diskStore;
    int computes = 0;
    const Result<minic::CompileResult> result =
        caches.compileLookup(key, [&] {
            ++computes;
            return Result<minic::CompileResult>(sampleCompile());
        });
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(computes, 1); // the store miss fell through
    EXPECT_EQ(diskStore->stats().quarantined, 1u);
    EXPECT_EQ(diskStore->stats().writes, 1u); // republished

    // The healed record serves the next fresh cache set.
    flow::StageCaches healed;
    healed.artifacts = diskStore;
    const Result<minic::CompileResult> again = healed.compileLookup(
        key, []() -> Result<minic::CompileResult> {
            ADD_FAILURE() << "computed despite a healed record";
            return Status::error(ErrorCode::Internal, "unreachable");
        });
    ASSERT_TRUE(again.isOk());
    EXPECT_EQ(again.value().appAsm, sampleCompile().appAsm);
}

TEST(StageCachesStore, ErrorResultsPersistAsValues)
{
    TempDir tmp;
    const std::string dir = tmp.path("store");
    const uint64_t key = 31337;
    {
        flow::StageCaches caches;
        caches.artifacts = openStore(dir);
        caches.compileLookup(
            key, []() -> Result<minic::CompileResult> {
                return Status::error(ErrorCode::CompileError,
                                     "line 1: no");
            });
    }
    flow::StageCaches caches;
    caches.artifacts = openStore(dir);
    const Result<minic::CompileResult> result = caches.compileLookup(
        key, []() -> Result<minic::CompileResult> {
            ADD_FAILURE() << "recompiled a persisted diagnosis";
            return Status::error(ErrorCode::Internal, "unreachable");
        });
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::CompileError);
    EXPECT_EQ(result.status().message(), "line 1: no");
}

// ------------------------------------- end-to-end through the flow

TEST(FlowServiceStore, WarmBootServesByteIdenticalTables)
{
    TempDir tmp;
    flow::ExploreRequest request;
    request.planText = "mode cartesian\n"
                       "workload crc32\n"
                       "subset fit  = @crc32\n"
                       "subset full = @full\n";
    request.options.threads = 2;

    flow::ServiceOptions cold;
    cold.cacheDir = tmp.path("store");
    std::string coldJson;
    {
        const flow::FlowService service(cold);
        const flow::ExploreResponse response =
            service.explore(request);
        ASSERT_TRUE(response.status.isOk());
        coldJson = toJson(response);
        ASSERT_TRUE(service.caches()->artifacts != nullptr);
        EXPECT_GT(service.caches()->artifacts->stats().writes, 0u);
    }

    // Warm boot: a new service over the same directory must produce
    // the byte-identical response without recomputing.
    const flow::FlowService warmService(cold);
    const flow::ExploreResponse warm = warmService.explore(request);
    ASSERT_TRUE(warm.status.isOk());
    EXPECT_EQ(toJson(warm), coldJson);
    const store::StoreStats stats =
        warmService.caches()->artifacts->stats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_EQ(stats.writes, 0u) << "warm boot recomputed something";
}

TEST(FlowServiceStore, CorruptionHealsThroughTheFullStack)
{
    TempDir tmp;
    const std::string dir = tmp.path("store");
    flow::ExploreRequest request;
    request.planText = "workload crc32\nsubset fit = @crc32\n";

    flow::ServiceOptions options;
    options.cacheDir = dir;
    std::string coldJson;
    {
        const flow::FlowService service(options);
        const flow::ExploreResponse response =
            service.explore(request);
        ASSERT_TRUE(response.status.isOk());
        coldJson = toJson(response);
    }

    // Torn-write simulation: truncate every record to half size.
    auto diskStore = openStore(dir);
    const store::DiskStore::Usage before = diskStore->usage();
    ASSERT_GT(before.records, 0u);
    for (const char *kind :
         {"compile", "sim", "synth", "synthreport"}) {
        std::error_code ec;
        for (const fs::directory_entry &entry :
             fs::directory_iterator(dir + "/" + kind, ec)) {
            const std::vector<uint8_t> bytes =
                readAll(entry.path().string());
            writeAll(entry.path().string(),
                     std::vector<uint8_t>(
                         bytes.begin(),
                         bytes.begin() +
                             static_cast<long>(bytes.size() / 2)));
        }
    }
    diskStore.reset();

    // The next boot recomputes through the corruption and emits the
    // byte-identical response; the bad records are quarantined.
    const flow::FlowService service(options);
    const flow::ExploreResponse response = service.explore(request);
    ASSERT_TRUE(response.status.isOk());
    EXPECT_EQ(toJson(response), coldJson);
    const store::StoreStats stats =
        service.caches()->artifacts->stats();
    EXPECT_GT(stats.quarantined, 0u);
    EXPECT_GT(stats.writes, 0u); // healed records republished

    // And the boot after that is clean and warm again.
    const flow::FlowService healedService(options);
    const flow::ExploreResponse healed =
        healedService.explore(request);
    EXPECT_EQ(toJson(healed), coldJson);
    EXPECT_EQ(healedService.caches()->artifacts->stats().writes, 0u);
}

TEST(FlowServiceStore, ExplicitStoreWinsOverCacheDir)
{
    TempDir tmp;
    auto nullStore = std::make_shared<store::NullStore>();
    flow::ServiceOptions options;
    options.cacheDir = tmp.path("ignored");
    options.artifacts = nullStore;
    const flow::FlowService service(options);
    EXPECT_EQ(service.caches()->artifacts.get(), nullStore.get());
    EXPECT_FALSE(fs::exists(tmp.path("ignored")));
}

TEST(FlowServiceStore, UnusableCacheDirDegradesToMemoryOnly)
{
    TempDir tmp;
    // A file where the store directory should be: open fails, the
    // service must warn and keep working without persistence.
    const std::string clash = tmp.path("clash");
    writeAll(clash, {1});
    flow::ServiceOptions options;
    options.cacheDir = clash;
    const flow::FlowService service(options);
    EXPECT_EQ(service.caches()->artifacts, nullptr);

    flow::CharacterizeRequest request;
    request.source = flow::SourceRef::bundled("crc32");
    EXPECT_TRUE(service.characterize(request).status.isOk());
}

} // namespace
} // namespace rissp
