// Good: hot-path execution routed through a handler table instead
// of an ad-hoc per-instruction decode switch. Switching on other
// quantities (access width here) is fine.

enum class Op { Add, Sub, Invalid };

struct Instr
{
    Op op = Op::Invalid;
    unsigned rs1 = 0;
    unsigned rs2 = 0;
};

using Handler = unsigned (*)(const Instr &, const unsigned *);

unsigned
execAdd(const Instr &in, const unsigned *regs)
{
    return regs[in.rs1] + regs[in.rs2];
}

unsigned
execSub(const Instr &in, const unsigned *regs)
{
    return regs[in.rs1] - regs[in.rs2];
}

unsigned
execute(const Instr &in, const unsigned *regs)
{
    static const Handler handlers[] = {execAdd, execSub};
    const unsigned tok = static_cast<unsigned>(in.op);
    if (tok >= sizeof(handlers) / sizeof(handlers[0]))
        return 0;
    return handlers[tok](in, regs);
}

unsigned
maskForWidth(unsigned bytes)
{
    switch (bytes) {
      case 1:
        return 0xFFu;
      case 2:
        return 0xFFFFu;
      default:
        return ~0u;
    }
}
