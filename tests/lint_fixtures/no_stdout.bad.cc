// Fixture: library code writing to stdout — both the stream and the
// stdio call are no-stdout findings.
#include <cstdio>
#include <iostream>

namespace rissp
{

void
report(int n)
{
    std::cout << "n = " << n << "\n"; // finding: std::cout
    std::printf("n = %d\n", n);       // finding: printf()
}

} // namespace rissp
