// Fixture: a header with no guard at all — double inclusion is a
// compile error waiting for its second include. One include-guard
// finding.

#include <cstdint>

namespace rissp
{

inline uint32_t
answer()
{
    return 42;
}

} // namespace rissp
