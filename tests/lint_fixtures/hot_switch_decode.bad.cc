// Bad: a fresh per-instruction decode switch in a simulator hot
// path. Dispatch belongs to the shared interpreter core
// (sim/exec_core.inc); ad-hoc switches fork the semantics.

enum class Op { Add, Sub, Invalid };

struct Instr
{
    Op op = Op::Invalid;
    unsigned rs1 = 0;
    unsigned rs2 = 0;
};

unsigned
execute(const Instr &in, const unsigned *regs)
{
    switch (in.op) {
      case Op::Add:
        return regs[in.rs1] + regs[in.rs2];
      case Op::Sub:
        return regs[in.rs1] - regs[in.rs2];
      default:
        return 0;
    }
}
