// Good: serving-layer code that never touches a socket. The handler
// runs on the reactor thread over a fully framed request, work is
// dispatched to the scheduler, and the finished bytes are handed
// back through the completion callback — the reactor performs every
// recv/send/accept on the application's behalf.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

namespace rissp
{

using ConnToken = uint64_t;
using Completion =
    std::function<void(ConnToken, std::string, bool)>;

struct RoutedRequest
{
    std::string target;
    std::string body;
    bool keepAlive = false;
};

/** Decide a response without ever seeing the fd: framing and
 *  delivery stay inside the reactor. */
std::string
routeInline(const RoutedRequest &request)
{
    if (request.target == "/healthz")
        return "{\"status\": \"ok\"}\n";
    return "{\"status\": \"not_found\"}\n";
}

/** Hand a finished response back through the completion hook; the
 *  reactor queues the bytes and drives the socket when writable. */
void
finishRequest(const Completion &complete, ConnToken token,
              const RoutedRequest &request)
{
    complete(token, routeInline(request), request.keepAlive);
}

} // namespace rissp
