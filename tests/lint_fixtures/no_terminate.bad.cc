// Fixture: library code that terminates the process on user input —
// each call below is a no-terminate finding.
#include <cstdlib>

#include "util/logging.hh"

namespace rissp
{

void
loadPlan(int n)
{
    if (n < 0)
        fatal("bad plan line %d", n); // finding: fatal()
    if (n == 0)
        std::abort(); // finding: abort()
    if (n > 99)
        exit(1); // finding: exit()
}

} // namespace rissp
