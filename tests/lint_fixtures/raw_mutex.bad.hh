// Fixture: a raw std::mutex member (plus a raw condition variable)
// in library code — invisible to -Wthread-safety, so the raw-mutex
// check flags both.
#ifndef RISSP_TESTS_LINT_FIXTURES_RAW_MUTEX_BAD_HH
#define RISSP_TESTS_LINT_FIXTURES_RAW_MUTEX_BAD_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace rissp
{

class Counter
{
  public:
    void bump()
    {
        std::lock_guard<std::mutex> lock(mu); // finding: raw mutex
        ++value;
    }

  private:
    mutable std::mutex mu;       // finding: raw mutex member
    std::condition_variable cv;  // finding: raw condvar member
    uint64_t value = 0;
};

} // namespace rissp

#endif // RISSP_TESTS_LINT_FIXTURES_RAW_MUTEX_BAD_HH
