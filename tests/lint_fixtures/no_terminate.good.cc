// Fixture: library code reporting errors as values — clean under
// the no-terminate check. panic() is sanctioned (internal invariant,
// documented trusted-input path).
#include "util/logging.hh"
#include "util/status.hh"

namespace rissp
{

Status
parseCount(int n)
{
    if (n < 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "count must be >= 0");
    if (n > 1 << 20)
        panic("parseCount: validated bound %d escaped", n);
    return Status::ok();
}

// Words like exit or abort in comments (or in "exit strings") must
// not trip the token-level check; nor may identifiers that merely
// contain them:
int exitCode = 0;
void aborted();

} // namespace rissp
