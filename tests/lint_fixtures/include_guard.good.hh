// Fixture: a header with a matched #ifndef/#define guard (the repo
// idiom) — clean under the include-guard check. A license banner
// before the guard is fine; comments are scrubbed first.
#ifndef RISSP_TESTS_LINT_FIXTURES_INCLUDE_GUARD_GOOD_HH
#define RISSP_TESTS_LINT_FIXTURES_INCLUDE_GUARD_GOOD_HH

namespace rissp
{

int answer();

} // namespace rissp

#endif // RISSP_TESTS_LINT_FIXTURES_INCLUDE_GUARD_GOOD_HH
