// Fixture: the sanctioned alternatives to every banned call — clean
// under the banned-call check. Mentions of strcpy or rand in
// comments and strings are invisible to the token scan, as are
// identifiers that merely contain a banned name (strandify).
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>

#include "util/strings.hh"

namespace rissp
{

int strandify(int x); // 'rand' inside an identifier is not a call

std::string
timestamp(std::time_t t)
{
    std::tm parts{};
    gmtime_r(&t, &parts); // the _r variant, not gmtime()
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%d", &parts);
    return buf; // "use strcpy" — only as words in a string
}

std::string
copyName(const std::string &name)
{
    return name; // std::string instead of strcpy/strcat
}

std::string
lastError(int err)
{
    return errnoString(err); // not strerror()
}

} // namespace rissp
