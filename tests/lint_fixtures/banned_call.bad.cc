// Fixture: non-reentrant and UB-prone calls — every line marked
// below is a banned-call finding.
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace rissp
{

void
sketchy(char *dst, const char *src, std::time_t t)
{
    strcpy(dst, src);              // finding: unbounded copy
    std::tm *parts = gmtime(&t);   // finding: static buffer
    (void)parts;
    int jitter = rand();           // finding: hidden shared state
    (void)jitter;
    const char *msg = strerror(0); // finding: static buffer
    (void)msg;
}

} // namespace rissp
