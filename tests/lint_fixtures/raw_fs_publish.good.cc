// Good: library code that persists artifacts through the store
// interface and keeps its own file IO read-only. Reading with
// std::ifstream is fine — raw-fs-publish only bans the write side
// (rename / std::ofstream) outside src/store/.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace rissp
{

struct ArtifactSink
{
    virtual ~ArtifactSink() = default;
    virtual bool publish(const std::string &name,
                         const std::vector<unsigned char> &bytes) = 0;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

bool
persistReport(ArtifactSink &sink, const std::string &name,
              const std::vector<unsigned char> &bytes)
{
    // All bytes that must survive a crash go through the sink; the
    // store behind it owns the write-fsync-rename dance.
    return sink.publish(name, bytes);
}

} // namespace rissp
