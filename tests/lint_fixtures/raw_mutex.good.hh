// Fixture: the annotated-mutex idiom — a rissp::Mutex capability
// with RISSP_GUARDED_BY members passes the raw-mutex check.
#ifndef RISSP_TESTS_LINT_FIXTURES_RAW_MUTEX_GOOD_HH
#define RISSP_TESTS_LINT_FIXTURES_RAW_MUTEX_GOOD_HH

#include <cstdint>

#include "util/mutex.hh"

namespace rissp
{

class Counter
{
  public:
    void bump()
    {
        LockGuard lock(mu);
        ++value;
    }

    uint64_t read() const
    {
        LockGuard lock(mu);
        return value;
    }

  private:
    mutable Mutex mu;
    uint64_t value RISSP_GUARDED_BY(mu) = 0;
};

} // namespace rissp

#endif // RISSP_TESTS_LINT_FIXTURES_RAW_MUTEX_GOOD_HH
