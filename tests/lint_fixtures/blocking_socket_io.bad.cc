// Bad: serving-layer code calling recv/send/accept directly. Each
// call either blocks the reactor's single event loop (one stalled
// peer freezes every other connection) or races the reactor for a
// fd it believes it owns exclusively. Connection bytes must flow
// through the reactor's readiness loop and Reactor::complete().

#include <string>
#include <sys/socket.h>

namespace rissp
{

int
takeNextClient(int listen_fd)
{
    // Blocks the calling thread until a client shows up.
    return ::accept(listen_fd, nullptr, nullptr);
}

std::string
readRequest(int fd)
{
    char chunk[4096];
    std::string bytes;
    // Blocking read loop: a slow-loris peer parks this thread
    // indefinitely.
    for (;;) {
        const long n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0)
            break;
        bytes.append(chunk, static_cast<unsigned long>(n));
        if (bytes.find("\r\n\r\n") != std::string::npos)
            break;
    }
    return bytes;
}

bool
writeResponse(int fd, const std::string &bytes)
{
    unsigned long sent = 0;
    while (sent < bytes.size()) {
        const long n = ::send(fd, bytes.data() + sent,
                              bytes.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<unsigned long>(n);
    }
    return true;
}

} // namespace rissp
