// Fixture: library code that reports through values and stderr —
// clean under the no-stdout check (fprintf to stderr and snprintf
// are fine; the word printf inside strings or comments is invisible).
#include <cstdio>
#include <string>

namespace rissp
{

std::string
describe(int n)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "n=%d", n);
    if (n < 0)
        std::fprintf(stderr, "warn: negative (%s)\n", buf);
    return std::string(buf) + " via printf-style formatting";
}

} // namespace rissp
