// Bad: library code writing and renaming files directly. A crash
// between the write and the rename leaves a torn file with no
// checksum and no quarantine path — exactly what the artifact
// store's publish protocol exists to prevent.

#include <cstdio>
#include <fstream>
#include <string>

namespace rissp
{

bool
saveReport(const std::string &path, const std::string &text)
{
    std::ofstream out(path + ".tmp", std::ios::binary);
    out << text;
    out.close();
    return std::rename((path + ".tmp").c_str(), path.c_str()) == 0;
}

} // namespace rissp
