/**
 * @file
 * Unit tests for the two-pass assembler: directives, pseudo expansion,
 * macro shadowing (the retargeting substrate) and error reporting.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "assembler/runtime.hh"
#include "isa/instr.hh"
#include "sim/refsim.hh"
#include "util/logging.hh"

namespace rissp
{
namespace
{

Program
mustAssemble(const std::string &src)
{
    AsmResult r = tryAssemble(src);
    EXPECT_TRUE(r.ok) << r.error;
    return std::move(r.program);
}

TEST(Assembler, BasicInstructions)
{
    Program p = mustAssemble(R"(
        .text
        add a0, a1, a2
        addi sp, sp, -16
        lw a0, 8(sp)
        sw a0, 12(sp)
        lui sp, 0x80
        ecall
    )");
    auto words = p.textWords();
    ASSERT_EQ(words.size(), 6u);
    EXPECT_EQ(disassemble(words[0]), "add a0, a1, a2");
    EXPECT_EQ(disassemble(words[1]), "addi sp, sp, -16");
    EXPECT_EQ(disassemble(words[2]), "lw a0, 8(sp)");
    EXPECT_EQ(disassemble(words[3]), "sw a0, 12(sp)");
    EXPECT_EQ(disassemble(words[4]), "lui sp, 0x80");
    EXPECT_EQ(disassemble(words[5]), "ecall");
}

TEST(Assembler, LabelsAndBranches)
{
    Program p = mustAssemble(R"(
    loop:
        addi a0, a0, -1
        bne a0, zero, loop
        beq a0, zero, done
        nop
    done:
        ecall
    )");
    auto words = p.textWords();
    Instr b1 = decode(words[1]);
    EXPECT_EQ(b1.op, Op::Bne);
    EXPECT_EQ(b1.imm, -4);
    Instr b2 = decode(words[2]);
    EXPECT_EQ(b2.op, Op::Beq);
    EXPECT_EQ(b2.imm, 8);
}

TEST(Assembler, PseudoInstructions)
{
    Program p = mustAssemble(R"(
        nop
        mv a1, a0
        not a2, a0
        neg a3, a0
        seqz a4, a0
        snez a5, a0
        j end
        ret
    end:
        ecall
    )");
    auto words = p.textWords();
    EXPECT_EQ(disassemble(words[0]), "addi zero, zero, 0");
    EXPECT_EQ(disassemble(words[1]), "addi a1, a0, 0");
    EXPECT_EQ(disassemble(words[2]), "xori a2, a0, -1");
    EXPECT_EQ(disassemble(words[3]), "sub a3, zero, a0");
    EXPECT_EQ(disassemble(words[4]), "sltiu a4, a0, 1");
    EXPECT_EQ(disassemble(words[5]), "sltu a5, zero, a0");
    EXPECT_EQ(decode(words[6]).op, Op::Jal);
    EXPECT_EQ(decode(words[6]).rd, 0);
    EXPECT_EQ(disassemble(words[7]), "jalr zero, 0(ra)");
}

TEST(Assembler, LiSmallAndLarge)
{
    Program p = mustAssemble(R"(
        li a0, 42
        li a1, -1
        li a2, 0x12345678
        li a3, 0x1000
        ecall
    )");
    auto words = p.textWords();
    // small: one addi; large: lui+addi; 0x1000: lui only
    EXPECT_EQ(disassemble(words[0]), "addi a0, zero, 42");
    EXPECT_EQ(disassemble(words[1]), "addi a1, zero, -1");
    EXPECT_EQ(decode(words[2]).op, Op::Lui);
    EXPECT_EQ(decode(words[3]).op, Op::Addi);
    EXPECT_EQ(decode(words[4]).op, Op::Lui);
    EXPECT_EQ(decode(words[5]).op, Op::Ecall);

    // Semantics: run it and check registers.
    RefSim sim;
    sim.reset(p);
    sim.run();
    EXPECT_EQ(sim.reg(10), 42u);
    EXPECT_EQ(sim.reg(11), 0xFFFFFFFFu);
    EXPECT_EQ(sim.reg(12), 0x12345678u);
    EXPECT_EQ(sim.reg(13), 0x1000u);
}

TEST(Assembler, DataDirectivesAndLa)
{
    Program p = mustAssemble(R"(
        .data
    table:
        .word 1, 2, 3, 0xdeadbeef
    msg:
        .asciz "hi"
        .align 2
    after:
        .word table
        .text
    _start:
        la a0, table
        lw a1, 4(a0)
        ecall
    )");
    RefSim sim;
    sim.reset(p);
    sim.run();
    EXPECT_EQ(sim.reg(10), p.symbol("table"));
    EXPECT_EQ(sim.reg(11), 2u);
    // .word table holds the table's address
    EXPECT_EQ(sim.memory().loadWord(p.symbol("after")),
              p.symbol("table"));
    // string bytes
    EXPECT_EQ(sim.memory().loadByte(p.symbol("msg")), 'h');
    EXPECT_EQ(sim.memory().loadByte(p.symbol("msg") + 1), 'i');
    EXPECT_EQ(sim.memory().loadByte(p.symbol("msg") + 2), 0);
    // alignment
    EXPECT_EQ(p.symbol("after") % 4, 0u);
}

TEST(Assembler, EquatesAndExpressions)
{
    Program p = mustAssemble(R"(
        .equ SIZE, 12
        addi a0, zero, SIZE
        .data
    buf:
        .space SIZE
    tail:
        .word buf+4
        .text
        ecall
    )");
    EXPECT_EQ(p.symbol("tail"), p.symbol("buf") + 12);
    RefSim sim;
    sim.reset(p);
    sim.run();
    EXPECT_EQ(sim.reg(10), 12u);
    EXPECT_EQ(sim.memory().loadWord(p.symbol("tail")),
              p.symbol("buf") + 4);
}

TEST(Assembler, MacroExpansion)
{
    Program p = mustAssemble(R"(
        .macro inc2 rd
        addi \rd, \rd, 1
        addi \rd, \rd, 1
        .endm
        li a0, 5
        inc2 a0
        inc2 a0
        ecall
    )");
    RefSim sim;
    sim.reset(p);
    sim.run();
    EXPECT_EQ(sim.reg(10), 9u);
}

/** The retargeting substrate: macros shadow machine mnemonics. */
TEST(Assembler, MacroShadowsInstruction)
{
    Program p = mustAssemble(R"(
        .macro sub rd, rs1, rs2
        xori a5, \rs2, -1
        addi a5, a5, 1
        add \rd, \rs1, a5
        .endm
        li a0, 30
        li a1, 12
        sub a2, a0, a1
        ecall
    )");
    // No real sub instruction in the image.
    for (uint32_t w : p.textWords())
        EXPECT_NE(decode(w).op, Op::Sub);
    RefSim sim;
    sim.reset(p);
    sim.run();
    EXPECT_EQ(sim.reg(12), 18u);
}

TEST(Assembler, MacroShadowAppliesToPseudo)
{
    // 'neg' expands to sub, which the macro then intercepts.
    Program p = mustAssemble(R"(
        .macro sub rd, rs1, rs2
        xori a5, \rs2, -1
        addi a5, a5, 1
        add \rd, \rs1, a5
        .endm
        li a0, 7
        neg a1, a0
        ecall
    )");
    for (uint32_t w : p.textWords())
        EXPECT_NE(decode(w).op, Op::Sub);
    RefSim sim;
    sim.reset(p);
    sim.run();
    EXPECT_EQ(sim.reg(11), static_cast<uint32_t>(-7));
}

TEST(Assembler, Errors)
{
    EXPECT_FALSE(tryAssemble("bogus a0, a1"));
    EXPECT_FALSE(tryAssemble("add a0, a1"));
    EXPECT_FALSE(tryAssemble("addi a0, a1, 5000"));
    EXPECT_FALSE(tryAssemble("lw a0, 8(t9)"));
    EXPECT_FALSE(tryAssemble("j nowhere"));
    EXPECT_FALSE(tryAssemble("x: nop\nx: nop"));
    EXPECT_FALSE(tryAssemble(".macro m\nnop"));
    EXPECT_FALSE(tryAssemble(".word sym_undefined"));
    AsmResult r = tryAssemble("nop\nbogus a0\n");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("line 2"), std::string::npos) << r.error;
}

TEST(Assembler, ModulesShareSymbols)
{
    Program p = assembleModules({
        "_start:\n call helper\n ecall\n",
        "helper:\n li a0, 99\n ret\n",
    });
    RefSim sim;
    sim.reset(p);
    RunResult rr = sim.run();
    EXPECT_EQ(rr.reason, StopReason::Halted);
    EXPECT_EQ(rr.exitCode, 99u);
}

TEST(Runtime, Crt0SetsUpAndHalts)
{
    Program p = assembleModules({
        crt0Source(),
        "main:\n li a0, 17\n ret\n",
    });
    RefSim sim;
    sim.reset(p);
    RunResult rr = sim.run();
    EXPECT_EQ(rr.reason, StopReason::Halted);
    EXPECT_EQ(rr.exitCode, 17u);
    EXPECT_EQ(sim.reg(2), kStackTop);
}

TEST(Runtime, MulHelper)
{
    struct Case { int32_t a, b; };
    const Case cases[] = {
        {0, 0}, {1, 1}, {7, 9}, {-3, 5}, {-3, -5},
        {123456, 789}, {-1, -1}, {0x7FFFFFFF, 2},
    };
    for (const Case &c : cases) {
        Program p = assembleModules({
            crt0Source(), mulsi3Source(),
            strFormat("main:\n addi sp, sp, -4\n sw ra, 0(sp)\n"
                      " li a0, %d\n li a1, %d\n call __mulsi3\n"
                      " lw ra, 0(sp)\n addi sp, sp, 4\n ret\n",
                      c.a, c.b),
        });
        RefSim sim;
        sim.reset(p);
        RunResult rr = sim.run();
        ASSERT_EQ(rr.reason, StopReason::Halted);
        EXPECT_EQ(rr.exitCode,
                  static_cast<uint32_t>(c.a) *
                  static_cast<uint32_t>(c.b))
            << c.a << " * " << c.b;
    }
}

struct DivCase
{
    int32_t a, b;
};

class RuntimeDivTest : public ::testing::TestWithParam<DivCase>
{
};

TEST_P(RuntimeDivTest, AllFourHelpers)
{
    const DivCase c = GetParam();
    struct Helper
    {
        const char *name;
        uint32_t expected;
    };
    const uint32_t ua = static_cast<uint32_t>(c.a);
    const uint32_t ub = static_cast<uint32_t>(c.b);
    const Helper helpers[] = {
        {"__udivsi3", ub ? ua / ub : 0},
        {"__umodsi3", ub ? ua % ub : 0},
        {"__divsi3", static_cast<uint32_t>(c.b ? c.a / c.b : 0)},
        {"__modsi3", static_cast<uint32_t>(c.b ? c.a % c.b : 0)},
    };
    for (const Helper &h : helpers) {
        if (c.b == 0)
            continue; // helpers are undefined on zero divisors
        Program p = assembleModules({
            crt0Source(), runtimeModule(h.name),
            strFormat("main:\n addi sp, sp, -4\n sw ra, 0(sp)\n"
                      " li a0, %d\n li a1, %d\n call %s\n"
                      " lw ra, 0(sp)\n addi sp, sp, 4\n ret\n",
                      c.a, c.b, h.name),
        });
        RefSim sim;
        sim.reset(p);
        RunResult rr = sim.run();
        ASSERT_EQ(rr.reason, StopReason::Halted);
        EXPECT_EQ(rr.exitCode, h.expected)
            << h.name << "(" << c.a << ", " << c.b << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    DivisionSweep, RuntimeDivTest,
    ::testing::Values(
        DivCase{1, 1}, DivCase{100, 7}, DivCase{7, 100},
        DivCase{-100, 7}, DivCase{100, -7}, DivCase{-100, -7},
        DivCase{0, 5}, DivCase{0x7FFFFFFF, 3},
        DivCase{static_cast<int32_t>(0x80000000), 2},
        DivCase{65536, 256}, DivCase{999999, 1000}));

} // namespace
} // namespace rissp
