/**
 * @file
 * Tests for the §6 pipelined-RISSP synthesis extension.
 */

#include <gtest/gtest.h>

#include "compiler/driver.hh"
#include "core/subset.hh"
#include "synth/synthesis.hh"
#include "workloads/workloads.hh"

namespace rissp
{
namespace
{

TEST(Pipeline, HigherFmaxMoreFlops)
{
    SynthesisModel model;
    InstrSubset full = InstrSubset::fullRv32e();
    SynthReport single = model.synthesize(full, "1c");
    SynthReport piped = model.synthesizePipelined(full, "2s");
    EXPECT_GT(piped.fmaxKhz, single.fmaxKhz);
    EXPECT_GT(piped.ffCount, single.ffCount);
    EXPECT_GT(piped.baseAreaGe, single.baseAreaGe);
    EXPECT_LT(piped.criticalPathNs, single.criticalPathNs);
}

TEST(Pipeline, CpiModel)
{
    EXPECT_DOUBLE_EQ(SynthesisModel::pipelinedCpi(0.0), 1.0);
    EXPECT_DOUBLE_EQ(SynthesisModel::pipelinedCpi(0.2), 1.2);
}

TEST(Pipeline, ThroughputGainIsBounded)
{
    // The paper keeps the single-cycle microarchitecture because
    // extreme edge doesn't need more speed; the model agrees: with a
    // typical 15% taken fraction, the two-stage net speedup stays
    // under 25%.
    SynthesisModel model;
    auto cr = minic::compile(workloadByName("crc32").source,
                             minic::OptLevel::O2);
    InstrSubset subset = InstrSubset::fromProgram(cr.program);
    SynthReport single = model.synthesize(subset, "1c");
    SynthReport piped = model.synthesizePipelined(subset, "2s");
    const double cpi = SynthesisModel::pipelinedCpi(0.15);
    const double speedup =
        (piped.fmaxKhz / cpi) / single.fmaxKhz;
    EXPECT_GT(speedup, 0.9);
    EXPECT_LT(speedup, 1.25);
}

TEST(Pipeline, SweepStillWellFormed)
{
    SynthesisModel model;
    SynthReport piped = model.synthesizePipelined(
        InstrSubset::fullRv32e(), "2s");
    EXPECT_EQ(piped.sweep.size(), 117u);
    EXPECT_GT(piped.avgAreaGe, 0.0);
    EXPECT_GT(piped.avgPowerMw, 0.0);
    for (const FreqPoint &pt : piped.sweep)
        EXPECT_EQ(pt.met(), pt.targetKhz <= piped.fmaxKhz);
}

} // namespace
} // namespace rissp
