/**
 * @file
 * Tests for the technology layer: the registry and its built-ins,
 * the spec parser's per-field error collection, value ownership of
 * the cost models (the dangling-reference regression), a golden test
 * pinning the default `flexic-0.6um` numbers to the pre-registry
 * constants, and cross-technology sanity (silicon vs IGZO).
 */

#include <gtest/gtest.h>

#include "core/subset.hh"
#include "explore/fingerprint.hh"
#include "explore/plan.hh"
#include "physimpl/physical.hh"
#include "serv/serv_model.hh"
#include "synth/synthesis.hh"
#include "tech/registry.hh"

namespace rissp
{
namespace
{

InstrSubset
smallSubset()
{
    return InstrSubset::fromNames(
        {"addi", "add", "lw", "sw", "jal", "beq"});
}

// ------------------------------------------------------- registry

TEST(TechRegistry, BuiltinsListAtLeastFourTechnologies)
{
    const TechRegistry &reg = TechRegistry::builtins();
    EXPECT_GE(reg.list().size(), 4u);
    // The canonical names every CLI/plan references.
    for (const char *name :
         {"flexic-0.6um", "flexic-0.6um-slow", "flexic-0.6um-fast",
          "silicon-65nm"}) {
        const Technology *tech = reg.find(name);
        ASSERT_NE(tech, nullptr) << name;
        EXPECT_EQ(tech->name, name);
        EXPECT_FALSE(tech->description.empty()) << name;
    }
    EXPECT_EQ(reg.find("not-a-tech"), nullptr);
}

TEST(TechRegistry, DefaultEntryIsTheDefaultTechnology)
{
    // The registry's flexic-0.6um and a default-constructed
    // Technology must stay interchangeable — models default to the
    // latter, specs resolve to the former.
    const Technology *flexic =
        TechRegistry::builtins().find("flexic-0.6um");
    ASSERT_NE(flexic, nullptr);
    EXPECT_EQ(explore::techFingerprint(*flexic),
              explore::techFingerprint(Technology{}));
}

TEST(TechRegistry, DuplicateAndUnnamedEntriesAreRejected)
{
    TechRegistry reg;
    EXPECT_TRUE(reg.add(Technology{}).isOk());
    const Status dup = reg.add(Technology{});
    EXPECT_EQ(dup.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(dup.message().find("already registered"),
              std::string::npos);
    Technology unnamed;
    unnamed.name.clear();
    EXPECT_EQ(reg.add(unnamed).code(), ErrorCode::InvalidArgument);
    EXPECT_EQ(reg.list().size(), 1u);
}

// ---------------------------------------------------- spec parser

TEST(TechSpec, PlainNameRoundTrips)
{
    const Result<Technology> parsed =
        TechRegistry::builtins().parse("flexic-0.6um");
    ASSERT_TRUE(parsed.isOk());
    EXPECT_EQ(parsed.value().name, "flexic-0.6um");
    EXPECT_EQ(explore::techFingerprint(parsed.value()),
              explore::techFingerprint(Technology{}));
}

TEST(TechSpec, OverridesApplyAndRenameTheResult)
{
    const Result<Technology> parsed = TechRegistry::builtins().parse(
        "flexic-0.6um:gateDelayNs=20,ffPowerRatio=8");
    ASSERT_TRUE(parsed.isOk());
    const Technology &tech = parsed.value();
    EXPECT_DOUBLE_EQ(tech.gateDelayNs, 20.0);
    EXPECT_DOUBLE_EQ(tech.ffPowerMultiplier, 8.0); // via the alias
    // A modified corner is named after the full spec so result rows
    // never conflate it with the unmodified base entry.
    EXPECT_EQ(tech.name, "flexic-0.6um:gateDelayNs=20,ffPowerRatio=8");
}

TEST(TechSpec, VoltageDerivesAConsistentCorner)
{
    const TechRegistry &reg = TechRegistry::builtins();
    const Technology slow =
        reg.parse("flexic-0.6um:voltage=2.4").take();
    const Technology base = Technology{};
    EXPECT_DOUBLE_EQ(slow.supplyVoltageV, 2.4);
    EXPECT_GT(slow.gateDelayNs, base.gateDelayNs);
    EXPECT_LT(slow.dynUwPerGeMhz, base.dynUwPerGeMhz);
    // The built-in slow corner is exactly this derivation.
    EXPECT_EQ(explore::techFingerprint(slow),
              explore::techFingerprint(
                  *reg.find("flexic-0.6um-slow")));
    // Re-deriving the nominal voltage is the identity.
    EXPECT_EQ(explore::techFingerprint(
                  reg.parse("flexic-0.6um:voltage=3").take()),
              explore::techFingerprint(base));
}

TEST(TechSpec, UnknownNameListsTheKnownOnes)
{
    const Result<Technology> parsed =
        TechRegistry::builtins().parse("tsmc-n3");
    ASSERT_FALSE(parsed.isOk());
    EXPECT_EQ(parsed.code(), ErrorCode::NotFound);
    EXPECT_NE(parsed.status().message().find("unknown technology"),
              std::string::npos);
    EXPECT_NE(parsed.status().message().find("flexic-0.6um"),
              std::string::npos);
}

TEST(TechSpec, EveryBadFieldOfASpecIsReported)
{
    const Result<Technology> parsed = TechRegistry::builtins().parse(
        "flexic-0.6um:nosuchknob=1,gateDelayNs=abc,voltage=99,"
        "placementUtilization=1.5");
    ASSERT_FALSE(parsed.isOk());
    const std::string &msg = parsed.status().message();
    EXPECT_NE(msg.find("unknown tech constant 'nosuchknob'"),
              std::string::npos);
    EXPECT_NE(msg.find("bad number 'abc'"), std::string::npos);
    EXPECT_NE(msg.find("'voltage': value 99 out of range"),
              std::string::npos);
    EXPECT_NE(msg.find("'placementUtilization': value 1.5"),
              std::string::npos);
}

TEST(TechParams, EveryListedKeyIsSettable)
{
    EXPECT_GE(techParamKeys().size(), 20u);
    TechParams params;
    for (const std::string &key : techParamKeys())
        EXPECT_TRUE(setTechParam(params, key, 1.0).isOk()) << key;
    EXPECT_EQ(setTechParam(params, "frobnication", 1.0).code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(setTechParam(params, "gateDelayNs", -1.0).code(),
              ErrorCode::InvalidArgument);
}

TEST(TechParams, SweepPointCountIsBounded)
{
    // A validated spec can never demand an unbounded synthesis
    // sweep: the derived point count is checked, not just each
    // field, and a rejected override leaves the params unchanged.
    TechParams params;
    const double step_before = params.sweepStepKhz;
    const Status tiny_step =
        setTechParam(params, "sweepStepKhz", 1e-6);
    ASSERT_FALSE(tiny_step.isOk());
    EXPECT_NE(tiny_step.message().find("raise sweepStepKhz"),
              std::string::npos);
    EXPECT_DOUBLE_EQ(params.sweepStepKhz, step_before);
    EXPECT_FALSE(TechRegistry::builtins()
                     .parse("flexic-0.6um:sweepStepKhz=0.000001")
                     .isOk());

    // A hand-built Technology bypasses spec validation; the model
    // layer still refuses to sweep it — as a value, not a hang.
    Technology hostile;
    hostile.sweepStepKhz = 1e-6; // ~3e9 points
    const Result<SynthReport> r = SynthesisModel(hostile)
        .trySynthesize(smallSubset(), "hostile");
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.code(), ErrorCode::SynthError);
    EXPECT_NE(r.status().message().find("limit"),
              std::string::npos);
}

TEST(TechSpec, HandBuiltCornersRenameLikeSpecs)
{
    explore::TechSpec corner;
    ASSERT_TRUE(corner.trySet("gateDelayNs", 20.0).isOk());
    ASSERT_TRUE(corner.trySet("ffPowerRatio", 8.0).isOk());
    EXPECT_EQ(corner.tech.name,
              "flexic-0.6um:gateDelayNs=20,ffPowerRatio=8");
    // A failed override leaves the label untouched.
    ASSERT_FALSE(corner.trySet("nosuchknob", 1.0).isOk());
    EXPECT_EQ(corner.tech.name,
              "flexic-0.6um:gateDelayNs=20,ffPowerRatio=8");
}

TEST(TechFingerprint, IdentityIsExcludedConstantsAreNot)
{
    Technology a;
    Technology b;
    b.name = "renamed";
    b.description = "same constants, different label";
    EXPECT_EQ(explore::techFingerprint(a),
              explore::techFingerprint(b));
    b.gateDelayNs += 0.1;
    EXPECT_NE(explore::techFingerprint(a),
              explore::techFingerprint(b));
}

// ------------------------------------- value ownership (bugfix)

/** Builds a corner as a prvalue; under the old const-reference
 *  members, binding this to a model dangled as soon as the full
 *  expression ended. ASan (the CI sanitize job runs this test)
 *  flags the stale reads; with value ownership there are none. */
Technology
temporaryCorner()
{
    return TechRegistry::builtins()
        .parse("flexic-0.6um:voltage=2.4")
        .take();
}

TEST(TechOwnership, ModelsSurviveTheirTemporaryTechnology)
{
    const SynthesisModel synth(temporaryCorner());
    const ServModel serv(temporaryCorner());
    const PhysicalModel phys(temporaryCorner());

    // All three models read their technology after the temporaries
    // died; every number must match a model built from a live value.
    const Technology kept = temporaryCorner();
    const SynthReport got = synth.synthesize(smallSubset(), "x");
    const SynthReport want =
        SynthesisModel(kept).synthesize(smallSubset(), "x");
    EXPECT_DOUBLE_EQ(got.fmaxKhz, want.fmaxKhz);
    EXPECT_DOUBLE_EQ(got.avgPowerMw, want.avgPowerMw);

    EXPECT_DOUBLE_EQ(serv.synthReport().fmaxKhz,
                     ServModel(kept).synthReport().fmaxKhz);
    EXPECT_DOUBLE_EQ(
        phys.implement(got, RfStyle::LatchArray).powerMw,
        PhysicalModel(kept).implement(want, RfStyle::LatchArray)
            .powerMw);
    EXPECT_EQ(synth.tech().name, kept.name);
}

// ------------------------------------------------- golden pinning

TEST(TechGolden, FlexicDefaultsMatchPreRegistryConstants)
{
    // Exact doubles captured from the pre-refactor implementation
    // (PR 3 HEAD): the registry default must reproduce them
    // bit-for-bit, which is what keeps every default-tech bench
    // binary byte-identical.
    const SynthesisModel model;
    const SynthReport full =
        model.synthesize(InstrSubset::fullRv32e(), "RISSP-RV32E");
    EXPECT_DOUBLE_EQ(full.fmaxKhz, 1650.0);
    EXPECT_DOUBLE_EQ(full.combGates, 4002.0);
    EXPECT_DOUBLE_EQ(full.criticalPathNs, 602.88000000000011);
    EXPECT_DOUBLE_EQ(full.avgAreaGe, 4287.4642448406357);
    EXPECT_DOUBLE_EQ(full.avgPowerMw, 1.167124820001382);

    const SynthReport small =
        model.synthesize(smallSubset(), "small");
    EXPECT_DOUBLE_EQ(small.fmaxKhz, 1925.0);
    EXPECT_DOUBLE_EQ(small.avgAreaGe, 1942.332532535564);
    EXPECT_DOUBLE_EQ(small.avgPowerMw, 0.66302362762240408);
    EXPECT_DOUBLE_EQ(small.epiNanojoules(1.0, model.tech()),
                     0.62771272727272731);

    const SynthReport serv = ServModel().synthReport();
    EXPECT_DOUBLE_EQ(serv.fmaxKhz, 2050.0);
    EXPECT_DOUBLE_EQ(serv.avgAreaGe, 1944.1062354158905);
    EXPECT_DOUBLE_EQ(serv.avgPowerMw, 1.6574302924261317);

    const PhysReport impl =
        PhysicalModel().implement(full, RfStyle::LatchArray);
    EXPECT_DOUBLE_EQ(impl.totalGe, 6221.6400000000012);
    EXPECT_DOUBLE_EQ(impl.dieAreaMm2, 4.3551480000000016);
    EXPECT_DOUBLE_EQ(impl.powerMw, 0.52174992000000009);
    EXPECT_DOUBLE_EQ(impl.implKhz, 300.0);
}

// ---------------------------------------------- cross-technology

TEST(TechCrossNode, SiliconOutpacesIgzoAtEqualSubsets)
{
    const Technology silicon =
        *TechRegistry::builtins().find("silicon-65nm");
    for (const InstrSubset &subset :
         {smallSubset(), InstrSubset::fullRv32e()}) {
        const SynthReport igzo =
            SynthesisModel().synthesize(subset, "igzo");
        const SynthReport si =
            SynthesisModel(silicon).synthesize(subset, "si");
        // Same netlist (GE counts are process-neutral)…
        EXPECT_DOUBLE_EQ(si.combGates, igzo.combGates);
        // …but silicon clocks orders of magnitude higher and lands
        // far below IGZO on energy per instruction.
        EXPECT_GT(si.fmaxKhz, 100.0 * igzo.fmaxKhz);
        EXPECT_LT(si.epiNanojoules(1.0, silicon),
                  0.1 * igzo.epiNanojoules(1.0, Technology{}));
    }
    // Serv's bit-serial path rescales with the node too.
    EXPECT_GT(ServModel(silicon).synthReport().fmaxKhz,
              ServModel().synthReport().fmaxKhz);
}

TEST(TechCrossNode, VoltageCornersOrderFmax)
{
    const TechRegistry &reg = TechRegistry::builtins();
    const InstrSubset subset = smallSubset();
    const double slow =
        SynthesisModel(*reg.find("flexic-0.6um-slow"))
            .synthesize(subset, "slow").fmaxKhz;
    const double typ =
        SynthesisModel().synthesize(subset, "typ").fmaxKhz;
    const double fast =
        SynthesisModel(*reg.find("flexic-0.6um-fast"))
            .synthesize(subset, "fast").fmaxKhz;
    EXPECT_LT(slow, typ);
    EXPECT_LT(typ, fast);
}

} // namespace
} // namespace rissp
