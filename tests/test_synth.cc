/**
 * @file
 * Tests for the synthesis, Serv and physical-implementation models.
 * Absolute numbers are model outputs; what these tests pin down are
 * the paper's qualitative results (§4.2-4.3): who is smaller, who is
 * faster, who burns more power, and where P&R inverts the ordering.
 */

#include <gtest/gtest.h>

#include "compiler/driver.hh"
#include "core/subset.hh"
#include "physimpl/physical.hh"
#include "serv/serv_model.hh"
#include "synth/synthesis.hh"
#include "workloads/workloads.hh"

namespace rissp
{
namespace
{

const Technology kTech{}; // registry default: flexic-0.6um

SynthReport
synthOf(const std::string &workload_name)
{
    static SynthesisModel model;
    auto cr = minic::compile(workloadByName(workload_name).source,
                             minic::OptLevel::O2);
    return model.synthesize(InstrSubset::fromProgram(cr.program),
                            "RISSP-" + workload_name);
}

SynthReport
fullIsa()
{
    static SynthesisModel model;
    return model.synthesize(InstrSubset::fullRv32e(), "RISSP-RV32E");
}

TEST(Synthesis, SweepStructureMatchesPaper)
{
    SynthReport r = fullIsa();
    // 100 kHz .. 3 MHz in 25 kHz steps (§4.2.1).
    EXPECT_EQ(r.sweep.size(), 117u);
    EXPECT_DOUBLE_EQ(r.sweep.front().targetKhz, 100.0);
    EXPECT_DOUBLE_EQ(r.sweep.back().targetKhz, 3000.0);
    // Slack is monotonically decreasing with target frequency.
    for (size_t i = 1; i < r.sweep.size(); ++i)
        EXPECT_LT(r.sweep[i].slackNs, r.sweep[i - 1].slackNs);
    // fmax is the last met point; beyond it nothing is met.
    bool past_fmax = false;
    for (const FreqPoint &pt : r.sweep) {
        if (pt.targetKhz > r.fmaxKhz) {
            past_fmax = true;
            EXPECT_FALSE(pt.met());
        } else {
            EXPECT_TRUE(pt.met());
        }
    }
    EXPECT_TRUE(past_fmax) << "design met 3 MHz: model broken";
    // Area grows as the constraint tightens.
    EXPECT_GT(r.sweep.back().areaGe, r.sweep.front().areaGe);
}

TEST(Synthesis, SubsetMonotonicity)
{
    // A subset's area can never exceed the full ISA's, and adding
    // instructions never shrinks the design.
    SynthesisModel model;
    SynthReport full = fullIsa();
    InstrSubset small = InstrSubset::fromNames(
        {"addi", "add", "lw", "sw", "jal", "jalr", "beq"});
    InstrSubset bigger = InstrSubset::fromNames(
        {"addi", "add", "lw", "sw", "jal", "jalr", "beq", "sll",
         "sra", "sub", "and", "or"});
    SynthReport s = model.synthesize(small, "small");
    SynthReport b = model.synthesize(bigger, "bigger");
    EXPECT_LT(s.combGates, b.combGates);
    EXPECT_LT(b.combGates, full.combGates);
    EXPECT_GE(s.fmaxKhz, full.fmaxKhz);
}

TEST(Synthesis, ResourceSharingIsUnionNotSum)
{
    // add+sub+addi+lw share one AluAdder: the 4-op design must cost
    // far less than 4x the single-op design's datapath.
    SynthesisModel model;
    SynthReport one = model.synthesize(
        InstrSubset::fromNames({"add"}), "one");
    SynthReport four = model.synthesize(
        InstrSubset::fromNames({"add", "sub", "addi", "lw"}),
        "four");
    // Marginal cost of the extra three ops is their decode/switch
    // overhead plus the load aligner, far below another 3 adders.
    EXPECT_LT(four.combGates - one.combGates, 500.0);

    auto breakdown = model.resourceBreakdown(
        InstrSubset::fromNames({"add", "sub", "addi"}));
    EXPECT_EQ(breakdown.count("alu_adder"), 1u);
    EXPECT_EQ(breakdown.count("shift_right"), 0u);
}

TEST(Synthesis, Figure6Shapes)
{
    SynthReport full = fullIsa();
    SynthReport serv = ServModel().synthReport();
    // RISSPs clock at or above the full core; Serv clocks highest.
    for (const char *name : {"armpit", "xgboost", "af_detect",
                             "crc32", "picojpeg"}) {
        SynthReport r = synthOf(name);
        EXPECT_GE(r.fmaxKhz, full.fmaxKhz) << name;
        EXPECT_LT(r.fmaxKhz, serv.fmaxKhz) << name;
        // kHz-range operation, on the paper's axis.
        EXPECT_GE(r.fmaxKhz, 1400.0) << name;
        EXPECT_LE(r.fmaxKhz, 2000.0) << name;
    }
    EXPECT_NEAR(serv.fmaxKhz, 2050.0, 25.0);
    EXPECT_NEAR(full.fmaxKhz, 1700.0, 100.0);
}

TEST(Synthesis, Figure7Shapes)
{
    SynthReport full = fullIsa();
    SynthReport serv = ServModel().synthReport();
    // Serv synthesizes smaller than every RISSP (paper: the
    // smallest RISSP is ~23% larger than Serv).
    for (const Workload &wl : allWorkloads()) {
        auto cr = minic::compile(wl.source, minic::OptLevel::O2);
        SynthesisModel model;
        SynthReport r = model.synthesize(
            InstrSubset::fromProgram(cr.program),
            "RISSP-" + wl.name);
        EXPECT_GT(r.avgAreaGe, serv.avgAreaGe) << wl.name;
        EXPECT_LT(r.avgAreaGe, full.avgAreaGe) << wl.name;
        // Paper range: 8-43% reduction vs RISSP-RV32E.
        const double reduction = 1.0 - r.avgAreaGe / full.avgAreaGe;
        EXPECT_GT(reduction, 0.05) << wl.name;
        EXPECT_LT(reduction, 0.55) << wl.name;
    }
}

TEST(Synthesis, Figure8Shapes)
{
    SynthReport full = fullIsa();
    SynthReport serv = ServModel().synthReport();
    // Serv burns ~40% more power than RISSP-RV32E despite being
    // smaller (FF power dominates).
    const double serv_ratio = serv.avgPowerMw / full.avgPowerMw;
    EXPECT_GT(serv_ratio, 1.2);
    EXPECT_LT(serv_ratio, 1.7);
    for (const char *name : {"armpit", "xgboost", "af_detect"}) {
        SynthReport r = synthOf(name);
        const double reduction =
            1.0 - r.avgPowerMw / full.avgPowerMw;
        EXPECT_GT(reduction, 0.03) << name; // paper: 3-30%
        EXPECT_LT(reduction, 0.45) << name;
        EXPECT_LT(r.avgPowerMw, serv.avgPowerMw) << name;
    }
}

TEST(Synthesis, Figure9EpiShapes)
{
    SynthReport full = fullIsa();
    SynthReport serv = ServModel().synthReport();
    const double epi_full = full.epiNanojoules(1.0, kTech);
    const double epi_serv =
        serv.epiNanojoules(ServModel::kNominalCpi, kTech);
    // Paper: RISSP-RV32E ~35x, RISSPs ~40x more efficient than Serv.
    EXPECT_GT(epi_serv / epi_full, 25.0);
    EXPECT_LT(epi_serv / epi_full, 55.0);
    for (const char *name : {"armpit", "xgboost", "af_detect"}) {
        SynthReport r = synthOf(name);
        const double epi_r = r.epiNanojoules(1.0, kTech);
        EXPECT_LT(epi_r, epi_full) << name;
        EXPECT_GT(epi_serv / epi_r, 30.0) << name;
    }
}

TEST(Serv, CycleModelMatchesBitSerialCpi)
{
    auto cr = minic::compile(workloadByName("crc32").source,
                             minic::OptLevel::O2);
    ServModel serv;
    ServRunStats stats = serv.run(cr.program);
    EXPECT_EQ(stats.result.reason, StopReason::Halted);
    // Paper: CPI of 32 on average for the bit-serial core.
    EXPECT_GT(stats.cpi(), 30.0);
    EXPECT_LT(stats.cpi(), 42.0);
    // Same functional result as the ISA demands.
    EXPECT_EQ(stats.result.exitCode & 0xFFu,
              stats.result.exitCode);
}

TEST(Serv, ShiftsCostExtraCycles)
{
    Program heavy_shift = minic::compile(
        "int main() { unsigned x = 0x12345678; int s = 0;"
        "  for (int i = 1; i < 30; i++) s += (int)(x >> i);"
        "  return s & 0xFF; }",
        minic::OptLevel::O1).program;
    Program no_shift = minic::compile(
        "int main() { unsigned x = 0x12345678; int s = 0;"
        "  for (int i = 1; i < 30; i++) s += (int)x + i;"
        "  return s & 0xFF; }",
        minic::OptLevel::O1).program;
    ServModel serv;
    ServRunStats a = serv.run(heavy_shift);
    ServRunStats b = serv.run(no_shift);
    EXPECT_GT(a.cpi(), b.cpi());
}

TEST(Physical, Figure10Shapes)
{
    SynthesisModel model;
    PhysicalModel phys;
    PhysReport full = phys.implement(fullIsa(), RfStyle::LatchArray);
    PhysReport serv =
        phys.implement(ServModel().synthReport(), RfStyle::RamMacro);

    auto implOf = [&](const char *name) {
        return phys.implement(synthOf(name), RfStyle::LatchArray);
    };
    PhysReport af = implOf("af_detect");
    PhysReport armpit = implOf("armpit");
    PhysReport xgboost = implOf("xgboost");

    // Orderings the paper reports:
    //  - every extreme-edge RISSP is smaller than RISSP-RV32E;
    EXPECT_LT(af.dieAreaMm2, full.dieAreaMm2);
    EXPECT_LT(armpit.dieAreaMm2, full.dieAreaMm2);
    EXPECT_LT(xgboost.dieAreaMm2, full.dieAreaMm2);
    //  - Serv is smaller than RISSP-RV32E even after P&R;
    EXPECT_LT(serv.dieAreaMm2, full.dieAreaMm2);
    //  - but clock-tree cost makes xgboost beat Serv (the paper's
    //    headline P&R inversion) and armpit land near it;
    EXPECT_LT(xgboost.dieAreaMm2, serv.dieAreaMm2);
    EXPECT_NEAR(armpit.dieAreaMm2 / serv.dieAreaMm2, 1.0, 0.15);
    //  - af_detect is the largest of the three RISSPs.
    EXPECT_GT(af.dieAreaMm2, xgboost.dieAreaMm2);

    // FF share: ~60% for Serv, single digits for RISSPs.
    EXPECT_GT(serv.ffAreaFraction, 0.45);
    EXPECT_LT(serv.ffAreaFraction, 0.70);
    EXPECT_LT(full.ffAreaFraction, 0.10);
    EXPECT_LT(xgboost.ffAreaFraction, 0.10);

    // Power at 300 kHz: xgboost and armpit below the baselines.
    EXPECT_LT(xgboost.powerMw, serv.powerMw);
    EXPECT_LT(xgboost.powerMw, full.powerMw);
    EXPECT_LT(armpit.powerMw, full.powerMw);

    // Die geometry sanity: mm-scale dies, X >= Y, area consistent.
    for (const PhysReport *r : {&full, &serv, &af, &armpit,
                                &xgboost}) {
        EXPECT_GT(r->dieAreaMm2, 0.5) << r->name;
        EXPECT_LT(r->dieAreaMm2, 10.0) << r->name;
        EXPECT_GE(r->dieXUm, r->dieYUm) << r->name;
        EXPECT_NEAR(r->dieXUm * r->dieYUm / 1.0e6, r->dieAreaMm2,
                    0.01) << r->name;
    }
}

TEST(Physical, ClockTreeScalesWithFlops)
{
    PhysicalModel phys;
    SynthReport a = fullIsa();
    SynthReport serv = ServModel().synthReport();
    PhysReport pa = phys.implement(a, RfStyle::LatchArray);
    PhysReport ps = phys.implement(serv, RfStyle::RamMacro);
    EXPECT_GT(ps.ctsGe, pa.ctsGe);
    EXPECT_NEAR(ps.ctsGe / serv.ffCount, pa.ctsGe / a.ffCount,
                1e-9);
}

TEST(Synthesis, EmptySubsetIsRecoverable)
{
    SynthesisModel model;
    const Result<SynthReport> report =
        model.trySynthesize(InstrSubset(), "empty");
    ASSERT_FALSE(report.isOk());
    EXPECT_EQ(report.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(report.status().message().find("empty"),
              std::string::npos);
}

} // namespace
} // namespace rissp
