/**
 * @file
 * Extended assembler coverage: branch relaxation, numeric
 * expressions, gas-style \@ macro counters, and layout invariants —
 * the features the -O0 code paths and the retargeting flow lean on.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "isa/instr.hh"
#include "sim/refsim.hh"
#include "util/logging.hh"

namespace rissp
{
namespace
{

TEST(AsmRelax, FarBranchIsRelaxedAndWorks)
{
    // A conditional branch across > 4 KiB of code cannot encode as
    // B-type; the assembler must rewrite it as an inverted branch
    // over a jal.
    std::string src = "    li a0, 1\n    beq a0, zero, far\n";
    for (int i = 0; i < 1200; ++i)
        src += "    addi a1, a1, 1\n";
    src += "    li a2, 111\n    ecall\nfar:\n    li a2, 222\n"
        "    ecall\n";
    AsmResult r = tryAssemble(src);
    ASSERT_TRUE(r.ok) << r.error;

    RefSim sim;
    sim.reset(r.program);
    RunResult run = sim.run(10'000);
    ASSERT_EQ(run.reason, StopReason::Halted);
    // a0 == 1, so beq is NOT taken: fall through the 1200 addis.
    EXPECT_EQ(sim.reg(12), 111u);
    EXPECT_EQ(sim.reg(11), 1200u);

    // Taken case: a0 == 0 jumps over everything.
    std::string src2 = src;
    src2.replace(src2.find("li a0, 1"), 8, "li a0, 0");
    RefSim sim2;
    sim2.reset(assemble(src2));
    RunResult run2 = sim2.run(10'000);
    ASSERT_EQ(run2.reason, StopReason::Halted);
    EXPECT_EQ(sim2.reg(12), 222u);
    EXPECT_EQ(sim2.reg(11), 0u);
}

TEST(AsmRelax, NearBranchStaysCompact)
{
    Program near = assemble(
        "    beq a0, zero, l\n    nop\nl:\n    ecall\n");
    // No relaxation: 3 instructions only.
    EXPECT_EQ(near.textSize, 12u);
    EXPECT_EQ(decode(near.textWords()[0]).op, Op::Beq);
}

TEST(AsmRelax, ChainedRelaxationSettles)
{
    // Two branches where relaxing the first pushes the second out
    // of range as well.
    std::string src = "    beq a0, zero, far1\n"
        "    bne a1, zero, far2\n";
    for (int i = 0; i < 1022; ++i)
        src += "    addi a2, a2, 1\n";
    src += "far1:\n    nop\n";
    src += "far2:\n    ecall\n";
    AsmResult r = tryAssemble(src);
    ASSERT_TRUE(r.ok) << r.error;
    RefSim sim;
    sim.reset(r.program);
    EXPECT_EQ(sim.run(10'000).reason, StopReason::Halted);
}

TEST(AsmExpr, InfixArithmeticInImmediates)
{
    Program p = assemble(R"(
        addi a0, zero, 32-5
        addi a1, zero, 10+7
        addi a2, zero, 8-3+2
        slli a3, a0, 35-33
        ecall
    )");
    RefSim sim;
    sim.reset(p);
    sim.run();
    EXPECT_EQ(sim.reg(10), 27u);
    EXPECT_EQ(sim.reg(11), 17u);
    EXPECT_EQ(sim.reg(12), 7u);
    EXPECT_EQ(sim.reg(13), 27u << 2);
}

TEST(AsmMacro, UniqueExpansionCounter)
{
    // Two expansions of a label-bearing macro must not collide.
    Program p = assemble(R"(
        .macro isneg rd, rs
        blt \rs, zero, .Ln\@
        addi \rd, zero, 0
        jal zero, .Ld\@
.Ln\@:
        addi \rd, zero, 1
.Ld\@:
        .endm
        li a0, -5
        isneg a1, a0
        li a0, 5
        isneg a2, a0
        ecall
    )");
    RefSim sim;
    sim.reset(p);
    sim.run();
    EXPECT_EQ(sim.reg(11), 1u);
    EXPECT_EQ(sim.reg(12), 0u);
}

TEST(AsmMacro, RecursiveMacrosAreAllowedOneLevel)
{
    // A macro body may invoke other macros (used by retarget
    // bodies); direct self-recursion falls back to the native op.
    Program p = assemble(R"(
        .macro dbl rd, rs
        add \rd, \rs, \rs
        .endm
        .macro quad rd, rs
        dbl \rd, \rs
        dbl \rd, \rd
        .endm
        li a0, 3
        quad a1, a0
        ecall
    )");
    RefSim sim;
    sim.reset(p);
    sim.run();
    EXPECT_EQ(sim.reg(11), 12u);
}

TEST(AsmLayout, SymbolsSurviveRelaxation)
{
    // Data symbols and labels after relaxed branches must still
    // resolve to the shifted addresses.
    std::string src = "    beq a0, zero, far\n";
    for (int i = 0; i < 1100; ++i)
        src += "    addi a1, a1, 1\n";
    src += "far:\n    la a2, blob\n    lw a3, 0(a2)\n    ecall\n";
    src += "    .data\nblob:\n    .word 0x13572468\n";
    Program p = assemble(src);
    RefSim sim;
    sim.reset(p);
    RunResult run = sim.run(10'000);
    ASSERT_EQ(run.reason, StopReason::Halted);
    EXPECT_EQ(sim.reg(13), 0x13572468u);
    // The 'far' label sits past the relaxed (8-byte) branch.
    EXPECT_GE(p.symbol("far"), 4u + 1100u * 4u);
}

TEST(AsmErrors, RelaxationOnlyAppliesToSymbolBranches)
{
    // A literal out-of-range branch offset is a hard error, not a
    // silent relaxation (it has no symbol to retarget).
    EXPECT_FALSE(tryAssemble("beq a0, a1, 8000\n"));
}

} // namespace
} // namespace rissp
