/**
 * @file
 * Tests for the §5 retargeting flow: per-op macro synthesis with the
 * verify-reject loop, whole-program reconstruction, and end-to-end
 * equivalence of the retargeted binaries on the minimal subset.
 */

#include <gtest/gtest.h>

#include "compiler/driver.hh"
#include "core/rissp.hh"
#include "retarget/retargeter.hh"
#include "sim/refsim.hh"
#include "workloads/workloads.hh"

namespace rissp
{
namespace
{

InstrSubset
minimal()
{
    return Retargeter::minimalSubset();
}

TEST(MacroLibrary, CoversEveryNonKernelOp)
{
    const InstrSubset target = minimal();
    for (size_t i = 0; i < kNumOps; ++i) {
        const Op op = static_cast<Op>(i);
        if (op == Op::Ecall || op == Op::Ebreak ||
            op == Op::Auipc || op == Op::Jal || op == Op::Jalr ||
            isCustom(op))
            continue;
        if (!target.contains(op))
            EXPECT_TRUE(canRetarget(op))
                << "no expansion for " << opName(op);
    }
}

class MacroSynthTest : public ::testing::TestWithParam<int>
{
};

std::string
synthName(const ::testing::TestParamInfo<int> &info)
{
    return std::string(opName(static_cast<Op>(info.param)));
}

TEST_P(MacroSynthTest, SynthesizesVerifiedMacro)
{
    const Op op = static_cast<Op>(GetParam());
    if (!canRetarget(op))
        GTEST_SKIP() << "kernel/native op";
    Retargeter rt(minimal(), /*seed=*/0x5EED);
    MacroExpansion m = rt.synthesizeMacro(op);
    EXPECT_TRUE(m.verified) << opName(op);
    EXPECT_GE(m.attempts, 1u);
    EXPECT_LE(m.attempts, 10u) << "paper bound: < 10 attempts";
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, MacroSynthTest,
    ::testing::Range(0, static_cast<int>(kNumOps)), synthName);

TEST(Retargeter, BuggyCandidatesAreRejected)
{
    Retargeter rt(minimal());
    // Seeds that put hallucinated candidates first still converge,
    // and the attempt counter records the rejections.
    bool saw_retry = false;
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        Retargeter rt2(minimal(), seed);
        MacroExpansion m = rt2.synthesizeMacro(Op::Sub);
        EXPECT_TRUE(m.verified);
        if (m.attempts > 1)
            saw_retry = true;
    }
    EXPECT_TRUE(saw_retry)
        << "generator never produced a rejected candidate";
}

TEST(Retargeter, RejectsTargetWithoutKernelOps)
{
    const Status status = Retargeter::validateTarget(
        InstrSubset::fromNames({"addi", "lw"}));
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(status.message().find("kernel instruction"),
              std::string::npos);
}

TEST(Retargeter, SimpleProgramEquivalence)
{
    // A program exercising many non-kernel ops.
    const char *src = R"(
        int table[8] = {5, -3, 12, 0, 7, -8, 100, 42};
        unsigned char bytes[8];
        short halves[4];
        int main(void) {
            int acc = 0;
            for (int i = 0; i < 8; i++) {
                int v = table[i];
                if (v >= 0) acc += v; else acc -= v * 2;
                acc ^= (unsigned)v >> 3;
                bytes[i] = (unsigned char)(acc & 0xFF);
                if (i < 4) halves[i] = (short)(acc * 3);
            }
            for (int i = 0; i < 8; i++) acc += bytes[i];
            for (int i = 0; i < 4; i++) acc += halves[i];
            return acc & 0xFF;
        }
    )";
    minic::CompileResult cr = minic::compile(src,
                                             minic::OptLevel::O2);
    RefSim ref;
    ref.reset(cr.program);
    RunResult ref_run = ref.run(10'000'000);
    ASSERT_EQ(ref_run.reason, StopReason::Halted);

    Retargeter rt(minimal());
    RetargetResult res = rt.retarget(cr.program);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_FALSE(res.rewrittenOps.empty());
    EXPECT_GT(res.retargetedTextBytes, res.initialTextBytes);

    // The retargeted binary must produce the same result...
    RefSim sim2;
    sim2.reset(res.program);
    RunResult run2 = sim2.run(50'000'000);
    ASSERT_EQ(run2.reason, StopReason::Halted);
    EXPECT_EQ(run2.exitCode, ref_run.exitCode);

    // ...and run on a RISSP that implements only the minimal subset.
    Rissp rissp(minimal(), "RISSP-minimal");
    rissp.reset(res.program);
    RunResult run3 = rissp.run(50'000'000);
    ASSERT_EQ(run3.reason, StopReason::Halted);
    EXPECT_EQ(run3.exitCode, ref_run.exitCode);

    // Distinct instructions now fit in the 12-op subset.
    EXPECT_LE(res.finalSubset.size(), minimal().size());
}

class EdgeRetargetTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EdgeRetargetTest, ExtremeEdgeAppsRetargetAndMatch)
{
    const Workload &wl = workloadByName(GetParam());
    minic::CompileResult cr =
        minic::compile(wl.source, minic::OptLevel::O2);
    RefSim ref;
    ref.reset(cr.program);
    RunResult ref_run = ref.run(80'000'000);
    ASSERT_EQ(ref_run.reason, StopReason::Halted);

    Retargeter rt(minimal());
    RetargetResult res = rt.retarget(cr.program);
    ASSERT_TRUE(res.ok) << res.error;

    Rissp rissp(minimal(), "RISSP-minimal");
    rissp.reset(res.program);
    RunResult run2 = rissp.run(400'000'000);
    ASSERT_EQ(run2.reason, StopReason::Halted) << wl.name;
    EXPECT_EQ(run2.exitCode, ref_run.exitCode) << wl.name;
    EXPECT_EQ(rissp.outputWords(), ref.outputWords()) << wl.name;

    // Figure 12 shape: code grows, distinct instructions shrink to
    // at most the subset size.
    EXPECT_GT(res.codeGrowth(), 0.0) << wl.name;
    EXPECT_LE(res.finalSubset.size(), 12u) << wl.name;
    EXPECT_GE(res.initialSubset.size(), res.finalSubset.size())
        << wl.name;
}

INSTANTIATE_TEST_SUITE_P(Apps, EdgeRetargetTest,
                         ::testing::Values("armpit", "xgboost",
                                           "af_detect"));

} // namespace
} // namespace rissp
