/**
 * @file
 * Workload integration tests: every benchmark must compile at every
 * optimization level, run to a clean halt on the reference ISS, and
 * produce level-independent results (exit code and MMIO stream).
 * The RISSP generated from each binary's own subset must reproduce
 * the reference run exactly.
 */

#include <gtest/gtest.h>

#include "compiler/driver.hh"
#include "core/rissp.hh"
#include "core/subset.hh"
#include "sim/refsim.hh"
#include "workloads/workloads.hh"

namespace rissp
{
namespace
{

using minic::OptLevel;

class WorkloadTest : public ::testing::TestWithParam<int>
{
  protected:
    const Workload &wl() const
    {
        return allWorkloads()[static_cast<size_t>(GetParam())];
    }
};

std::string
wlName(const ::testing::TestParamInfo<int> &info)
{
    std::string n = allWorkloads()[static_cast<size_t>(
        info.param)].name;
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n;
}

TEST_P(WorkloadTest, LevelIndependentResults)
{
    uint32_t expect_exit = 0;
    std::vector<uint32_t> expect_words;
    bool first = true;
    for (OptLevel level : {OptLevel::O0, OptLevel::O1, OptLevel::O2,
                           OptLevel::O3, OptLevel::Oz}) {
        minic::CompileResult r = minic::compile(wl().source, level);
        RefSim sim;
        sim.reset(r.program);
        RunResult rr = sim.run(80'000'000);
        ASSERT_EQ(rr.reason, StopReason::Halted)
            << wl().name << " at " << minic::optLevelName(level);
        if (first) {
            expect_exit = rr.exitCode;
            expect_words = sim.outputWords();
            first = false;
        } else {
            EXPECT_EQ(rr.exitCode, expect_exit)
                << wl().name << " at "
                << minic::optLevelName(level);
            EXPECT_EQ(sim.outputWords(), expect_words)
                << wl().name << " at "
                << minic::optLevelName(level);
        }
    }
}

TEST_P(WorkloadTest, RisspMatchesReference)
{
    minic::CompileResult r = minic::compile(wl().source, OptLevel::O2);
    InstrSubset subset = InstrSubset::fromProgram(r.program);

    RefSim ref;
    ref.reset(r.program);
    RunResult ref_run = ref.run(80'000'000);
    ASSERT_EQ(ref_run.reason, StopReason::Halted);

    Rissp rissp(subset, "RISSP-" + wl().name);
    rissp.reset(r.program);
    RunResult rissp_run = rissp.run(80'000'000);
    ASSERT_EQ(rissp_run.reason, StopReason::Halted) << wl().name;
    EXPECT_EQ(rissp_run.exitCode, ref_run.exitCode) << wl().name;
    EXPECT_EQ(rissp_run.instret, ref_run.instret) << wl().name;
    EXPECT_EQ(rissp.outputWords(), ref.outputWords()) << wl().name;
}

TEST_P(WorkloadTest, SubsetIsProperAndPlausible)
{
    minic::CompileResult r = minic::compile(wl().source, OptLevel::O2);
    InstrSubset subset = InstrSubset::fromProgram(r.program);
    // §4.1: applications use 24-86% of the full ISA.
    EXPECT_GE(subset.size(), 8u) << subset.describe();
    EXPECT_LE(subset.size(), kFullIsaSize) << subset.describe();
    // Every program needs control flow and memory access.
    EXPECT_TRUE(subset.contains(Op::Jal));
    EXPECT_TRUE(subset.contains(Op::Lw));
    EXPECT_TRUE(subset.contains(Op::Sw));
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadTest,
    ::testing::Range(0, static_cast<int>(allWorkloads().size())),
    wlName);

TEST(Workloads, RegistryShape)
{
    EXPECT_EQ(allWorkloads().size(), 25u);
    size_t embench = 0;
    size_t edge = 0;
    for (const Workload &w : allWorkloads()) {
        if (w.category == "embench")
            ++embench;
        else if (w.category == "extreme-edge")
            ++edge;
    }
    EXPECT_EQ(embench, 22u);
    EXPECT_EQ(edge, 3u);
    EXPECT_EQ(workloadByName("crc32").name, "crc32");
    EXPECT_EQ(extremeEdgeNames().size(), 3u);
}

TEST(Workloads, AfDetectFlagsTheIrregularRhythm)
{
    // The APPT pipeline must actually detect the AF segment the
    // synthetic ECG contains (exit = af*100 + peaks).
    auto r = minic::compile(workloadByName("af_detect").source,
                            OptLevel::O2);
    RefSim sim;
    sim.reset(r.program);
    RunResult rr = sim.run(80'000'000);
    ASSERT_EQ(rr.reason, StopReason::Halted);
    EXPECT_GE(rr.exitCode, 100u) << "AF not detected";
    ASSERT_EQ(sim.outputWords().size(), 3u);
    const uint32_t peaks = sim.outputWords()[0];
    EXPECT_GT(peaks, 8u);
    EXPECT_EQ(sim.outputWords()[2], 1u);
}

TEST(Workloads, XgboostPredictsBothClasses)
{
    auto r = minic::compile(workloadByName("xgboost").source,
                            OptLevel::O2);
    RefSim sim;
    sim.reset(r.program);
    RunResult rr = sim.run(80'000'000);
    ASSERT_EQ(rr.reason, StopReason::Halted);
    EXPECT_GT(rr.exitCode, 0u);   // some positives
    EXPECT_LT(rr.exitCode, 16u);  // some negatives
}

} // namespace
} // namespace rissp
