/**
 * @file
 * Tests for the Flow API: the Status/Result error layer and every
 * recoverable failure path of FlowService — malformed plan text,
 * unknown workloads and mnemonics, MiniC compile errors, trapped
 * programs, co-simulation mismatches, impossible synthesis corners,
 * invalid retarget targets. All of these paths used to abort the
 * process, which is why none of them had coverage before.
 *
 * Also pins down the service properties a daemon depends on: stage
 * granularity (partial results survive downstream failures), shared
 * memoization across request verbs, and reentrancy under concurrent
 * callers.
 */

#include <gtest/gtest.h>

#include <thread>

#include "flow/flow.hh"
#include "flow/json.hh"

namespace rissp::flow
{
namespace
{

// A tiny valid program: returns 55 (sum of 1..10).
const char *kSumSource = R"(
    int main(void) {
        int sum = 0;
        for (int i = 1; i <= 10; i++)
            sum += i;
        return sum;
    }
)";

// ------------------------------------------------- status & result

TEST(Status, DefaultIsOkAndErrorsCarryCodeAndMessage)
{
    const Status ok;
    EXPECT_TRUE(ok.isOk());
    EXPECT_EQ(ok.code(), ErrorCode::Ok);
    EXPECT_EQ(ok.toString(), "ok");

    const Status err = Status::errorf(ErrorCode::NotFound,
                                      "no such thing '%s'", "x");
    EXPECT_FALSE(err.isOk());
    EXPECT_EQ(err.code(), ErrorCode::NotFound);
    EXPECT_EQ(err.toString(), "not_found: no such thing 'x'");
}

TEST(Status, ResultHoldsValueOrStatus)
{
    Result<int> good = 42;
    ASSERT_TRUE(good.isOk());
    EXPECT_EQ(good.value(), 42);
    EXPECT_EQ(good.valueOr(0), 42);

    Result<int> bad =
        Status::error(ErrorCode::InvalidArgument, "nope");
    ASSERT_FALSE(bad.isOk());
    EXPECT_EQ(bad.code(), ErrorCode::InvalidArgument);
    EXPECT_EQ(bad.valueOr(7), 7);
}

// --------------------------------------------- recoverable library

TEST(Library, MalformedMiniCIsACompileErrorValue)
{
    const Result<minic::CompileResult> r =
        minic::tryCompile("int main( { return 0; }",
                          minic::OptLevel::O2);
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.code(), ErrorCode::CompileError);
    EXPECT_NE(r.status().message().find("line"), std::string::npos);
}

TEST(Library, UnknownMnemonicIsInvalidArgument)
{
    const Result<InstrSubset> r =
        InstrSubset::tryFromNames({"addi", "addq"});
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(r.status().message().find("addq"), std::string::npos);
}

TEST(Library, ImpossibleTechCornerIsASynthErrorValue)
{
    explore::TechSpec corner;
    // Sweep window above the end frequency: no point can be met.
    ASSERT_TRUE(corner.trySet("sweepStartKhz", 5000).isOk());
    const SynthesisModel model(corner.tech);
    const Result<SynthReport> r = model.trySynthesize(
        InstrSubset::fromNames({"addi", "add", "jal"}), "corner");
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.code(), ErrorCode::SynthError);
    EXPECT_NE(r.status().message().find("no sweep point"),
              std::string::npos);
}

TEST(Library, UnknownTechKnobIsInvalidArgument)
{
    explore::TechSpec spec;
    const Status status = spec.trySet("frobnication", 3.0);
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
}

// -------------------------------------------------- characterize

TEST(FlowCharacterize, UnknownWorkloadIsNotFound)
{
    FlowService service;
    CharacterizeRequest request;
    request.source = SourceRef::bundled("not-a-workload");
    const CharacterizeResponse response =
        service.characterize(request);
    EXPECT_EQ(response.status.code(), ErrorCode::NotFound);
    EXPECT_FALSE(response.compile.run);
    EXPECT_FALSE(response.subset.run);
}

TEST(FlowCharacterize, CompileErrorCarriesLineDiagnostic)
{
    FlowService service;
    CharacterizeRequest request;
    request.source = SourceRef::inlineText("int main(void) { ret }");
    const CharacterizeResponse response =
        service.characterize(request);
    EXPECT_EQ(response.status.code(), ErrorCode::CompileError);
    EXPECT_NE(response.status.message().find("line"),
              std::string::npos);
}

TEST(FlowCharacterize, ValidSourceReportsCompileAndSubset)
{
    FlowService service;
    CharacterizeRequest request;
    request.source = SourceRef::inlineText(kSumSource, "sum");
    const CharacterizeResponse response =
        service.characterize(request);
    ASSERT_TRUE(response.status.isOk());
    EXPECT_TRUE(response.compile.run);
    EXPECT_GT(response.compile.staticInstructions, 0u);
    EXPECT_TRUE(response.subset.run);
    EXPECT_GT(response.subset.subset.size(), 0u);
    EXPECT_LT(response.subset.subset.size(), kFullIsaSize);
}

// ---------------------------------------------------------- run

TEST(FlowRun, TrappedProgramKeepsEarlierStages)
{
    FlowService service;
    RunRequest request;
    request.source = SourceRef::inlineText(kSumSource, "sum");
    // A chip that implements almost nothing: the program traps.
    request.subsetOverride =
        InstrSubset::fromNames({"addi", "jal"});
    const RunResponse response = service.run(request);
    EXPECT_EQ(response.status.code(), ErrorCode::Trap);
    // Stage granularity: everything up to the trap is reported.
    EXPECT_TRUE(response.compile.run);
    EXPECT_TRUE(response.subset.run);
    ASSERT_TRUE(response.exec.run);
    EXPECT_EQ(response.exec.reason, StopReason::Trapped);
    EXPECT_FALSE(response.cosim.run);
}

TEST(FlowRun, StepLimitIsReported)
{
    FlowService service;
    RunRequest request;
    request.source = SourceRef::inlineText(kSumSource, "sum");
    request.maxSteps = 5;
    const RunResponse response = service.run(request);
    EXPECT_EQ(response.status.code(), ErrorCode::StepLimit);
    ASSERT_TRUE(response.exec.run);
    EXPECT_EQ(response.exec.reason, StopReason::StepLimit);
}

TEST(FlowRun, CleanRunVerifies)
{
    FlowService service;
    RunRequest request;
    request.source = SourceRef::inlineText(kSumSource, "sum");
    request.verify = true;
    const RunResponse response = service.run(request);
    ASSERT_TRUE(response.status.isOk());
    EXPECT_EQ(response.exec.reason, StopReason::Halted);
    EXPECT_EQ(response.exec.exitCode, 55u);
    ASSERT_TRUE(response.cosim.run);
    EXPECT_TRUE(response.cosim.passed);
    EXPECT_GT(response.cosim.rvfiEventsChecked, 0u);
}

TEST(FlowRun, InjectedFaultIsACosimMismatch)
{
    FlowService service;
    RunRequest request;
    request.source = SourceRef::inlineText(kSumSource, "sum");
    request.verify = true;
    request.injectFault =
        Mutation{Mutation::Kind::CarryChainBreak, 1};
    const RunResponse response = service.run(request);
    EXPECT_EQ(response.status.code(), ErrorCode::CosimMismatch);
    // The un-faulted execution stage itself completed fine…
    ASSERT_TRUE(response.exec.run);
    EXPECT_EQ(response.exec.reason, StopReason::Halted);
    // …and the cosim stage pinpoints the divergence.
    ASSERT_TRUE(response.cosim.run);
    EXPECT_FALSE(response.cosim.passed);
    EXPECT_FALSE(response.cosim.firstDivergence.empty());
}

// --------------------------------------------------------- synth

TEST(FlowSynth, EmptySubsetOverrideIsInvalidArgument)
{
    FlowService service;
    SynthRequest request;
    request.subsetOverride = InstrSubset();
    const SynthResponse response = service.synth(request);
    EXPECT_EQ(response.status.code(), ErrorCode::InvalidArgument);
    EXPECT_FALSE(response.synth.run);
}

TEST(FlowSynth, BaselinesAndPhysicalRide)
{
    FlowService service;
    SynthRequest request;
    request.source = SourceRef::inlineText(kSumSource, "sum");
    request.name = "RISSP-sum";
    const SynthResponse response = service.synth(request);
    ASSERT_TRUE(response.status.isOk());
    ASSERT_TRUE(response.synth.run);
    EXPECT_EQ(response.synth.app.name, "RISSP-sum");
    ASSERT_TRUE(response.synth.baselinesRun);
    EXPECT_LT(response.synth.app.avgAreaGe,
              response.synth.fullIsa.avgAreaGe);
    ASSERT_TRUE(response.phys.run);
    EXPECT_GT(response.phys.report.dieAreaMm2, 0.0);
}

TEST(FlowSynth, RegistryTechSelectsTheCostModel)
{
    FlowService service;
    SynthRequest request;
    request.source = SourceRef::inlineText(kSumSource, "sum");

    const SynthResponse flexic = service.synth(request);
    ASSERT_TRUE(flexic.status.isOk());
    EXPECT_EQ(flexic.synth.tech, "flexic-0.6um");

    Result<explore::TechSpec> silicon =
        explore::TechSpec::fromSpec("silicon-65nm");
    ASSERT_TRUE(silicon.isOk());
    request.tech = silicon.take();
    const SynthResponse si = service.synth(request);
    ASSERT_TRUE(si.status.isOk());
    EXPECT_EQ(si.synth.tech, "silicon-65nm");
    // Same netlist, different process: the silicon node clocks far
    // higher than IGZO, and so does its full-ISA baseline.
    EXPECT_GT(si.synth.app.fmaxKhz,
              100.0 * flexic.synth.app.fmaxKhz);
    EXPECT_DOUBLE_EQ(si.synth.app.combGates,
                     flexic.synth.app.combGates);
    ASSERT_TRUE(si.synth.baselinesRun);
    EXPECT_GT(si.synth.fullIsa.fmaxKhz,
              flexic.synth.fullIsa.fmaxKhz);
}

TEST(FlowSynth, UnknownRegistryTechIsNotFound)
{
    const Result<explore::TechSpec> spec =
        explore::TechSpec::fromSpec("not-a-tech");
    ASSERT_FALSE(spec.isOk());
    EXPECT_EQ(spec.code(), ErrorCode::NotFound);
    EXPECT_NE(spec.status().message().find("flexic-0.6um"),
              std::string::npos);
}

// ------------------------------------------------------ retarget

TEST(FlowRetarget, TargetWithoutKernelOpsIsInvalidArgument)
{
    FlowService service;
    RetargetRequest request;
    request.source = SourceRef::inlineText(kSumSource, "sum");
    request.target = InstrSubset::fromNames({"addi", "lw"});
    const RetargetResponse response = service.retarget(request);
    EXPECT_EQ(response.status.code(), ErrorCode::InvalidArgument);
    EXPECT_TRUE(response.compile.run);   // partial result
    EXPECT_FALSE(response.retarget.run);
}

TEST(FlowRetarget, MinimalTargetRoundTrips)
{
    FlowService service;
    RetargetRequest request;
    request.source = SourceRef::bundled("crc32");
    const RetargetResponse response = service.retarget(request);
    ASSERT_TRUE(response.status.isOk());
    ASSERT_TRUE(response.retarget.run);
    EXPECT_TRUE(response.retarget.result.ok);
    ASSERT_TRUE(response.equivalence.run);
    EXPECT_TRUE(response.equivalence.matched);
    EXPECT_EQ(response.equivalence.dutReason, StopReason::Halted);
}

// ------------------------------------------------------- explore

TEST(FlowExplore, MalformedPlanReportsEveryLine)
{
    FlowService service;
    ExploreRequest request;
    request.planText =
        "frobnicate everything\n"
        "workload not-a-workload\n"
        "subset s = addq\n"
        "workload crc32\n";
    const ExploreResponse response = service.explore(request);
    ASSERT_EQ(response.status.code(), ErrorCode::ParseError);
    const std::string &message = response.status.message();
    EXPECT_NE(message.find("plan line 1: cannot parse"),
              std::string::npos);
    EXPECT_NE(message.find("plan line 2: unknown workload"),
              std::string::npos);
    EXPECT_NE(message.find("plan line 3: unknown instruction"),
              std::string::npos);
}

TEST(FlowExplore, InvalidProgrammaticPlanIsRejected)
{
    FlowService service;
    ExploreRequest request;
    explore::ExplorationPlan plan; // no axes at all
    request.plan = plan;
    const ExploreResponse response = service.explore(request);
    EXPECT_EQ(response.status.code(), ErrorCode::InvalidArgument);
    EXPECT_EQ(response.table.size(), 0u);
}

TEST(FlowExplore, ValidPlanSweeps)
{
    FlowService service;
    ExploreRequest request;
    request.planText =
        "mode cartesian\n"
        "workload crc32\n"
        "subset fit  = @crc32\n"
        "subset full = @full\n";
    request.options.threads = 2;
    const ExploreResponse response = service.explore(request);
    ASSERT_TRUE(response.status.isOk());
    ASSERT_EQ(response.table.size(), 2u);
    EXPECT_TRUE(response.table.row(0).cosimPassed);
    EXPECT_EQ(response.stats.points, 2u);
}

TEST(FlowExplore, MultiTechPlanTagsEveryRow)
{
    FlowService service;
    ExploreRequest request;
    request.planText =
        "mode cartesian\n"
        "workload crc32\n"
        "subset fit  = @crc32\n"
        "subset full = @full\n"
        "tech flexic-0.6um\n"
        "tech silicon-65nm\n";
    // Serial: the memo-hit assertions below depend on plan order.
    request.options.threads = 1;
    const ExploreResponse response = service.explore(request);
    ASSERT_TRUE(response.status.isOk());
    ASSERT_EQ(response.table.size(), 4u);
    for (const explore::ExplorationResult &row :
         response.table.rows()) {
        EXPECT_TRUE(row.simRun && row.synthRun);
        EXPECT_FALSE(row.techName.empty());
        EXPECT_TRUE(row.techName == "flexic-0.6um" ||
                    row.techName == "silicon-65nm")
            << row.techName;
    }
    // Tech is the outer axis; the second corner reuses every
    // simulation (the workload result is tech-independent) but
    // synthesizes fresh.
    EXPECT_EQ(response.table.row(0).techName, "flexic-0.6um");
    EXPECT_EQ(response.table.row(2).techName, "silicon-65nm");
    EXPECT_TRUE(response.table.row(2).simMemoHit);
    EXPECT_FALSE(response.table.row(2).synthMemoHit);
    EXPECT_GT(response.table.row(2).fmaxKhz,
              response.table.row(0).fmaxKhz);
    // The CSV/JSON emitters carry the tech name on every row.
    const std::string csv = response.table.csv();
    EXPECT_NE(csv.find(",silicon-65nm,"), std::string::npos);
    const std::string json = response.table.json();
    EXPECT_NE(json.find("\"tech\": \"silicon-65nm\""),
              std::string::npos);
}

TEST(FlowExplore, RepeatedRequestsGetByteIdenticalResponses)
{
    // The response stats are per-request engine stats, not the
    // service-cumulative counters: a second identical request on a
    // warm service must serialize byte-identically to the first
    // (daemon clients diff responses; warmth must be invisible).
    FlowService service;
    ExploreRequest request;
    request.planText =
        "mode cartesian\n"
        "workload crc32\n"
        "subset fit  = @crc32\n"
        "subset full = @full\n";
    const ExploreResponse first = service.explore(request);
    ASSERT_TRUE(first.status.isOk());
    const ExploreResponse second = service.explore(request);
    EXPECT_EQ(toJson(first), toJson(second));
    // The service-cumulative view still moves — it lives on
    // stats(), not on the response.
    EXPECT_GT(service.stats().simHits, 0u);
}

// ------------------------------------- shared caches & reentrancy

TEST(FlowService, VerbsShareTheCompileCache)
{
    FlowService service;
    CharacterizeRequest request;
    request.source = SourceRef::bundled("crc32");

    service.characterize(request);
    const uint64_t misses_after_first = service.stats().compileMisses;
    EXPECT_EQ(misses_after_first, 1u);

    // Same source again: a hit, not a recompile.
    service.characterize(request);
    EXPECT_EQ(service.stats().compileMisses, misses_after_first);
    EXPECT_GE(service.stats().compileHits, 1u);

    // An explore touching the same workload at the same opt level
    // reuses the verb's compilation.
    ExploreRequest explore;
    explore.planText = "workload crc32\nsubset fit = @crc32\n";
    const ExploreResponse swept = service.explore(explore);
    ASSERT_TRUE(swept.status.isOk());
    EXPECT_EQ(service.stats().compileMisses, misses_after_first);
}

TEST(FlowService, FailedCompilesAreCachedToo)
{
    FlowService service;
    CharacterizeRequest request;
    request.source = SourceRef::inlineText("}{", "broken");
    EXPECT_EQ(service.characterize(request).status.code(),
              ErrorCode::CompileError);
    EXPECT_EQ(service.characterize(request).status.code(),
              ErrorCode::CompileError);
    EXPECT_EQ(service.stats().compileMisses, 1u);
    EXPECT_EQ(service.stats().compileHits, 1u);
}

TEST(FlowService, ConcurrentMixedRequestsAreSafe)
{
    FlowService service;
    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    for (int t = 0; t < 8; ++t) {
        workers.emplace_back([&service, &failures, t] {
            if (t % 2 == 0) {
                RunRequest request;
                request.source =
                    SourceRef::inlineText(kSumSource, "sum");
                request.verify = true;
                const RunResponse response = service.run(request);
                if (!response.status.isOk() ||
                    response.exec.exitCode != 55)
                    failures.fetch_add(1);
            } else {
                CharacterizeRequest request;
                request.source = SourceRef::bundled("crc32");
                if (!service.characterize(request).status.isOk())
                    failures.fetch_add(1);
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    EXPECT_EQ(failures.load(), 0);
    // Exactly two distinct sources were ever compiled.
    EXPECT_EQ(service.stats().compileMisses, 2u);
}

// ------------------------------------------------- async & batch

TEST(FlowBatch, MixedBatchMatchesSynchronousResponses)
{
    FlowService service;
    std::vector<Request> requests;
    CharacterizeRequest characterize;
    characterize.source = SourceRef::bundled("crc32");
    requests.push_back(characterize);
    RunRequest run;
    run.source = SourceRef::inlineText(kSumSource, "sum");
    run.verify = true;
    requests.push_back(run);
    SynthRequest synth;
    synth.source = SourceRef::bundled("crc32");
    requests.push_back(synth);
    RetargetRequest retarget;
    retarget.source = SourceRef::bundled("crc32");
    requests.push_back(retarget);
    RunRequest bad;
    bad.source = SourceRef::bundled("not-a-workload");
    requests.push_back(bad);
    ExploreRequest explore;
    explore.planText = "workload crc32\nsubset fit = @crc32\n";
    requests.push_back(explore);

    const std::vector<Response> responses =
        service.runBatch(requests);
    ASSERT_EQ(responses.size(), requests.size());

    // A failing request doesn't disturb its neighbours, and
    // responses come back in request order.
    EXPECT_TRUE(responseStatus(responses[0]).isOk());
    EXPECT_TRUE(responseStatus(responses[3]).isOk());
    EXPECT_EQ(responseStatus(responses[4]).code(),
              ErrorCode::NotFound);
    EXPECT_TRUE(responseStatus(responses[5]).isOk());

    // Every batched response is byte-identical (JSON) to its
    // synchronous twin from a fresh service. (The explore response
    // embeds service-cumulative cache statistics, so only its table
    // is compared.)
    FlowService fresh;
    for (size_t i = 0; i + 1 < requests.size(); ++i)
        EXPECT_EQ(toJson(responses[i]),
                  toJson(fresh.dispatch(requests[i])))
            << "request " << i;
    const auto *swept =
        std::get_if<ExploreResponse>(&responses.back());
    ASSERT_NE(swept, nullptr);
    const Response syncExplore = fresh.dispatch(requests.back());
    EXPECT_EQ(swept->table.csv(),
              std::get<ExploreResponse>(syncExplore).table.csv());
}

TEST(FlowAsync, TenIdenticalSynthRequestsSweepOnce)
{
    // The promise-backed synthReport entries memoize in-flight
    // *work*: ten concurrent requests for the same subset run the
    // app sweep and the full-ISA baseline sweep once each, and the
    // source compiles once.
    FlowService service;
    SynthRequest request;
    request.source = SourceRef::bundled("crc32");
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 10; ++i)
        futures.push_back(service.submitAsync(Request(request)));
    std::string first;
    for (std::future<Response> &future : futures) {
        const Response response = future.get();
        EXPECT_TRUE(responseStatus(response).isOk());
        if (first.empty())
            first = toJson(response);
        else
            EXPECT_EQ(toJson(response), first);
    }
    EXPECT_EQ(service.caches()->synthReport.misses(), 2u);
    EXPECT_EQ(service.caches()->synthReport.hits(), 18u);
    EXPECT_EQ(service.stats().compileMisses, 1u);
}

TEST(FlowAsync, FutureCarriesErrorsAsValues)
{
    FlowService service;
    RunRequest request;
    request.source = SourceRef::inlineText("}{", "broken");
    std::future<Response> future =
        service.submitAsync(Request(request));
    const Response response = future.get(); // does not throw
    EXPECT_EQ(responseStatus(response).code(),
              ErrorCode::CompileError);
    const auto *run = std::get_if<RunResponse>(&response);
    ASSERT_NE(run, nullptr);
    EXPECT_FALSE(run->compile.run);
    EXPECT_FALSE(run->exec.run);
}

// ---------------------------------------------------------- json

TEST(FlowJson, ResponsesRenderStatusAndStages)
{
    FlowService service;
    CharacterizeRequest request;
    request.source = SourceRef::inlineText(kSumSource, "sum");
    const std::string good =
        toJson(service.characterize(request));
    EXPECT_NE(good.find("\"status\": {\"code\": \"ok\""),
              std::string::npos);
    EXPECT_NE(good.find("\"compile\": {\"run\": true"),
              std::string::npos);
    EXPECT_NE(good.find("\"instructions\": ["), std::string::npos);

    request.source = SourceRef::bundled("not-a-workload");
    const std::string bad = toJson(service.characterize(request));
    EXPECT_NE(bad.find("\"code\": \"not_found\""),
              std::string::npos);
    EXPECT_NE(bad.find("\"compile\": {\"run\": false}"),
              std::string::npos);
}

} // namespace
} // namespace rissp::flow
