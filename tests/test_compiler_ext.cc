/**
 * @file
 * Extended compiler coverage: precedence/associativity torture,
 * lexical edge cases, IR pass behaviours and codegen invariants that
 * the main compile-and-run suite doesn't single out.
 */

#include <gtest/gtest.h>

#include "compiler/driver.hh"
#include "compiler/lexer.hh"
#include "compiler/lower.hh"
#include "compiler/parser.hh"
#include "compiler/passes.hh"
#include "core/subset.hh"
#include "sim/refsim.hh"

namespace rissp
{
namespace
{

using minic::OptLevel;

uint32_t
runExpr(const std::string &expr, OptLevel level = OptLevel::O2)
{
    const std::string src =
        "int main(void) { return " + expr + "; }";
    auto cr = minic::compile(src, level);
    RefSim sim;
    sim.reset(cr.program);
    RunResult r = sim.run(1'000'000);
    EXPECT_EQ(r.reason, StopReason::Halted) << expr;
    return r.exitCode;
}

TEST(CompilerExt, PrecedenceAndAssociativity)
{
    EXPECT_EQ(runExpr("2 + 3 * 4"), 14u);
    EXPECT_EQ(runExpr("(2 + 3) * 4"), 20u);
    EXPECT_EQ(runExpr("20 - 8 - 4"), 8u);       // left assoc
    EXPECT_EQ(runExpr("64 / 8 / 2"), 4u);
    EXPECT_EQ(runExpr("1 << 2 << 3"), 32u);
    EXPECT_EQ(runExpr("10 - 2 * 3 + 1"), 5u);
    EXPECT_EQ(runExpr("7 & 3 | 8"), 11u);
    EXPECT_EQ(runExpr("1 | 2 ^ 3 & 2"), 1u);    // & > ^ > |
    EXPECT_EQ(runExpr("3 < 5 == 1"), 1u);
    EXPECT_EQ(runExpr("~0 & 0xFF"), 255u);
    EXPECT_EQ(runExpr("-3 + +5"), 2u);
    EXPECT_EQ(runExpr("1 ? 2 ? 3 : 4 : 5"), 3u);
    EXPECT_EQ(runExpr("0 ? 2 : 0 ? 4 : 5"), 5u);
}

TEST(CompilerExt, ShortCircuitDoesNotEvaluate)
{
    const char *src = R"(
        int hits;
        int boom(void) { hits++; return 1; }
        int main(void) {
            hits = 0;
            int a = 0 && boom();
            int b = 1 || boom();
            int c = 1 && boom();   /* evaluates once */
            return hits * 10 + a + b + c;
        }
    )";
    for (OptLevel lv : minic::allOptLevels()) {
        auto cr = minic::compile(src, lv);
        RefSim sim;
        sim.reset(cr.program);
        // hits = 1 (only the `1 && boom()` arm runs boom):
        // 1*10 + a(0) + b(1) + c(1) = 12.
        EXPECT_EQ(sim.run().exitCode, 12u)
            << minic::optLevelName(lv);
    }
}

TEST(CompilerExt, LexerEdgeCases)
{
    EXPECT_EQ(runExpr("0x7fffffff & 0xF"), 15u);
    EXPECT_EQ(runExpr("'A' + 1"), 66u);
    EXPECT_EQ(runExpr("'\\n'"), 10u);
    EXPECT_EQ(runExpr("'\\\\'"), 92u);
    EXPECT_EQ(runExpr("100u / 7u"), 14u);
    EXPECT_EQ(runExpr("10 /* inline */ + 2"), 12u);
    // Unterminated constructs are diagnosed.
    EXPECT_THROW(minic::compile("int main() { return '"
                                ";}", OptLevel::O0),
                 minic::CompileError);
    EXPECT_THROW(minic::compile("/* open", OptLevel::O0),
                 minic::CompileError);
}

TEST(CompilerExt, ConstantFoldingKillsDeadBranches)
{
    // if (0) arms disappear entirely at O1+.
    const char *src =
        "int main(void) {"
        "  if (1 == 2) { return 111; }"
        "  if (3 > 1) { return 42; }"
        "  return 7; }";
    auto o2 = minic::compile(src, OptLevel::O2);
    auto o0 = minic::compile(src, OptLevel::O0);
    EXPECT_LT(o2.staticInstructions(), o0.staticInstructions());
    RefSim sim;
    sim.reset(o2.program);
    EXPECT_EQ(sim.run().exitCode, 42u);
}

TEST(CompilerExt, CsePreventsRecomputation)
{
    // a[i] appears three times; the address computation must not
    // be emitted three times at O2.
    const char *src =
        "int a[16];"
        "int main(void) { int i = 5; a[5] = 9;"
        "  return a[i] + a[i] * 2 + (a[i] >> 1); }";
    auto o1 = minic::compile(src, OptLevel::O1);
    auto o2 = minic::compile(src, OptLevel::O2);
    EXPECT_LE(o2.staticInstructions(), o1.staticInstructions());
    RefSim sim;
    sim.reset(o2.program);
    EXPECT_EQ(sim.run().exitCode, 9u + 18u + 4u);
}

TEST(CompilerExt, InliningRemovesCallAtO3)
{
    const char *src =
        "int sq(int x) { return x * x; }"
        "int main(void) { return sq(7) + sq(3); }";
    auto o3 = minic::compile(src, OptLevel::O3);
    // After inlining + constant folding no jal to sq remains on the
    // main path; the whole program reduces dramatically.
    RefSim sim;
    sim.reset(o3.program);
    RunResult r = sim.run();
    EXPECT_EQ(r.exitCode, 58u);
    // sq calls __mulsi3, which blocks inlining of sq itself (leaf
    // functions only); O3 must still be no bigger than O0.
    auto o0 = minic::compile(src, OptLevel::O0);
    EXPECT_LE(o3.staticInstructions(), o0.staticInstructions());
}

TEST(CompilerExt, RecursionIsNeverInlined)
{
    const char *src =
        "int f(int n) { if (n <= 0) return 1;"
        "  return n + f(n - 1); }"
        "int main(void) { return f(5); }";
    for (OptLevel lv : {OptLevel::O2, OptLevel::O3}) {
        auto cr = minic::compile(src, lv);
        RefSim sim;
        sim.reset(cr.program);
        EXPECT_EQ(sim.run().exitCode, 16u);
    }
}

TEST(CompilerExt, DeepExpressionSpillsCorrectly)
{
    // More live temporaries than allocatable registers forces
    // spilling; the result must not change.
    std::string expr = "1";
    for (int i = 2; i <= 14; ++i)
        expr = "(" + expr + " + " + std::to_string(i) + " * (" +
            std::to_string(i) + " - 1))";
    uint32_t expect = 1;
    for (int i = 2; i <= 14; ++i)
        expect += static_cast<uint32_t>(i * (i - 1));
    for (OptLevel lv : minic::allOptLevels())
        EXPECT_EQ(runExpr(expr, lv), expect)
            << minic::optLevelName(lv);
}

TEST(CompilerExt, CharPointerWalk)
{
    const char *src = R"(
        int main(void) {
            const char *s = "abcxyz";
            int n = 0;
            while (*s) { n += *s; s++; }
            return n & 0xFF;
        }
    )";
    const uint32_t expect =
        ('a' + 'b' + 'c' + 'x' + 'y' + 'z') & 0xFF;
    for (OptLevel lv : minic::allOptLevels())
        EXPECT_EQ([&] {
            auto cr = minic::compile(src, lv);
            RefSim sim;
            sim.reset(cr.program);
            return sim.run().exitCode;
        }(), expect) << minic::optLevelName(lv);
}

TEST(CompilerExt, GlobalInitializersLandInData)
{
    const char *src =
        "int big[6] = {1, -2, 3, -4, 5, -6};"
        "short h[3] = {100, -200, 300};"
        "unsigned char b[4] = {250, 251, 252, 253};"
        "int main(void) { return big[1] + h[1] + b[0]; }";
    auto cr = minic::compile(src, OptLevel::O2);
    RefSim sim;
    sim.reset(cr.program);
    EXPECT_EQ(sim.run().exitCode,
              static_cast<uint32_t>(-2 - 200 + 250));
}

TEST(CompilerExt, IrDumpIsStable)
{
    minic::TranslationUnit unit = minic::parse(
        "int main(void) { int x = 4; return x + 1; }");
    minic::LowerOptions opts;
    minic::LowerResult lowered = minic::lowerUnit(unit, opts);
    ASSERT_EQ(lowered.ir.funcs.size(), 1u);
    std::string dump = minic::dumpIr(lowered.ir.funcs[0]);
    EXPECT_NE(dump.find("func main"), std::string::npos);
    EXPECT_NE(dump.find("ret"), std::string::npos);
}

} // namespace
} // namespace rissp
