/**
 * @file
 * Tests for the unified execution layer: task-graph construction,
 * dependency ordering, deterministic single-threaded schedules,
 * failure and cancellation propagation, exactly-once stage dedup
 * under heavy contention (including the fault-injected cosim batch
 * that pins the no-poisoning contract), and the byte-identical
 * explore output across thread counts that the whole refactor is
 * pinned against.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>

#include "compiler/driver.hh"
#include "exec/scheduler.hh"
#include "explore/explorer.hh"
#include "explore/memo.hh"
#include "flow/caches.hh"
#include "verify/integration_verify.hh"

namespace rissp::exec
{
namespace
{

// ----------------------------------------------------------- graphs

TEST(TaskGraph, IdsAreCreationOrdered)
{
    TaskGraph graph;
    EXPECT_TRUE(graph.empty());
    const TaskId a = graph.add([] {}, {}, "a");
    const TaskId b = graph.add([] {}, {a}, "b");
    const TaskId c = graph.add([] {}, {a, b});
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(c, 2u);
    EXPECT_EQ(graph.size(), 3u);
    EXPECT_EQ(graph.label(1), "b");
}

TEST(Scheduler, RunsEveryNodeOnceAcrossThreadCounts)
{
    for (unsigned threads : {1u, 4u, 16u}) {
        std::vector<std::atomic<int>> counts(100);
        TaskGraph graph;
        for (size_t i = 0; i < counts.size(); ++i)
            graph.add([&counts, i] { ++counts[i]; });
        Scheduler scheduler(threads);
        scheduler.runToCompletion(std::move(graph));
        for (const std::atomic<int> &count : counts)
            EXPECT_EQ(count.load(), 1) << threads << " threads";
        EXPECT_EQ(scheduler.tasksRun(), counts.size());
    }
}

TEST(Scheduler, DependenciesCompleteBeforeDependentsStart)
{
    // A layered DAG under a contended pool: every edge must be
    // ordered finish(dep) < start(dependent) no matter which worker
    // runs (or steals) which stage.
    constexpr size_t kLayers = 8;
    constexpr size_t kWidth = 12;
    constexpr size_t kNodes = kLayers * kWidth;
    std::atomic<int> clock{0};
    std::vector<std::atomic<int>> started(kNodes);
    std::vector<std::atomic<int>> finished(kNodes);

    TaskGraph graph;
    std::vector<std::vector<TaskId>> layers(kLayers);
    for (size_t layer = 0; layer < kLayers; ++layer) {
        for (size_t w = 0; w < kWidth; ++w) {
            std::vector<TaskId> deps;
            if (layer > 0) {
                // Depend on two nodes of the previous layer.
                deps.push_back(layers[layer - 1][w]);
                deps.push_back(
                    layers[layer - 1][(w + 1) % kWidth]);
            }
            const size_t index = layer * kWidth + w;
            layers[layer].push_back(graph.add(
                [&clock, &started, &finished, index] {
                    started[index] = ++clock;
                    finished[index] = ++clock;
                },
                deps));
        }
    }
    Scheduler scheduler(8);
    scheduler.runToCompletion(std::move(graph));

    for (size_t layer = 1; layer < kLayers; ++layer) {
        for (size_t w = 0; w < kWidth; ++w) {
            const size_t node = layer * kWidth + w;
            const size_t depA = (layer - 1) * kWidth + w;
            const size_t depB =
                (layer - 1) * kWidth + (w + 1) % kWidth;
            EXPECT_LT(finished[depA].load(), started[node].load());
            EXPECT_LT(finished[depB].load(), started[node].load());
        }
    }
}

TEST(Scheduler, SerialScheduleRunsLowestReadyIdFirst)
{
    // One thread runs inline, always picking the lowest-id ready
    // node: a dependent whose deps are met runs before later
    // independent roots, so each work-order subgraph finishes
    // before the next starts (this is what bounds a serial sweep's
    // in-flight state to one point) and the schedule is exactly
    // reproducible — the property the per-row memo-hit flags of a
    // --threads 1 explore depend on.
    std::vector<int> order;
    TaskGraph graph;
    for (int i = 0; i < 3; ++i) {
        const TaskId head =
            graph.add([&order, i] { order.push_back(i); });
        graph.add([&order, i] { order.push_back(10 + i); },
                  {head});
    }
    Scheduler scheduler(1);
    scheduler.runToCompletion(std::move(graph));
    EXPECT_EQ(order, (std::vector<int>{0, 10, 1, 11, 2, 12}));
}

// ----------------------------------------------- failure semantics

TEST(Scheduler, FailedNodeSkipsDependentsAndRethrows)
{
    for (unsigned threads : {1u, 4u}) {
        std::atomic<bool> independentRan{false};
        std::atomic<bool> dependentRan{false};
        std::atomic<bool> grandchildRan{false};
        TaskGraph graph;
        const TaskId bad = graph.add(
            [] { throw std::runtime_error("stage failed"); }, {},
            "bad");
        const TaskId child = graph.add(
            [&dependentRan] { dependentRan = true; }, {bad});
        graph.add([&grandchildRan] { grandchildRan = true; },
                  {child});
        graph.add([&independentRan] { independentRan = true; });
        Scheduler scheduler(threads);
        EXPECT_THROW(scheduler.runToCompletion(std::move(graph)),
                     std::runtime_error)
            << threads;
        // Independent work still ran; the failed node's transitive
        // dependents never did.
        EXPECT_TRUE(independentRan.load()) << threads;
        EXPECT_FALSE(dependentRan.load()) << threads;
        EXPECT_FALSE(grandchildRan.load()) << threads;
    }
}

TEST(Scheduler, SubmitWaitRethrowsAndPropagatesToDependents)
{
    Scheduler scheduler(2);
    Scheduler::Handle ok =
        scheduler.submit([] {}, {}, "ok");
    ok.wait(); // completes cleanly

    Scheduler::Handle bad = scheduler.submit(
        [] { throw std::runtime_error("boom"); }, {}, "bad");
    EXPECT_THROW(bad.wait(), std::runtime_error);

    // A dependent of the failed task — whether submitted before or
    // after the failure settled — completes with the same exception
    // without running.
    std::atomic<bool> ran{false};
    Scheduler::Handle dependent = scheduler.submit(
        [&ran] { ran = true; }, {bad}, "dependent");
    EXPECT_THROW(dependent.wait(), std::runtime_error);
    EXPECT_FALSE(ran.load());
    // Only the two executed bodies count as run.
    EXPECT_EQ(scheduler.tasksRun(), 2u);
}

TEST(Scheduler, CancelPreventsExecutionAndPropagates)
{
    Scheduler scheduler(1);
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;

    // Occupy the single worker so the next submissions stay queued.
    Scheduler::Handle blocker = scheduler.submit([&] {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
    });
    std::atomic<bool> ran{false};
    Scheduler::Handle victim =
        scheduler.submit([&ran] { ran = true; }, {}, "victim");
    Scheduler::Handle dependent =
        scheduler.submit([&ran] { ran = true; }, {victim});

    EXPECT_TRUE(scheduler.cancel(victim));
    {
        std::lock_guard<std::mutex> lock(mu);
        release = true;
    }
    cv.notify_all();
    blocker.wait();

    EXPECT_THROW(victim.wait(), TaskCancelled);
    EXPECT_THROW(dependent.wait(), TaskCancelled);
    EXPECT_FALSE(ran.load());
    // A settled task cannot be cancelled again.
    EXPECT_FALSE(scheduler.cancel(victim));
    EXPECT_FALSE(scheduler.cancel(blocker));
    EXPECT_EQ(scheduler.tasksRun(), 1u); // just the blocker
}

// ------------------------------------------------ stage dedup

TEST(SchedulerDedup, ExactlyOnceUnder32WayContention)
{
    // 32 workers race the stages onto 8 distinct cache keys; the
    // promise-backed entries must compute each key exactly once and
    // give every racer the same value. TSan runs at a fraction of
    // the load — same contention shape, ~10x slower interleavings.
#ifdef RISSP_TSAN
    constexpr int kStages = 128;
#else
    constexpr int kStages = 256;
#endif
    explore::MemoCache<uint64_t, int> cache;
    std::atomic<int> computations{0};
    TaskGraph graph;
    for (int i = 0; i < kStages; ++i) {
        graph.add([&cache, &computations, i] {
            const uint64_t key = i % 8;
            const int value = cache.getOrCompute(key, [&] {
                ++computations;
                return static_cast<int>(key * 100);
            });
            EXPECT_EQ(value, static_cast<int>(key * 100));
        });
    }
    Scheduler scheduler(32);
    scheduler.runToCompletion(std::move(graph));
    EXPECT_EQ(computations.load(), 8);
    EXPECT_EQ(cache.misses(), 8u);
    EXPECT_EQ(cache.hits(), uint64_t(kStages - 8));
    EXPECT_EQ(cache.size(), 8u);
}

TEST(SchedulerDedup, CosimFaultReachesEveryWaiterWithoutPoisoning)
{
    // The satellite contract: when a deduplicated stage throws, the
    // exception must reach every waiter of that in-flight entry and
    // the key must not be poisoned — a retry recomputes. Exercised
    // end-to-end with a real co-simulation whose injected netlist
    // fault makes the stage throw.
    const char *source =
        "int main(void) { int s = 0;"
        "  for (int i = 1; i <= 10; i++) s += i;"
        "  return s; }";
    const minic::CompileResult compiled =
        minic::compile(source, minic::OptLevel::O2);
    const InstrSubset subset =
        InstrSubset::fromProgram(compiled.program);
    const explore::FingerprintPair key{
        explore::subsetFingerprint(subset), 1};

    flow::StageCaches caches;
    const Mutation fault{Mutation::Kind::CarryChainBreak, 1};
    auto cosimStage = [&](const Mutation *inject) {
        CosimOptions options;
        options.fault = inject;
        options.contextEvents = 0;
        const CosimReport report =
            cosimulate(compiled.program, subset, options);
        if (!report.passed)
            throw std::runtime_error("cosim diverged: " +
                                     report.firstDivergence);
        flow::SimOutcome outcome;
        outcome.cosimPassed = true;
        outcome.cycles = report.instret;
        return outcome;
    };

    // Round 1: every stage of the batch dedups onto one faulty
    // computation; each either owns the throwing compute or waits
    // on it — all 16 must observe the exception, none may hang.
    std::atomic<int> failures{0};
    TaskGraph batch;
    for (int i = 0; i < 16; ++i) {
        batch.add([&] {
            try {
                caches.sim.getOrCompute(
                    key, [&] { return cosimStage(&fault); });
            } catch (const std::runtime_error &) {
                ++failures;
            }
        });
    }
    Scheduler scheduler(8);
    scheduler.runToCompletion(std::move(batch));
    EXPECT_EQ(failures.load(), 16);
    EXPECT_EQ(caches.sim.size(), 0u); // entry erased, not poisoned

    // Round 2: the same key recomputes cleanly without the fault.
    const flow::SimOutcome outcome = caches.sim.getOrCompute(
        key, [&] { return cosimStage(nullptr); });
    EXPECT_TRUE(outcome.cosimPassed);
    EXPECT_GT(outcome.cycles, 0u);
    EXPECT_EQ(caches.sim.size(), 1u);
}

// --------------------------------------------------- determinism

TEST(ExploreDeterminism, ThreadCounts1_4_16EmitIdenticalTables)
{
    explore::ExplorationPlan plan;
    plan.subsets = {
        explore::SubsetSpec::fromWorkload("crc32", "fit-crc32"),
        explore::SubsetSpec::fromWorkload("armpit", "fit-armpit"),
        explore::SubsetSpec::full()};
    plan.workloads = {"crc32", "armpit", "aha-mont64"};

    std::string serialCsv;
    std::string serialJson;
    for (unsigned threads : {1u, 4u, 16u}) {
        explore::ExplorerOptions options;
        options.threads = threads;
        explore::Explorer engine(options);
        const explore::ResultTable table = engine.explore(plan);
        ASSERT_EQ(table.size(), 9u);
        if (threads == 1) {
            serialCsv = table.csv();
            serialJson = table.json();
        } else {
            EXPECT_EQ(table.csv(), serialCsv) << threads;
            EXPECT_EQ(table.json(), serialJson) << threads;
        }
    }
}

} // namespace
} // namespace rissp::exec
