/**
 * @file
 * Tests for the verification substrate itself: the Figure 4 block
 * pre-verification flow and the §3.4.2 integration checks.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "verify/block_verify.hh"
#include "verify/integration_verify.hh"
#include "verify/spec.hh"

namespace rissp
{
namespace
{

class BlockCertTest : public ::testing::TestWithParam<int>
{
  protected:
    Op op() const { return static_cast<Op>(GetParam()); }
};

std::string
opParamName(const ::testing::TestParamInfo<int> &info)
{
    return std::string(opName(static_cast<Op>(info.param)));
}

TEST_P(BlockCertTest, TestbenchPassesCleanBlock)
{
    auto vecs = blockVectors(op(), 0xB10C, 200);
    TestbenchReport rpt = runBlockTestbench(op(), vecs);
    EXPECT_TRUE(rpt.passed()) << rpt.firstFailure;
    EXPECT_GE(rpt.vectorsRun, 196u + 200u);
}

TEST_P(BlockCertTest, PropertiesHold)
{
    auto vecs = blockVectors(op(), 0xB10C, 200);
    for (const PropertyResult &p :
         checkBlockProperties(op(), vecs))
        EXPECT_EQ(p.violations, 0u)
            << opName(op()) << ": " << p.name;
}

TEST_P(BlockCertTest, MutationCoverageIsComplete)
{
    auto vecs = blockVectors(op(), 0xB10C, 200);
    MutationReport rpt = runMutationCoverage(op(), vecs);
    EXPECT_TRUE(rpt.fullCoverage())
        << opName(op()) << " survivors: "
        << (rpt.survivors.empty() ? "none" : rpt.survivors[0]);
    EXPECT_EQ(rpt.mutantsGenerated, mutationCatalogue().size());
}

TEST_P(BlockCertTest, ArchTestSignatureMatchesReference)
{
    Program prog = archTestProgram(op());
    // Custom-extension ops are opt-in: stitch them explicitly.
    std::set<Op> ops = InstrSubset::fullRv32e().ops();
    ops.insert(op());
    CosimReport rpt = cosimulate(prog, InstrSubset(ops), 100'000);
    EXPECT_TRUE(rpt.passed)
        << opName(op()) << ": " << rpt.firstDivergence;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, BlockCertTest,
    ::testing::Range(0, static_cast<int>(kNumOps)), opParamName);

TEST(Certification, WholeLibraryCertifies)
{
    HwLibrary lib; // fresh instance so certs start clean
    EXPECT_FALSE(lib.fullyVerified());
    certifyLibrary(lib, 0xB10C, 120);
    EXPECT_TRUE(lib.fullyVerified());
    const BlockCert &cert = lib.cert(Op::Add);
    EXPECT_TRUE(cert.functional);
    EXPECT_TRUE(cert.mutationCovered);
    EXPECT_TRUE(cert.formal);
    EXPECT_GT(cert.vectorsRun, 100u);
    EXPECT_GT(cert.mutantsTotal, 20u);
}

TEST(Mutation, InjectedFaultsAreObservable)
{
    // A broken carry chain must flip some add result.
    Mutation mut{Mutation::Kind::CarryChainBreak, 1};
    auto vecs = blockVectors(Op::Add, 0xB10C, 100);
    TestbenchReport rpt = runBlockTestbench(Op::Add, vecs, &mut);
    EXPECT_FALSE(rpt.passed());

    // Branch polarity inversion must be caught on beq.
    Mutation mut2{Mutation::Kind::BranchPolarity, 0};
    auto vecs2 = blockVectors(Op::Beq, 0xB10C, 100);
    EXPECT_FALSE(runBlockTestbench(Op::Beq, vecs2, &mut2).passed());

    // Sign-extension faults must be caught on lb but are equivalent
    // (filtered, not killed) on lbu.
    Mutation mut3{Mutation::Kind::WrongSignExt, 0};
    auto vecs3 = blockVectors(Op::Lb, 0xB10C, 100);
    EXPECT_FALSE(runBlockTestbench(Op::Lb, vecs3, &mut3).passed());
    auto vecs4 = blockVectors(Op::Lbu, 0xB10C, 100);
    EXPECT_TRUE(runBlockTestbench(Op::Lbu, vecs4, &mut3).passed());
}

TEST(RvfiMonitor, AcceptsCleanStream)
{
    Program p = assemble(R"(
        li a0, 10
        li a1, 0
    loop:
        add a1, a1, a0
        addi a0, a0, -1
        bne a0, zero, loop
        sw a1, 0x200(zero)
        lw a2, 0x200(zero)
        ecall
    )");
    Rissp dut(InstrSubset::fullRv32e(), "mon");
    dut.reset(p);
    std::vector<RetireEvent> events;
    while (true) {
        RetireEvent ev = dut.step();
        events.push_back(ev);
        if (ev.halt || ev.trap)
            break;
    }
    MonitorReport rpt = checkRvfiStream(events);
    EXPECT_TRUE(rpt.passed())
        << (rpt.violations.empty() ? "" : rpt.violations[0]);
    EXPECT_EQ(rpt.eventsChecked, events.size());
}

TEST(RvfiMonitor, FlagsBrokenStreams)
{
    RetireEvent a;
    a.order = 0;
    a.pc = 0;
    a.nextPc = 4;
    RetireEvent b = a;
    b.order = 1;
    b.pc = 8; // chain broken (should be 4)
    b.nextPc = 12;
    MonitorReport rpt = checkRvfiStream({a, b});
    EXPECT_FALSE(rpt.passed());
    EXPECT_NE(rpt.violations[0].find("pc chain"), std::string::npos);

    RetireEvent c;
    c.order = 0;
    c.pc = 0;
    c.nextPc = 4;
    c.rd = 0;
    c.rdData = 7; // x0 written
    MonitorReport rpt2 = checkRvfiStream({c});
    EXPECT_FALSE(rpt2.passed());

    RetireEvent d;
    d.order = 5; // wrong order
    d.pc = 0;
    d.nextPc = 4;
    EXPECT_FALSE(checkRvfiStream({d}).passed());
}

class RandomCosimTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomCosimTest, RisspTracksReference)
{
    const uint64_t seed = 0xFACE0000u + GetParam();
    InstrSubset full = InstrSubset::fullRv32e();
    Program prog = randomProgram(seed, 300, full);
    CosimReport rpt = cosimulate(prog, full, 100'000);
    EXPECT_TRUE(rpt.passed) << rpt.firstDivergence;
    EXPECT_TRUE(rpt.monitor.passed());
    EXPECT_GT(rpt.monitor.eventsChecked, 300u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCosimTest,
                         ::testing::Range(0, 12));

TEST(Cosim, TrapsOnOutOfSubsetInstruction)
{
    // A RISSP without 'sub' must trap where the reference executes.
    Program p = assemble(R"(
        li a0, 5
        li a1, 3
        sub a2, a0, a1
        ecall
    )");
    InstrSubset no_sub = InstrSubset::fromNames(
        {"addi", "lui", "jal"});
    Rissp dut(no_sub, "no-sub");
    dut.reset(p);
    RunResult rr = dut.run(100);
    EXPECT_EQ(rr.reason, StopReason::Trapped);
    EXPECT_EQ(rr.stopPc, 8u);
}

TEST(Spec, MatchesIssOnRandomInstructions)
{
    // Spec model vs reference ISS: execute single instructions in
    // isolation and compare rd/next-pc behaviour.
    Rng rng(77);
    InstrSubset full = InstrSubset::fullRv32e();
    std::vector<Op> ops(full.ops().begin(), full.ops().end());
    for (int iter = 0; iter < 4000; ++iter) {
        const Op op = ops[rng.below(
            static_cast<uint32_t>(ops.size()))];
        if (isLoad(op) || isStore(op))
            continue; // memory covered by cosim
        auto vecs = blockVectors(op, rng.next(), 1);
        const BlockVector &v = vecs.back();
        SpecEffect fx = specExecute(v.in.insn, v.in.pc,
                                    v.in.rs1Data, v.in.rs2Data);
        // Cross-check against the reference ISS semantics.
        RefSim sim;
        Program stub;
        Segment seg;
        seg.base = v.in.pc;
        for (unsigned b = 0; b < 4; ++b)
            seg.bytes.push_back(
                static_cast<uint8_t>(v.in.insn.raw >> (8 * b)));
        stub.segments.push_back(seg);
        stub.entry = v.in.pc;
        stub.textBase = v.in.pc;
        stub.textSize = 4;
        sim.reset(stub);
        sim.setReg(v.in.insn.rs1, v.in.rs1Data);
        sim.setReg(v.in.insn.rs2, v.in.rs2Data);
        // Read operands back so rs1 == rs2 aliasing is honoured.
        const uint32_t rs1 = sim.reg(v.in.insn.rs1);
        const uint32_t rs2 = sim.reg(v.in.insn.rs2);
        SpecEffect fx0 = specExecute(v.in.insn, v.in.pc, rs1, rs2);
        RetireEvent ev = sim.step();
        if (!fx0.halt)
            EXPECT_EQ(ev.nextPc, fx0.nextPc)
                << disassemble(v.in.insn.raw);
        if (fx0.writesRd && v.in.insn.rd != 0)
            EXPECT_EQ(sim.reg(v.in.insn.rd), fx0.rdValue)
                << disassemble(v.in.insn.raw);
        (void)fx;
    }
}

} // namespace
} // namespace rissp
