/**
 * @file
 * Tests for the verification substrate itself: the Figure 4 block
 * pre-verification flow and the §3.4.2 integration checks.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "verify/block_verify.hh"
#include "verify/integration_verify.hh"
#include "verify/spec.hh"

namespace rissp
{
namespace
{

class BlockCertTest : public ::testing::TestWithParam<int>
{
  protected:
    Op op() const { return static_cast<Op>(GetParam()); }
};

std::string
opParamName(const ::testing::TestParamInfo<int> &info)
{
    return std::string(opName(static_cast<Op>(info.param)));
}

TEST_P(BlockCertTest, TestbenchPassesCleanBlock)
{
    auto vecs = blockVectors(op(), 0xB10C, 200);
    TestbenchReport rpt = runBlockTestbench(op(), vecs);
    EXPECT_TRUE(rpt.passed()) << rpt.firstFailure;
    EXPECT_GE(rpt.vectorsRun, 196u + 200u);
}

TEST_P(BlockCertTest, PropertiesHold)
{
    auto vecs = blockVectors(op(), 0xB10C, 200);
    for (const PropertyResult &p :
         checkBlockProperties(op(), vecs))
        EXPECT_EQ(p.violations, 0u)
            << opName(op()) << ": " << p.name;
}

TEST_P(BlockCertTest, MutationCoverageIsComplete)
{
    auto vecs = blockVectors(op(), 0xB10C, 200);
    MutationReport rpt = runMutationCoverage(op(), vecs);
    EXPECT_TRUE(rpt.fullCoverage())
        << opName(op()) << " survivors: "
        << (rpt.survivors.empty() ? "none" : rpt.survivors[0]);
    EXPECT_EQ(rpt.mutantsGenerated, mutationCatalogue().size());
}

TEST_P(BlockCertTest, ArchTestSignatureMatchesReference)
{
    Program prog = archTestProgram(op());
    // Custom-extension ops are opt-in: stitch them explicitly.
    std::set<Op> ops = InstrSubset::fullRv32e().ops();
    ops.insert(op());
    CosimReport rpt = cosimulate(prog, InstrSubset(ops), 100'000);
    EXPECT_TRUE(rpt.passed)
        << opName(op()) << ": " << rpt.firstDivergence;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, BlockCertTest,
    ::testing::Range(0, static_cast<int>(kNumOps)), opParamName);

TEST(Certification, WholeLibraryCertifies)
{
    HwLibrary lib; // fresh instance so certs start clean
    EXPECT_FALSE(lib.fullyVerified());
    certifyLibrary(lib, 0xB10C, 120);
    EXPECT_TRUE(lib.fullyVerified());
    const BlockCert &cert = lib.cert(Op::Add);
    EXPECT_TRUE(cert.functional);
    EXPECT_TRUE(cert.mutationCovered);
    EXPECT_TRUE(cert.formal);
    EXPECT_GT(cert.vectorsRun, 100u);
    EXPECT_GT(cert.mutantsTotal, 20u);
}

TEST(Mutation, InjectedFaultsAreObservable)
{
    // A broken carry chain must flip some add result.
    Mutation mut{Mutation::Kind::CarryChainBreak, 1};
    auto vecs = blockVectors(Op::Add, 0xB10C, 100);
    TestbenchReport rpt = runBlockTestbench(Op::Add, vecs, &mut);
    EXPECT_FALSE(rpt.passed());

    // Branch polarity inversion must be caught on beq.
    Mutation mut2{Mutation::Kind::BranchPolarity, 0};
    auto vecs2 = blockVectors(Op::Beq, 0xB10C, 100);
    EXPECT_FALSE(runBlockTestbench(Op::Beq, vecs2, &mut2).passed());

    // Sign-extension faults must be caught on lb but are equivalent
    // (filtered, not killed) on lbu.
    Mutation mut3{Mutation::Kind::WrongSignExt, 0};
    auto vecs3 = blockVectors(Op::Lb, 0xB10C, 100);
    EXPECT_FALSE(runBlockTestbench(Op::Lb, vecs3, &mut3).passed());
    auto vecs4 = blockVectors(Op::Lbu, 0xB10C, 100);
    EXPECT_TRUE(runBlockTestbench(Op::Lbu, vecs4, &mut3).passed());
}

TEST(RvfiMonitor, AcceptsCleanStream)
{
    Program p = assemble(R"(
        li a0, 10
        li a1, 0
    loop:
        add a1, a1, a0
        addi a0, a0, -1
        bne a0, zero, loop
        sw a1, 0x200(zero)
        lw a2, 0x200(zero)
        ecall
    )");
    Rissp dut(InstrSubset::fullRv32e(), "mon");
    dut.reset(p);
    std::vector<RetireEvent> events;
    while (true) {
        RetireEvent ev = dut.step();
        events.push_back(ev);
        if (ev.halt || ev.trap)
            break;
    }
    MonitorReport rpt = checkRvfiStream(events);
    EXPECT_TRUE(rpt.passed())
        << (rpt.violations.empty() ? "" : rpt.violations[0]);
    EXPECT_EQ(rpt.eventsChecked, events.size());
}

TEST(RvfiMonitor, FlagsBrokenStreams)
{
    RetireEvent a;
    a.order = 0;
    a.pc = 0;
    a.nextPc = 4;
    RetireEvent b = a;
    b.order = 1;
    b.pc = 8; // chain broken (should be 4)
    b.nextPc = 12;
    MonitorReport rpt = checkRvfiStream({a, b});
    EXPECT_FALSE(rpt.passed());
    EXPECT_NE(rpt.violations[0].find("pc chain"), std::string::npos);

    RetireEvent c;
    c.order = 0;
    c.pc = 0;
    c.nextPc = 4;
    c.rd = 0;
    c.rdData = 7; // x0 written
    MonitorReport rpt2 = checkRvfiStream({c});
    EXPECT_FALSE(rpt2.passed());

    RetireEvent d;
    d.order = 5; // wrong order
    d.pc = 0;
    d.nextPc = 4;
    EXPECT_FALSE(checkRvfiStream({d}).passed());
}

/**
 * The RVFI reporter the streaming checker replaced: the original
 * whole-vector implementation, kept verbatim so equivalence of the
 * incremental checker can be asserted against it.
 */
MonitorReport
legacyCheckRvfiStream(const std::vector<RetireEvent> &events)
{
    MonitorReport rpt;
    for (size_t i = 0; i < events.size(); ++i) {
        const RetireEvent &ev = events[i];
        ++rpt.eventsChecked;
        auto flag = [&](const char *what) {
            rpt.violations.push_back(strFormat(
                "event %zu (pc=0x%08x): %s", i, ev.pc, what));
        };
        if (ev.order != i)
            flag("retirement order not monotone");
        if (ev.rd == 0 && ev.rdData != 0)
            flag("x0 written with a non-zero value");
        if (ev.memRead && ev.memWrite)
            flag("simultaneous load and store");
        if ((ev.memRead || ev.memWrite) &&
            ev.memBytes != 1 && ev.memBytes != 2 && ev.memBytes != 4)
            flag("illegal memory access width");
        if (!ev.trap && !ev.halt && (ev.nextPc & 3))
            flag("misaligned next pc");
        if (i + 1 < events.size()) {
            if (ev.halt || ev.trap)
                flag("retirement after halt/trap");
            else if (events[i + 1].pc != ev.nextPc)
                flag("pc chain broken");
        }
    }
    return rpt;
}

void
expectSameReport(const std::vector<RetireEvent> &events)
{
    const MonitorReport legacy = legacyCheckRvfiStream(events);
    RvfiStreamChecker checker;
    for (const RetireEvent &ev : events)
        checker.push(ev);
    const MonitorReport &streamed = checker.report();
    EXPECT_EQ(streamed.eventsChecked, legacy.eventsChecked);
    EXPECT_EQ(streamed.violations, legacy.violations);
    // checkRvfiStream() is a thin wrapper over the checker; keep the
    // public entry point honest too.
    EXPECT_EQ(checkRvfiStream(events).violations, legacy.violations);
}

TEST(RvfiMonitor, StreamingCheckerMatchesLegacyReporter)
{
    // A clean stream from a real run.
    Program p = randomProgram(0xCAFE, 120, InstrSubset::fullRv32e());
    Rissp dut(InstrSubset::fullRv32e(), "legacy-cmp");
    dut.reset(p);
    std::vector<RetireEvent> clean;
    for (int i = 0; i < 100000; ++i) {
        RetireEvent ev = dut.step();
        clean.push_back(ev);
        if (ev.halt || ev.trap)
            break;
    }
    expectSameReport(clean);
    expectSameReport({});

    // Corrupted variants exercising every violation, in every
    // position, so ordering and indices of the reports must agree.
    for (size_t victim : {size_t{0}, clean.size() / 2,
                          clean.size() - 1}) {
        auto corrupt = [&](auto &&mutate) {
            std::vector<RetireEvent> evs = clean;
            mutate(evs[victim]);
            expectSameReport(evs);
        };
        corrupt([](RetireEvent &ev) { ev.order += 5; });
        corrupt([](RetireEvent &ev) { ev.rd = 0; ev.rdData = 9; });
        corrupt([](RetireEvent &ev) {
            ev.memRead = ev.memWrite = true;
        });
        corrupt([](RetireEvent &ev) {
            ev.memRead = true;
            ev.memBytes = 3;
        });
        corrupt([](RetireEvent &ev) { ev.nextPc |= 2; });
        corrupt([](RetireEvent &ev) { ev.halt = true; });
        corrupt([](RetireEvent &ev) { ev.trap = true; });
        corrupt([](RetireEvent &ev) { ev.pc += 4; ev.nextPc += 4; });
    }
}

TEST(Cosim, LoadToX0MatchesReference)
{
    // Regression: the DUT used to zero memData for rd == x0 loads
    // while the reference reported the raw DMEM data, so a legal
    // `lw x0, ...` falsely diverged. Both now report the data.
    Program p = assemble(R"(
        li a0, 0x600
        li a1, 0x89ABCDEF
        sw a1, 0(a0)
        lw zero, 0(a0)
        lh zero, 0(a0)
        lbu zero, 0(a0)
        ecall
    )");
    CosimReport rpt =
        cosimulate(p, InstrSubset::fullRv32e(), 1000);
    EXPECT_TRUE(rpt.passed) << rpt.firstDivergence;

    // And the RVFI record carries the (width-extended) DMEM data.
    Rissp dut(InstrSubset::fullRv32e(), "x0-load");
    dut.reset(p);
    RetireEvent ev;
    do {
        ev = dut.step();
    } while (!ev.memRead);
    EXPECT_EQ(ev.rd, 0);
    EXPECT_EQ(ev.rdData, 0u);       // x0 stays hardwired
    EXPECT_EQ(ev.memData, 0x89ABCDEFu);
    EXPECT_EQ(dut.reg(0), 0u);
}

TEST(Cosim, SelfModifyingCodeStaysInLockstep)
{
    // Covers the *Rissp* side of decoded-cache invalidation (RefSim
    // has its own direct tests): both simulators must fetch the
    // patched instruction, and their traces must stay identical. If
    // the DUT served a stale pre-patch decode, its a2 would differ
    // from the reference's and the cosim would diverge.
    const uint32_t patched = encodeI(Op::Addi, 12, 0, 99);
    Program p = assemble(strFormat(R"(
        la a0, patch
        li a1, %d
        sw a1, 0(a0)
    patch:
        addi a2, zero, 1
        ecall
    )", static_cast<int32_t>(patched)));
    CosimReport rpt =
        cosimulate(p, InstrSubset::fullRv32e(), 1000);
    EXPECT_TRUE(rpt.passed) << rpt.firstDivergence;

    // And the DUT really executed the patched instruction.
    Rissp dut(InstrSubset::fullRv32e(), "smc");
    dut.reset(p);
    RunResult r = dut.run(1000);
    EXPECT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(dut.reg(12), 99u);

    // Sub-word patch too: byte 3 of an I-type word is imm[11:4], so
    // storing 42 there rewrites the immediate to 672.
    Program pb = assemble(R"(
        la a0, patch
        li a1, 42
        sb a1, 3(a0)
    patch:
        addi a2, zero, 0
        ecall
    )");
    CosimReport rptb =
        cosimulate(pb, InstrSubset::fullRv32e(), 1000);
    EXPECT_TRUE(rptb.passed) << rptb.firstDivergence;
    Rissp dutb(InstrSubset::fullRv32e(), "smc-subword");
    dutb.reset(pb);
    EXPECT_EQ(dutb.run(1000).reason, StopReason::Halted);
    EXPECT_EQ(dutb.reg(12), 672u);
}

TEST(Cosim, WrappingAccessTrapsIdentically)
{
    // Address-space wrap is a trap in both simulators (satellite of
    // the Memory wrap fix); lock-step agreement means the cosim run
    // itself passes, with the trap as the final retirement.
    Program p = assemble(R"(
        li a0, -2
        lw a1, 0(a0)
        ecall
    )");
    CosimReport rpt =
        cosimulate(p, InstrSubset::fullRv32e(), 1000);
    EXPECT_TRUE(rpt.passed) << rpt.firstDivergence;
    EXPECT_EQ(rpt.instret, 2u);

    Program ps = assemble(R"(
        li a0, -1
        sh a0, 0(a0)
        ecall
    )");
    CosimReport rpt2 =
        cosimulate(ps, InstrSubset::fullRv32e(), 1000);
    EXPECT_TRUE(rpt2.passed) << rpt2.firstDivergence;
}

TEST(Cosim, DivergenceKeepsRecentEventContext)
{
    Program p = archTestProgram(Op::Add);
    Mutation fault{Mutation::Kind::CarryChainBreak, 3};
    CosimOptions options;
    options.maxSteps = 100'000;
    options.fault = &fault;
    CosimReport rpt =
        cosimulate(p, InstrSubset::fullRv32e(), options);
    ASSERT_FALSE(rpt.passed);
    ASSERT_FALSE(rpt.recentDut.empty());
    EXPECT_LE(rpt.recentDut.size(), options.contextEvents);
    EXPECT_EQ(rpt.recentDut.size(), rpt.recentRef.size());
    // The divergent step is the newest ring entry, and the ring is
    // chronologically ordered.
    EXPECT_EQ(rpt.recentDut.back().order + 1,
              rpt.monitor.eventsChecked);
    for (size_t i = 1; i < rpt.recentDut.size(); ++i)
        EXPECT_EQ(rpt.recentDut[i].order,
                  rpt.recentDut[i - 1].order + 1);
    // A clean pass retains no context.
    CosimReport ok = cosimulate(p, InstrSubset::fullRv32e(), 100'000);
    EXPECT_TRUE(ok.passed);
    EXPECT_TRUE(ok.recentDut.empty());
    EXPECT_TRUE(ok.recentRef.empty());
}

TEST(Cosim, LongRunMemoryStaysBounded)
{
    // 1.5 M steps against a step budget: the streaming monitor and
    // the fixed ring are the only per-step state, so peak memory no
    // longer scales with instret (the ASan CI job watches this test).
    Program p = assemble("loop: jal zero, loop");
    const uint64_t kBudget = 1'500'000;
    CosimReport rpt =
        cosimulate(p, InstrSubset::fullRv32e(), kBudget);
    EXPECT_FALSE(rpt.passed);
    EXPECT_EQ(rpt.firstDivergence, "step limit reached");
    EXPECT_EQ(rpt.monitor.eventsChecked, kBudget);
    EXPECT_TRUE(rpt.monitor.passed());
    CosimOptions options;
    options.maxSteps = 1000;
    options.contextEvents = 8;
    CosimReport small = cosimulate(p, InstrSubset::fullRv32e(),
                                   options);
    EXPECT_EQ(small.recentDut.size(), 8u);
}

TEST(StructuralFastPath, MatchesGateLevelChains)
{
    // The wire-equivalent fast paths (taken when no Mutation is
    // supplied) must agree bit-for-bit with the gate-level chains (an
    // inactive Mutation forces the structural path).
    Rng rng(0x57AC);
    const Mutation none; // Kind::None: structural path, no fault
    for (int i = 0; i < 20000; ++i) {
        const uint32_t a = rng.next32();
        const uint32_t b = rng.next32();
        const bool cin = rng.below(2) != 0;
        bool fast_cout = false, slow_cout = false;
        EXPECT_EQ(structAdd(a, b, cin, fast_cout, nullptr),
                  structAdd(a, b, cin, slow_cout, &none));
        EXPECT_EQ(fast_cout, slow_cout);
        EXPECT_EQ(structSub(a, b, fast_cout, nullptr),
                  structSub(a, b, slow_cout, &none));
        EXPECT_EQ(fast_cout, slow_cout);
        const unsigned amount = rng.below(64); // includes >31
        EXPECT_EQ(structShiftRight(a, amount, false, nullptr),
                  structShiftRight(a, amount, false, &none));
        EXPECT_EQ(structShiftRight(a, amount, true, nullptr),
                  structShiftRight(a, amount, true, &none));
        EXPECT_EQ(structShiftLeft(a, amount, nullptr),
                  structShiftLeft(a, amount, &none));
        EXPECT_EQ(structMul(a, b, nullptr), structMul(a, b, &none));
        EXPECT_EQ(structLt(a, b, true, nullptr),
                  structLt(a, b, true, &none));
        EXPECT_EQ(structLt(a, b, false, nullptr),
                  structLt(a, b, false, &none));
    }
}

class RandomCosimTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomCosimTest, RisspTracksReference)
{
    const uint64_t seed = 0xFACE0000u + GetParam();
    InstrSubset full = InstrSubset::fullRv32e();
    Program prog = randomProgram(seed, 300, full);
    CosimReport rpt = cosimulate(prog, full, 100'000);
    EXPECT_TRUE(rpt.passed) << rpt.firstDivergence;
    EXPECT_TRUE(rpt.monitor.passed());
    EXPECT_GT(rpt.monitor.eventsChecked, 300u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCosimTest,
                         ::testing::Range(0, 12));

/** Lock-step fuzz across instruction-subset shapes, not just the
 *  full ISA: memory-heavy and ALU-only RISSPs must track the
 *  reference on random programs through the pre-decoded fetch and
 *  dense-memory fast paths. */
class SubsetCosimFuzz
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(SubsetCosimFuzz, RisspTracksReferenceOnSubset)
{
    static const std::vector<std::vector<std::string>> kSubsets = {
        {"addi", "add", "sub", "lui", "lw", "lh", "lb", "lbu",
         "lhu", "sw", "sh", "sb", "beq", "bne"},
        // ALU-heavy; sw stays in because randomProgram dumps the
        // register file into the signature with word stores.
        {"addi", "xori", "ori", "andi", "slli", "srli", "srai",
         "slt", "sltu", "slti", "sltiu", "lui", "blt", "bgeu",
         "sw"},
    };
    const auto [subset_idx, seed_idx] = GetParam();
    InstrSubset subset =
        InstrSubset::fromNames(kSubsets[subset_idx]);
    Program prog = randomProgram(0xB0B0 + seed_idx * 131 + subset_idx,
                                 400, subset);
    CosimReport rpt = cosimulate(prog, subset, 100'000);
    EXPECT_TRUE(rpt.passed) << rpt.firstDivergence;
    EXPECT_GT(rpt.monitor.eventsChecked, 400u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SubsetCosimFuzz,
    ::testing::Combine(::testing::Range(0, 2),
                       ::testing::Range(0, 6)));

TEST(Cosim, TrapsOnOutOfSubsetInstruction)
{
    // A RISSP without 'sub' must trap where the reference executes.
    Program p = assemble(R"(
        li a0, 5
        li a1, 3
        sub a2, a0, a1
        ecall
    )");
    InstrSubset no_sub = InstrSubset::fromNames(
        {"addi", "lui", "jal"});
    Rissp dut(no_sub, "no-sub");
    dut.reset(p);
    RunResult rr = dut.run(100);
    EXPECT_EQ(rr.reason, StopReason::Trapped);
    EXPECT_EQ(rr.stopPc, 8u);
}

TEST(Spec, MatchesIssOnRandomInstructions)
{
    // Spec model vs reference ISS: execute single instructions in
    // isolation and compare rd/next-pc behaviour.
    Rng rng(77);
    InstrSubset full = InstrSubset::fullRv32e();
    std::vector<Op> ops(full.ops().begin(), full.ops().end());
    for (int iter = 0; iter < 4000; ++iter) {
        const Op op = ops[rng.below(
            static_cast<uint32_t>(ops.size()))];
        if (isLoad(op) || isStore(op))
            continue; // memory covered by cosim
        auto vecs = blockVectors(op, rng.next(), 1);
        const BlockVector &v = vecs.back();
        SpecEffect fx = specExecute(v.in.insn, v.in.pc,
                                    v.in.rs1Data, v.in.rs2Data);
        // Cross-check against the reference ISS semantics.
        RefSim sim;
        Program stub;
        Segment seg;
        seg.base = v.in.pc;
        for (unsigned b = 0; b < 4; ++b)
            seg.bytes.push_back(
                static_cast<uint8_t>(v.in.insn.raw >> (8 * b)));
        stub.segments.push_back(seg);
        stub.entry = v.in.pc;
        stub.textBase = v.in.pc;
        stub.textSize = 4;
        sim.reset(stub);
        sim.setReg(v.in.insn.rs1, v.in.rs1Data);
        sim.setReg(v.in.insn.rs2, v.in.rs2Data);
        // Read operands back so rs1 == rs2 aliasing is honoured.
        const uint32_t rs1 = sim.reg(v.in.insn.rs1);
        const uint32_t rs2 = sim.reg(v.in.insn.rs2);
        SpecEffect fx0 = specExecute(v.in.insn, v.in.pc, rs1, rs2);
        RetireEvent ev = sim.step();
        if (!fx0.halt)
            EXPECT_EQ(ev.nextPc, fx0.nextPc)
                << disassemble(v.in.insn.raw);
        if (fx0.writesRd && v.in.insn.rd != 0)
            EXPECT_EQ(sim.reg(v.in.insn.rd), fx0.rdValue)
                << disassemble(v.in.insn.raw);
        (void)fx;
    }
}

} // namespace
} // namespace rissp
