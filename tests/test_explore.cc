/**
 * @file
 * Tests for the design-space exploration engine: plan expansion and
 * parsing, the work-stealing pool, exactly-once memoization,
 * determinism under multi-threaded execution, and the Pareto
 * frontier on hand-computed points.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "explore/explorer.hh"
#include "explore/fingerprint.hh"
#include "explore/memo.hh"
#include "explore/workpool.hh"

namespace rissp::explore
{
namespace
{

// ---------------------------------------------------------------- plans

TEST(Plan, CartesianExpansion)
{
    ExplorationPlan plan;
    plan.subsets = {SubsetSpec::full("full"),
                    SubsetSpec::fromNames("tiny", {"addi", "jal"})};
    plan.workloads = {"crc32", "armpit", "aha-mont64"};
    EXPECT_EQ(plan.pointCount(), 6u);

    const std::vector<PlanPoint> points = plan.expand();
    ASSERT_EQ(points.size(), 6u);
    // Workload is the innermost axis; indices are row numbers.
    EXPECT_EQ(points[0].subsetIdx, 0u);
    EXPECT_EQ(points[0].workloadIdx, 0u);
    EXPECT_EQ(points[1].workloadIdx, 1u);
    EXPECT_EQ(points[3].subsetIdx, 1u);
    EXPECT_EQ(points[3].workloadIdx, 0u);
    for (size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(points[i].index, i);
    // No techs listed: every point uses the default slot.
    for (const PlanPoint &pt : points)
        EXPECT_EQ(pt.techIdx, 0u);
}

TEST(Plan, TechAxisMultiplies)
{
    ExplorationPlan plan;
    plan.subsets = {SubsetSpec::full()};
    plan.workloads = {"crc32"};
    plan.techs.resize(3);
    EXPECT_EQ(plan.expand().size(), 3u);
}

TEST(Plan, PairedExpansion)
{
    ExplorationPlan plan = ExplorationPlan::perWorkloadRissps(
        {"crc32", "armpit"}, true);
    EXPECT_EQ(plan.mode, ExplorationPlan::Mode::Paired);
    // Two per-workload subsets plus the full baseline.
    ASSERT_EQ(plan.subsets.size(), 3u);
    EXPECT_EQ(plan.subsets[2].kind, SubsetSpec::Kind::Full);

    const std::vector<PlanPoint> points = plan.expand();
    ASSERT_EQ(points.size(), 3u);
    for (const PlanPoint &pt : points)
        EXPECT_EQ(pt.subsetIdx, pt.workloadIdx);
}

TEST(Plan, PairedSizeMismatchFailsValidation)
{
    ExplorationPlan plan;
    plan.mode = ExplorationPlan::Mode::Paired;
    plan.subsets = {SubsetSpec::full()};
    plan.workloads = {"crc32", "armpit"};
    const Status status = plan.validate();
    EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(status.message().find("paired"), std::string::npos);
}

TEST(Plan, EmptyAxesFailValidation)
{
    ExplorationPlan plan;
    EXPECT_NE(plan.validate().message().find("no subsets"),
              std::string::npos);
    plan.subsets = {SubsetSpec::full()};
    EXPECT_NE(plan.validate().message().find("no workloads"),
              std::string::npos);
    plan.workloads = {"crc32"};
    EXPECT_TRUE(plan.validate().isOk());
}

TEST(Plan, ParseRoundTrip)
{
    const ExplorationPlan plan = ExplorationPlan::parse(
        "# comment\n"
        "opt O1\n"
        "mode cartesian\n"
        "threads 3\n"
        "workload crc32 armpit\n"
        "subset tiny = addi add lw sw   # trailing comment\n"
        "subset fit  = @crc32\n"
        "subset full = @full\n"
        "tech flexic-0.6um\n"
        "tech flexic-0.6um gateDelayNs=20 ffPowerMultiplier=12\n"
        "tech silicon-65nm:ffPowerRatio=8\n")
        .take();
    EXPECT_EQ(plan.opt, minic::OptLevel::O1);
    EXPECT_EQ(plan.threads, 3u);
    ASSERT_EQ(plan.workloads.size(), 2u);
    ASSERT_EQ(plan.subsets.size(), 3u);
    EXPECT_EQ(plan.subsets[0].kind, SubsetSpec::Kind::Explicit);
    EXPECT_EQ(plan.subsets[0].mnemonics.size(), 4u);
    EXPECT_EQ(plan.subsets[1].kind, SubsetSpec::Kind::FromWorkload);
    EXPECT_EQ(plan.subsets[1].workload, "crc32");
    EXPECT_EQ(plan.subsets[2].kind, SubsetSpec::Kind::Full);
    ASSERT_EQ(plan.techs.size(), 3u);
    EXPECT_DOUBLE_EQ(plan.techs[1].tech.gateDelayNs, 20.0);
    EXPECT_DOUBLE_EQ(plan.techs[1].tech.ffPowerMultiplier, 12.0);
    // Overridden specs — colon or word form — are named after the
    // full spec so their rows never share a label with the base.
    EXPECT_EQ(plan.techs[1].tech.name,
              "flexic-0.6um:gateDelayNs=20,ffPowerMultiplier=12");
    EXPECT_EQ(plan.techs[2].tech.name, "silicon-65nm:ffPowerRatio=8");
    EXPECT_DOUBLE_EQ(plan.techs[2].tech.ffPowerMultiplier, 8.0);
    EXPECT_EQ(plan.pointCount(), 18u);
}

TEST(Plan, ParseRejectsGarbage)
{
    auto errorOf = [](const char *text) {
        const Result<ExplorationPlan> plan =
            ExplorationPlan::parse(text);
        EXPECT_FALSE(plan.isOk());
        EXPECT_EQ(plan.status().code(), ErrorCode::ParseError);
        return plan.isOk() ? std::string()
                           : plan.status().message();
    };
    EXPECT_NE(errorOf("frobnicate everything\n")
                  .find("plan line 1: cannot parse"),
              std::string::npos);
    EXPECT_NE(errorOf("workload not-a-workload\n")
                  .find("unknown workload"),
              std::string::npos);
    // Tech names resolve through the registry; unknown names list
    // the known ones.
    EXPECT_NE(errorOf("tech not-a-tech\n")
                  .find("unknown technology 'not-a-tech'"),
              std::string::npos);
    EXPECT_NE(errorOf("tech not-a-tech\n").find("flexic-0.6um"),
              std::string::npos);
    EXPECT_NE(errorOf("tech flexic-0.6um nosuchknob=1\n")
                  .find("unknown tech constant"),
              std::string::npos);
    EXPECT_NE(errorOf("tech flexic-0.6um:gateDelayNs=-4\n")
                  .find("out of range"),
              std::string::npos);
    // One pass surfaces every problem of a spec, not just the first.
    const std::string multi =
        errorOf("tech flexic-0.6um:nosuchknob=1,voltage=99\n");
    EXPECT_NE(multi.find("nosuchknob"), std::string::npos);
    EXPECT_NE(multi.find("'voltage': value 99 out of range"),
              std::string::npos);
}

// ----------------------------------------------------------- primitives

TEST(Fingerprint, SubsetsAndWorkloadsDistinguished)
{
    const InstrSubset a =
        InstrSubset::fromNames({"add", "addi", "lw"});
    const InstrSubset b =
        InstrSubset::fromNames({"add", "addi", "sw"});
    EXPECT_NE(subsetFingerprint(a), subsetFingerprint(b));
    EXPECT_EQ(subsetFingerprint(a), subsetFingerprint(a));

    EXPECT_NE(workloadFingerprint("x", "int main(){}", 0),
              workloadFingerprint("x", "int main(){}", 2));
    EXPECT_NE(workloadFingerprint("x", "ab", 0),
              workloadFingerprint("xa", "b", 0));

    TechSpec base;
    TechSpec slow;
    slow.set("gateDelayNs", 20.0);
    EXPECT_NE(techFingerprint(base.tech), techFingerprint(slow.tech));
}

TEST(WorkPool, RunsEveryTaskOnce)
{
    for (unsigned threads : {1u, 4u, 9u}) {
        WorkStealingPool pool(threads);
        std::vector<std::atomic<int>> counts(100);
        std::vector<WorkStealingPool::Task> tasks;
        for (size_t i = 0; i < counts.size(); ++i)
            tasks.push_back([&counts, i] { ++counts[i]; });
        pool.run(std::move(tasks));
        for (const std::atomic<int> &c : counts)
            EXPECT_EQ(c.load(), 1) << threads << " threads";
    }
}

TEST(Memo, ExactlyOnceAndCounted)
{
    MemoCache<uint64_t, int> cache;
    std::atomic<int> computions{0};
    WorkStealingPool pool(4);
    std::vector<WorkStealingPool::Task> tasks;
    for (int i = 0; i < 40; ++i)
        tasks.push_back([&cache, &computions, i] {
            const uint64_t key = i % 4;
            const int value = cache.getOrCompute(key, [&] {
                ++computions;
                return static_cast<int>(key * 10);
            });
            EXPECT_EQ(value, static_cast<int>(key * 10));
        });
    pool.run(std::move(tasks));
    // 4 distinct keys: exactly 4 computations no matter the racing.
    EXPECT_EQ(computions.load(), 4);
    EXPECT_EQ(cache.misses(), 4u);
    EXPECT_EQ(cache.hits(), 36u);
    EXPECT_EQ(cache.size(), 4u);
}

TEST(Memo, ThrowingComputeDoesNotPoisonTheKey)
{
    // Regression: a throwing fn() used to leave an unfulfilled
    // promise behind, so every later lookup of the key died with
    // broken_promise instead of retrying.
    MemoCache<uint64_t, int> cache;
    int attempts = 0;
    auto flaky = [&]() -> int {
        if (++attempts == 1)
            throw std::runtime_error("transient failure");
        return 42;
    };
    EXPECT_THROW(cache.getOrCompute(7, flaky), std::runtime_error);
    EXPECT_EQ(cache.size(), 0u); // entry erased, not poisoned
    EXPECT_EQ(cache.getOrCompute(7, flaky), 42);
    EXPECT_EQ(cache.getOrCompute(7, flaky), 42); // cached now
    EXPECT_EQ(attempts, 2);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(Memo, ConcurrentWaitersSeeTheExceptionThenRecover)
{
    MemoCache<uint64_t, int> cache;
    std::atomic<int> attempts{0};
    std::atomic<int> failures{0};
    {
        // Round 1: every computation throws; each task either owns a
        // failing compute or waits on one — all must observe the
        // exception, none may hang.
        WorkStealingPool pool(4);
        std::vector<WorkStealingPool::Task> tasks;
        for (int i = 0; i < 16; ++i)
            tasks.push_back([&] {
                try {
                    cache.getOrCompute(9, [&]() -> int {
                        ++attempts;
                        throw std::runtime_error("boom");
                    });
                } catch (const std::runtime_error &) {
                    ++failures;
                }
            });
        pool.run(std::move(tasks));
    }
    EXPECT_EQ(failures.load(), 16);
    EXPECT_EQ(cache.size(), 0u);
    // Round 2: the key recomputes cleanly.
    EXPECT_EQ(cache.getOrCompute(9, [] { return 5; }), 5);
    EXPECT_GE(attempts.load(), 1);
}

// ------------------------------------------------------------- explorer

ExplorationPlan
smallCartesianPlan()
{
    // 3 subsets x 3 workloads = 9 points (>= 8, the acceptance bar).
    ExplorationPlan plan;
    plan.subsets = {SubsetSpec::fromWorkload("crc32", "fit-crc32"),
                    SubsetSpec::fromWorkload("armpit", "fit-armpit"),
                    SubsetSpec::full()};
    plan.workloads = {"crc32", "armpit", "aha-mont64"};
    return plan;
}

TEST(Explorer, MemoizationMakesRepeatsFree)
{
    ExplorerOptions options;
    options.threads = 4;
    Explorer engine(options);
    const ExplorationPlan plan = smallCartesianPlan();
    engine.explore(plan);

    const ExplorerStats first = engine.stats();
    EXPECT_EQ(first.points, 9u);
    // 9 distinct (subset, workload) pairs, 3 distinct synth subjects.
    EXPECT_EQ(first.simMisses, 9u);
    EXPECT_EQ(first.synthMisses, 3u);
    EXPECT_EQ(first.synthHits, 6u);
    // 3 workloads compiled once each despite 9 points + 6
    // subset-resolution lookups.
    EXPECT_EQ(first.compileMisses, 3u);

    // The same plan again: every point is a cache hit.
    engine.explore(plan);
    const ExplorerStats second = engine.stats();
    EXPECT_EQ(second.points, 18u);
    EXPECT_EQ(second.simMisses, first.simMisses);
    EXPECT_EQ(second.synthMisses, first.synthMisses);
    EXPECT_EQ(second.compileMisses, first.compileMisses);
    EXPECT_EQ(second.simHits, first.simHits + 9u);
}

TEST(Explorer, DeterministicAcrossThreadCounts)
{
    const ExplorationPlan plan = smallCartesianPlan();
    std::string serialCsv;
    std::string serialJson;
    for (unsigned threads : {1u, 4u, 7u}) {
        ExplorerOptions options;
        options.threads = threads;
        Explorer engine(options);
        const ResultTable table = engine.explore(plan);
        ASSERT_EQ(table.size(), 9u);
        if (threads == 1) {
            serialCsv = table.csv();
            serialJson = table.json();
        } else {
            EXPECT_EQ(table.csv(), serialCsv) << threads;
            EXPECT_EQ(table.json(), serialJson) << threads;
        }
        // The frontier is derived from the table, so it is identical
        // too; sanity-check it is non-empty and in range.
        const std::vector<size_t> frontier = table.paretoFrontier();
        EXPECT_FALSE(frontier.empty());
        for (size_t i : frontier)
            EXPECT_LT(i, table.size());
    }
}

TEST(Explorer, TrapAndCosimSemantics)
{
    ExplorerOptions options;
    options.threads = 2;
    Explorer engine(options);
    ExplorationPlan plan;
    plan.subsets = {SubsetSpec::fromWorkload("crc32", "fit"),
                    SubsetSpec::fromNames("starved",
                                          {"addi", "jal", "sw"})};
    plan.workloads = {"crc32"};
    const ResultTable table = engine.explore(plan);
    ASSERT_EQ(table.size(), 2u);

    const ExplorationResult &fit = table.row(0);
    EXPECT_FALSE(fit.trapped);
    EXPECT_TRUE(fit.cosimPassed);
    EXPECT_GT(fit.cycles, 0u);
    EXPECT_NE(fit.signature, 0u);

    // A RISSP missing ops the binary uses traps in hardware; that
    // point can never land on the frontier.
    const ExplorationResult &starved = table.row(1);
    EXPECT_TRUE(starved.trapped);
    EXPECT_FALSE(starved.cosimPassed);
    for (size_t i : table.paretoFrontier())
        EXPECT_NE(i, starved.index);
}

TEST(Explorer, CharacterizeOnlySkipsSimAndSynth)
{
    ExplorerOptions options;
    options.simulate = false;
    options.synthesize = false;
    Explorer engine(options);
    ExplorationPlan plan =
        ExplorationPlan::perWorkloadRissps({"crc32"});
    const ResultTable table = engine.explore(plan);
    ASSERT_EQ(table.size(), 1u);
    const ExplorationResult &r = table.row(0);
    EXPECT_FALSE(r.simRun);
    EXPECT_FALSE(r.synthRun);
    EXPECT_GT(r.subsetSize, 0u);
    EXPECT_EQ(r.subsetSize, r.subset.size());
    // Nothing qualifies for the frontier without sim + synth data.
    EXPECT_TRUE(table.paretoFrontier().empty());
}

// ------------------------------------------------------------ csv

/** Count the columns of one RFC-4180 record (quote-aware). */
size_t
csvColumns(const std::string &line)
{
    size_t columns = 1;
    bool quoted = false;
    for (char c : line) {
        if (c == '"')
            quoted = !quoted;
        else if (c == ',' && !quoted)
            ++columns;
    }
    return columns;
}

TEST(ResultTableCsv, CommaBearingTechNamesAreQuoted)
{
    // Overridden-corner tech names carry the full spec — commas
    // included — on every row they label; the emitter must quote
    // them or every later column silently shifts.
    ExplorationPlan plan;
    plan.subsets = {SubsetSpec::fromWorkload("crc32", "fit")};
    plan.workloads = {"crc32"};
    plan.techs = {TechSpec::fromSpec(
                      "flexic-0.6um:voltage=2.8,ffPowerRatio=8")
                      .take()};
    ExplorerOptions options;
    options.threads = 1;
    Explorer engine(options);
    const ResultTable table = engine.explore(plan);
    const std::string csv = table.csv();
    EXPECT_NE(
        csv.find("\"flexic-0.6um:voltage=2.8,ffPowerRatio=8\""),
        std::string::npos)
        << csv;

    std::istringstream lines(csv);
    std::string header;
    ASSERT_TRUE(std::getline(lines, header));
    for (std::string line; std::getline(lines, line);)
        EXPECT_EQ(csvColumns(line), csvColumns(header)) << line;
}

TEST(ResultTableCsv, QuotesCrLfAndEmbeddedQuotesAreEscaped)
{
    ResultTable table(1);
    ExplorationResult row;
    row.index = 0;
    row.subsetName = "a\"b";
    row.workloadName = "w\r1";
    row.techName = "t,x\ny";
    table.set(row);
    const std::string csv = table.csv();
    EXPECT_NE(csv.find("\"a\"\"b\""), std::string::npos) << csv;
    EXPECT_NE(csv.find("\"w\r1\""), std::string::npos) << csv;
    EXPECT_NE(csv.find("\"t,x\ny\""), std::string::npos) << csv;
}

// --------------------------------------------------------------- pareto

ExplorationResult
point(size_t index, uint64_t cycles, double area, double power)
{
    ExplorationResult r;
    r.index = index;
    r.subsetName = "s" + std::to_string(index);
    r.workloadName = "w";
    r.simRun = true;
    r.synthRun = true;
    r.cosimPassed = true;
    r.cycles = cycles;
    r.avgAreaGe = area;
    r.avgPowerMw = power;
    return r;
}

TEST(Pareto, HandComputedThreePoints)
{
    // A: fast and small. B: faster but bigger. C: worse than A on
    // every axis. Frontier = {A, B}.
    ResultTable table(3);
    table.set(point(0, 100, 10.0, 1.0));  // A
    table.set(point(1, 90, 12.0, 1.1));   // B
    table.set(point(2, 110, 11.0, 1.2));  // C
    EXPECT_TRUE(ResultTable::dominates(table.row(0), table.row(2)));
    EXPECT_FALSE(ResultTable::dominates(table.row(0), table.row(1)));
    EXPECT_FALSE(ResultTable::dominates(table.row(1), table.row(0)));
    const std::vector<size_t> frontier = table.paretoFrontier();
    EXPECT_EQ(frontier, (std::vector<size_t>{0, 1}));
}

TEST(Pareto, TiesAreKeptAndFailuresExcluded)
{
    ResultTable table(3);
    table.set(point(0, 100, 10.0, 1.0));
    table.set(point(1, 100, 10.0, 1.0)); // exact tie: both kept
    ExplorationResult failed = point(2, 1, 1.0, 0.1); // "best"...
    failed.cosimPassed = false;          // ...but functionally wrong
    table.set(failed);
    const std::vector<size_t> frontier = table.paretoFrontier();
    EXPECT_EQ(frontier, (std::vector<size_t>{0, 1}));
}

} // namespace
} // namespace rissp::explore
