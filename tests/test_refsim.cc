/**
 * @file
 * Unit tests for the reference ISS: per-instruction semantics against
 * hand-computed results, control flow, memory, MMIO and stop reasons.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "sim/refsim.hh"
#include "util/logging.hh"

namespace rissp
{
namespace
{

/** Run a snippet and return the simulator for inspection. */
RefSim
runSnippet(const std::string &body, StopReason expect)
{
    Program p = assemble(body);
    RefSim sim;
    sim.reset(p);
    RunResult r = sim.run(1'000'000);
    EXPECT_EQ(r.reason, expect);
    return sim;
}

TEST(RefSim, ArithmeticBasics)
{
    RefSim sim = runSnippet(R"(
        li a0, 100
        li a1, -30
        add a2, a0, a1      # 70
        sub a3, a0, a1      # 130
        xor a4, a0, a1
        and a5, a0, a1
        or t0, a0, a1
        ecall
    )", StopReason::Halted);
    EXPECT_EQ(sim.reg(12), 70u);
    EXPECT_EQ(sim.reg(13), 130u);
    EXPECT_EQ(sim.reg(14), 100u ^ static_cast<uint32_t>(-30));
    EXPECT_EQ(sim.reg(15), 100u & static_cast<uint32_t>(-30));
    EXPECT_EQ(sim.reg(5), 100u | static_cast<uint32_t>(-30));
}

TEST(RefSim, ShiftsAndCompares)
{
    RefSim sim = runSnippet(R"(
        li a0, -8
        srai a1, a0, 1       # -4
        srli a2, a0, 1       # big positive
        slli a3, a0, 2       # -32
        li a4, 3
        sll a5, a4, a4       # 24
        slt t0, a0, a4       # -8 < 3 signed -> 1
        sltu t1, a0, a4      # unsigned -> 0
        slti t2, a0, -7      # -8 < -7 -> 1
        sltiu s0, a4, 4      # 3 < 4 -> 1
        ecall
    )", StopReason::Halted);
    EXPECT_EQ(sim.reg(11), static_cast<uint32_t>(-4));
    EXPECT_EQ(sim.reg(12), static_cast<uint32_t>(-8) >> 1);
    EXPECT_EQ(sim.reg(13), static_cast<uint32_t>(-32));
    EXPECT_EQ(sim.reg(15), 24u);
    EXPECT_EQ(sim.reg(5), 1u);
    EXPECT_EQ(sim.reg(6), 0u);
    EXPECT_EQ(sim.reg(7), 1u);
    EXPECT_EQ(sim.reg(8), 1u);
}

TEST(RefSim, ShiftAmountIsMasked)
{
    RefSim sim = runSnippet(R"(
        li a0, 1
        li a1, 33            # shift by 33 -> uses 33 & 31 = 1
        sll a2, a0, a1
        ecall
    )", StopReason::Halted);
    EXPECT_EQ(sim.reg(12), 2u);
}

TEST(RefSim, LoadStoreWidths)
{
    RefSim sim = runSnippet(R"(
        .data
    buf:
        .space 16
        .text
        la a0, buf
        li a1, 0x89ABCDEF
        sw a1, 0(a0)
        lb a2, 0(a0)         # 0xEF sign-extended
        lbu a3, 0(a0)        # 0xEF
        lh a4, 0(a0)         # 0xCDEF sign-extended
        lhu a5, 0(a0)        # 0xCDEF
        lw t0, 0(a0)
        sb a1, 4(a0)
        lw t1, 4(a0)         # only low byte stored
        sh a1, 8(a0)
        lw t2, 8(a0)         # only low half stored
        ecall
    )", StopReason::Halted);
    EXPECT_EQ(sim.reg(12), 0xFFFFFFEFu);
    EXPECT_EQ(sim.reg(13), 0xEFu);
    EXPECT_EQ(sim.reg(14), 0xFFFFCDEFu);
    EXPECT_EQ(sim.reg(15), 0xCDEFu);
    EXPECT_EQ(sim.reg(5), 0x89ABCDEFu);
    EXPECT_EQ(sim.reg(6), 0xEFu);
    EXPECT_EQ(sim.reg(7), 0xCDEFu);
}

TEST(RefSim, X0IsHardwiredZero)
{
    RefSim sim = runSnippet(R"(
        li a0, 5
        add zero, a0, a0
        addi zero, zero, 100
        add a1, zero, zero
        ecall
    )", StopReason::Halted);
    EXPECT_EQ(sim.reg(0), 0u);
    EXPECT_EQ(sim.reg(11), 0u);
}

TEST(RefSim, BranchMatrix)
{
    // Each taken branch skips an addi that would poison the result.
    RefSim sim = runSnippet(R"(
        li a0, 0             # failure accumulator
        li a1, -1
        li a2, 1
        beq a1, a1, L1
        addi a0, a0, 1
    L1: bne a1, a2, L2
        addi a0, a0, 1
    L2: blt a1, a2, L3       # -1 < 1 signed
        addi a0, a0, 1
    L3: bge a2, a1, L4
        addi a0, a0, 1
    L4: bltu a2, a1, L5      # 1 < 0xFFFFFFFF unsigned
        addi a0, a0, 1
    L5: bgeu a1, a2, L6
        addi a0, a0, 1
    L6: ecall
    )", StopReason::Halted);
    EXPECT_EQ(sim.reg(10), 0u);
}

TEST(RefSim, JalJalrLinkValues)
{
    RefSim sim = runSnippet(R"(
    _start:
        jal ra, func         # pc=0, link=4
        ecall
    func:
        addi a1, ra, 0
        jalr zero, 0(ra)
    )", StopReason::Halted);
    EXPECT_EQ(sim.reg(11), 4u);
}

TEST(RefSim, JalrClearsBit0)
{
    RefSim sim = runSnippet(R"(
        la a0, target
        addi a0, a0, 1       # misaligned on purpose
        jalr ra, 0(a0)       # must land on target anyway
        ecall
    target:
        li a1, 55
        ecall
    )", StopReason::Halted);
    EXPECT_EQ(sim.reg(11), 55u);
}

TEST(RefSim, AuipcIsPcRelative)
{
    RefSim sim = runSnippet(R"(
        nop
        auipc a0, 0          # pc of this instruction = 4
        ecall
    )", StopReason::Halted);
    EXPECT_EQ(sim.reg(10), 4u);
}

TEST(RefSim, TrapOnInvalidInstruction)
{
    Program p = assemble(".word 0xffffffff");
    RefSim sim;
    sim.reset(p);
    RunResult r = sim.run();
    EXPECT_EQ(r.reason, StopReason::Trapped);
    EXPECT_EQ(r.stopPc, 0u);
}

TEST(RefSim, StepLimit)
{
    Program p = assemble("loop: jal zero, loop");
    RefSim sim;
    sim.reset(p);
    RunResult r = sim.run(1000);
    EXPECT_EQ(r.reason, StopReason::StepLimit);
    EXPECT_EQ(r.instret, 1000u);
}

TEST(RefSim, MmioOutput)
{
    RefSim sim = runSnippet(R"(
        li a1, 0xFFFF0000    # kPutWord
        li a2, 0xFFFF0004    # kPutChar
        li a0, 42
        sw a0, 0(a1)
        li a0, 1234
        sw a0, 0(a1)
        li a0, 'H'
        sb a0, 0(a2)
        li a0, 'i'
        sb a0, 0(a2)
        ecall
    )", StopReason::Halted);
    ASSERT_EQ(sim.outputWords().size(), 2u);
    EXPECT_EQ(sim.outputWords()[0], 42u);
    EXPECT_EQ(sim.outputWords()[1], 1234u);
    EXPECT_EQ(sim.outputText(), "Hi");
}

TEST(RefSim, RetireTraceFields)
{
    Program p = assemble(R"(
        li a0, 3
        li a1, 4
        add a2, a0, a1
        sw a2, 0x100(zero)
        lw a3, 0x100(zero)
        ecall
    )");
    RefSim sim;
    sim.reset(p);
    RetireEvent e0 = sim.step(); // addi a0, zero, 3
    EXPECT_EQ(e0.order, 0u);
    EXPECT_EQ(e0.pc, 0u);
    EXPECT_EQ(e0.nextPc, 4u);
    EXPECT_EQ(e0.rd, 10);
    EXPECT_EQ(e0.rdData, 3u);
    sim.step();
    RetireEvent e2 = sim.step(); // add
    EXPECT_EQ(e2.rs1Data, 3u);
    EXPECT_EQ(e2.rs2Data, 4u);
    EXPECT_EQ(e2.rdData, 7u);
    RetireEvent e3 = sim.step(); // sw
    EXPECT_TRUE(e3.memWrite);
    EXPECT_EQ(e3.memAddr, 0x100u);
    EXPECT_EQ(e3.memData, 7u);
    EXPECT_EQ(e3.memBytes, 4);
    RetireEvent e4 = sim.step(); // lw
    EXPECT_TRUE(e4.memRead);
    EXPECT_EQ(e4.memData, 7u);
    RetireEvent e5 = sim.step(); // ecall
    EXPECT_TRUE(e5.halt);
}

TEST(Memory, SparsePagesAndEndianness)
{
    Memory mem;
    EXPECT_EQ(mem.loadWord(0x12345678), 0u);
    EXPECT_EQ(mem.touchedPages(), 0u);
    mem.storeWord(0x1000, 0xA1B2C3D4);
    EXPECT_EQ(mem.loadByte(0x1000), 0xD4);
    EXPECT_EQ(mem.loadByte(0x1003), 0xA1);
    EXPECT_EQ(mem.loadHalf(0x1002), 0xA1B2);
    EXPECT_EQ(mem.touchedPages(), 1u);
    // Cross-page word access.
    mem.storeWord(0x1FFE, 0x11223344);
    EXPECT_EQ(mem.loadWord(0x1FFE), 0x11223344u);
    EXPECT_EQ(mem.touchedPages(), 2u);
}

TEST(Memory, DenseSpanFastPath)
{
    Memory mem;
    mem.reserveSpan(0x1000, 0x1000);
    EXPECT_EQ(mem.spanBase(), 0x1000u);
    EXPECT_EQ(mem.spanSize(), 0x1000u);

    // Accesses inside the span never touch the page map.
    mem.storeWord(0x1000, 0xA1B2C3D4);
    mem.storeHalf(0x1800, 0xBEEF);
    mem.storeByte(0x1FFF, 0x7E);
    EXPECT_EQ(mem.touchedPages(), 0u);
    EXPECT_EQ(mem.loadWord(0x1000), 0xA1B2C3D4u);
    EXPECT_EQ(mem.loadByte(0x1000), 0xD4);
    EXPECT_EQ(mem.loadByte(0x1003), 0xA1);
    EXPECT_EQ(mem.loadHalf(0x1800), 0xBEEFu);
    EXPECT_EQ(mem.loadByte(0x1FFF), 0x7Eu);

    // Outside the span falls back to sparse pages.
    mem.storeWord(0x4000, 0x01020304);
    EXPECT_EQ(mem.loadWord(0x4000), 0x01020304u);
    EXPECT_EQ(mem.touchedPages(), 1u);
    // Below the span too (addr - base wraps around).
    mem.storeByte(0x0FFF, 0x55);
    EXPECT_EQ(mem.loadByte(0x0FFF), 0x55u);
}

TEST(Memory, DenseSparseBoundaryAccessesCompose)
{
    Memory mem;
    mem.reserveSpan(0x1000, 0x1000); // span = [0x1000, 0x2000)

    // A word write straddling the end of the span: two bytes land in
    // the arena, two in a page, and the read stitches them back.
    mem.storeWord(0x1FFE, 0x11223344);
    EXPECT_EQ(mem.loadWord(0x1FFE), 0x11223344u);
    EXPECT_EQ(mem.loadByte(0x1FFF), 0x33u);
    EXPECT_EQ(mem.loadByte(0x2000), 0x22u);
    EXPECT_EQ(mem.touchedPages(), 1u);

    // Same at the low edge.
    mem.storeHalf(0x0FFF, 0xA5C3);
    EXPECT_EQ(mem.loadHalf(0x0FFF), 0xA5C3u);
    EXPECT_EQ(mem.loadByte(0x0FFF), 0xC3u);
    EXPECT_EQ(mem.loadByte(0x1000), 0xA5u);

    // Block copies across the boundary round-trip too.
    const uint8_t blob[] = {1, 2, 3, 4, 5, 6, 7, 8};
    mem.storeBlock(0x1FFC, blob, sizeof blob);
    std::vector<uint8_t> back = mem.loadBlock(0x1FFC, sizeof blob);
    EXPECT_EQ(back, std::vector<uint8_t>(blob, blob + sizeof blob));
}

TEST(Memory, ReserveSpanMigratesPageContents)
{
    Memory mem;
    mem.storeWord(0x1000, 0xCAFEBABE);
    mem.storeByte(0x1FFF, 0x99);
    mem.storeWord(0x8000, 0x12345678); // outside the future span
    mem.reserveSpan(0x1000, 0x1000);
    EXPECT_EQ(mem.loadWord(0x1000), 0xCAFEBABEu);
    EXPECT_EQ(mem.loadByte(0x1FFF), 0x99u);
    EXPECT_EQ(mem.loadWord(0x8000), 0x12345678u);
    // The fully-covered page was absorbed into the arena, not kept
    // as an unreachable shadow; the out-of-span page survives.
    EXPECT_EQ(mem.touchedPages(), 1u);

    // clear() drops the span along with the pages.
    mem.clear();
    EXPECT_EQ(mem.spanSize(), 0u);
    EXPECT_EQ(mem.loadWord(0x1000), 0u);
}

TEST(RefSim, DenseSpanCoversProgramAndStack)
{
    // Sims back [0, stack top) densely for ordinary programs; deep
    // stack use and data traffic must not allocate pages.
    RefSim sim = runSnippet(R"(
        lui sp, 0x80       # crt0's stack top
        addi sp, sp, -16
        li a0, 7
        sw a0, 0(sp)
        lw a1, 0(sp)
        ecall
    )", StopReason::Halted);
    EXPECT_EQ(sim.reg(11), 7u);
    EXPECT_GE(sim.memory().spanSize(), 0x80000u);
    EXPECT_EQ(sim.memory().touchedPages(), 0u);
}

TEST(RefSim, SelfModifyingCodeSeesItsOwnStores)
{
    // The program overwrites the `addi a2, zero, 1` ahead of it with
    // `addi a2, zero, 99` before executing it: the pre-decoded fetch
    // cache must invalidate on the store into the text span.
    const uint32_t patched = encodeI(Op::Addi, 12, 0, 99);
    RefSim sim = runSnippet(strFormat(R"(
        la a0, patch
        li a1, %d
        sw a1, 0(a0)
    patch:
        addi a2, zero, 1
        ecall
    )", static_cast<int32_t>(patched)), StopReason::Halted);
    EXPECT_EQ(sim.reg(12), 99u);
}

TEST(RefSim, SelfModifyingSubWordStoresInvalidate)
{
    // A byte store into the immediate field of the next instruction
    // must also re-decode (partial-word invalidation). Byte 3 of an
    // I-type word is imm[11:4], so storing 42 there turns
    // `addi a2, zero, 0` into `addi a2, zero, 672`.
    RefSim sim = runSnippet(R"(
        la a0, patch
        li a1, 42
        sb a1, 3(a0)
    patch:
        addi a2, zero, 0
        ecall
    )", StopReason::Halted);
    EXPECT_EQ(sim.reg(12), 672u);
}

TEST(RefSim, FetchOutsideTextSpanFallsBackToDecode)
{
    // Hand-built image: text at 0 jumps to a far segment that is NOT
    // part of the declared text span; execution there goes through
    // decode-on-fetch.
    constexpr uint32_t kFar = 0x100000;
    Program p;
    Segment text;
    text.base = 0;
    auto push_word = [](Segment &seg, uint32_t w) {
        for (unsigned b = 0; b < 4; ++b)
            seg.bytes.push_back(static_cast<uint8_t>(w >> (8 * b)));
    };
    push_word(text, encodeU(Op::Lui, 11, kFar >> 12)); // x11 = kFar
    push_word(text, encodeI(Op::Jalr, 0, 11, 0));      // jump far
    Segment far;
    far.base = kFar;
    push_word(far, encodeI(Op::Addi, 12, 0, 77));      // a2 = 77
    push_word(far, encodeSys(Op::Ecall));
    p.segments = {text, far};
    p.entry = 0;
    p.textBase = 0;
    p.textSize = static_cast<uint32_t>(text.bytes.size());

    RefSim sim;
    sim.reset(p);
    RunResult r = sim.run(100);
    EXPECT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(sim.reg(12), 77u);
}

TEST(RefSim, WrappingDataAccessTraps)
{
    // lw at 0xFFFFFFFE would wrap to address 0 — that is a trap, not
    // a silent wrap (and both simulators agree; see test_verify).
    RefSim sim = runSnippet(R"(
        li a0, -2
        lw a1, 0(a0)
        ecall
    )", StopReason::Trapped);
    EXPECT_EQ(sim.reg(11), 0u); // the load never completed

    runSnippet(R"(
        li a0, -1
        sh a0, 0(a0)
        ecall
    )", StopReason::Trapped);

    // A byte access at the top of memory is legal: no wrap occurs.
    RefSim sim3 = runSnippet(R"(
        li a0, -1
        li a1, 0x5A
        sb a1, 0(a0)
        lbu a2, 0(a0)
        ecall
    )", StopReason::Halted);
    EXPECT_EQ(sim3.reg(12), 0x5Au);
}

} // namespace
} // namespace rissp
