/**
 * @file
 * Black-box tests for `risspgen serve`: a real HttpServer on an
 * ephemeral loopback port, exercised through real sockets by the
 * tests/http_client.hh helper — no mocks, no in-process shortcuts on
 * the request path.
 *
 * The heart of the suite is byte-identity: for every verb, the
 * server's response body must equal `flow::toJson(dispatch(request))`
 * for the equivalent typed request — the exact function `risspgen
 * <verb> --json` prints through — so the daemon and the CLI can never
 * drift apart schema-wise. Around that: the framing/parsing error
 * paths (malformed HTTP, truncated JSON, oversized bodies — always a
 * structured 4xx, never a dropped process), both admission bounds
 * (connection shed and dispatch-queue 429, each delivered through the
 * lingering close so a client that already wrote its request reads
 * the refusal instead of an RST), the reactor's idle-timeout reaping,
 * slow-loris isolation, partial-write backpressure, the thousand-
 * parked-connections scalability contract, in-flight dedup observed
 * through /metrics, and graceful drain (in-flight requests complete,
 * idle connections close, new connections are refused).
 *
 * The whole file also runs under TSan in CI: every test that spawns
 * client threads doubles as a race detector for the reactor loop,
 * the completion handoff, the admission counters and the metrics
 * snapshot. Connection counts scale down under RISSP_TSAN — the
 * instrumented pipeline is roughly an order of magnitude slower.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "flow/flow.hh"
#include "flow/json.hh"
#include "net/rest.hh"
#include "net/server.hh"
#include "tests/http_client.hh"
#include "util/http.hh"
#include "util/json.hh"

namespace rissp::net
{
namespace
{

using testutil::HttpClient;
using testutil::HttpResponse;
using testutil::httpRequest;

/** A live server over its own FlowService, down with the scope. */
struct Harness
{
    explicit Harness(ServeOptions options = {}, unsigned threads = 4)
        : service(nullptr, threads), server(service, options)
    {
        const Status status = server.start();
        EXPECT_TRUE(status.isOk()) << status.toString();
    }

    uint16_t port() const { return server.port(); }

    flow::FlowService service;
    HttpServer server;
};

/**
 * The byte-identity oracle. `risspgen <verb> --json` prints
 * `flow::toJson(service.dispatch(request))` verbatim; the server
 * must return those exact bytes for the equivalent JSON body, and
 * the HTTP status must follow the same response status. A fresh
 * FlowService stands in for the fresh process the CLI would be.
 */
void
expectByteIdentical(uint16_t port, const char *verb,
                    const std::string &json_body,
                    const flow::Request &request)
{
    flow::FlowService fresh;
    const flow::Response expected = fresh.dispatch(request);
    const std::string expectedBody = flow::toJson(expected);

    const auto response = httpRequest(
        port, "POST", std::string("/api/v1/") + verb, json_body);
    ASSERT_TRUE(response.has_value()) << "no response for " << verb;
    EXPECT_EQ(response->status,
              httpStatusFor(flow::responseStatus(expected)));
    EXPECT_EQ(response->body, expectedBody);
    const std::string *type = response->header("Content-Type");
    ASSERT_NE(type, nullptr);
    EXPECT_EQ(*type, "application/json");
}

// ---------------------------------------------------- byte identity

TEST(ServeIdentity, Characterize)
{
    Harness harness;
    flow::CharacterizeRequest request;
    request.source = flow::SourceRef::bundled("crc32");
    request.opt = minic::OptLevel::O1;
    expectByteIdentical(harness.port(), "characterize",
                        R"({"workload": "crc32", "opt": "O1"})",
                        flow::Request(request));
}

TEST(ServeIdentity, RunWithCosim)
{
    Harness harness;
    flow::RunRequest request;
    request.source = flow::SourceRef::bundled("crc32");
    request.verify = true;
    expectByteIdentical(
        harness.port(), "run",
        R"({"workload": "crc32", "verify": true})",
        flow::Request(request));
}

TEST(ServeIdentity, RunOnUnderprovisionedSubsetTrapsAs422)
{
    Harness harness;
    flow::RunRequest request;
    request.source = flow::SourceRef::bundled("crc32");
    request.subsetOverride =
        InstrSubset::fromNames({"addi", "lui"});

    // The oracle first: this subset cannot run crc32, so the typed
    // response is an error — a pipeline outcome, mapped to 422.
    flow::FlowService fresh;
    const flow::Response expected =
        fresh.dispatch(flow::Request(request));
    EXPECT_FALSE(flow::responseStatus(expected).isOk());
    EXPECT_EQ(httpStatusFor(flow::responseStatus(expected)), 422);

    expectByteIdentical(
        harness.port(), "run",
        R"({"workload": "crc32", "subset": ["addi", "lui"]})",
        flow::Request(request));
}

TEST(ServeIdentity, Synth)
{
    Harness harness;
    flow::SynthRequest request;
    request.source = flow::SourceRef::bundled("crc32");
    request.tech =
        explore::TechSpec::fromSpec("flexic-0.6um").take();
    request.baselines = false;
    request.physical = false;
    expectByteIdentical(
        harness.port(), "synth",
        R"({"workload": "crc32", "tech": "flexic-0.6um", )"
        R"("baselines": false, "physical": false})",
        flow::Request(request));
}

TEST(ServeIdentity, Retarget)
{
    Harness harness;
    flow::RetargetRequest request;
    request.source = flow::SourceRef::bundled("crc32");
    expectByteIdentical(harness.port(), "retarget",
                        R"({"workload": "crc32"})",
                        flow::Request(request));
}

TEST(ServeIdentity, Explore)
{
    // toJson(ExploreResponse) embeds service-cumulative cache stats,
    // so identity holds only when both sides answer from a fresh
    // service: this harness serves exactly one request, the oracle
    // inside expectByteIdentical is fresh by construction.
    Harness harness;
    const char *plan = "workload crc32\n"
                       "subset fit = @crc32\n"
                       "tech flexic-0.6um\n"
                       "threads 2\n";
    flow::ExploreRequest request;
    request.planText = plan;
    expectByteIdentical(
        harness.port(), "explore",
        std::string(R"({"plan": "workload crc32\nsubset fit = )"
                    R"(@crc32\ntech flexic-0.6um\nthreads 2\n"})"),
        flow::Request(request));
}

// ------------------------------------------------ plumbing endpoints

TEST(ServeEndpoints, HealthzIsTheOkStatusDocument)
{
    Harness harness;
    const auto response =
        httpRequest(harness.port(), "GET", "/healthz");
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 200);
    EXPECT_EQ(response->body, flow::toJson(Status::ok()));
}

TEST(ServeEndpoints, KeepAliveServesSequentialRequests)
{
    Harness harness;
    HttpClient client;
    ASSERT_TRUE(client.connect(harness.port()));
    for (int i = 0; i < 3; ++i) {
        const auto response =
            client.request("GET", "/healthz", "", true);
        ASSERT_TRUE(response.has_value()) << "request " << i;
        EXPECT_EQ(response->status, 200);
        EXPECT_EQ(response->body, flow::toJson(Status::ok()));
    }
}

TEST(ServeEndpoints, MetricsShape)
{
    ServeOptions options;
    options.maxQueue = 17;
    options.maxConnections = 9;
    Harness harness(options);
    ASSERT_TRUE(
        httpRequest(harness.port(), "GET", "/healthz").has_value());

    const auto response =
        httpRequest(harness.port(), "GET", "/metrics");
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 200);

    const Result<JsonValue> metrics = parseJson(response->body);
    ASSERT_TRUE(metrics.isOk()) << metrics.status().toString();
    const JsonValue *server = metrics.value().find("server");
    ASSERT_NE(server, nullptr);
    EXPECT_EQ(server->find("queue_capacity")->asNumber(), 17.0);
    EXPECT_EQ(server->find("max_connections")->asNumber(), 9.0);
    EXPECT_GE(server->find("accepted")->asNumber(), 2.0);
    EXPECT_FALSE(server->find("draining")->asBool());
    for (const char *counter :
         {"rejected_shed_load", "rejected_queue_full",
          "idle_reaped", "timed_out", "partial_writes",
          "http_errors", "dispatch_depth"})
        EXPECT_NE(server->find(counter), nullptr) << counter;
    // The /metrics request itself is open while the snapshot is
    // taken, so the gauge tree is live, not all-zero.
    const JsonValue *connections = server->find("connections");
    ASSERT_NE(connections, nullptr);
    EXPECT_GE(connections->find("open")->asNumber(), 1.0);
    for (const char *gauge :
         {"reading", "dispatched", "writing", "idle", "lingering"})
        EXPECT_NE(connections->find(gauge), nullptr) << gauge;
    const JsonValue *poller = server->find("poller");
    ASSERT_NE(poller, nullptr);
    EXPECT_TRUE(poller->asString() == "epoll" ||
                poller->asString() == "poll");

    const JsonValue *requests = metrics.value().find("requests");
    ASSERT_NE(requests, nullptr);
    for (size_t i = 0; i < kVerbCount; ++i)
        EXPECT_NE(
            requests->find(verbName(static_cast<Verb>(i))),
            nullptr);

    const JsonValue *scheduler = metrics.value().find("scheduler");
    ASSERT_NE(scheduler, nullptr);
    EXPECT_GE(scheduler->find("threads")->asNumber(), 1.0);
    ASSERT_NE(scheduler->find("submitted"), nullptr);
    EXPECT_GE(scheduler->find("submitted")->asNumber(),
              scheduler->find("executed")->asNumber());

    const JsonValue *caches = metrics.value().find("caches");
    ASSERT_NE(caches, nullptr);
    for (const char *stage :
         {"compile", "sim", "synth", "synth_report"}) {
        const JsonValue *entry = caches->find(stage);
        ASSERT_NE(entry, nullptr) << stage;
        EXPECT_NE(entry->find("hits"), nullptr);
        EXPECT_NE(entry->find("misses"), nullptr);
    }
}

// --------------------------------------------------- error handling

/** The server must survive anything; prove it with a liveness probe
 *  after every hostile request. */
void
expectStillAlive(uint16_t port)
{
    const auto health = httpRequest(port, "GET", "/healthz");
    ASSERT_TRUE(health.has_value());
    EXPECT_EQ(health->status, 200);
}

TEST(ServeErrors, MalformedRequestLineIs400)
{
    Harness harness;
    HttpClient client;
    ASSERT_TRUE(client.connect(harness.port()));
    ASSERT_TRUE(client.sendRaw("THIS IS NOT HTTP\r\n\r\n"));
    const auto response = client.readResponse();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 400);
    EXPECT_NE(response->body.find("invalid_argument"),
              std::string::npos);
    expectStillAlive(harness.port());
}

TEST(ServeErrors, TruncatedJsonBodyIsAStructuredParseError)
{
    Harness harness;
    const auto response =
        httpRequest(harness.port(), "POST", "/api/v1/run",
                    R"({"workload": "crc)");
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 400);
    EXPECT_NE(response->body.find("parse_error"),
              std::string::npos);
    expectStillAlive(harness.port());
}

TEST(ServeErrors, WrongFieldTypeIs400)
{
    Harness harness;
    const auto response =
        httpRequest(harness.port(), "POST", "/api/v1/run",
                    R"({"workload": 5})");
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 400);
    EXPECT_NE(response->body.find("must be a string"),
              std::string::npos);
    expectStillAlive(harness.port());
}

TEST(ServeErrors, UnknownFieldIsNamedNotIgnored)
{
    Harness harness;
    const auto response = httpRequest(
        harness.port(), "POST", "/api/v1/run",
        R"({"workload": "crc32", "verfy": true})");
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 400);
    EXPECT_NE(response->body.find("verfy"), std::string::npos);
    expectStillAlive(harness.port());
}

TEST(ServeErrors, UnknownVerbAndPathAre404)
{
    Harness harness;
    const auto verb = httpRequest(harness.port(), "POST",
                                  "/api/v1/frobnicate", "{}");
    ASSERT_TRUE(verb.has_value());
    EXPECT_EQ(verb->status, 404);
    EXPECT_NE(verb->body.find("not_found"), std::string::npos);

    const auto path = httpRequest(harness.port(), "GET", "/nope");
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->status, 404);
    expectStillAlive(harness.port());
}

TEST(ServeErrors, WrongMethodIs405)
{
    Harness harness;
    const auto get =
        httpRequest(harness.port(), "GET", "/api/v1/run");
    ASSERT_TRUE(get.has_value());
    EXPECT_EQ(get->status, 405);

    const auto post =
        httpRequest(harness.port(), "POST", "/healthz", "{}");
    ASSERT_TRUE(post.has_value());
    EXPECT_EQ(post->status, 405);
    expectStillAlive(harness.port());
}

TEST(ServeErrors, OversizedBodyIs413BeforeTheBodyIsRead)
{
    ServeOptions options;
    options.maxBodyBytes = 256;
    Harness harness(options);

    // Claim a huge body and send none of it: the server must refuse
    // from the head alone instead of buffering.
    HttpClient client;
    ASSERT_TRUE(client.connect(harness.port()));
    ASSERT_TRUE(client.sendRaw("POST /api/v1/run HTTP/1.1\r\n"
                               "Host: t\r\n"
                               "Content-Length: 100000\r\n"
                               "\r\n"));
    const auto response = client.readResponse();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 413);
    EXPECT_NE(response->body.find("exceeds"), std::string::npos);
    expectStillAlive(harness.port());
}

TEST(ServeErrors, ChunkedTransferEncodingIsRejected)
{
    Harness harness;
    HttpClient client;
    ASSERT_TRUE(client.connect(harness.port()));
    ASSERT_TRUE(client.sendRaw("POST /api/v1/run HTTP/1.1\r\n"
                               "Host: t\r\n"
                               "Transfer-Encoding: chunked\r\n"
                               "\r\n"));
    const auto response = client.readResponse();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 400);
    expectStillAlive(harness.port());
}

// ------------------------------------------------ admission control

TEST(ServeAdmission, QueueFullIsAStructured429)
{
    ServeOptions options;
    options.maxConnections = 2;
    Harness harness(options, /*threads=*/2);

    // Two clients connect and stall mid-head: they are admitted (the
    // connection cap counts connections, not parsed requests — a
    // stalled client is load) and they hold their slots.
    HttpClient stalledA, stalledB;
    ASSERT_TRUE(stalledA.connect(harness.port()));
    ASSERT_TRUE(stalledA.sendRaw("POST /api/v1/run HTTP/1.1\r\n"));
    ASSERT_TRUE(stalledB.connect(harness.port()));
    ASSERT_TRUE(stalledB.sendRaw("POST /api/v1/run HTTP/1.1\r\n"));

    // The third connection finds the server at capacity. The reactor
    // admits strictly in arrival order, so by the time it reaches
    // this one both stalled connections hold their slots. The 429
    // is pushed before any request bytes are read, so reading
    // without sending observes it deterministically.
    HttpClient third;
    ASSERT_TRUE(third.connect(harness.port()));
    const auto rejected = third.readResponse();
    ASSERT_TRUE(rejected.has_value());
    EXPECT_EQ(rejected->status, 429);
    EXPECT_NE(rejected->body.find("unavailable"),
              std::string::npos);
    EXPECT_NE(rejected->body.find("capacity"), std::string::npos);

    // Free the slots; the server must recover without a restart.
    stalledA.disconnect();
    stalledB.disconnect();
    bool recovered = false;
    for (int attempt = 0; attempt < 100 && !recovered; ++attempt) {
        const auto health =
            httpRequest(harness.port(), "GET", "/healthz");
        recovered = health.has_value() && health->status == 200;
        if (!recovered)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(recovered);

    const MetricsSnapshot metrics = harness.server.metrics();
    EXPECT_GE(metrics.rejectedShedLoad, 1u);
}

TEST(ServeAdmission, ShedDeliversThe429AfterTheBodyWasSent)
{
    // Regression pin for the shed/RST gotcha: a rejected client that
    // already wrote its whole request must still read the 429. If
    // the server responds and closes while request bytes sit unread
    // in its receive queue, the kernel answers with RST and the
    // client's pending receive buffer — the 429 — is destroyed. The
    // reactor drains the received bytes first and retires the
    // connection through a lingering close (shutdown(SHUT_WR), read
    // to EOF), so the refusal survives.
    ServeOptions options;
    options.maxConnections = 1;
    Harness harness(options, /*threads=*/2);

    // Park one keep-alive connection: it owns the only slot.
    HttpClient parked;
    ASSERT_TRUE(parked.connect(harness.port()));
    const auto first = parked.request("GET", "/healthz", "", true);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->status, 200);

    // The rejected client sends its entire request *first* — head
    // and body land in the server's receive queue before the
    // reactor ever looks at the connection.
    HttpClient rejected;
    ASSERT_TRUE(rejected.connect(harness.port()));
    ASSERT_TRUE(rejected.sendRequest("POST", "/api/v1/run",
                                     R"({"workload": "crc32"})"));
    const auto response = rejected.readResponse();
    ASSERT_TRUE(response.has_value())
        << "429 lost to an RST: the shed path must drain request "
           "bytes before responding";
    EXPECT_EQ(response->status, 429);
    EXPECT_NE(response->body.find("unavailable"),
              std::string::npos);

    // The shed was invisible to the parked connection.
    const auto again = parked.request("GET", "/healthz", "", true);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->status, 200);

    const MetricsSnapshot metrics = harness.server.metrics();
    EXPECT_GE(metrics.rejectedShedLoad, 1u);
    EXPECT_EQ(metrics.accepted, 1u);
}

TEST(ServeAdmission, DispatchQueueFullIsAnImmediate429)
{
    // The second bound: dispatched-but-unfinished requests. One slow
    // explore occupies the only queue slot; the next API request is
    // refused on the reactor thread without waiting for a worker —
    // and /metrics stays answerable throughout (a saturated server
    // is still observable).
    ServeOptions options;
    options.maxQueue = 1;
    Harness harness(options, /*threads=*/1);

    // A plan wide enough to keep the single worker busy while the
    // test probes the full queue.
    std::string plan = "workload crc32\n"
                       "subset fit = @crc32\n"
                       "threads 1\n";
    for (int corner = 0; corner < 192; ++corner) {
        char line[64];
        std::snprintf(line, sizeof line,
                      "tech flexic-0.6um:voltage=2.5%03d\n", corner);
        plan += line;
    }
    std::string body = R"({"plan": ")";
    for (const char c : plan)
        body += c == '\n' ? std::string("\\n") : std::string(1, c);
    body += R"("})";

    HttpClient slow;
    ASSERT_TRUE(slow.connect(harness.port(), /*timeout_ms=*/
                             HttpClient::kDefaultTimeoutMs * 4));
    ASSERT_TRUE(slow.sendRequest("POST", "/api/v1/explore", body));

    // Wait until the reactor has handed the request to the
    // scheduler: the Dispatched gauge is the admission predicate.
    MetricsSnapshot metrics = harness.server.metrics();
    for (int attempt = 0;
         attempt < 500 && metrics.dispatchDepth == 0; ++attempt) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        metrics = harness.server.metrics();
    }
    ASSERT_EQ(metrics.dispatchDepth, 1u);

    const auto refused =
        httpRequest(harness.port(), "POST", "/api/v1/characterize",
                    R"({"workload": "crc32"})");
    ASSERT_TRUE(refused.has_value());
    EXPECT_EQ(refused->status, 429);
    EXPECT_NE(refused->body.find("requests in flight"),
              std::string::npos);

    // Inline endpoints bypass the dispatch queue.
    const auto observable =
        httpRequest(harness.port(), "GET", "/metrics");
    ASSERT_TRUE(observable.has_value());
    EXPECT_EQ(observable->status, 200);

    // The slow request is unharmed by the shed around it.
    const auto completed = slow.readResponse();
    ASSERT_TRUE(completed.has_value());
    EXPECT_EQ(completed->status, 200);
    EXPECT_GE(harness.server.metrics().rejectedQueueFull, 1u);
}

// ------------------------------------------------- idle timeouts

TEST(ServeTimeouts, IdleConnectionsAreReapedActiveOnesAreNot)
{
#ifdef RISSP_TSAN
    constexpr int kIdleTimeoutMs = 2'000;
#else
    constexpr int kIdleTimeoutMs = 400;
#endif
    ServeOptions options;
    options.idleTimeoutMs = kIdleTimeoutMs;
    Harness harness(options, /*threads=*/2);

    // The idle one: a completed keep-alive request, then silence.
    HttpClient idle;
    ASSERT_TRUE(idle.connect(harness.port()));
    ASSERT_TRUE(
        idle.request("GET", "/healthz", "", true).has_value());

    // The active one keeps talking at a cadence well inside the
    // timeout; every exchange re-arms its timer.
    HttpClient active;
    ASSERT_TRUE(active.connect(harness.port()));
    const auto start = std::chrono::steady_clock::now();
    const auto deadline =
        start + std::chrono::milliseconds(3 * kIdleTimeoutMs);
    while (std::chrono::steady_clock::now() < deadline) {
        const auto response =
            active.request("GET", "/healthz", "", true);
        ASSERT_TRUE(response.has_value())
            << "active keep-alive connection was reaped";
        EXPECT_EQ(response->status, 200);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kIdleTimeoutMs / 4));
    }

    // By now the idle connection is long past its deadline: the
    // server closed it (EOF on read, no response bytes).
    EXPECT_FALSE(idle.readResponse().has_value());
    const MetricsSnapshot metrics = harness.server.metrics();
    EXPECT_GE(metrics.idleReaped, 1u);
}

// --------------------------------------------------- slow clients

TEST(ServeConcurrency, SlowLorisDribblersDoNotStarveDispatch)
{
    // Classic slow-loris: a pack of connections dribbling a byte of
    // head at a time. On the old thread-per-request design each
    // dribbler pinned a handler thread; on the reactor they are just
    // parked fds, and real requests flow past them.
#ifdef RISSP_TSAN
    constexpr int kDribblers = 16;
#else
    constexpr int kDribblers = 48;
#endif
    Harness harness({}, /*threads=*/2);

    std::vector<std::unique_ptr<HttpClient>> dribblers;
    const std::string partialHead = "POST /api/v1/run HTTP/1.1\r\n";
    for (int i = 0; i < kDribblers; ++i) {
        auto client = std::make_unique<HttpClient>();
        ASSERT_TRUE(client->connect(harness.port())) << i;
        // A prefix of a valid head, cut mid-header — never enough
        // to parse, never an error either.
        ASSERT_TRUE(client->sendRaw(
            partialHead.substr(0, 8 + (i % 12))));
        dribblers.push_back(std::move(client));
    }

    // Every dribbler keeps dribbling while real requests complete.
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < kDribblers; ++i)
            ASSERT_TRUE(dribblers[i]->sendRaw("X"));
        const auto response =
            httpRequest(harness.port(), "POST",
                        "/api/v1/characterize",
                        R"({"workload": "crc32"})");
        ASSERT_TRUE(response.has_value()) << "round " << round;
        EXPECT_EQ(response->status, 200);
    }

    const MetricsSnapshot metrics = harness.server.metrics();
    EXPECT_GE(metrics.readingConnections, size_t(kDribblers));
    EXPECT_EQ(metrics.accepted, uint64_t(kDribblers + 3));
}

// ------------------------------------------------- in-flight dedup

TEST(ServeConcurrency, ParallelIdenticalSynthsHitTheCacheOnce)
{
    // Eight clients ask for the same synth at once. The stage caches
    // are promise-backed exactly-once memoization, so however the
    // scheduler interleaves them, the report is computed once:
    // misses() counts distinct keys deterministically.
    Harness harness({}, /*threads=*/4);
    constexpr int kClients = 8;
    const std::string body =
        R"({"workload": "crc32", "tech": "flexic-0.6um", )"
        R"("baselines": false, "physical": false})";

    std::vector<std::string> bodies(kClients);
    std::vector<int> statuses(kClients, 0);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i)
        clients.emplace_back([&, i] {
            const auto response = httpRequest(
                harness.port(), "POST", "/api/v1/synth", body);
            if (response) {
                statuses[i] = response->status;
                bodies[i] = response->body;
            }
        });
    for (std::thread &client : clients)
        client.join();

    for (int i = 0; i < kClients; ++i) {
        EXPECT_EQ(statuses[i], 200) << "client " << i;
        EXPECT_EQ(bodies[i], bodies[0]) << "client " << i;
    }

    const MetricsSnapshot metrics = harness.server.metrics();
    EXPECT_EQ(metrics.verbTotals[size_t(Verb::Synth)],
              uint64_t(kClients));
    EXPECT_EQ(metrics.verbErrors[size_t(Verb::Synth)], 0u);
    EXPECT_EQ(metrics.synthReportMisses, 1u);
    EXPECT_EQ(metrics.synthReportHits, uint64_t(kClients - 1));
    EXPECT_EQ(metrics.compileMisses, 1u);

    // The same numbers must surface through the wire endpoint.
    const auto wire = httpRequest(harness.port(), "GET", "/metrics");
    ASSERT_TRUE(wire.has_value());
    const Result<JsonValue> parsed = parseJson(wire->body);
    ASSERT_TRUE(parsed.isOk());
    const JsonValue *report =
        parsed.value().find("caches")->find("synth_report");
    ASSERT_NE(report, nullptr);
    EXPECT_EQ(report->find("misses")->asNumber(), 1.0);
    EXPECT_EQ(report->find("hits")->asNumber(),
              double(kClients - 1));
}

TEST(ServeConcurrency, MixedHammerKeepsEveryCounterConsistent)
{
    Harness harness({}, /*threads=*/4);
    // TSan's ~10x slowdown makes the full hammer flirt with the test
    // timeout; half the clients exercise the same interleavings.
#ifdef RISSP_TSAN
    constexpr int kClients = 8;
#else
    constexpr int kClients = 16;
#endif

    std::vector<int> failures(kClients, 0);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i)
        clients.emplace_back([&, i] {
            auto expect = [&](const char *method,
                              const char *target,
                              const std::string &body,
                              int status) {
                const auto response = httpRequest(
                    harness.port(), method, target, body);
                if (!response || response->status != status)
                    ++failures[i];
            };
            expect("POST", "/api/v1/characterize",
                   R"({"workload": "crc32"})", 200);
            expect("POST", "/api/v1/run",
                   R"({"workload": "crc32"})", 200);
            expect("POST", "/api/v1/run", R"({"nope": 1})", 400);
            expect("GET", "/no-such-endpoint", "", 404);
        });
    for (std::thread &client : clients)
        client.join();

    for (int i = 0; i < kClients; ++i)
        EXPECT_EQ(failures[i], 0) << "client " << i;

    // A client can read its full response a beat before the handler
    // releases the admission slot; wait for quiescence instead of
    // snapshotting mid-release.
    MetricsSnapshot metrics = harness.server.metrics();
    for (int attempt = 0;
         attempt < 250 && metrics.activeConnections != 0;
         ++attempt) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        metrics = harness.server.metrics();
    }
    EXPECT_EQ(metrics.verbTotals[size_t(Verb::Characterize)],
              uint64_t(kClients));
    EXPECT_EQ(metrics.verbTotals[size_t(Verb::Run)],
              uint64_t(kClients));
    // The dispatched characterize and run requests share one
    // compile key (same workload, same default opt): one miss,
    // everything else in-flight-deduped or cache hits.
    EXPECT_EQ(metrics.compileMisses, 1u);
    EXPECT_GE(metrics.httpErrors, uint64_t(2 * kClients));
    EXPECT_EQ(metrics.activeConnections, 0u);
    EXPECT_EQ(metrics.accepted, uint64_t(4 * kClients));
}

// --------------------------------------------- parked-fd scalability

TEST(ServeConcurrency, ThousandIdleConnectionsPlusActiveHammer)
{
    // The headline scalability contract: a big pool of parked
    // keep-alive connections costs file descriptors, not threads —
    // active clients are served at full speed through them, and
    // every counter stays exact. (TSan shrinks the pool: the point
    // is the interleavings, not the fd count.)
#ifdef RISSP_TSAN
    constexpr int kIdle = 128;
    constexpr int kActive = 8;
    constexpr int kRequestsPerClient = 2;
#else
    constexpr int kIdle = 1000;
    constexpr int kActive = 16;
    constexpr int kRequestsPerClient = 4;
#endif
    ServeOptions options;
    options.maxConnections = kIdle + kActive + 8;
    Harness harness(options, /*threads=*/4);

    // Park the pool: each connection proves liveness once, then
    // sits idle for the rest of the test.
    std::vector<std::unique_ptr<HttpClient>> parked;
    parked.reserve(kIdle);
    for (int i = 0; i < kIdle; ++i) {
        auto client = std::make_unique<HttpClient>();
        ASSERT_TRUE(client->connect(harness.port())) << i;
        const auto response =
            client->request("GET", "/healthz", "", true);
        ASSERT_TRUE(response.has_value()) << i;
        EXPECT_EQ(response->status, 200);
        parked.push_back(std::move(client));
    }
    // A client can read its response a beat before the reactor
    // books the connection back into Idle; poll for the settled
    // gauge instead of snapshotting mid-transition.
    MetricsSnapshot parkedGauge = harness.server.metrics();
    for (int attempt = 0;
         attempt < 200 && parkedGauge.idleConnections != size_t(kIdle);
         ++attempt) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        parkedGauge = harness.server.metrics();
    }
    ASSERT_EQ(parkedGauge.idleConnections, size_t(kIdle));

    // Saturating active load through the parked crowd: one
    // keep-alive connection per client, several requests each.
    std::vector<int> failures(kActive, 0);
    std::vector<std::thread> clients;
    for (int i = 0; i < kActive; ++i)
        clients.emplace_back([&, i] {
            HttpClient client;
            if (!client.connect(harness.port())) {
                failures[i] = kRequestsPerClient;
                return;
            }
            for (int r = 0; r < kRequestsPerClient; ++r) {
                const auto response = client.request(
                    "POST", "/api/v1/characterize",
                    R"({"workload": "crc32"})", true);
                if (!response || response->status != 200)
                    ++failures[i];
            }
        });
    for (std::thread &client : clients)
        client.join();
    for (int i = 0; i < kActive; ++i)
        EXPECT_EQ(failures[i], 0) << "client " << i;

    // Exact accounting: every connection accepted, none shed, the
    // idle pool untouched, every request dispatched and answered.
    // The reactor notices the active clients' disconnects a beat
    // after they read their last byte; wait for quiescence first.
    MetricsSnapshot metrics = harness.server.metrics();
    for (int attempt = 0;
         attempt < 500 && metrics.activeConnections != size_t(kIdle);
         ++attempt) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        metrics = harness.server.metrics();
    }
    EXPECT_EQ(metrics.activeConnections, size_t(kIdle));
    EXPECT_EQ(metrics.accepted, uint64_t(kIdle + kActive));
    EXPECT_EQ(metrics.rejectedShedLoad, 0u);
    EXPECT_EQ(metrics.rejectedQueueFull, 0u);
    EXPECT_EQ(metrics.idleConnections, size_t(kIdle));
    EXPECT_EQ(metrics.verbTotals[size_t(Verb::Characterize)],
              uint64_t(kActive * kRequestsPerClient));
    EXPECT_EQ(metrics.verbErrors[size_t(Verb::Characterize)], 0u);
    EXPECT_EQ(metrics.httpErrors, 0u);

    // The parked pool is still alive end to end.
    for (int i = 0; i < kIdle; i += kIdle / 10) {
        const auto response =
            parked[i]->request("GET", "/healthz", "", true);
        ASSERT_TRUE(response.has_value()) << i;
        EXPECT_EQ(response->status, 200);
    }
}

// ----------------------------------------------- write backpressure

TEST(ServeBackpressure, PartialWritesDeliverALargeResponseIntact)
{
    // A response far bigger than the socket's send buffer must go
    // out in EPOLLOUT-driven slices without blocking the reactor,
    // and arrive byte-identical. Tiny buffers on both ends plus a
    // client that dawdles before reading force the partial-write
    // path deterministically.
#ifdef RISSP_TSAN
    constexpr int kCorners = 96;
#else
    constexpr int kCorners = 768;
#endif
    ServeOptions options;
    options.sendBufferBytes = 4096;
    Harness harness(options, /*threads=*/2);

    std::string plan = "workload crc32\n"
                       "subset fit = @crc32\n"
                       "threads 2\n";
    for (int corner = 0; corner < kCorners; ++corner) {
        char line[64];
        std::snprintf(line, sizeof line,
                      "tech flexic-0.6um:voltage=2.5%03d\n", corner);
        plan += line;
    }

    flow::ExploreRequest request;
    request.planText = plan;
    flow::FlowService fresh;
    const flow::Response expected =
        fresh.dispatch(flow::Request(request));
    const std::string expectedBody = flow::toJson(expected);
    ASSERT_GT(expectedBody.size(), size_t(kCorners) * 80)
        << "plan too small to exercise backpressure";

    std::string body = R"({"plan": ")";
    for (const char c : plan)
        body += c == '\n' ? std::string("\\n") : std::string(1, c);
    body += R"("})";

    HttpClient client;
    client.setReceiveBufferBytes(4096);
    ASSERT_TRUE(client.connect(harness.port(), /*timeout_ms=*/
                               HttpClient::kDefaultTimeoutMs * 4));
    ASSERT_TRUE(client.sendRequest("POST", "/api/v1/explore", body));
    // Dawdle until the response has filled the tiny buffers on both
    // ends and wedged the connection in Writing with EPOLLOUT armed
    // — the response dwarfs the combined buffer capacity, so it
    // cannot complete before this client starts reading.
    MetricsSnapshot wedged = harness.server.metrics();
    for (int attempt = 0;
         attempt < 4000 && wedged.writingConnections == 0;
         ++attempt) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        wedged = harness.server.metrics();
    }
    EXPECT_EQ(wedged.writingConnections, 1u);
    const auto response = client.readResponse();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 200);
    EXPECT_EQ(response->body, expectedBody);

    const MetricsSnapshot metrics = harness.server.metrics();
    EXPECT_GE(metrics.partialWrites, 1u);
}

// ------------------------------------------------- poller backends

TEST(ServeBackend, PollFallbackServesTheSameProtocol)
{
    // The portable poll(2) backend sits behind the same Poller
    // interface; run a keep-alive conversation and an API request
    // through it to keep the fallback honest.
    ServeOptions options;
    options.usePollBackend = true;
    Harness harness(options, /*threads=*/2);
    EXPECT_EQ(harness.server.metrics().pollerBackend, "poll");

    HttpClient client;
    ASSERT_TRUE(client.connect(harness.port()));
    for (int i = 0; i < 3; ++i) {
        const auto response =
            client.request("GET", "/healthz", "", true);
        ASSERT_TRUE(response.has_value()) << i;
        EXPECT_EQ(response->status, 200);
    }
    const auto api =
        httpRequest(harness.port(), "POST", "/api/v1/characterize",
                    R"({"workload": "crc32"})");
    ASSERT_TRUE(api.has_value());
    EXPECT_EQ(api->status, 200);
}

// --------------------------------------------------- graceful drain

TEST(ServeDrain, InFlightRequestsCompleteNewConnectionsRefused)
{
    Harness harness;

    // Client A: head plus half a body, then stall — in flight.
    const std::string body = R"({"workload": "crc32"})";
    HttpClient slow;
    ASSERT_TRUE(slow.connect(harness.port()));
    ASSERT_TRUE(slow.sendRaw(
        "POST /api/v1/characterize HTTP/1.1\r\n"
        "Host: t\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n"
        "Connection: close\r\n"
        "\r\n" + body.substr(0, 5)));

    // Client B trips the drain and gets an acknowledgement.
    const auto ack =
        httpRequest(harness.port(), "POST", "/shutdown");
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->status, 200);
    EXPECT_NE(ack->body.find("draining"), std::string::npos);

    // New connections are refused once the listener closes.
    bool refused = false;
    for (int attempt = 0; attempt < 250 && !refused; ++attempt) {
        HttpClient probe;
        refused = !probe.connect(harness.port());
        if (!refused)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(refused);
    EXPECT_TRUE(harness.server.draining());

    // The stalled in-flight request still completes in full.
    ASSERT_TRUE(slow.sendRaw(body.substr(5)));
    const auto response = slow.readResponse();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 200);
    flow::FlowService fresh;
    flow::CharacterizeRequest request;
    request.source = flow::SourceRef::bundled("crc32");
    EXPECT_EQ(response->body,
              flow::toJson(fresh.dispatch(flow::Request(request))));

    harness.server.waitUntilStopped();
    EXPECT_EQ(harness.server.metrics().activeConnections, 0u);
}

TEST(ServeDrain, DrainClosesIdleConnectionsAndCompletesInFlight)
{
    Harness harness;

    // A parked keep-alive connection and a mid-body request.
    HttpClient idle;
    ASSERT_TRUE(idle.connect(harness.port()));
    ASSERT_TRUE(
        idle.request("GET", "/healthz", "", true).has_value());

    const std::string body = R"({"workload": "crc32"})";
    HttpClient slow;
    ASSERT_TRUE(slow.connect(harness.port()));
    ASSERT_TRUE(slow.sendRaw(
        "POST /api/v1/run HTTP/1.1\r\n"
        "Host: t\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n"
        "Connection: close\r\n"
        "\r\n" + body.substr(0, 7)));

    // Let the partial request reach the reactor before the drain:
    // a connection that never spoke is closed at drain time, one
    // that is mid-request is not, and the distinction is what this
    // test pins. (sendRaw returning only proves the bytes left the
    // client's kernel, not that the reactor read them.)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    harness.server.requestShutdown();

    // The idle connection closes promptly (EOF, no bytes): drains
    // must not wait out the idle-timeout clock.
    EXPECT_FALSE(idle.readResponse().has_value());

    // The mid-body request runs to completion.
    ASSERT_TRUE(slow.sendRaw(body.substr(7)));
    const auto response = slow.readResponse();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 200);

    harness.server.waitUntilStopped();
    EXPECT_EQ(harness.server.metrics().activeConnections, 0u);
}

TEST(ServeDrain, DrainRaceDestroyOnWakeRegression)
{
    // Regression pin from the PR 6 TSan finding (then: a condvar
    // notified after the drain waiter destroyed the server; now: the
    // completion handoff must never touch the reactor after
    // waitUntilStopped() returns). Hammer the destroy-on-wake
    // window: each iteration races one in-flight
    // request against shutdown + waitUntilStopped + destruction.
#ifdef RISSP_TSAN
    constexpr int kRounds = 6;
#else
    constexpr int kRounds = 12;
#endif
    for (int round = 0; round < kRounds; ++round) {
        flow::FlowService service(nullptr, /*threads=*/2);
        std::thread client;
        {
            HttpServer server(service);
            ASSERT_TRUE(server.start().isOk());
            const uint16_t port = server.port();
            client = std::thread([port] {
                // Response (or refusal) irrelevant: the race under
                // test is handler-finish vs. drain-wake.
                (void)httpRequest(port, "GET", "/metrics");
            });
            server.requestShutdown();
            server.waitUntilStopped();
            // Scope exit destroys the server right on the wake.
        }
        client.join();
    }
}

// ------------------------------------------------ framing unit tests

TEST(HttpFraming, ParsesAWellFormedHead)
{
    const Result<http::RequestHead> head = http::parseRequestHead(
        "POST /api/v1/run?x=1 HTTP/1.1\r\n"
        "Host: localhost\r\n"
        "Content-Length:  42 \r\n"
        "\r\n");
    ASSERT_TRUE(head.isOk()) << head.status().toString();
    EXPECT_EQ(head.value().method, "POST");
    EXPECT_EQ(head.value().target, "/api/v1/run?x=1");
    EXPECT_EQ(head.value().version, "HTTP/1.1");
    ASSERT_NE(head.value().header("content-length"), nullptr);
    EXPECT_EQ(head.value().contentLength().value(), 42u);
    EXPECT_TRUE(head.value().keepAlive());
}

TEST(HttpFraming, RejectsMalformedHeads)
{
    EXPECT_FALSE(http::parseRequestHead("BOGUS\r\n\r\n").isOk());
    EXPECT_FALSE(
        http::parseRequestHead("GET  / HTTP/1.1\r\n\r\n").isOk());
    EXPECT_FALSE(
        http::parseRequestHead("GET / HTTP/2\r\n\r\n").isOk());
    EXPECT_FALSE(
        http::parseRequestHead("GET x HTTP/1.1\r\n\r\n").isOk());
    EXPECT_FALSE(http::parseRequestHead(
                     "GET / HTTP/1.1\r\nNoColon\r\n\r\n")
                     .isOk());
}

TEST(HttpFraming, ContentLengthRejectsLiesAndChunking)
{
    auto lengthOf = [](const std::string &headers) {
        return http::parseRequestHead("POST / HTTP/1.1\r\n" +
                                      headers + "\r\n")
            .value()
            .contentLength();
    };
    EXPECT_FALSE(lengthOf("Content-Length: -1\r\n").isOk());
    EXPECT_FALSE(lengthOf("Content-Length: 12abc\r\n").isOk());
    EXPECT_FALSE(lengthOf("Content-Length: 1\r\n"
                          "Content-Length: 2\r\n")
                     .isOk());
    EXPECT_FALSE(
        lengthOf("Transfer-Encoding: chunked\r\n").isOk());
    EXPECT_EQ(lengthOf("").value(), 0u);
}

TEST(HttpFraming, KeepAliveFollowsVersionAndConnectionHeader)
{
    auto keepAlive = [](const std::string &request_line,
                        const std::string &headers) {
        return http::parseRequestHead(request_line + "\r\n" +
                                      headers + "\r\n")
            .value()
            .keepAlive();
    };
    EXPECT_TRUE(keepAlive("GET / HTTP/1.1", ""));
    EXPECT_FALSE(
        keepAlive("GET / HTTP/1.1", "Connection: close\r\n"));
    EXPECT_FALSE(keepAlive("GET / HTTP/1.0", ""));
    EXPECT_TRUE(keepAlive("GET / HTTP/1.0",
                          "Connection: keep-alive\r\n"));
}

TEST(HttpFraming, FindHeadEndWaitsForTheBlankLine)
{
    EXPECT_EQ(http::findHeadEnd("GET / HTTP/1.1\r\nHost: x"),
              std::string::npos);
    const std::string full = "GET / HTTP/1.1\r\n\r\nBODY";
    EXPECT_EQ(http::findHeadEnd(full), full.size() - 4);
}

TEST(HttpFraming, BuildResponseRoundTripsThroughTheClientParser)
{
    const std::string wire =
        http::buildResponse(422, "{\"x\": 1}\n", "application/json",
                            /*keep_alive=*/true);
    EXPECT_EQ(wire.rfind("HTTP/1.1 422 ", 0), 0u);
    EXPECT_NE(wire.find("Content-Length: 9\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("Connection: keep-alive\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("\r\n\r\n{\"x\": 1}\n"),
              std::string::npos);
}

// ------------------------------------------------- status mapping

TEST(ServeStatus, HttpStatusCoversEveryErrorCode)
{
    EXPECT_EQ(httpStatusFor(Status::ok()), 200);
    EXPECT_EQ(httpStatusFor(Status::error(
                  ErrorCode::InvalidArgument, "x")),
              400);
    EXPECT_EQ(
        httpStatusFor(Status::error(ErrorCode::ParseError, "x")),
        400);
    EXPECT_EQ(
        httpStatusFor(Status::error(ErrorCode::NotFound, "x")),
        404);
    EXPECT_EQ(httpStatusFor(Status::error(ErrorCode::Trap, "x")),
              422);
    EXPECT_EQ(httpStatusFor(
                  Status::error(ErrorCode::CosimMismatch, "x")),
              422);
    EXPECT_EQ(
        httpStatusFor(Status::error(ErrorCode::Unavailable, "x")),
        429);
    EXPECT_EQ(
        httpStatusFor(Status::error(ErrorCode::Internal, "x")),
        500);
}

TEST(ServeStatus, VerbNamesRoundTrip)
{
    for (size_t i = 0; i < kVerbCount; ++i) {
        const Verb verb = static_cast<Verb>(i);
        const Result<Verb> parsed = verbFromName(verbName(verb));
        ASSERT_TRUE(parsed.isOk());
        EXPECT_EQ(parsed.value(), verb);
    }
    EXPECT_FALSE(verbFromName("frobnicate").isOk());
}

} // namespace
} // namespace rissp::net
