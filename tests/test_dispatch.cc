/**
 * @file
 * Tests for the interpreter dispatch rebuild (sim/dispatch.hh,
 * sim/exec_core.inc): every dispatch variant of both simulators must
 * retire a byte-identical RVFI stream, the RISSP mutation contract
 * must hold under all of them, and mode selection itself is pinned.
 *
 * The golden stream is always the one the single-step APIs produce:
 * RefSim::step() is the hand-written reference switch, and the
 * RISSP's gate-level engine is the structural model. The interpreter
 * cores are only allowed to be faster, never different.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "assembler/assembler.hh"
#include "core/rissp.hh"
#include "core/subset.hh"
#include "sim/refsim.hh"
#include "util/logging.hh"
#include "verify/integration_verify.hh"

namespace rissp
{
namespace
{

/** Field-by-field RetireEvent equality with a readable diff — the
 *  cosim comparator deliberately ignores rs1/rs2; this one must not,
 *  because the contract here is byte-identical streams. */
::testing::AssertionResult
sameEvent(const RetireEvent &a, const RetireEvent &b)
{
    auto fail = [&](const char *field) {
        return ::testing::AssertionFailure()
               << "RetireEvent field '" << field
               << "' differs at order " << a.order << " (pc 0x"
               << std::hex << a.pc << std::dec << ")";
    };
    if (a.order != b.order)
        return fail("order");
    if (a.pc != b.pc)
        return fail("pc");
    if (a.nextPc != b.nextPc)
        return fail("nextPc");
    if (a.raw != b.raw)
        return fail("raw");
    if (a.op != b.op)
        return fail("op");
    if (a.rs1 != b.rs1)
        return fail("rs1");
    if (a.rs2 != b.rs2)
        return fail("rs2");
    if (a.rs1Data != b.rs1Data)
        return fail("rs1Data");
    if (a.rs2Data != b.rs2Data)
        return fail("rs2Data");
    if (a.rd != b.rd)
        return fail("rd");
    if (a.rdData != b.rdData)
        return fail("rdData");
    if (a.memRead != b.memRead)
        return fail("memRead");
    if (a.memWrite != b.memWrite)
        return fail("memWrite");
    if (a.memAddr != b.memAddr)
        return fail("memAddr");
    if (a.memData != b.memData)
        return fail("memData");
    if (a.memBytes != b.memBytes)
        return fail("memBytes");
    if (a.trap != b.trap)
        return fail("trap");
    if (a.halt != b.halt)
        return fail("halt");
    return ::testing::AssertionSuccess();
}

::testing::AssertionResult
sameTrace(const std::vector<RetireEvent> &a,
          const std::vector<RetireEvent> &b)
{
    if (a.size() != b.size())
        return ::testing::AssertionFailure()
               << "trace length differs: " << a.size() << " vs "
               << b.size();
    for (size_t i = 0; i < a.size(); ++i) {
        ::testing::AssertionResult r = sameEvent(a[i], b[i]);
        if (!r)
            return r;
    }
    return ::testing::AssertionSuccess();
}

/** Everything observable about one simulator run. */
struct RunSnapshot
{
    RunResult result;
    std::vector<RetireEvent> trace;
    std::array<uint32_t, kNumRegsE> regs{};
    uint32_t pc = 0;
    StopReason stopped = StopReason::Running;
    std::vector<uint32_t> outWords;
    std::string outText;
};

::testing::AssertionResult
sameSnapshot(const RunSnapshot &a, const RunSnapshot &b)
{
    ::testing::AssertionResult tr = sameTrace(a.trace, b.trace);
    if (!tr)
        return tr;
    if (a.result.reason != b.result.reason)
        return ::testing::AssertionFailure() << "stop reason differs";
    if (a.result.exitCode != b.result.exitCode)
        return ::testing::AssertionFailure() << "exit code differs";
    if (a.result.instret != b.result.instret)
        return ::testing::AssertionFailure()
               << "instret differs: " << a.result.instret << " vs "
               << b.result.instret;
    if (a.result.stopPc != b.result.stopPc)
        return ::testing::AssertionFailure() << "stopPc differs";
    if (a.regs != b.regs)
        return ::testing::AssertionFailure()
               << "final register file differs";
    if (a.pc != b.pc)
        return ::testing::AssertionFailure() << "final pc differs";
    if (a.stopped != b.stopped)
        return ::testing::AssertionFailure()
               << "StopReason state differs";
    if (a.outWords != b.outWords)
        return ::testing::AssertionFailure()
               << "output words differ";
    if (a.outText != b.outText)
        return ::testing::AssertionFailure() << "output text differs";
    return ::testing::AssertionSuccess();
}

/** Golden reference: drive RefSim::step() by hand (the independent
 *  switch statement of the semantics, untouched by the dispatch
 *  rebuild), replicating run()'s stopping rules. */
RunSnapshot
refGolden(const Program &program, uint64_t max_steps)
{
    RefSim sim;
    sim.reset(program);
    RunSnapshot snap;
    snap.result.reason = StopReason::StepLimit;
    for (uint64_t i = 0; i < max_steps; ++i) {
        const RetireEvent ev = sim.step();
        snap.trace.push_back(ev);
        if (ev.halt) {
            snap.result.reason = StopReason::Halted;
            snap.result.exitCode = sim.reg(reg::a0);
            break;
        }
        if (ev.trap) {
            snap.result.reason = StopReason::Trapped;
            break;
        }
    }
    snap.result.instret = sim.instret();
    snap.result.stopPc = snap.result.reason == StopReason::StepLimit
                             ? sim.pc()
                             : snap.trace.back().pc;
    for (unsigned r = 0; r < kNumRegsE; ++r)
        snap.regs[r] = sim.reg(r);
    snap.pc = sim.pc();
    snap.stopped = snap.result.reason == StopReason::StepLimit
                       ? StopReason::Running
                       : sim.stopReason();
    snap.outWords = sim.outputWords();
    snap.outText = sim.outputText();
    return snap;
}

RunSnapshot
refRun(const Program &program, uint64_t max_steps, DispatchMode mode)
{
    RefSim sim;
    sim.reset(program);
    RunSnapshot snap;
    SimRunOptions options;
    options.maxSteps = max_steps;
    options.dispatch = mode;
    options.trace = &snap.trace;
    snap.result = sim.run(options);
    for (unsigned r = 0; r < kNumRegsE; ++r)
        snap.regs[r] = sim.reg(r);
    snap.pc = sim.pc();
    snap.stopped = sim.stopReason();
    snap.outWords = sim.outputWords();
    snap.outText = sim.outputText();
    return snap;
}

RunSnapshot
risspRun(const Program &program, const InstrSubset &subset,
         uint64_t max_steps, const RisspRunOptions &base)
{
    Rissp chip(subset, "dispatch-test");
    chip.reset(program);
    RunSnapshot snap;
    RisspRunOptions options = base;
    options.maxSteps = max_steps;
    options.trace = &snap.trace;
    snap.result = chip.run(options);
    for (unsigned r = 0; r < kNumRegsE; ++r)
        snap.regs[r] = chip.reg(r);
    snap.pc = chip.pc();
    snap.stopped = chip.stopReason();
    snap.outWords = chip.outputWords();
    snap.outText = chip.outputText();
    return snap;
}

/** Every engine of both simulators against the two golden streams
 *  (RefSim::step(), RISSP gate-level) on one program. */
void
expectAllEnginesAgree(const Program &program,
                      const InstrSubset &subset,
                      uint64_t max_steps = 100'000)
{
    const RunSnapshot golden = refGolden(program, max_steps);
    EXPECT_TRUE(sameSnapshot(
        golden, refRun(program, max_steps, DispatchMode::Switch)))
        << "refsim switch core diverges from step()";
    EXPECT_TRUE(sameSnapshot(
        golden, refRun(program, max_steps, DispatchMode::Threaded)))
        << "refsim threaded core diverges from step()";

    RisspRunOptions gate;
    gate.gateLevel = true;
    const RunSnapshot dut_golden =
        risspRun(program, subset, max_steps, gate);
    RisspRunOptions fast;
    fast.dispatch = DispatchMode::Switch;
    EXPECT_TRUE(sameSnapshot(
        dut_golden, risspRun(program, subset, max_steps, fast)))
        << "rissp specialized switch core diverges from gate level";
    fast.dispatch = DispatchMode::Threaded;
    EXPECT_TRUE(sameSnapshot(
        dut_golden, risspRun(program, subset, max_steps, fast)))
        << "rissp specialized threaded core diverges from gate level";

    // When the whole subset executes cleanly the two simulators also
    // agree with each other (the cosim suite fuzzes that broadly;
    // here it guards the harness itself).
    if (golden.result.reason == StopReason::Halted) {
        EXPECT_TRUE(sameTrace(golden.trace, dut_golden.trace))
            << "reference and gate-level RISSP streams differ";
    }
}

TEST(DispatchMode, NamesRoundTrip)
{
    for (DispatchMode mode :
         {DispatchMode::Auto, DispatchMode::Switch,
          DispatchMode::Threaded}) {
        const std::optional<DispatchMode> parsed =
            dispatchModeFromName(dispatchModeName(mode));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, mode);
    }
    EXPECT_FALSE(dispatchModeFromName("fastest").has_value());
    EXPECT_FALSE(dispatchModeFromName("").has_value());
}

TEST(DispatchMode, ResolutionNeverReturnsAuto)
{
    const DispatchMode resolved =
        resolveDispatchMode(DispatchMode::Auto);
    EXPECT_NE(resolved, DispatchMode::Auto);
    EXPECT_EQ(resolveDispatchMode(DispatchMode::Switch),
              DispatchMode::Switch);
    if (threadedDispatchSupported())
        EXPECT_EQ(resolveDispatchMode(DispatchMode::Threaded),
                  DispatchMode::Threaded);
    else
        EXPECT_EQ(resolveDispatchMode(DispatchMode::Threaded),
                  DispatchMode::Switch);
}

TEST(DispatchMode, EnvOverrideWins)
{
    // The tier-1 suite runs single-threaded per process, so the
    // setenv/unsetenv pair here cannot race another getenv.
    ASSERT_EQ(setenv("RISSP_DISPATCH", "switch", 1), 0);
    EXPECT_EQ(resolveDispatchMode(DispatchMode::Auto),
              DispatchMode::Switch);
    // An explicit request still beats the environment.
    if (threadedDispatchSupported()) {
        EXPECT_EQ(resolveDispatchMode(DispatchMode::Threaded),
                  DispatchMode::Threaded);
    }
    ASSERT_EQ(setenv("RISSP_DISPATCH", "threaded", 1), 0);
    if (threadedDispatchSupported())
        EXPECT_EQ(resolveDispatchMode(DispatchMode::Auto),
                  DispatchMode::Threaded);
    else
        EXPECT_EQ(resolveDispatchMode(DispatchMode::Auto),
                  DispatchMode::Switch);
    ASSERT_EQ(unsetenv("RISSP_DISPATCH"), 0);
}

TEST(DispatchDiff, StraightLineHalt)
{
    Program p = assemble(R"(
        li a0, 7
        addi a0, a0, 35
        ecall
    )");
    expectAllEnginesAgree(p, InstrSubset::fullRv32e());
}

TEST(DispatchDiff, MmioOutputAndLoops)
{
    // Tight loop plus both MMIO ports, the shape bench_micro times.
    Program p = assemble(R"(
        li a0, 0
        li a1, 10
        lui a3, 0xFFFF0
    loop:
        addi a0, a0, 1
        sw a0, 0(a3)
        addi a4, a0, 0x41
        sb a4, 4(a3)
        bne a0, a1, loop
        ecall
    )");
    expectAllEnginesAgree(p, InstrSubset::fullRv32e());
}

TEST(DispatchDiff, InvalidEncodingTraps)
{
    // .word an invalid encoding mid-stream: every engine must trap
    // at the same retirement with the same (non-)event fields.
    Program p = assemble(R"(
        li a0, 3
        .word 0
        ecall
    )");
    expectAllEnginesAgree(p, InstrSubset::fullRv32e());
}

TEST(DispatchDiff, WrappingAccessTraps)
{
    Program p = assemble(R"(
        li a0, -2
        lw a1, 0(a0)
        ecall
    )");
    expectAllEnginesAgree(p, InstrSubset::fullRv32e());
    Program ps = assemble(R"(
        li a0, -1
        sh a0, 0(a0)
        ecall
    )");
    expectAllEnginesAgree(ps, InstrSubset::fullRv32e());
}

TEST(DispatchDiff, OutOfSubsetTrapRecordsOperands)
{
    // 'sub' executes on the reference but traps on a RISSP without
    // it — the unsupported-op path of the specialized cores.
    Program p = assemble(R"(
        li a0, 9
        li a1, 4
        sub a2, a0, a1
        ecall
    )");
    InstrSubset no_sub = InstrSubset::fromNames(
        {"addi", "add", "lui", "sw"});
    RisspRunOptions gate;
    gate.gateLevel = true;
    const RunSnapshot golden = risspRun(p, no_sub, 100, gate);
    ASSERT_EQ(golden.result.reason, StopReason::Trapped);
    RisspRunOptions fast;
    fast.dispatch = DispatchMode::Switch;
    EXPECT_TRUE(sameSnapshot(golden, risspRun(p, no_sub, 100, fast)));
    fast.dispatch = DispatchMode::Threaded;
    EXPECT_TRUE(sameSnapshot(golden, risspRun(p, no_sub, 100, fast)));
    // The trap event records the operand reads (RVFI contract).
    const RetireEvent &trap_ev = golden.trace.back();
    EXPECT_TRUE(trap_ev.trap);
    EXPECT_EQ(trap_ev.rs1, 10);
    EXPECT_EQ(trap_ev.rs2, 11);
}

TEST(DispatchDiff, SmcMidSuperblockInvalidates)
{
    // The store rewrites an instruction *later in the same
    // straight-line superblock*: the threaded core must leave the
    // block at the store and re-enter through the invalidated
    // decode, or it would retire the stale instruction.
    const uint32_t patched = encodeI(Op::Addi, 12, 0, 99);
    Program p = assemble(strFormat(R"(
        la a0, patch
        li a1, %d
        sw a1, 0(a0)
        addi a3, zero, 1
    patch:
        addi a2, zero, 1
        ecall
    )", static_cast<int32_t>(patched)));
    expectAllEnginesAgree(p, InstrSubset::fullRv32e());
    const RunSnapshot done = refRun(p, 100, DispatchMode::Threaded);
    EXPECT_EQ(done.regs[12], 99u);

    // Sub-word patch (imm rewritten through a byte store).
    Program pb = assemble(R"(
        la a0, patch
        li a1, 42
        sb a1, 3(a0)
        addi a3, zero, 1
    patch:
        addi a2, zero, 0
        ecall
    )");
    expectAllEnginesAgree(pb, InstrSubset::fullRv32e());
    const RunSnapshot doneb = refRun(pb, 100, DispatchMode::Threaded);
    EXPECT_EQ(doneb.regs[12], 672u);
}

TEST(DispatchDiff, SmcCanExtendASuperblock)
{
    // The patch turns a *control* instruction into a straight-line
    // one, lengthening the run the store sits in — the run-length
    // repair after invalidate() must extend backwards across the
    // store or the threaded core under-fetches.
    const uint32_t nopw = encodeI(Op::Addi, 0, 0, 0);
    Program p = assemble(strFormat(R"(
        la a0, patch
        li a1, %d
        li a2, 5
        sw a1, 0(a0)
    patch:
        jal zero, skip
        addi a2, a2, 7
    skip:
        ecall
    )", static_cast<int32_t>(nopw)));
    expectAllEnginesAgree(p, InstrSubset::fullRv32e());
    // The patched path falls through the former jump.
    const RunSnapshot done = refRun(p, 100, DispatchMode::Threaded);
    EXPECT_EQ(done.regs[12], 12u);
}

TEST(DispatchDiff, OffSpanExecutionFallsBack)
{
    // Copy a two-instruction stub far outside the loaded text span
    // and jump to it: the cores must detect the off-span pc and
    // fall back to decode-on-fetch, bit-identically.
    const uint32_t insn0 = encodeI(Op::Addi, 12, 0, 55);
    const uint32_t ecallw = 0x00000073;
    Program p = assemble(strFormat(R"(
        li a0, 0x40000
        li a1, %d
        sw a1, 0(a0)
        li a1, %d
        sw a1, 4(a0)
        jalr a3, 0(a0)
    )", static_cast<int32_t>(insn0),
        static_cast<int32_t>(ecallw)));
    expectAllEnginesAgree(p, InstrSubset::fullRv32e());
    const RunSnapshot done = refRun(p, 100, DispatchMode::Threaded);
    EXPECT_EQ(done.result.reason, StopReason::Halted);
    EXPECT_EQ(done.regs[12], 55u);
}

TEST(DispatchDiff, StepLimitBoundarySweep)
{
    // Sweep the budget across a superblock boundary: StepLimit must
    // cut the trace at exactly the same retirement everywhere, and
    // a resumed... fresh run with budget n+1 extends it by one.
    Program p = assemble(R"(
        li a0, 0
        li a1, 3
    loop:
        addi a0, a0, 1
        addi a2, a0, 2
        addi a3, a2, 3
        bne a0, a1, loop
        ecall
    )");
    const InstrSubset full = InstrSubset::fullRv32e();
    std::vector<RetireEvent> prev;
    for (uint64_t budget = 0; budget <= 16; ++budget) {
        const RunSnapshot golden = refGolden(p, budget);
        EXPECT_TRUE(sameSnapshot(
            golden, refRun(p, budget, DispatchMode::Switch)))
            << "budget " << budget;
        EXPECT_TRUE(sameSnapshot(
            golden, refRun(p, budget, DispatchMode::Threaded)))
            << "budget " << budget;
        RisspRunOptions gate;
        gate.gateLevel = true;
        const RunSnapshot dut_golden = risspRun(p, full, budget, gate);
        RisspRunOptions fast;
        fast.dispatch = DispatchMode::Threaded;
        EXPECT_TRUE(sameSnapshot(dut_golden,
                                 risspRun(p, full, budget, fast)))
            << "budget " << budget;
        fast.dispatch = DispatchMode::Switch;
        EXPECT_TRUE(sameSnapshot(dut_golden,
                                 risspRun(p, full, budget, fast)))
            << "budget " << budget;
        // Monotone prefix property across budgets.
        ASSERT_GE(golden.trace.size(), prev.size());
        EXPECT_TRUE(sameTrace(
            prev, {golden.trace.begin(),
                   golden.trace.begin() +
                       static_cast<long>(prev.size())}));
        prev = golden.trace;
    }
}

class DispatchFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(DispatchFuzz, RandomProgramsAreEngineInvariant)
{
    static const std::vector<std::vector<std::string>> kSubsets = {
        {"addi", "add", "sub", "lui", "lw", "lh", "lb", "lbu",
         "lhu", "sw", "sh", "sb", "beq", "bne"},
        {"addi", "xori", "ori", "andi", "slli", "srli", "srai",
         "slt", "sltu", "slti", "sltiu", "lui", "blt", "bgeu",
         "sw"},
    };
    const int idx = GetParam();
    InstrSubset subset =
        idx % 3 == 0 ? InstrSubset::fullRv32e()
                     : InstrSubset::fromNames(kSubsets[idx % 2]);
    Program prog =
        randomProgram(0xD15BA7C4 + idx * 977, 350, subset);
    expectAllEnginesAgree(prog, subset);

    // The interpreter streams also satisfy the RVFI monitors.
    const RunSnapshot t =
        refRun(prog, 100'000, DispatchMode::Threaded);
    EXPECT_TRUE(checkRvfiStream(t.trace).passed());
    RisspRunOptions fast;
    fast.dispatch = DispatchMode::Threaded;
    const RunSnapshot d = risspRun(prog, subset, 100'000, fast);
    EXPECT_TRUE(checkRvfiStream(d.trace).passed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DispatchFuzz,
                         ::testing::Range(0, 9));

TEST(MutationContract, EveryKindRoutesThroughGateLevel)
{
    // The pinned contract: a non-null Mutation — Kind::None included
    // — always selects the gate-level engine, under every dispatch
    // setting, so mutation coverage can never silently run on the
    // specialized cores. Observable as (a) dispatch-invariance of
    // every faulty run and (b) the faults actually biting.
    Program p = archTestProgram(Op::Add);
    const InstrSubset full = InstrSubset::fullRv32e();
    RisspRunOptions clean;
    const RunSnapshot clean_run = risspRun(p, full, 100'000, clean);

    static const Mutation::Kind kKinds[] = {
        Mutation::Kind::None,
        Mutation::Kind::StuckSumBit,
        Mutation::Kind::CarryChainBreak,
        Mutation::Kind::DropShiftStage,
        Mutation::Kind::ShiftNoArith,
        Mutation::Kind::InvertLt,
        Mutation::Kind::EqIgnoreByte,
        Mutation::Kind::WrongSignExt,
        Mutation::Kind::StoreLaneStuck,
        Mutation::Kind::BranchPolarity,
        Mutation::Kind::LinkDrop,
        Mutation::Kind::ImmOffByOne,
    };
    for (Mutation::Kind kind : kKinds) {
        const Mutation mut{kind, 3};
        RisspRunOptions opts;
        opts.fault = &mut;
        opts.dispatch = DispatchMode::Switch;
        const RunSnapshot a = risspRun(p, full, 100'000, opts);
        opts.dispatch = DispatchMode::Threaded;
        const RunSnapshot b = risspRun(p, full, 100'000, opts);
        opts.dispatch = DispatchMode::Auto;
        const RunSnapshot c = risspRun(p, full, 100'000, opts);
        EXPECT_TRUE(sameSnapshot(a, b))
            << "fault run depends on dispatch mode for "
            << mut.describe();
        EXPECT_TRUE(sameSnapshot(a, c))
            << "fault run depends on dispatch mode for "
            << mut.describe();
        if (kind == Mutation::Kind::None) {
            // An inactive mutation through the gate-level chain is
            // still bit-identical to the specialized cores.
            EXPECT_TRUE(sameSnapshot(clean_run, a));
        }
    }
    // And a known-lethal fault on this add-heavy program must bite:
    // proof the faulty path really ran the structural chains.
    const Mutation lethal{Mutation::Kind::CarryChainBreak, 3};
    RisspRunOptions opts;
    opts.fault = &lethal;
    const RunSnapshot faulty = risspRun(p, full, 100'000, opts);
    EXPECT_FALSE(sameSnapshot(clean_run, faulty))
        << "CarryChainBreak produced a clean run — the fault was "
           "not routed into the structural adder";
}

TEST(MutationContract, CosimVerdictsMatchUnderEveryDispatch)
{
    // cosimulate() single-steps the RISSP, so its fault path goes
    // through step(&mut): the divergence verdict must be the same
    // whichever dispatch mode the environment pre-selects.
    Program p = archTestProgram(Op::Add);
    const InstrSubset full = InstrSubset::fullRv32e();
    const Mutation fault{Mutation::Kind::CarryChainBreak, 3};
    std::vector<std::string> verdicts;
    for (const char *env : {"switch", "threaded"}) {
        ASSERT_EQ(setenv("RISSP_DISPATCH", env, 1), 0);
        CosimOptions options;
        options.maxSteps = 100'000;
        options.fault = &fault;
        CosimReport rpt = cosimulate(p, full, options);
        EXPECT_FALSE(rpt.passed);
        verdicts.push_back(rpt.firstDivergence);
        CosimReport ok = cosimulate(p, full, 100'000);
        EXPECT_TRUE(ok.passed) << ok.firstDivergence;
    }
    ASSERT_EQ(unsetenv("RISSP_DISPATCH"), 0);
    ASSERT_EQ(verdicts.size(), 2u);
    EXPECT_EQ(verdicts[0], verdicts[1]);
}

TEST(DispatchDiff, ExecCountsAreEngineIndependent)
{
    // ModularEx's per-op dynamic counts feed characterization
    // reports; the specialized cores must charge them exactly like
    // execute() does (including ops that later trap on a bad
    // address, excluding unsupported ones).
    Program p = assemble(R"(
        li a0, 1
        li a1, 2
        add a2, a0, a1
        add a3, a2, a1
        li a4, -2
        lw a5, 0(a4)
        ecall
    )");
    const InstrSubset full = InstrSubset::fullRv32e();
    std::array<std::array<uint64_t, kNumOps>, 3> counts;
    size_t n = 0;
    for (DispatchMode mode :
         {DispatchMode::Switch, DispatchMode::Threaded}) {
        Rissp chip(full, "counts");
        chip.reset(p);
        RisspRunOptions options;
        options.dispatch = mode;
        chip.run(options);
        counts[n++] = chip.modularEx().execCounts();
    }
    {
        Rissp chip(full, "counts-gate");
        chip.reset(p);
        RisspRunOptions options;
        options.gateLevel = true;
        chip.run(options);
        counts[n++] = chip.modularEx().execCounts();
    }
    EXPECT_EQ(counts[0], counts[2])
        << "switch-core exec counts diverge from gate level";
    EXPECT_EQ(counts[1], counts[2])
        << "threaded-core exec counts diverge from gate level";
    EXPECT_EQ(counts[2][static_cast<size_t>(Op::Add)], 2u);
    // The wrapping lw still charged its block before trapping.
    EXPECT_EQ(counts[2][static_cast<size_t>(Op::Lw)], 1u);
}

} // namespace
} // namespace rissp
