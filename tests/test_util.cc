/**
 * @file
 * Tests for the shared utility layer: JSON emission helpers and the
 * JSON parser behind the serve front end.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "util/json.hh"

namespace rissp
{
namespace
{

TEST(JsonNum, FiniteValuesRoundTrip)
{
    EXPECT_EQ(jsonNum(0.0), "0");
    EXPECT_EQ(jsonNum(1.5), "1.5");
    EXPECT_EQ(jsonNum(-2.0), "-2");
    // 17 significant digits round-trip any double.
    EXPECT_EQ(jsonNum(0.1), "0.10000000000000001");
}

TEST(JsonNum, NonFiniteValuesEmitNull)
{
    // JSON has no nan/inf literals: `nan` in a report file makes the
    // whole document unparseable. Degenerate synthesis metrics must
    // still produce valid JSON.
    EXPECT_EQ(jsonNum(std::nan("")), "null");
    EXPECT_EQ(jsonNum(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNum(-std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNum(std::numeric_limits<double>::quiet_NaN()),
              "null");
}

TEST(JsonEscape, ControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape(std::string("a\nb")), "a\\u000ab");
}

TEST(JsonBool, Literals)
{
    EXPECT_STREQ(jsonBool(true), "true");
    EXPECT_STREQ(jsonBool(false), "false");
}

// ------------------------------------------------------ JSON parser

TEST(JsonParse, ScalarsAndContainers)
{
    const Result<JsonValue> parsed = parseJson(
        R"({"n": null, "t": true, "f": false, "x": -1.5e2,)"
        R"( "s": "hi", "a": [1, 2, 3], "o": {"k": "v"}})");
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    const JsonValue &root = parsed.value();
    ASSERT_TRUE(root.isObject());
    EXPECT_TRUE(root.find("n")->isNull());
    EXPECT_TRUE(root.find("t")->asBool());
    EXPECT_FALSE(root.find("f")->asBool());
    EXPECT_DOUBLE_EQ(root.find("x")->asNumber(), -150.0);
    EXPECT_EQ(root.find("s")->asString(), "hi");
    ASSERT_TRUE(root.find("a")->isArray());
    EXPECT_EQ(root.find("a")->items().size(), 3u);
    EXPECT_DOUBLE_EQ(root.find("a")->items()[1].asNumber(), 2.0);
    EXPECT_EQ(root.find("o")->find("k")->asString(), "v");
    EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(JsonParse, StringEscapesIncludingSurrogatePairs)
{
    const Result<JsonValue> parsed = parseJson(
        R"(["a\"b", "tab\there", "A", "😀"])");
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    const auto &items = parsed.value().items();
    EXPECT_EQ(items[0].asString(), "a\"b");
    EXPECT_EQ(items[1].asString(), "tab\there");
    EXPECT_EQ(items[2].asString(), "A");
    EXPECT_EQ(items[3].asString(), "\xF0\x9F\x98\x80"); // U+1F600
}

TEST(JsonParse, ErrorsAreValuesWithByteOffsets)
{
    auto errorOf = [](const std::string &text) {
        const Result<JsonValue> parsed = parseJson(text);
        EXPECT_FALSE(parsed.isOk()) << text;
        EXPECT_EQ(parsed.status().code(), ErrorCode::ParseError)
            << text;
        return parsed.status().message();
    };
    EXPECT_NE(errorOf("").find("byte"), std::string::npos);
    errorOf("{");
    errorOf("[1, 2");
    errorOf(R"({"a": })");
    errorOf(R"({"a": 1,})");
    errorOf("[1, 2] trailing");
    errorOf("01");      // leading zero
    errorOf("1.");      // digits required after the point
    errorOf("nul");     // truncated literal
    errorOf("'single'");
    errorOf("\"unterminated");
    errorOf(R"("\q")"); // unknown escape
    errorOf(R"("\ud83d")"); // lone high surrogate
}

TEST(JsonParse, DuplicateKeysAreRejected)
{
    const Result<JsonValue> parsed =
        parseJson(R"({"a": 1, "a": 2})");
    ASSERT_FALSE(parsed.isOk());
    EXPECT_NE(parsed.status().message().find("duplicate"),
              std::string::npos);
}

TEST(JsonParse, DepthIsBounded)
{
    // 100 nested arrays exceed the 64-level cap: a parse error, not
    // a stack overflow — this parser faces network input.
    const std::string deep(100, '[');
    const Result<JsonValue> parsed = parseJson(deep);
    ASSERT_FALSE(parsed.isOk());
    EXPECT_NE(parsed.status().message().find("deep"),
              std::string::npos);
}

TEST(JsonParse, RoundTripsEmitterOutput)
{
    // The parser must accept what the emitters produce.
    const std::string document = "{\"x\": " + jsonNum(0.1) +
                                 ", \"s\": \"" +
                                 jsonEscape("a\nb\"c") + "\"}";
    const Result<JsonValue> parsed = parseJson(document);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    EXPECT_DOUBLE_EQ(parsed.value().find("x")->asNumber(), 0.1);
    EXPECT_EQ(parsed.value().find("s")->asString(), "a\nb\"c");
}

} // namespace
} // namespace rissp
