/**
 * @file
 * Tests for the shared utility layer: JSON emission helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/json.hh"

namespace rissp
{
namespace
{

TEST(JsonNum, FiniteValuesRoundTrip)
{
    EXPECT_EQ(jsonNum(0.0), "0");
    EXPECT_EQ(jsonNum(1.5), "1.5");
    EXPECT_EQ(jsonNum(-2.0), "-2");
    // 17 significant digits round-trip any double.
    EXPECT_EQ(jsonNum(0.1), "0.10000000000000001");
}

TEST(JsonNum, NonFiniteValuesEmitNull)
{
    // JSON has no nan/inf literals: `nan` in a report file makes the
    // whole document unparseable. Degenerate synthesis metrics must
    // still produce valid JSON.
    EXPECT_EQ(jsonNum(std::nan("")), "null");
    EXPECT_EQ(jsonNum(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNum(-std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNum(std::numeric_limits<double>::quiet_NaN()),
              "null");
}

TEST(JsonEscape, ControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape(std::string("a\nb")), "a\\u000ab");
}

TEST(JsonBool, Literals)
{
    EXPECT_STREQ(jsonBool(true), "true");
    EXPECT_STREQ(jsonBool(false), "false");
}

} // namespace
} // namespace rissp
