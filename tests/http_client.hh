/**
 * @file
 * A minimal blocking HTTP/1.1 client for the black-box server tests
 * and the serve benchmark. Loopback only, Content-Length bodies
 * only — just enough protocol to exercise the daemon end to end
 * without pulling in curl or any other dependency.
 *
 * Two layers on purpose:
 *
 *  - `HttpClient` is a raw connection: connect, send arbitrary bytes
 *    (including *partial* requests — the 429 and drain tests need to
 *    stall mid-request on purpose), read one framed response.
 *  - `httpRequest()` is the one-shot convenience most tests want.
 *
 * Header-only so tests/ and bench/ can share it without a library
 * target.
 */

#ifndef RISSP_TESTS_HTTP_CLIENT_HH
#define RISSP_TESTS_HTTP_CLIENT_HH

#include <arpa/inet.h>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <optional>
#include <string>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>
#include <vector>

namespace rissp::testutil
{

/** One parsed HTTP response. */
struct HttpResponse
{
    int status = 0;
    std::string reason;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Header value by case-insensitive name; nullptr when absent. */
    const std::string *header(const std::string &name) const
    {
        for (const auto &entry : headers) {
            if (entry.first.size() != name.size())
                continue;
            bool equal = true;
            for (size_t i = 0; i < name.size() && equal; ++i)
                equal = std::tolower(static_cast<unsigned char>(
                            entry.first[i])) ==
                        std::tolower(
                            static_cast<unsigned char>(name[i]));
            if (equal)
                return &entry.second;
        }
        return nullptr;
    }
};

/** A blocking loopback HTTP connection. */
class HttpClient
{
  public:
    HttpClient() = default;
    ~HttpClient() { disconnect(); }
    HttpClient(const HttpClient &) = delete;
    HttpClient &operator=(const HttpClient &) = delete;

    /** Connect to 127.0.0.1:@p port; false on refusal/failure.
     *  The default socket timeout is sized up under TSan: the
     *  instrumented flow stages run an order of magnitude slower,
     *  and a retarget that answers in ~300ms natively can blow a
     *  10s receive window there. */
#ifdef RISSP_TSAN
    static constexpr int kDefaultTimeoutMs = 120'000;
#else
    static constexpr int kDefaultTimeoutMs = 10'000;
#endif

    /** Shrink SO_RCVBUF before the next connect (0 = kernel
     *  default). The backpressure tests use a tiny client receive
     *  window plus a tiny server send buffer to force the server
     *  down its partial-write (EPOLLOUT) path deterministically. */
    void setReceiveBufferBytes(int bytes)
    {
        receiveBufferBytes = bytes;
    }

    bool connect(uint16_t port, int timeout_ms = kDefaultTimeoutMs)
    {
        disconnect();
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return false;
        timeval tv{};
        tv.tv_sec = timeout_ms / 1000;
        tv.tv_usec = (timeout_ms % 1000) * 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
        if (receiveBufferBytes > 0)
            ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF,
                         &receiveBufferBytes,
                         sizeof receiveBufferBytes);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) != 0) {
            disconnect();
            return false;
        }
        return true;
    }

    bool connected() const { return fd >= 0; }

    void disconnect()
    {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
        buffer.clear();
    }

    /** Send raw bytes as-is — the door to half-requests. */
    bool sendRaw(const std::string &bytes)
    {
        size_t sent = 0;
        while (sent < bytes.size()) {
            const ssize_t n =
                ::send(fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return false;
            sent += static_cast<size_t>(n);
        }
        return true;
    }

    /** Frame and send one request. */
    bool sendRequest(const std::string &method,
                     const std::string &target,
                     const std::string &body = "",
                     bool keep_alive = false)
    {
        std::string request = method + " " + target + " HTTP/1.1\r\n";
        request += "Host: 127.0.0.1\r\n";
        request +=
            "Content-Length: " + std::to_string(body.size()) + "\r\n";
        if (!keep_alive)
            request += "Connection: close\r\n";
        request += "\r\n";
        request += body;
        return sendRaw(request);
    }

    /** Read one complete response (status line + headers +
     *  Content-Length body). nullopt on malformed bytes, timeout or
     *  a peer that closed before a full response arrived. */
    std::optional<HttpResponse> readResponse()
    {
        size_t headEnd;
        while ((headEnd = buffer.find("\r\n\r\n")) ==
               std::string::npos) {
            if (!fill())
                return std::nullopt;
        }
        headEnd += 4;

        HttpResponse response;
        size_t lineEnd = buffer.find("\r\n");
        const std::string statusLine = buffer.substr(0, lineEnd);
        // "HTTP/1.1 200 OK"
        const size_t firstSpace = statusLine.find(' ');
        if (firstSpace == std::string::npos)
            return std::nullopt;
        const size_t secondSpace =
            statusLine.find(' ', firstSpace + 1);
        const std::string code = statusLine.substr(
            firstSpace + 1, secondSpace == std::string::npos
                                ? std::string::npos
                                : secondSpace - firstSpace - 1);
        if (code.empty())
            return std::nullopt;
        response.status = std::atoi(code.c_str());
        if (secondSpace != std::string::npos)
            response.reason = statusLine.substr(secondSpace + 1);

        size_t cursor = lineEnd + 2;
        size_t contentLength = 0;
        while (cursor < headEnd - 2) {
            const size_t end = buffer.find("\r\n", cursor);
            const std::string line =
                buffer.substr(cursor, end - cursor);
            cursor = end + 2;
            if (line.empty())
                break;
            const size_t colon = line.find(':');
            if (colon == std::string::npos)
                return std::nullopt;
            std::string name = line.substr(0, colon);
            std::string value = line.substr(colon + 1);
            while (!value.empty() && (value.front() == ' ' ||
                                      value.front() == '\t'))
                value.erase(value.begin());
            response.headers.emplace_back(std::move(name),
                                          std::move(value));
        }
        if (const std::string *length =
                response.header("Content-Length"))
            contentLength =
                static_cast<size_t>(std::atoll(length->c_str()));

        while (buffer.size() < headEnd + contentLength)
            if (!fill())
                return std::nullopt;
        response.body = buffer.substr(headEnd, contentLength);
        buffer.erase(0, headEnd + contentLength);
        return response;
    }

    /** sendRequest + readResponse in one step. */
    std::optional<HttpResponse>
    request(const std::string &method, const std::string &target,
            const std::string &body = "", bool keep_alive = false)
    {
        if (!sendRequest(method, target, body, keep_alive))
            return std::nullopt;
        return readResponse();
    }

  private:
    bool fill()
    {
        char chunk[16384];
        for (;;) {
            const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return false;
            buffer.append(chunk, static_cast<size_t>(n));
            return true;
        }
    }

    int fd = -1;
    int receiveBufferBytes = 0;
    std::string buffer;
};

/** One-shot: connect, request, read, close. */
inline std::optional<HttpResponse>
httpRequest(uint16_t port, const std::string &method,
            const std::string &target, const std::string &body = "")
{
    HttpClient client;
    if (!client.connect(port))
        return std::nullopt;
    return client.request(method, target, body);
}

} // namespace rissp::testutil

#endif // RISSP_TESTS_HTTP_CLIENT_HH
