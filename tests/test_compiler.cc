/**
 * @file
 * Compile-and-execute tests for MiniC at every optimization level.
 * Each program's exit code (a0 at the halting ecall) is checked on
 * the reference ISS; correctness must be level-independent.
 */

#include <gtest/gtest.h>

#include "compiler/driver.hh"
#include "compiler/lexer.hh"
#include "core/subset.hh"
#include "sim/refsim.hh"

namespace rissp
{
namespace
{

using minic::OptLevel;

/** Expected exit code of a MiniC program at every -O level. */
struct RunCase
{
    const char *label;
    const char *source;
    uint32_t expect;
};

class CompileRunTest
    : public ::testing::TestWithParam<std::tuple<int, OptLevel>>
{
};

const RunCase kCases[] = {
    {"return_const", "int main(void) { return 42; }", 42},
    {"arith",
     "int main() { int a = 7; int b = 9; return a*b + a - b + a/b; }",
     61},
    {"unsigned_div",
     "int main() { unsigned a = 100; unsigned b = 7;"
     "  return a / b + a % b; }",
     16},
    {"signed_div_neg",
     "int main() { int a = -100; return a / 7 + a % 7 + 20; }", 4},
    {"div_pow2",
     "int main() { int a = -100; unsigned b = 100;"
     "  return a / 4 + (int)(b / 4) + a % 8 + (int)(b % 8); }",
     static_cast<uint32_t>(-25 + 25 - 4 + 4)},
    {"shifts",
     "int main() { int a = -64; unsigned b = 0x80000000;"
     "  return (a >> 3) + (int)(b >> 28) + (1 << 6); }",
     static_cast<uint32_t>(-8 + 8 + 64)},
    {"comparisons",
     "int main() { int n = 0;"
     "  if (-1 < 1) n++; if ((unsigned)-1 > 1u) n++;"
     "  if (3 <= 3) n++; if (4 >= 5) n--; if (2 == 2) n++;"
     "  if (2 != 2) n--; return n; }",
     4},
    {"while_loop",
     "int main() { int i = 0; int s = 0;"
     "  while (i < 10) { s += i; i++; } return s; }",
     45},
    {"for_break_continue",
     "int main() { int s = 0;"
     "  for (int i = 0; i < 100; i++) {"
     "    if (i % 2 == 0) continue;"
     "    if (i > 10) break; s += i; } return s; }",
     1 + 3 + 5 + 7 + 9},
    {"do_while",
     "int main() { int i = 0; int n = 0;"
     "  do { n += 2; i++; } while (i < 5); return n; }",
     10},
    {"nested_loops",
     "int main() { int s = 0;"
     "  for (int i = 0; i < 5; i++)"
     "    for (int j = 0; j < i; j++) s += i * j;"
     "  return s; }",
     /* sum i*j for j<i, i<5 */ 0 + 0 + 2 + (3 + 6) + (4 + 8 + 12)},
    {"logical_ops",
     "int side; int bump(void) { side++; return 1; }"
     "int main() { side = 0;"
     "  int a = (0 && bump()) ? 100 : 1;"
     "  int b = (1 || bump()) ? 2 : 200;"
     "  return a + b + side * 10; }",
     3},
    {"ternary",
     "int main() { int x = 7;"
     "  return (x > 5 ? x * 2 : x - 1) + (x < 5 ? 100 : 1); }",
     15},
    {"global_scalars",
     "int g = 5; unsigned h = 0xFFFFFFFF;"
     "int main() { g += 10; return g + (h == 0xFFFFFFFFu ? 1 : 0); }",
     16},
    {"global_array",
     "int tab[5] = {10, 20, 30, 40, 50};"
     "int main() { int s = 0;"
     "  for (int i = 0; i < 5; i++) s += tab[i];"
     "  return s / 10; }",
     15},
    {"local_array",
     "int main() { int a[4] = {1, 2, 3, 4}; int s = 0;"
     "  for (int i = 0; i < 4; i++) s = s * 10 + a[i];"
     "  return s; }",
     1234},
    {"two_d_array",
     "int m[3][4];"
     "int main() {"
     "  for (int i = 0; i < 3; i++)"
     "    for (int j = 0; j < 4; j++) m[i][j] = i * 4 + j;"
     "  return m[2][3] + m[1][1] * 10; }",
     11 + 50},
    {"pointers",
     "int main() { int x = 3; int *p = &x; *p = 8;"
     "  int a[3] = {1, 2, 3}; int *q = a; q++; *q += 10;"
     "  return x + a[1]; }",
     20},
    {"pointer_arith",
     "int a[8];"
     "int main() { int *p = a; int *q = &a[6];"
     "  return (int)(q - p); }",
     6},
    {"char_ops",
     "char buf[8];"
     "int main() { buf[0] = 'A'; buf[1] = buf[0] + 1;"
     "  char c = 200; /* truncates to -56 */"
     "  unsigned char u = 200;"
     "  return (buf[1] == 'B' ? 1 : 0) + (c < 0 ? 2 : 0)"
     "    + (u == 200 ? 4 : 0); }",
     7},
    {"short_ops",
     "short s[4];"
     "int main() { s[0] = -2; s[1] = 0x7FFF; s[2] = s[0] * 3;"
     "  unsigned short u = 0xFFFF;"
     "  return (s[0] == -2) + (s[1] == 32767) + (s[2] == -6)"
     "    + (u == 65535); }",
     4},
    {"string_literal",
     "int main() { const char *s = \"hi!\";"
     "  return s[0] + (s[3] == 0 ? 1 : 0); }",
     'h' + 1},
    {"function_calls",
     "int add(int a, int b) { return a + b; }"
     "int twice(int x) { return add(x, x); }"
     "int main() { return twice(add(3, 4)); }",
     14},
    {"recursion",
     "int fib(int n) { if (n < 2) return n;"
     "  return fib(n - 1) + fib(n - 2); }"
     "int main() { return fib(10); }",
     55},
    {"six_args",
     "int f(int a, int b, int c, int d, int e, int g)"
     "{ return a + b * 2 + c * 3 + d * 4 + e * 5 + g * 6; }"
     "int main() { return f(1, 1, 1, 1, 1, 1); }",
     21},
    {"array_param",
     "int sum(int *v, int n) { int s = 0;"
     "  for (int i = 0; i < n; i++) s += v[i]; return s; }"
     "int g[4] = {4, 3, 2, 1};"
     "int main() { return sum(g, 4); }",
     10},
    {"compound_assign",
     "int main() { int x = 6; x += 4; x -= 2; x *= 3; x /= 2;"
     "  x %= 7; x <<= 3; x |= 1; x ^= 2; x &= 31; return x; }",
     ((((((6 + 4 - 2) * 3 / 2) % 7) << 3) | 1) ^ 2) & 31},
    {"inc_dec",
     "int main() { int i = 5; int a = i++; int b = ++i;"
     "  int c = i--; int d = --i; return a * 1000 + b * 100"
     "    + c * 10 + d; }",
     5 * 1000 + 7 * 100 + 7 * 10 + 5},
    {"bitwise",
     "int main() { unsigned x = 0xF0F0;"
     "  return (int)(((x & 0xFF) | 0x0F00) ^ 0x00F0) >> 4; }",
     0xF0},
    {"mul_const_shapes",
     "int mulv(int a, int b) { return a * b; }"
     "int main() { int x = 7;"
     "  return x * 2 + x * 10 + x * 100 + x * 31 + x * -3"
     "    - mulv(x, 6); }",
     7 * 2 + 7 * 10 + 7 * 100 + 7 * 31 - 7 * 3 - 7 * 6},
    {"sizeof_op",
     "int a[10]; short b[6]; char c[3];"
     "int main() { return sizeof(a) + sizeof(b) + sizeof(c)"
     "    + sizeof(int) + sizeof(char *); }",
     40 + 12 + 3 + 4 + 4},
    {"casts",
     "int main() { int big = 0x12345678;"
     "  char lo = (char)big; short mid = (short)big;"
     "  unsigned char ulo = (unsigned char)big;"
     "  return (lo == 0x78) + (mid == 0x5678) + (ulo == 0x78); }",
     3},
    {"globals_mixed_expr",
     "int base = 100; int scale(int x) { return x * base; }"
     "int main() { base /= 10; return scale(5); }",
     50},
    {"void_function",
     "int acc; void step(int d) { acc += d; }"
     "int main() { acc = 0; step(3); step(4); return acc; }",
     7},
    {"early_return",
     "int classify(int x) { if (x < 0) return -1;"
     "  if (x == 0) return 0; return 1; }"
     "int main() { return classify(-5) + classify(0) * 10"
     "    + classify(9) * 100 + 2; }",
     static_cast<uint32_t>(-1 + 0 + 100 + 2)},
    {"mmio_output",
     "void put(int v) { *(int *)0xFFFF0000 = v; }"
     "int main() { put(11); put(22); return 0; }",
     0},
};

TEST_P(CompileRunTest, ExitCodeMatches)
{
    const auto [idx, level] = GetParam();
    const RunCase &c = kCases[idx];
    minic::CompileResult r = minic::compile(c.source, level);
    RefSim sim;
    sim.reset(r.program);
    RunResult rr = sim.run(50'000'000);
    ASSERT_EQ(rr.reason, StopReason::Halted)
        << c.label << " at " << minic::optLevelName(level);
    EXPECT_EQ(rr.exitCode, c.expect)
        << c.label << " at " << minic::optLevelName(level);
}

std::string
caseName(const ::testing::TestParamInfo<std::tuple<int, OptLevel>> &i)
{
    const auto [idx, level] = i.param;
    std::string level_name =
        minic::optLevelName(level).substr(1); // drop '-'
    return std::string(kCases[idx].label) + "_" + level_name;
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, CompileRunTest,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(std::size(kCases))),
        ::testing::Values(OptLevel::O0, OptLevel::O1, OptLevel::O2,
                          OptLevel::O3, OptLevel::Oz)),
    caseName);

TEST(Compiler, MmioWordsReachTheStream)
{
    const char *src =
        "void put(int v) { *(int *)0xFFFF0000 = v; }"
        "int main() { for (int i = 1; i <= 3; i++) put(i * 11);"
        "  return 0; }";
    minic::CompileResult r = minic::compile(src, OptLevel::O2);
    RefSim sim;
    sim.reset(r.program);
    sim.run();
    ASSERT_EQ(sim.outputWords().size(), 3u);
    EXPECT_EQ(sim.outputWords()[0], 11u);
    EXPECT_EQ(sim.outputWords()[1], 22u);
    EXPECT_EQ(sim.outputWords()[2], 33u);
}

TEST(Compiler, O0IsBiggerThanO2)
{
    const char *src =
        "int main() { int s = 0;"
        "  for (int i = 0; i < 10; i++) s += i * i;"
        "  return s; }";
    auto o0 = minic::compile(src, OptLevel::O0);
    auto o2 = minic::compile(src, OptLevel::O2);
    EXPECT_GT(o0.staticInstructions(), o2.staticInstructions());
}

TEST(Compiler, OzNeverBiggerThanO3)
{
    const char *src =
        "int sq(int x) { return x * x; }"
        "int cube(int x) { return sq(x) * x; }"
        "int main() { int s = 0;"
        "  for (int i = 0; i < 8; i++) s += cube(i) + sq(i);"
        "  return s; }";
    auto oz = minic::compile(src, OptLevel::Oz);
    auto o3 = minic::compile(src, OptLevel::O3);
    EXPECT_LE(oz.staticInstructions(), o3.staticInstructions());
    // Both must still agree on the answer.
    RefSim s1, s2;
    s1.reset(oz.program);
    s2.reset(o3.program);
    EXPECT_EQ(s1.run().exitCode, s2.run().exitCode);
}

TEST(Compiler, HelpersLinkedOnlyWhenUsed)
{
    auto no_mul = minic::compile(
        "int main() { return 1 + 2; }", OptLevel::O2);
    EXPECT_TRUE(no_mul.helpers.empty());
    EXPECT_FALSE(no_mul.program.hasSymbol("__mulsi3"));

    auto with_mul = minic::compile(
        "int main(void) { int a = 3; int b = 4;"
        "  int c = a; for (;;) { c = c * b; if (c > 20) break; }"
        "  return c; }",
        OptLevel::O2);
    EXPECT_TRUE(with_mul.helpers.count("__mulsi3"));
    EXPECT_TRUE(with_mul.program.hasSymbol("__mulsi3"));
}

TEST(Compiler, SubsetSmallerAtO2ThanFullIsa)
{
    const char *src =
        "int main() { int s = 0;"
        "  for (int i = 0; i < 16; i++) s += i;"
        "  return s; }";
    auto r = minic::compile(src, OptLevel::O2);
    InstrSubset subset = InstrSubset::fromProgram(r.program);
    EXPECT_GT(subset.size(), 4u);
    EXPECT_LT(subset.size(), kFullIsaSize);
}

TEST(Compiler, RejectsBadPrograms)
{
    const char *bad[] = {
        "int main() { return x; }",             // undeclared
        "int main() { int x; int x; return 0; }",
        "int main() { 3 = 4; return 0; }",
        "int main() { return f(1); }",
        "int f(int a); int main() { return f(); }",
        "int main() { break; }",
        "void main2() { return 3; }",
        "int main() { int a[0]; return 0; }",
        "int main( { return 0; }",
        "int main() { return 1 +; }",
    };
    for (const char *src : bad)
        EXPECT_THROW(minic::compile(src, minic::OptLevel::O2),
                     minic::CompileError)
            << src;
}

} // namespace
} // namespace rissp
