/**
 * @file
 * Quickstart: the complete RISSP flow on a ten-line program.
 *
 *   1. compile a MiniC source for the full RV32E ISA;
 *   2. extract the distinct-instruction subset (Step 1);
 *   3. stitch a RISSP from the pre-verified block library (Steps
 *      2-3) and execute the binary on it;
 *   4. synthesize the RISSP for the FlexIC process and compare it
 *      against the full-ISA baseline.
 */

#include <cstdio>

#include "compiler/driver.hh"
#include "core/rissp.hh"
#include "core/subset.hh"
#include "synth/synthesis.hh"

int
main()
{
    using namespace rissp;

    const char *source = R"(
        int main(void) {
            int sum = 0;
            for (int i = 1; i <= 100; i++)
                sum += i;
            return sum & 0xFF;   /* 5050 & 0xFF = 186 */
        }
    )";

    // 1. Compile for the full RV32E ISA (the paper's Step 1 input).
    minic::CompileResult cr =
        minic::compile(source, minic::OptLevel::O2);
    std::printf("compiled: %zu static instructions\n",
                cr.staticInstructions());

    // 2. Characterize: which instructions does the binary use?
    InstrSubset subset = InstrSubset::fromProgram(cr.program);
    std::printf("subset (%zu of %zu): %s\n", subset.size(),
                kFullIsaSize, subset.describe().c_str());

    // 3. Generate the RISSP and run the program on it.
    Rissp rissp(subset, "RISSP-quickstart");
    rissp.reset(cr.program);
    RunResult run = rissp.run();
    std::printf("RISSP executed %llu cycles (CPI=1), exit code %u\n",
                static_cast<unsigned long long>(run.instret),
                run.exitCode);

    // 4. Synthesize for the FlexIC process and compare.
    SynthesisModel synth;
    SynthReport mine = synth.synthesize(subset, "RISSP-quickstart");
    SynthReport full =
        synth.synthesize(InstrSubset::fullRv32e(), "RISSP-RV32E");
    std::printf("area: %.0f GE vs %.0f GE full ISA (%.0f%% "
                "smaller)\n", mine.avgAreaGe, full.avgAreaGe,
                (1.0 - mine.avgAreaGe / full.avgAreaGe) * 100.0);
    std::printf("fmax: %.0f kHz vs %.0f kHz; power %.3f mW vs "
                "%.3f mW\n", mine.fmaxKhz, full.fmaxKhz,
                mine.avgPowerMw, full.avgPowerMw);
    return run.exitCode == 186 ? 0 : 1;
}
