/**
 * @file
 * Quickstart: the complete RISSP flow on a ten-line program, driven
 * through the library's one entry point, `flow::FlowService`:
 *
 *   1. characterize — compile a MiniC source for the full RV32E ISA
 *      and extract the distinct-instruction subset (Step 1);
 *   2. run — stitch a RISSP from the pre-verified block library
 *      (Steps 2-3) and execute the binary on it;
 *   3. synth — synthesize the RISSP for the FlexIC process and
 *      compare it against the full-ISA baseline.
 *
 * The service memoizes the shared stages: the three requests below
 * compile the source exactly once.
 */

#include <cstdio>

#include "flow/flow.hh"

int
main()
{
    using namespace rissp;

    const char *source = R"(
        int main(void) {
            int sum = 0;
            for (int i = 1; i <= 100; i++)
                sum += i;
            return sum & 0xFF;   /* 5050 & 0xFF = 186 */
        }
    )";

    flow::FlowService service;

    // 1. Compile for the full RV32E ISA (the paper's Step 1 input)
    //    and characterize: which instructions does the binary use?
    flow::CharacterizeRequest creq;
    creq.source = flow::SourceRef::inlineText(source, "quickstart");
    flow::CharacterizeResponse cres = service.characterize(creq);
    if (!cres.status.isOk()) {
        std::printf("characterize failed: %s\n",
                    cres.status.toString().c_str());
        return 1;
    }
    std::printf("compiled: %zu static instructions\n",
                cres.compile.staticInstructions);
    const InstrSubset &subset = cres.subset.subset;
    std::printf("subset (%zu of %zu): %s\n", subset.size(),
                kFullIsaSize, subset.describe().c_str());

    // 2. Generate the RISSP and run the program on it.
    flow::RunRequest rreq;
    rreq.source = creq.source;
    flow::RunResponse rres = service.run(rreq);
    if (!rres.exec.run) {
        std::printf("run failed: %s\n",
                    rres.status.toString().c_str());
        return 1;
    }
    std::printf("RISSP executed %llu cycles (CPI=1), exit code %u\n",
                static_cast<unsigned long long>(rres.exec.cycles),
                rres.exec.exitCode);

    // 3. Synthesize for the FlexIC process and compare.
    flow::SynthRequest sreq;
    sreq.source = creq.source;
    sreq.name = "RISSP-quickstart";
    sreq.physical = false;
    flow::SynthResponse sres = service.synth(sreq);
    if (!sres.status.isOk()) {
        std::printf("synth failed: %s\n",
                    sres.status.toString().c_str());
        return 1;
    }
    const SynthReport &mine = sres.synth.app;
    const SynthReport &full = sres.synth.fullIsa;
    std::printf("area: %.0f GE vs %.0f GE full ISA (%.0f%% "
                "smaller)\n", mine.avgAreaGe, full.avgAreaGe,
                (1.0 - mine.avgAreaGe / full.avgAreaGe) * 100.0);
    std::printf("fmax: %.0f kHz vs %.0f kHz; power %.3f mW vs "
                "%.3f mW\n", mine.fmaxKhz, full.fmaxKhz,
                mine.avgPowerMw, full.avgPowerMw);
    return rres.exec.exitCode == 186 ? 0 : 1;
}
