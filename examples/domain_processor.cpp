/**
 * @file
 * Domain-level RISSP generation: §3.1 allows a processor to be
 * generated "for a given application or a domain of similar
 * applications". This example builds one healthcare-domain RISSP
 * covering af_detect + xgboost + armpit (union of subsets), runs all
 * three workloads on the single chip, and quantifies what the
 * domain generality costs versus per-application silicon.
 *
 * Everything goes through `flow::FlowService`; the domain chip is
 * expressed with `subsetOverride` — the same mechanism a deployment
 * would use to pin a fleet of applications to fabricated silicon.
 */

#include <cstdio>

#include "flow/flow.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace rissp;

    flow::FlowService service;

    auto synthOf = [&](const InstrSubset &subset,
                       const std::string &name, bool baselines) {
        flow::SynthRequest req;
        req.subsetOverride = subset;
        req.name = name;
        req.baselines = baselines;
        req.physical = false;
        return service.synth(req);
    };

    std::vector<InstrSubset> parts;
    std::printf("healthcare domain applications:\n");
    for (const std::string &name : extremeEdgeNames()) {
        flow::CharacterizeRequest creq;
        creq.source = flow::SourceRef::bundled(name);
        flow::CharacterizeResponse cres = service.characterize(creq);
        if (!cres.status.isOk()) {
            std::printf("characterize failed: %s\n",
                        cres.status.toString().c_str());
            return 1;
        }
        parts.push_back(cres.subset.subset);
        flow::SynthResponse sres =
            synthOf(parts.back(), "RISSP-" + name, false);
        if (!sres.status.isOk()) {
            std::printf("synth failed: %s\n",
                        sres.status.toString().c_str());
            return 1;
        }
        std::printf("  %-10s %2zu instrs, %5.0f GE\n", name.c_str(),
                    parts.back().size(), sres.synth.app.avgAreaGe);
    }

    // One processor for the whole domain: union of the subsets.
    InstrSubset domain = InstrSubset::unionOf(parts);
    flow::SynthResponse dres =
        synthOf(domain, "RISSP-healthcare", true);
    if (!dres.status.isOk()) {
        std::printf("synth failed: %s\n",
                    dres.status.toString().c_str());
        return 1;
    }
    const SynthReport &domain_synth = dres.synth.app;
    const SynthReport &full = dres.synth.fullIsa;
    std::printf("domain RISSP: %zu instrs %s\n", domain.size(),
                domain.describe().c_str());
    std::printf("  %5.0f GE (%.0f%% below full ISA), fmax %.0f "
                "kHz\n", domain_synth.avgAreaGe,
                (1.0 - domain_synth.avgAreaGe / full.avgAreaGe) *
                    100.0, domain_synth.fmaxKhz);

    // Every application of the domain runs on the one chip.
    for (const std::string &name : extremeEdgeNames()) {
        flow::RunRequest rreq;
        rreq.source = flow::SourceRef::bundled(name);
        rreq.subsetOverride = domain;
        rreq.maxSteps = 200'000'000;
        flow::RunResponse rres = service.run(rreq);
        if (!rres.exec.run) {
            std::printf("run failed: %s\n",
                        rres.status.toString().c_str());
            return 1;
        }
        std::printf("  %-10s on domain chip: %s, exit=%u, %llu "
                    "cycles\n", name.c_str(),
                    rres.exec.reason == StopReason::Halted
                        ? "OK" : "FAIL",
                    rres.exec.exitCode,
                    static_cast<unsigned long long>(
                        rres.exec.cycles));
        if (rres.exec.reason != StopReason::Halted)
            return 1;
    }
    return 0;
}
