/**
 * @file
 * Domain-level RISSP generation: §3.1 allows a processor to be
 * generated "for a given application or a domain of similar
 * applications". This example builds one healthcare-domain RISSP
 * covering af_detect + xgboost + armpit (union of subsets), runs all
 * three workloads on the single chip, and quantifies what the
 * domain generality costs versus per-application silicon.
 */

#include <cstdio>

#include "compiler/driver.hh"
#include "core/rissp.hh"
#include "synth/synthesis.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace rissp;

    SynthesisModel synth;
    std::vector<InstrSubset> parts;
    std::vector<minic::CompileResult> binaries;
    std::printf("healthcare domain applications:\n");
    for (const std::string &name : extremeEdgeNames()) {
        const Workload &wl = workloadByName(name);
        binaries.push_back(
            minic::compile(wl.source, minic::OptLevel::O2));
        parts.push_back(
            InstrSubset::fromProgram(binaries.back().program));
        SynthReport r = synth.synthesize(parts.back(),
                                         "RISSP-" + name);
        std::printf("  %-10s %2zu instrs, %5.0f GE\n", name.c_str(),
                    parts.back().size(), r.avgAreaGe);
    }

    // One processor for the whole domain: union of the subsets.
    InstrSubset domain = InstrSubset::unionOf(parts);
    SynthReport domain_synth =
        synth.synthesize(domain, "RISSP-healthcare");
    SynthReport full =
        synth.synthesize(InstrSubset::fullRv32e(), "RISSP-RV32E");
    std::printf("domain RISSP: %zu instrs %s\n", domain.size(),
                domain.describe().c_str());
    std::printf("  %5.0f GE (%.0f%% below full ISA), fmax %.0f "
                "kHz\n", domain_synth.avgAreaGe,
                (1.0 - domain_synth.avgAreaGe / full.avgAreaGe) *
                    100.0, domain_synth.fmaxKhz);

    // Every application of the domain runs on the one chip.
    Rissp chip(domain, "RISSP-healthcare");
    for (size_t i = 0; i < binaries.size(); ++i) {
        chip.reset(binaries[i].program);
        RunResult run = chip.run(200'000'000);
        std::printf("  %-10s on domain chip: %s, exit=%u, %llu "
                    "cycles\n", extremeEdgeNames()[i].c_str(),
                    run.reason == StopReason::Halted ? "OK" : "FAIL",
                    run.exitCode,
                    static_cast<unsigned long long>(run.instret));
        if (run.reason != StopReason::Halted)
            return 1;
    }
    return 0;
}
