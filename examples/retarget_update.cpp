/**
 * @file
 * Long-lasting extreme-edge scenario (§5, Figure 11): a fabricated
 * af_detect RISSP must receive a software update. The updated
 * firmware, recompiled for the full ISA, uses instructions the chip
 * does not implement — a `RetargetRequest` rewrites it onto the
 * fabricated subset and proves equivalence.
 *
 * The trap on the un-retargeted binary is demonstrated with a
 * `RunRequest` whose `subsetOverride` pins execution to the
 * fabricated silicon — note the request *fails* with a structured
 * Trap status while still reporting the execution stage that
 * produced it.
 */

#include <cstdio>

#include "flow/flow.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace rissp;

    flow::FlowService service;

    // The chip in the field implements only the minimal subset.
    const InstrSubset fabricated = Retargeter::minimalSubset();
    std::printf("fabricated RISSP supports (%zu): %s\n",
                fabricated.size(), fabricated.describe().c_str());

    // A firmware update arrives, compiled by the standard toolchain
    // for the full RV32E ISA.
    const flow::SourceRef update = flow::SourceRef::bundled("af_detect");
    flow::CharacterizeRequest creq;
    creq.source = update;
    flow::CharacterizeResponse cres = service.characterize(creq);
    if (!cres.status.isOk()) {
        std::printf("characterize failed: %s\n",
                    cres.status.toString().c_str());
        return 1;
    }
    const InstrSubset &update_subset = cres.subset.subset;
    std::printf("update binary uses (%zu): %s\n",
                update_subset.size(),
                update_subset.describe().c_str());

    // Without retargeting, the chip traps on the first unsupported
    // instruction.
    flow::RunRequest raw;
    raw.source = update;
    raw.subsetOverride = fabricated;
    raw.maxSteps = 1'000'000;
    flow::RunResponse raw_run = service.run(raw);
    std::printf("raw update on chip: %s at pc=0x%x\n",
                raw_run.exec.reason == StopReason::Trapped
                    ? "TRAP (unsupported instruction)" : "ran?!",
                raw_run.exec.stopPc);

    // Retarget: synthesize verified macros, rewrite, reassemble,
    // and prove the rewritten binary equivalent to the original.
    flow::RetargetRequest rreq;
    rreq.source = update;
    rreq.maxSteps = 400'000'000;
    flow::RetargetResponse rres = service.retarget(rreq);
    const RetargetResult &res = rres.retarget.result;
    if (!rres.retarget.run || !res.ok) {
        std::printf("retargeting failed: %s\n",
                    rres.retarget.run
                        ? res.error.c_str()
                        : rres.status.toString().c_str());
        return 1;
    }
    std::printf("retargeted: %zu macros, code %zu -> %zu bytes "
                "(%+.1f%%), distinct ops %zu -> %zu\n",
                res.macros.size(), res.initialTextBytes,
                res.retargetedTextBytes, res.codeGrowth() * 100.0,
                res.initialSubset.size(), res.finalSubset.size());
    for (const MacroExpansion &m : res.macros)
        std::printf("  %-6s expanded after %u candidate(s)\n",
                    std::string(opName(m.target)).c_str(),
                    m.attempts);

    // The update now runs on the fabricated chip and matches the
    // reference result (exit code and the streamed AF flags).
    const flow::EquivalenceStage &eq = rres.equivalence;
    const bool ok = eq.run && eq.matched &&
        eq.dutReason == StopReason::Halted;
    std::printf("update on fabricated chip: exit=%u (golden %u) "
                "AF flag streams %s\n", eq.dutExit, eq.refExit,
                ok ? "match" : "MISMATCH");
    return ok ? 0 : 1;
}
