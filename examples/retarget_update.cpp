/**
 * @file
 * Long-lasting extreme-edge scenario (§5, Figure 11): a fabricated
 * af_detect RISSP must receive a software update. The updated
 * firmware, recompiled for the full ISA, uses instructions the chip
 * does not implement — the retargeting tool rewrites it onto the
 * fabricated subset and proves equivalence.
 */

#include <cstdio>

#include "compiler/driver.hh"
#include "core/rissp.hh"
#include "retarget/retargeter.hh"
#include "sim/refsim.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace rissp;

    // The chip in the field implements only the minimal subset.
    const InstrSubset fabricated = Retargeter::minimalSubset();
    std::printf("fabricated RISSP supports (%zu): %s\n",
                fabricated.size(), fabricated.describe().c_str());

    // A firmware update arrives, compiled by the standard toolchain
    // for the full RV32E ISA.
    const Workload &app = workloadByName("af_detect");
    minic::CompileResult update =
        minic::compile(app.source, minic::OptLevel::O2);
    InstrSubset update_subset =
        InstrSubset::fromProgram(update.program);
    std::printf("update binary uses (%zu): %s\n",
                update_subset.size(),
                update_subset.describe().c_str());

    // Without retargeting, the chip traps on the first unsupported
    // instruction.
    Rissp chip(fabricated, "fabricated-RISSP");
    chip.reset(update.program);
    RunResult raw_run = chip.run(1'000'000);
    std::printf("raw update on chip: %s at pc=0x%x\n",
                raw_run.reason == StopReason::Trapped
                    ? "TRAP (unsupported instruction)" : "ran?!",
                raw_run.stopPc);

    // Retarget: synthesize verified macros, rewrite, reassemble.
    Retargeter rt(fabricated);
    RetargetResult res = rt.retarget(update.program);
    if (!res.ok) {
        std::printf("retargeting failed: %s\n", res.error.c_str());
        return 1;
    }
    std::printf("retargeted: %zu macros, code %zu -> %zu bytes "
                "(%+.1f%%), distinct ops %zu -> %zu\n",
                res.macros.size(), res.initialTextBytes,
                res.retargetedTextBytes, res.codeGrowth() * 100.0,
                res.initialSubset.size(), res.finalSubset.size());
    for (const MacroExpansion &m : res.macros)
        std::printf("  %-6s expanded after %u candidate(s)\n",
                    std::string(opName(m.target)).c_str(),
                    m.attempts);

    // The update now runs on the fabricated chip and matches the
    // reference result.
    RefSim golden;
    golden.reset(update.program);
    RunResult want = golden.run(400'000'000);

    chip.reset(res.program);
    RunResult got = chip.run(400'000'000);
    const bool ok = got.reason == StopReason::Halted &&
        got.exitCode == want.exitCode &&
        chip.outputWords() == golden.outputWords();
    std::printf("update on fabricated chip: exit=%u (golden %u) "
                "AF flag streams %s\n", got.exitCode, want.exitCode,
                ok ? "match" : "MISMATCH");
    return ok ? 0 : 1;
}
