/**
 * @file
 * Short-lived extreme-edge scenario: the armpit malodour classifier
 * (§4, application 1) from C source to a physically implemented
 * FlexIC, with the Figure 4 verification flow in the loop:
 *
 *   - certify the instruction blocks the subset needs;
 *   - generate the RISSP and co-simulate it against the reference
 *     ISS with RVFI monitoring (the §3.4.2 integration step);
 *   - synthesize and place & route, printing the Figure 10-style
 *     summary for this one chip.
 */

#include <cstdio>

#include "compiler/driver.hh"
#include "core/rissp.hh"
#include "physimpl/physical.hh"
#include "synth/synthesis.hh"
#include "verify/block_verify.hh"
#include "verify/integration_verify.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace rissp;

    const Workload &app = workloadByName("armpit");
    std::printf("== %s: %s application ==\n", app.name.c_str(),
                app.category.c_str());

    minic::CompileResult cr =
        minic::compile(app.source, minic::OptLevel::O2);
    InstrSubset subset = InstrSubset::fromProgram(cr.program);
    std::printf("subset: %s\n", subset.describe().c_str());

    // Pre-verify exactly the blocks this RISSP stitches (Step 0 is
    // normally a one-time library effort; here we show it inline).
    for (Op op : subset.ops()) {
        BlockCert cert = certifyBlock(op, 0xA21, 150);
        if (!cert.preVerified()) {
            std::printf("block %s failed certification!\n",
                        std::string(opName(op)).c_str());
            return 1;
        }
    }
    std::printf("all %zu blocks certified (vectors + mutation + "
                "properties)\n", subset.size());

    // Integration-level verification: lock-step co-simulation with
    // RVFI monitoring while the application runs.
    CosimReport cosim = cosimulate(cr.program, subset, 10'000'000);
    if (!cosim.passed) {
        std::printf("co-simulation diverged: %s\n",
                    cosim.firstDivergence.c_str());
        return 1;
    }
    std::printf("co-simulation clean over %llu instructions "
                "(%llu RVFI events checked)\n",
                static_cast<unsigned long long>(cosim.instret),
                static_cast<unsigned long long>(
                    cosim.monitor.eventsChecked));

    // Run the classifier and report its per-frame scores.
    Rissp rissp(subset, "RISSP-armpit");
    rissp.reset(cr.program);
    rissp.run();
    std::printf("malodour scores per frame:");
    for (uint32_t s : rissp.outputWords())
        std::printf(" %u", s);
    std::printf("\n");

    // Backend: synthesis + physical implementation.
    SynthesisModel synth;
    PhysicalModel phys;
    SynthReport sr = synth.synthesize(subset, "RISSP-armpit");
    PhysReport pr = phys.implement(sr, RfStyle::LatchArray);
    std::printf("synthesis: %.0f GE, fmax %.0f kHz, %.3f mW avg\n",
                sr.avgAreaGe, sr.fmaxKhz, sr.avgPowerMw);
    std::printf("FlexIC: %.0f x %.0f um, %.2f mm2, FF %.1f%%, "
                "%.3f mW at 300 kHz\n", pr.dieXUm, pr.dieYUm,
                pr.dieAreaMm2, pr.ffAreaFraction * 100.0,
                pr.powerMw);
    return 0;
}
