/**
 * @file
 * Short-lived extreme-edge scenario: the armpit malodour classifier
 * (§4, application 1) from C source to a physically implemented
 * FlexIC, with the Figure 4 verification flow in the loop:
 *
 *   - certify the instruction blocks the subset needs;
 *   - generate the RISSP, co-simulate it against the reference ISS
 *     with RVFI monitoring (the §3.4.2 integration step) and run the
 *     classifier — one `RunRequest` with verify on;
 *   - synthesize and place & route, printing the Figure 10-style
 *     summary for this one chip.
 *
 * Block certification is the Step 0 library effort and stays a
 * direct library call; everything per-application goes through
 * `flow::FlowService`.
 */

#include <cstdio>

#include "flow/flow.hh"
#include "verify/block_verify.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace rissp;

    const Workload &app = workloadByName("armpit");
    std::printf("== %s: %s application ==\n", app.name.c_str(),
                app.category.c_str());

    flow::FlowService service;
    flow::CharacterizeRequest creq;
    creq.source = flow::SourceRef::bundled(app.name);
    flow::CharacterizeResponse cres = service.characterize(creq);
    if (!cres.status.isOk()) {
        std::printf("characterize failed: %s\n",
                    cres.status.toString().c_str());
        return 1;
    }
    const InstrSubset &subset = cres.subset.subset;
    std::printf("subset: %s\n", subset.describe().c_str());

    // Pre-verify exactly the blocks this RISSP stitches (Step 0 is
    // normally a one-time library effort; here we show it inline).
    for (Op op : subset.ops()) {
        BlockCert cert = certifyBlock(op, 0xA21, 150);
        if (!cert.preVerified()) {
            std::printf("block %s failed certification!\n",
                        std::string(opName(op)).c_str());
            return 1;
        }
    }
    std::printf("all %zu blocks certified (vectors + mutation + "
                "properties)\n", subset.size());

    // Generate the RISSP, co-simulate with RVFI monitoring while the
    // application runs, and collect its per-frame scores.
    flow::RunRequest rreq;
    rreq.source = creq.source;
    rreq.verify = true;
    flow::RunResponse rres = service.run(rreq);
    if (!rres.cosim.run || !rres.cosim.passed) {
        std::printf("co-simulation diverged: %s\n",
                    rres.cosim.run
                        ? rres.cosim.firstDivergence.c_str()
                        : rres.status.toString().c_str());
        return 1;
    }
    std::printf("co-simulation clean over %llu instructions "
                "(%llu RVFI events checked)\n",
                static_cast<unsigned long long>(rres.cosim.instret),
                static_cast<unsigned long long>(
                    rres.cosim.rvfiEventsChecked));

    std::printf("malodour scores per frame:");
    for (uint32_t s : rres.exec.outputWords)
        std::printf(" %u", s);
    std::printf("\n");

    // Backend: synthesis + physical implementation.
    flow::SynthRequest sreq;
    sreq.source = creq.source;
    sreq.name = "RISSP-armpit";
    sreq.baselines = false;
    flow::SynthResponse sres = service.synth(sreq);
    if (!sres.status.isOk()) {
        std::printf("synth failed: %s\n",
                    sres.status.toString().c_str());
        return 1;
    }
    const SynthReport &sr = sres.synth.app;
    const PhysReport &pr = sres.phys.report;
    std::printf("synthesis: %.0f GE, fmax %.0f kHz, %.3f mW avg\n",
                sr.avgAreaGe, sr.fmaxKhz, sr.avgPowerMw);
    std::printf("FlexIC: %.0f x %.0f um, %.2f mm2, FF %.1f%%, "
                "%.3f mW at 300 kHz\n", pr.dieXUm, pr.dieYUm,
                pr.dieAreaMm2, pr.ffAreaFraction * 100.0,
                pr.powerMw);
    return 0;
}
