/**
 * @file
 * Expansion bodies for the code-retargeting flow (§5, Figure 11).
 *
 * The paper prompts an LLM for each unsupported instruction and
 * verifies the returned macro, retrying on failure (< 10 attempts).
 * This module is the generative stand-in: for every retargetable
 * instruction it can produce several candidate macro bodies — the
 * correct derivation plus plausible-but-wrong variants (off-by-one
 * two's complement, dropped sign fill, inverted branch sense, ...)
 * that exercise the reject-and-retry loop exactly as a hallucinating
 * model would.
 *
 * Macro calling conventions (the tool rewrites call sites into these
 * canonical forms):
 *   R-type:        __rt_<op> rd, rs1, rs2
 *   I-type ALU:    __rt_<op> rd, rs1, imm
 *   loads:         __rt_<op> rd, base, off
 *   stores:        __rt_<op> src, base, off
 *   branches:      __rt_<op> rs1, rs2, target
 *   lui:           __rt_lui  rd, hi10, lo10   (tool-computed halves)
 *
 * Register discipline: bodies may clobber only rd; ra (and t0 in
 * store bodies) are used as scratch but saved/restored on the stack.
 * Operand registers are read before anything is written. The
 * verifier checks every alias combination the rewritten program can
 * contain, so a body that violates the discipline is rejected.
 */

#ifndef RISSP_RETARGET_MACRO_LIBRARY_HH
#define RISSP_RETARGET_MACRO_LIBRARY_HH

#include <optional>
#include <string>
#include <vector>

#include "isa/op.hh"

namespace rissp
{

/** True when a macro expansion exists for @p op. */
bool canRetarget(Op op);

/** The correct macro body for @p op (without .macro/.endm frame). */
std::string correctMacroBody(Op op);

/** Plausible-but-wrong variants of @p op's body (may be empty). */
std::vector<std::string> buggyMacroBodies(Op op);

/** Macro parameter list for @p op, e.g. "rd, rs1, rs2". */
std::string macroParams(Op op);

/** Macro name for @p op, e.g. "__rt_sub". */
std::string macroName(Op op);

/** Wrap a body into a complete .macro definition. */
std::string wrapMacro(Op op, const std::string &body);

} // namespace rissp

#endif // RISSP_RETARGET_MACRO_LIBRARY_HH
