#include "retarget/macro_library.hh"

#include "util/logging.hh"
#include "util/strings.hh"

namespace rissp
{

namespace
{

// Shared fragments. Every body restores sp/ra (and t0 where used).

const char *kSubBody = R"(
    addi sp, sp, -4
    sw ra, 0(sp)
    xori ra, \rs2, -1
    addi ra, ra, 1
    add \rd, \rs1, ra
    lw ra, 0(sp)
    addi sp, sp, 4
)";

// a | b == ~(~a & ~b)
const char *kOrBody = R"(
    addi sp, sp, -4
    sw ra, 0(sp)
    xori ra, \rs2, -1
    xori \rd, \rs1, -1
    and \rd, \rd, ra
    xori \rd, \rd, -1
    lw ra, 0(sp)
    addi sp, sp, 4
)";

// a ^ b == (a & ~b) + (~a & b)   (disjoint, so + is |)
const char *kXorBody = R"(
    addi sp, sp, -16
    sw ra, 0(sp)
    sw \rs1, 4(sp)
    sw \rs2, 8(sp)
    xori ra, \rs2, -1
    and ra, \rs1, ra
    sw ra, 12(sp)
    lw ra, 4(sp)
    xori ra, ra, -1
    lw \rd, 8(sp)
    and \rd, ra, \rd
    lw ra, 12(sp)
    add \rd, \rd, ra
    lw ra, 0(sp)
    addi sp, sp, 16
)";

const char *kAndiBody = R"(
    addi sp, sp, -4
    sw ra, 0(sp)
    addi ra, zero, \imm
    and \rd, \rs1, ra
    lw ra, 0(sp)
    addi sp, sp, 4
)";

const char *kOriBody = R"(
    addi sp, sp, -4
    sw ra, 0(sp)
    addi ra, zero, \imm
    xori ra, ra, -1
    xori \rd, \rs1, -1
    and \rd, \rd, ra
    xori \rd, \rd, -1
    lw ra, 0(sp)
    addi sp, sp, 4
)";

const char *kSlliBody = R"(
    addi sp, sp, -4
    sw ra, 0(sp)
    addi ra, zero, \sh
    sll \rd, \rs1, ra
    lw ra, 0(sp)
    addi sp, sp, 4
)";

const char *kSraiBody = R"(
    addi sp, sp, -4
    sw ra, 0(sp)
    addi ra, zero, \sh
    sra \rd, \rs1, ra
    lw ra, 0(sp)
    addi sp, sp, 4
)";

// Logical right shift: arithmetic shift then mask off the
// replicated sign bits. Valid for 1 <= sh <= 31 (shift-by-zero is
// folded away upstream).
const char *kSrliBody = R"(
    addi sp, sp, -12
    sw ra, 0(sp)
    sw \rs1, 4(sp)
    addi ra, zero, 32-\sh
    addi \rd, zero, -1
    sll \rd, \rd, ra
    xori \rd, \rd, -1
    sw \rd, 8(sp)
    lw \rd, 4(sp)
    addi ra, zero, \sh
    sra \rd, \rd, ra
    lw ra, 8(sp)
    and \rd, \rd, ra
    lw ra, 0(sp)
    addi sp, sp, 12
)";

// Variable logical right shift. The zero shift amount is special:
// the mask construction degenerates there, so it branches to a copy.
const char *kSrlBody = R"(
    addi sp, sp, -16
    sw ra, 0(sp)
    sw \rs1, 4(sp)
    sw \rs2, 8(sp)
    addi \rd, zero, 31
    lw ra, 8(sp)
    and ra, ra, \rd
    sw ra, 8(sp)
    addi \rd, zero, 1
    bltu ra, \rd, .Lrt_z\@
    xori ra, ra, -1
    addi ra, ra, 33
    addi \rd, zero, -1
    sll \rd, \rd, ra
    xori \rd, \rd, -1
    sw \rd, 12(sp)
    lw \rd, 4(sp)
    lw ra, 8(sp)
    sra \rd, \rd, ra
    lw ra, 12(sp)
    and \rd, \rd, ra
    jal zero, .Lrt_e\@
.Lrt_z\@:
    lw \rd, 4(sp)
.Lrt_e\@:
    lw ra, 0(sp)
    addi sp, sp, 16
)";

const char *kSltBody = R"(
    blt \rs1, \rs2, .Lrt_t\@
    addi \rd, zero, 0
    jal zero, .Lrt_d\@
.Lrt_t\@:
    addi \rd, zero, 1
.Lrt_d\@:
)";

const char *kSltuBody = R"(
    bltu \rs1, \rs2, .Lrt_t\@
    addi \rd, zero, 0
    jal zero, .Lrt_d\@
.Lrt_t\@:
    addi \rd, zero, 1
.Lrt_d\@:
)";

const char *kSltiBody = R"(
    addi sp, sp, -4
    sw ra, 0(sp)
    addi ra, zero, \imm
    blt \rs1, ra, .Lrt_t\@
    addi \rd, zero, 0
    jal zero, .Lrt_d\@
.Lrt_t\@:
    addi \rd, zero, 1
.Lrt_d\@:
    lw ra, 0(sp)
    addi sp, sp, 4
)";

const char *kSltiuBody = R"(
    addi sp, sp, -4
    sw ra, 0(sp)
    addi ra, zero, \imm
    bltu \rs1, ra, .Lrt_t\@
    addi \rd, zero, 0
    jal zero, .Lrt_d\@
.Lrt_t\@:
    addi \rd, zero, 1
.Lrt_d\@:
    lw ra, 0(sp)
    addi sp, sp, 4
)";

const char *kBeqBody = R"(
    blt \rs1, \rs2, .Lrt_ne\@
    blt \rs2, \rs1, .Lrt_ne\@
    jal zero, \target
.Lrt_ne\@:
)";

const char *kBneBody = R"(
    blt \rs1, \rs2, \target
    blt \rs2, \rs1, \target
)";

const char *kBgeBody = R"(
    blt \rs1, \rs2, .Lrt_lt\@
    jal zero, \target
.Lrt_lt\@:
)";

const char *kBgeuBody = R"(
    bltu \rs1, \rs2, .Lrt_lt\@
    jal zero, \target
.Lrt_lt\@:
)";

const char *kLuiBody = R"(
    addi sp, sp, -4
    sw ra, 0(sp)
    addi \rd, zero, \hi
    addi ra, zero, 10
    sll \rd, \rd, ra
    addi \rd, \rd, \lo
    addi ra, zero, 12
    sll \rd, \rd, ra
    lw ra, 0(sp)
    addi sp, sp, 4
)";

const char *kLbuBody = R"(
    addi sp, sp, -12
    sw ra, 0(sp)
    addi ra, \base, \off
    addi \rd, zero, -4
    and \rd, ra, \rd
    lw \rd, 0(\rd)
    sw \rd, 4(sp)
    addi \rd, zero, 3
    and ra, ra, \rd
    sll ra, ra, \rd
    lw \rd, 4(sp)
    sra \rd, \rd, ra
    addi ra, zero, 255
    and \rd, \rd, ra
    lw ra, 0(sp)
    addi sp, sp, 12
)";

const char *kLbBody = R"(
    addi sp, sp, -12
    sw ra, 0(sp)
    addi ra, \base, \off
    addi \rd, zero, -4
    and \rd, ra, \rd
    lw \rd, 0(\rd)
    sw \rd, 4(sp)
    addi \rd, zero, 3
    and ra, ra, \rd
    sll ra, ra, \rd
    xori ra, ra, -1
    addi ra, ra, 1
    addi ra, ra, 24
    lw \rd, 4(sp)
    sll \rd, \rd, ra
    addi ra, zero, 24
    sra \rd, \rd, ra
    lw ra, 0(sp)
    addi sp, sp, 12
)";

const char *kLhuBody = R"(
    addi sp, sp, -12
    sw ra, 0(sp)
    addi ra, \base, \off
    addi \rd, zero, -4
    and \rd, ra, \rd
    lw \rd, 0(\rd)
    sw \rd, 4(sp)
    addi \rd, zero, 2
    and ra, ra, \rd
    addi \rd, zero, 3
    sll ra, ra, \rd
    lw \rd, 4(sp)
    sra \rd, \rd, ra
    sw \rd, 4(sp)
    addi ra, zero, -1
    addi \rd, zero, 16
    sll ra, ra, \rd
    xori ra, ra, -1
    lw \rd, 4(sp)
    and \rd, \rd, ra
    lw ra, 0(sp)
    addi sp, sp, 12
)";

const char *kLhBody = R"(
    addi sp, sp, -12
    sw ra, 0(sp)
    addi ra, \base, \off
    addi \rd, zero, -4
    and \rd, ra, \rd
    lw \rd, 0(\rd)
    sw \rd, 4(sp)
    addi \rd, zero, 2
    and ra, ra, \rd
    addi \rd, zero, 3
    sll ra, ra, \rd
    xori ra, ra, -1
    addi ra, ra, 1
    addi ra, ra, 16
    lw \rd, 4(sp)
    sll \rd, \rd, ra
    addi ra, zero, 16
    sra \rd, \rd, ra
    lw ra, 0(sp)
    addi sp, sp, 12
)";

// Stores are read-modify-write on the enclosing word. t0 is a second
// scratch: operand values are captured on the stack before t0 is
// touched, and t0 is restored at the end (stores define no rd).
const char *kSbBody = R"(
    addi sp, sp, -24
    sw ra, 0(sp)
    addi ra, \base, \off
    sw \src, 8(sp)
    sw t0, 12(sp)
    addi t0, zero, -4
    and t0, ra, t0
    sw t0, 16(sp)
    addi t0, zero, 3
    and ra, ra, t0
    sll ra, ra, t0
    addi t0, zero, 255
    sll t0, t0, ra
    xori t0, t0, -1
    sw ra, 20(sp)
    lw ra, 16(sp)
    lw ra, 0(ra)
    and ra, ra, t0
    lw t0, 8(sp)
    sw ra, 8(sp)
    addi ra, zero, 255
    and t0, t0, ra
    lw ra, 20(sp)
    sll t0, t0, ra
    lw ra, 8(sp)
    add ra, ra, t0
    lw t0, 16(sp)
    sw ra, 0(t0)
    lw t0, 12(sp)
    lw ra, 0(sp)
    addi sp, sp, 24
)";

const char *kShBody = R"(
    addi sp, sp, -24
    sw ra, 0(sp)
    addi ra, \base, \off
    sw \src, 8(sp)
    sw t0, 12(sp)
    addi t0, zero, -4
    and t0, ra, t0
    sw t0, 16(sp)
    addi t0, zero, 2
    and ra, ra, t0
    addi t0, zero, 3
    sll ra, ra, t0
    sw ra, 20(sp)
    addi t0, zero, -1
    addi ra, zero, 16
    sll t0, t0, ra
    xori t0, t0, -1
    lw ra, 20(sp)
    sll t0, t0, ra
    xori t0, t0, -1
    lw ra, 16(sp)
    lw ra, 0(ra)
    and ra, ra, t0
    lw t0, 8(sp)
    sw ra, 8(sp)
    sw t0, 4(sp)
    addi t0, zero, -1
    addi ra, zero, 16
    sll t0, t0, ra
    xori t0, t0, -1
    lw ra, 4(sp)
    and t0, ra, t0
    lw ra, 20(sp)
    sll t0, t0, ra
    lw ra, 8(sp)
    add ra, ra, t0
    lw t0, 16(sp)
    sw ra, 0(t0)
    lw t0, 12(sp)
    lw ra, 0(sp)
    addi sp, sp, 24
)";

std::string
paramNames(Op op)
{
    switch (opInfo(op).type) {
      case InstrType::R:
        return "rd, rs1, rs2";
      case InstrType::I:
        if (isLoad(op))
            return "rd, base, off";
        if (op == Op::Slli || op == Op::Srli || op == Op::Srai)
            return "rd, rs1, sh";
        return "rd, rs1, imm";
      case InstrType::S:
        return "src, base, off";
      case InstrType::B:
        return "rs1, rs2, target";
      case InstrType::U:
        return "rd, hi, lo";
      default:
        panic("macroParams: %s is not retargetable",
              std::string(opName(op)).c_str());
    }
}

} // namespace

bool
canRetarget(Op op)
{
    switch (op) {
      case Op::Sub:
      case Op::Or:
      case Op::Xor:
      case Op::Andi:
      case Op::Ori:
      case Op::Xori: // native but uniform handling is allowed
      case Op::Slli:
      case Op::Srli:
      case Op::Srai:
      case Op::Srl:
      case Op::Slt:
      case Op::Sltu:
      case Op::Slti:
      case Op::Sltiu:
      case Op::Beq:
      case Op::Bne:
      case Op::Bge:
      case Op::Bgeu:
      case Op::Lui:
      case Op::Lb:
      case Op::Lbu:
      case Op::Lh:
      case Op::Lhu:
      case Op::Sb:
      case Op::Sh:
        return true;
      default:
        return false;
    }
}

std::string
correctMacroBody(Op op)
{
    switch (op) {
      case Op::Sub: return kSubBody;
      case Op::Or: return kOrBody;
      case Op::Xor: return kXorBody;
      case Op::Andi: return kAndiBody;
      case Op::Ori: return kOriBody;
      case Op::Xori: return "    xori \\rd, \\rs1, \\imm\n";
      case Op::Slli: return kSlliBody;
      case Op::Srli: return kSrliBody;
      case Op::Srai: return kSraiBody;
      case Op::Srl: return kSrlBody;
      case Op::Slt: return kSltBody;
      case Op::Sltu: return kSltuBody;
      case Op::Slti: return kSltiBody;
      case Op::Sltiu: return kSltiuBody;
      case Op::Beq: return kBeqBody;
      case Op::Bne: return kBneBody;
      case Op::Bge: return kBgeBody;
      case Op::Bgeu: return kBgeuBody;
      case Op::Lui: return kLuiBody;
      case Op::Lb: return kLbBody;
      case Op::Lbu: return kLbuBody;
      case Op::Lh: return kLhBody;
      case Op::Lhu: return kLhuBody;
      case Op::Sb: return kSbBody;
      case Op::Sh: return kShBody;
      default:
        panic("no macro body for %s",
              std::string(opName(op)).c_str());
    }
}

std::vector<std::string>
buggyMacroBodies(Op op)
{
    // Plausible hallucinations: each is syntactically valid and
    // subset-legal but semantically wrong somewhere the verifier's
    // vectors will expose.
    std::vector<std::string> out;
    const std::string good = correctMacroBody(op);
    auto replaced = [&](const std::string &from,
                        const std::string &to)
        -> std::optional<std::string> {
        size_t pos = good.find(from);
        if (pos == std::string::npos)
            return std::nullopt;
        std::string b = good;
        b.replace(pos, from.size(), to);
        return b;
    };
    // Missing +1 in two's complement (a + ~b = a - b - 1).
    if (auto b = replaced("addi ra, ra, 1\n", ""))
        out.push_back(*b);
    // Wrong byte mask.
    if (auto b = replaced("addi ra, zero, 255",
                          "addi ra, zero, 127"))
        out.push_back(*b);
    if (auto b = replaced("addi t0, zero, 255",
                          "addi t0, zero, 127"))
        out.push_back(*b);
    // Inverted compare polarity.
    if (auto b = replaced("blt \\rs1, \\rs2", "blt \\rs2, \\rs1"))
        out.push_back(*b);
    if (auto b = replaced("bltu \\rs1, ra", "bltu ra, \\rs1"))
        out.push_back(*b);
    // Dropped sign-fill correction on the logical right shift.
    if (op == Op::Srli || op == Op::Srl) {
        if (auto b = replaced("and \\rd, \\rd, ra\n    lw ra, 0(sp)",
                              "lw ra, 0(sp)"))
            out.push_back(*b);
    }
    // Wrong lui chunk width.
    if (op == Op::Lui) {
        if (auto b = replaced("addi ra, zero, 10",
                              "addi ra, zero, 8"))
            out.push_back(*b);
    }
    return out;
}

std::string
macroParams(Op op)
{
    return paramNames(op);
}

std::string
macroName(Op op)
{
    return "__rt_" + std::string(opName(op));
}

std::string
wrapMacro(Op op, const std::string &body)
{
    return ".macro " + macroName(op) + " " + macroParams(op) + "\n" +
        body + "\n.endm\n";
}

} // namespace rissp
