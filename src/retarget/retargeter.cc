#include "retarget/retargeter.hh"

#include <algorithm>

#include "assembler/assembler.hh"
#include "isa/instr.hh"
#include "sim/refsim.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace rissp
{

namespace
{

/** Canonical macro invocation for one decoded instruction. */
std::string
rewriteLine(const Instr &in, const std::string &branch_target)
{
    const std::string name = macroName(in.op);
    auto r = [](unsigned idx) { return std::string(regName(idx)); };
    switch (opInfo(in.op).type) {
      case InstrType::R:
        return strFormat("%s %s, %s, %s", name.c_str(),
                         r(in.rd).c_str(), r(in.rs1).c_str(),
                         r(in.rs2).c_str());
      case InstrType::I:
        if (isLoad(in.op))
            return strFormat("%s %s, %s, %d", name.c_str(),
                             r(in.rd).c_str(), r(in.rs1).c_str(),
                             in.imm);
        return strFormat("%s %s, %s, %d", name.c_str(),
                         r(in.rd).c_str(), r(in.rs1).c_str(),
                         in.imm);
      case InstrType::S:
        return strFormat("%s %s, %s, %d", name.c_str(),
                         r(in.rs2).c_str(), r(in.rs1).c_str(),
                         in.imm);
      case InstrType::B:
        return strFormat("%s %s, %s, %s", name.c_str(),
                         r(in.rs1).c_str(), r(in.rs2).c_str(),
                         branch_target.c_str());
      case InstrType::U: {
        // lui: the tool decomposes the 20-bit value into two 10-bit
        // positive chunks the macro reassembles with adds and shifts.
        const uint32_t u = static_cast<uint32_t>(in.imm) >> 12;
        return strFormat("%s %s, %u, %u", name.c_str(),
                         r(in.rd).c_str(), (u >> 10) & 0x3FF,
                         u & 0x3FF);
      }
      default:
        panic("rewriteLine: cannot rewrite %s",
              std::string(opName(in.op)).c_str());
    }
}

/** Plain assembly text for one decoded instruction. */
std::string
nativeLine(const Instr &in, const std::string &branch_target)
{
    if (!branch_target.empty()) {
        // Branch/jal with a symbolic target.
        if (in.type() == InstrType::B)
            return strFormat("%s %s, %s, %s",
                             std::string(opName(in.op)).c_str(),
                             std::string(regName(in.rs1)).c_str(),
                             std::string(regName(in.rs2)).c_str(),
                             branch_target.c_str());
        if (in.op == Op::Jal)
            return strFormat("jal %s, %s",
                             std::string(regName(in.rd)).c_str(),
                             branch_target.c_str());
    }
    return disassemble(in);
}

} // namespace

Retargeter::Retargeter(const InstrSubset &target, uint64_t seed)
    : targetSubset(target), rng(seed)
{
    const Status status = validateTarget(target);
    if (!status)
        panic("Retargeter: %s (validate with validateTarget first)",
              status.message().c_str());
}

Status
Retargeter::validateTarget(const InstrSubset &target)
{
    const InstrSubset kernel = minimalSubset();
    for (Op op : kernel.ops())
        if (!target.contains(op))
            return Status::errorf(
                ErrorCode::InvalidArgument,
                "retarget subset lacks kernel instruction '%s'",
                std::string(opName(op)).c_str());
    return Status::ok();
}

InstrSubset
Retargeter::minimalSubset()
{
    return InstrSubset::fromNames(
        {"addi", "add", "and", "xori", "sll", "sra", "jal", "jalr",
         "blt", "bltu", "lw", "sw"});
}

bool
Retargeter::verifyCandidate(Op op, const std::string &body)
{
    // Directed operand/alias cases: the macro must behave exactly
    // like the original instruction for every register pattern a
    // compiled program can contain (ra/t0 appear as operands only in
    // hand-written code, which the rewrite pass rejects up front).
    struct Combo { unsigned rd, rs1, rs2; };
    const Combo combos[] = {
        {10, 11, 12}, {10, 10, 11}, {10, 11, 10}, {10, 10, 10},
        {13, 14, 14}, {8, 9, 13},
    };
    const int32_t values[] = {
        0, 1, -1, 5, -5, 127, 128, 255, 256, 0x7FFFFFFF,
        static_cast<int32_t>(0x80000000), 0x1234, -0x1234,
    };
    const std::string macro_def = wrapMacro(op, body);

    Rng vrng(0xC0FFEE ^ static_cast<uint64_t>(op));
    for (const Combo &c : combos) {
        for (int trial = 0; trial < 10; ++trial) {
            const int32_t v1 = trial < 6
                ? values[(trial * 2) % std::size(values)]
                : static_cast<int32_t>(vrng.next32());
            const int32_t v2 = trial < 6
                ? values[(trial * 2 + 3) % std::size(values)]
                : static_cast<int32_t>(vrng.next32());
            int32_t imm = vrng.range(-2048, 2047);
            if (op == Op::Slli || op == Op::Srli || op == Op::Srai)
                imm = vrng.range(1, 31);

            // Build the instruction under test.
            std::string native;
            std::string invocation;
            const std::string tgt = "done_path";
            switch (opInfo(op).type) {
              case InstrType::R: {
                Instr in = decode(encodeR(op, c.rd, c.rs1, c.rs2));
                native = nativeLine(in, "");
                invocation = rewriteLine(in, "");
                break;
              }
              case InstrType::I: {
                if (isLoad(op)) {
                    const unsigned width =
                        op == Op::Lw ? 4
                        : (op == Op::Lh || op == Op::Lhu) ? 2 : 1;
                    const int32_t off = static_cast<int32_t>(
                        vrng.below(16 / width) * width);
                    Instr in = decode(
                        encodeI(op, c.rd, c.rs1, off));
                    native = nativeLine(in, "");
                    invocation = rewriteLine(in, "");
                    break;
                }
                Instr in = decode(encodeI(op, c.rd, c.rs1, imm));
                native = nativeLine(in, "");
                invocation = rewriteLine(in, "");
                break;
              }
              case InstrType::S: {
                const unsigned width = op == Op::Sw ? 4
                    : op == Op::Sh ? 2 : 1;
                const int32_t off = static_cast<int32_t>(
                    vrng.below(16 / width) * width);
                Instr in = decode(encodeS(op, c.rs1, c.rs2, off));
                native = nativeLine(in, "");
                invocation = rewriteLine(in, "");
                break;
              }
              case InstrType::B: {
                Instr in = decode(encodeB(op, c.rs1, c.rs2, 8));
                native = nativeLine(in, tgt);
                invocation = rewriteLine(in, tgt);
                break;
              }
              case InstrType::U: {
                Instr in = decode(encodeU(
                    op, c.rd,
                    static_cast<int32_t>(vrng.next32() & 0xFFFFF)));
                native = nativeLine(in, "");
                invocation = rewriteLine(in, "");
                break;
              }
              default:
                return false;
            }

            // Shared harness: known register file, a scratch buffer
            // the loads/stores hit via c.rs1, results dumped to the
            // signature.
            auto harness = [&](const std::string &insn_line,
                               const std::string &defs) {
                std::string src = defs;
                src += "    .data\nsignature:\n    .space 96\n"
                    "buf:\n    .word 0x89ABCDEF, 0x01234567,"
                    " 0xF00DFACE, 0x5A5A5A5A\n"
                    "    .space 16\n    .text\n_start:\n"
                    "    li sp, 0x40000\n";
                for (unsigned reg_i = 5; reg_i <= 15; ++reg_i) {
                    int32_t v = reg_i == c.rs1 ? v1
                        : reg_i == c.rs2 ? v2
                        : static_cast<int32_t>(
                              0x1000 + reg_i * 0x111);
                    if ((isLoad(op) || isStore(op)) &&
                        reg_i == c.rs1)
                        src += strFormat(
                            "    la x%u, buf\n", reg_i);
                    else
                        src += strFormat("    li x%u, %d\n", reg_i,
                                         v);
                }
                // rs1 == rs2 alias for memory ops would make the
                // base a data value; keep whatever la/li produced.
                src += "    " + insn_line + "\n";
                // For branches, the not-taken path must be
                // distinguishable from the taken one.
                if (opInfo(op).type == InstrType::B)
                    src += "    li x7, 999\n";
                src += "done_path:\n";
                src += "    la x1, signature\n";
                for (unsigned reg_i = 5; reg_i <= 15; ++reg_i)
                    src += strFormat("    sw x%u, %u(x1)\n", reg_i,
                                     (reg_i - 5) * 4);
                // Store buffer back for store-op comparison.
                src += "    la x1, buf\n";
                for (unsigned w = 0; w < 4; ++w) {
                    src += strFormat("    lw x5, %u(x1)\n", w * 4);
                    src += strFormat("    la x6, signature\n");
                    src += strFormat("    sw x5, %u(x6)\n",
                                     44 + w * 4);
                }
                src += "    ecall\n";
                return src;
            };

            AsmResult ref_asm = tryAssemble(harness(native, ""));
            AsmResult exp_asm =
                tryAssemble(harness(invocation, macro_def));
            if (!ref_asm.ok || !exp_asm.ok)
                return false;

            RefSim a;
            a.reset(ref_asm.program);
            RunResult ra_run = a.run(100'000);
            RefSim b;
            b.reset(exp_asm.program);
            RunResult rb_run = b.run(100'000);
            if (ra_run.reason != StopReason::Halted ||
                rb_run.reason != StopReason::Halted)
                return false;
            const uint32_t sig_a =
                ref_asm.program.symbol("signature");
            const uint32_t sig_b =
                exp_asm.program.symbol("signature");
            for (uint32_t off = 0; off < 60; off += 4) {
                if (a.memory().loadWord(sig_a + off) !=
                    b.memory().loadWord(sig_b + off))
                    return false;
            }
        }
    }
    return true;
}

MacroExpansion
Retargeter::synthesizeMacro(Op op)
{
    MacroExpansion result;
    result.target = op;
    if (!canRetarget(op))
        return result;

    // The generator's candidate stream: a seeded number of
    // hallucinated bodies first, then the sound derivation, matching
    // the paper's observation that a valid macro arrives in < 10
    // attempts.
    std::vector<std::string> stream;
    std::vector<std::string> buggy = buggyMacroBodies(op);
    const unsigned bad_first =
        std::min<unsigned>(rng.below(4),
                           static_cast<unsigned>(buggy.size()));
    for (unsigned i = 0; i < bad_first; ++i)
        stream.push_back(buggy[i]);
    stream.push_back(correctMacroBody(op));

    for (const std::string &candidate : stream) {
        ++result.attempts;
        if (result.attempts > 10)
            break;
        if (verifyCandidate(op, candidate)) {
            result.body = candidate;
            result.verified = true;
            return result;
        }
    }
    return result;
}

Result<std::string>
Retargeter::reconstruct(const Program &program,
                        const std::set<Op> &rewrite) const
{
    Memory mem;
    program.load(mem);

    // Collect branch/jump targets so relative offsets survive the
    // size changes of expansion.
    std::set<uint32_t> label_addrs;
    const uint32_t text_end = program.textBase + program.textSize;
    for (uint32_t pc = program.textBase; pc < text_end; pc += 4) {
        const Instr in = decode(mem.loadWord(pc));
        if (!in.valid())
            continue;
        if (in.type() == InstrType::B || in.op == Op::Jal)
            label_addrs.insert(pc + static_cast<uint32_t>(in.imm));
        if (in.op == Op::Auipc)
            return Status::error(
                ErrorCode::RetargetError,
                "auipc unsupported in reconstruction");
        // Expansion macros use ra (and t0 in store macros) as saved
        // scratch; an instruction that is itself being rewritten must
        // not name ra as an operand or destination.
        if (rewrite.count(in.op) &&
            ((readsRs1(in.op) && in.rs1 == reg::ra) ||
             (readsRs2(in.op) && in.rs2 == reg::ra) ||
             (writesRd(in.op) && in.rd == reg::ra)))
            return Status::errorf(
                ErrorCode::RetargetError,
                "ra operand on rewritten %s at 0x%x",
                std::string(opName(in.op)).c_str(), pc);
    }

    std::string out = "    .text\n";
    for (uint32_t pc = program.textBase; pc < text_end; pc += 4) {
        if (label_addrs.count(pc))
            out += strFormat(".Lr%x:\n", pc);
        if (pc == program.entry)
            out += "_start:\n";
        const Instr in = decode(mem.loadWord(pc));
        if (!in.valid()) {
            out += strFormat("    .word 0x%08x\n", mem.loadWord(pc));
            continue;
        }
        std::string target;
        if (in.type() == InstrType::B || in.op == Op::Jal)
            target = strFormat(
                ".Lr%x", pc + static_cast<uint32_t>(in.imm));
        if (rewrite.count(in.op))
            out += "    " + rewriteLine(in, target) + "\n";
        else
            out += "    " + nativeLine(in, target) + "\n";
    }

    // Data segments are carried over byte-exact at the same base, so
    // absolute addresses materialized in the code stay valid.
    for (const Segment &seg : program.segments) {
        if (seg.base == program.textBase)
            continue;
        out += "    .data\n";
        for (size_t i = 0; i < seg.bytes.size(); ++i)
            out += strFormat("    .byte %u\n", seg.bytes[i]);
    }
    return out;
}

RetargetResult
Retargeter::retarget(const Program &program)
{
    RetargetResult result;
    result.initialSubset = InstrSubset::fromProgram(program);
    result.initialTextBytes = program.textSize;

    // Step 1: which instructions must go?
    for (Op op : result.initialSubset.ops())
        if (!targetSubset.contains(op))
            result.rewrittenOps.insert(op);

    // Step 2: synthesize + verify a macro per offending op.
    for (Op op : result.rewrittenOps) {
        MacroExpansion m = synthesizeMacro(op);
        if (!m.verified) {
            result.error = strFormat(
                "no verified macro for '%s'",
                std::string(opName(op)).c_str());
            return result;
        }
        result.macroFile += wrapMacro(op, m.body) + "\n";
        result.macros.push_back(std::move(m));
    }

    // Step 3: rewrite and reassemble.
    Result<std::string> source =
        reconstruct(program, result.rewrittenOps);
    if (!source) {
        result.error = source.status().message();
        return result;
    }
    AsmResult reassembled =
        tryAssemble(result.macroFile + source.value());
    if (!reassembled.ok) {
        result.error = "reassembly failed: " + reassembled.error;
        return result;
    }
    result.program = std::move(reassembled.program);
    result.retargetedTextBytes = result.program.textSize;
    result.finalSubset = InstrSubset::fromProgram(result.program);

    // The retargeted binary must fit the target subset.
    for (Op op : result.finalSubset.ops()) {
        if (!targetSubset.contains(op)) {
            result.error = strFormat(
                "retargeted binary still uses '%s'",
                std::string(opName(op)).c_str());
            return result;
        }
    }
    result.ok = true;
    return result;
}

} // namespace rissp
