/**
 * @file
 * The §5 code-retargeting tool for long-lasting extreme-edge
 * applications (Figure 11 flow).
 *
 * Given a program compiled for the full RV32E ISA and the instruction
 * subset a fabricated RISSP supports, the tool:
 *
 *  1. identifies the instructions the RISSP does not implement;
 *  2. asks the generator (the ChatGPT-plugin analog in
 *     macro_library) for a macro expansion of each one, simulating
 *     the candidate against the original instruction's semantics
 *     over directed operand/alias cases and rejecting wrong ones
 *     until a verified macro emerges (bounded attempts);
 *  3. writes the verified macros to a macro file, rewrites every
 *     offending instruction into its canonical macro invocation, and
 *     reassembles — the retargeted binary then runs on the subset
 *     processor unchanged.
 */

#ifndef RISSP_RETARGET_RETARGETER_HH
#define RISSP_RETARGET_RETARGETER_HH

#include <set>

#include "core/subset.hh"
#include "retarget/macro_library.hh"
#include "util/rng.hh"
#include "util/status.hh"

namespace rissp
{

/** One synthesized-and-verified macro. */
struct MacroExpansion
{
    Op target = Op::Invalid;
    std::string body;        ///< verified body
    unsigned attempts = 0;   ///< candidates tried (paper: < 10)
    bool verified = false;
};

/** Result of retargeting one program. */
struct RetargetResult
{
    bool ok = false;
    std::string error;

    std::string macroFile;           ///< the generated macro.S
    std::vector<MacroExpansion> macros;
    std::set<Op> rewrittenOps;       ///< ops that were transformed

    Program program;                 ///< retargeted binary
    size_t initialTextBytes = 0;     ///< Figure 12 code size before
    size_t retargetedTextBytes = 0;  ///< Figure 12 code size after
    InstrSubset initialSubset;       ///< distinct instrs before
    InstrSubset finalSubset;         ///< distinct instrs after

    double
    codeGrowth() const
    {
        return initialTextBytes == 0 ? 0.0
            : static_cast<double>(retargetedTextBytes) /
                static_cast<double>(initialTextBytes) - 1.0;
    }
};

/** The retargeting tool. */
class Retargeter
{
  public:
    /**
     * @param target the subset the fabricated RISSP supports; must
     *        satisfy validateTarget() (panic() otherwise)
     * @param seed   drives the generator's candidate ordering (how
     *        many hallucinated attempts precede the good one)
     */
    explicit Retargeter(const InstrSubset &target,
                        uint64_t seed = 0x6E47);

    /** The paper's minimal 12-instruction subset. */
    static InstrSubset minimalSubset();

    /** Check a user-chosen target subset includes the §5 kernel ops
     *  {addi, add, and, xori, sll, sra, jal, jalr, blt, bltu, lw,
     *  sw}; call before constructing a Retargeter from user input. */
    static Status validateTarget(const InstrSubset &target);

    /** Synthesize + verify the macro for one instruction. */
    MacroExpansion synthesizeMacro(Op op);

    /** Retarget a fully linked program. */
    RetargetResult retarget(const Program &program);

    /** Reconstruct assembly from a binary, rewriting ops in
     *  @p rewrite into canonical macro invocations (exposed for
     *  tests). Programs the rewriter cannot express (auipc, ra used
     *  as an operand of a rewritten op) come back as RetargetError
     *  instead of aborting: the input binary is the user's. */
    Result<std::string> reconstruct(const Program &program,
                                    const std::set<Op> &rewrite) const;

  private:
    bool verifyCandidate(Op op, const std::string &body);

    InstrSubset targetSubset;
    Rng rng;
};

} // namespace rissp

#endif // RISSP_RETARGET_RETARGETER_HH
