#include "sim/program.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rissp
{

void
Program::load(Memory &mem) const
{
    for (const Segment &seg : segments)
        mem.storeBlock(seg.base, seg.bytes.data(), seg.bytes.size());
}

AddrSpan
Program::denseSpan() const
{
    // crt0 sets sp = 0x80000 (top of RAM); covering up to there keeps
    // the stack and heap of ordinary programs on the dense path.
    constexpr uint64_t kStackTop = 0x80000;
    constexpr uint64_t kMaxDenseBytes = 8u << 20;

    if (segments.empty())
        return {};
    uint64_t lo = UINT64_MAX, hi = 0;
    for (const Segment &seg : segments) {
        lo = std::min<uint64_t>(lo, seg.base);
        hi = std::max<uint64_t>(hi, seg.base + seg.bytes.size());
    }
    uint64_t stretched = hi;
    if (lo < kStackTop)
        stretched = std::max(hi, kStackTop);
    if (stretched - lo <= kMaxDenseBytes)
        hi = stretched;
    if (hi - lo > kMaxDenseBytes)
        return {};
    return {static_cast<uint32_t>(lo),
            static_cast<uint32_t>(hi - lo)};
}

size_t
Program::imageBytes() const
{
    size_t total = 0;
    for (const Segment &seg : segments)
        total += seg.bytes.size();
    return total;
}

std::vector<uint32_t>
Program::textWords() const
{
    Memory mem;
    load(mem);
    std::vector<uint32_t> words;
    words.reserve(textSize / 4);
    for (uint32_t a = textBase; a + 3 < textBase + textSize; a += 4)
        words.push_back(mem.loadWord(a));
    return words;
}

uint32_t
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        panic("Program::symbol: undefined symbol '%s' (check "
              "hasSymbol first)", name.c_str());
    return it->second;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols.count(name) != 0;
}

} // namespace rissp
