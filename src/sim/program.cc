#include "sim/program.hh"

#include "util/logging.hh"

namespace rissp
{

void
Program::load(Memory &mem) const
{
    for (const Segment &seg : segments)
        mem.storeBlock(seg.base, seg.bytes.data(), seg.bytes.size());
}

size_t
Program::imageBytes() const
{
    size_t total = 0;
    for (const Segment &seg : segments)
        total += seg.bytes.size();
    return total;
}

std::vector<uint32_t>
Program::textWords() const
{
    Memory mem;
    load(mem);
    std::vector<uint32_t> words;
    words.reserve(textSize / 4);
    for (uint32_t a = textBase; a + 3 < textBase + textSize; a += 4)
        words.push_back(mem.loadWord(a));
    return words;
}

uint32_t
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        panic("Program::symbol: undefined symbol '%s' (check "
              "hasSymbol first)", name.c_str());
    return it->second;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols.count(name) != 0;
}

} // namespace rissp
