/**
 * @file
 * RVFI-style retirement trace record.
 *
 * The paper verifies the RISSP with riscv-formal through the RISC-V
 * Formal Interface (RVFI): per retired instruction the core reports pc,
 * next pc, register reads/writes and memory accesses. Both simulators
 * here emit the same record so monitors and co-simulation can compare
 * them field by field.
 */

#ifndef RISSP_SIM_TRACE_HH
#define RISSP_SIM_TRACE_HH

#include <cstdint>

#include "isa/instr.hh"

namespace rissp
{

/** One retired instruction, RVFI flavoured. */
struct RetireEvent
{
    uint64_t order = 0;      ///< retirement index
    uint32_t pc = 0;         ///< pc of this instruction
    uint32_t nextPc = 0;     ///< pc after this instruction
    uint32_t raw = 0;        ///< instruction word
    Op op = Op::Invalid;     ///< decoded operation

    uint8_t rs1 = 0;         ///< source 1 index (0 if unused)
    uint8_t rs2 = 0;         ///< source 2 index (0 if unused)
    uint32_t rs1Data = 0;    ///< value read from rs1
    uint32_t rs2Data = 0;    ///< value read from rs2

    uint8_t rd = 0;          ///< destination index (0 if none)
    uint32_t rdData = 0;     ///< value written to rd (0 if rd == x0)

    bool memRead = false;    ///< load performed
    bool memWrite = false;   ///< store performed
    uint32_t memAddr = 0;    ///< effective address
    uint32_t memData = 0;    ///< loaded/stored value (width-extended)
    uint8_t memBytes = 0;    ///< access width in bytes

    bool trap = false;       ///< instruction trapped (invalid/unsupported)
    bool halt = false;       ///< ecall/ebreak halt
};

} // namespace rissp

#endif // RISSP_SIM_TRACE_HH
