/**
 * @file
 * Flat program image produced by the assembler and consumed by the
 * simulators and the subset extractor. Plays the role of the ELF the
 * paper's gcc flow produces, without the container format.
 */

#ifndef RISSP_SIM_PROGRAM_HH
#define RISSP_SIM_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/memory.hh"

namespace rissp
{

/** One loadable segment of a program image. */
struct Segment
{
    uint32_t base = 0;            ///< load address
    std::vector<uint8_t> bytes;   ///< contents
};

/** A contiguous address range, for Memory::reserveSpan. */
struct AddrSpan
{
    uint32_t base = 0;
    uint32_t size = 0;
};

/** An assembled/linked program. */
struct Program
{
    std::vector<Segment> segments;         ///< loadable contents
    uint32_t entry = 0;                    ///< initial pc
    uint32_t textBase = 0;                 ///< start of code
    uint32_t textSize = 0;                 ///< code bytes
    std::map<std::string, uint32_t> symbols; ///< label addresses

    /** Copy all segments into @p mem. */
    void load(Memory &mem) const;

    /**
     * Address span worth backing with a dense arena when simulating
     * this program: the segments, extended up to the crt0 stack top
     * when the image lives below it, capped so a pathological layout
     * cannot demand a huge allocation (size 0 then: pure sparse).
     */
    AddrSpan denseSpan() const;

    /** Total bytes across segments (paper's "codesize" metric uses
     *  textSize; this is the whole image). */
    size_t imageBytes() const;

    /** All instruction words in the text section, in address order. */
    std::vector<uint32_t> textWords() const;

    /** Address of a symbol; the symbol must exist (panic()
     *  otherwise) — check hasSymbol() first when unsure. */
    uint32_t symbol(const std::string &name) const;

    /** True when the symbol table defines @p name. */
    bool hasSymbol(const std::string &name) const;
};

} // namespace rissp

#endif // RISSP_SIM_PROGRAM_HH
