/**
 * @file
 * Reference instruction-set simulator (the repo's Spike analog).
 *
 * A purely functional RV32E model used as the golden reference for
 * architectural signature tests (RISCOF analog) and trace-level
 * co-simulation against the generated RISSP. It is deliberately written
 * independently of the instruction hardware block library so the two
 * implementations can check each other.
 */

#ifndef RISSP_SIM_REFSIM_HH
#define RISSP_SIM_REFSIM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/reg.hh"
#include "sim/decoded_program.hh"
#include "sim/dispatch.hh"
#include "sim/memory.hh"
#include "sim/program.hh"
#include "sim/trace.hh"

namespace rissp
{

/** Memory-mapped output ports shared by all simulators. */
namespace mmio
{
/** Store a word here to append it to the simulator's output stream. */
constexpr uint32_t kPutWord = 0xFFFF0000;
/** Store a byte here to append a character to the output text. */
constexpr uint32_t kPutChar = 0xFFFF0004;
} // namespace mmio

/** Why execution stopped. */
enum class StopReason : uint8_t
{
    Running,       ///< has not stopped
    Halted,        ///< ecall/ebreak, normal termination
    Trapped,       ///< invalid or unsupported instruction, bad access
    StepLimit,     ///< ran out of the per-run step budget
};

/** True when a @p bytes wide access at @p addr would wrap past the
 *  2^32 address-space boundary. Both simulators trap such accesses
 *  (like an access fault) instead of silently wrapping to address 0;
 *  see the Memory header for the contract. */
constexpr bool
accessWraps(uint32_t addr, unsigned bytes)
{
    return bytes > 1 && addr > UINT32_MAX - (bytes - 1);
}

/** Result of a run. */
struct RunResult
{
    StopReason reason = StopReason::Running;
    uint32_t exitCode = 0;   ///< a0 at the halting ecall
    uint64_t instret = 0;    ///< instructions retired
    uint32_t stopPc = 0;     ///< pc at stop
};

/** Options for the simulators' run() entry points. */
struct SimRunOptions
{
    /** Stop after this many instructions (StopReason::StepLimit). */
    uint64_t maxSteps = 100'000'000;

    /** Which interpreter core to drive (sim/dispatch.hh); Auto
     *  resolves via the RISSP_DISPATCH env var, then the build
     *  default, then computed-goto detection. The cores are
     *  bit-identical, so this is purely a performance knob. */
    DispatchMode dispatch = DispatchMode::Auto;

    /** When set, every RetireEvent is appended here (the same RVFI
     *  stream the single-step API produces). */
    std::vector<RetireEvent> *trace = nullptr;
};

/** Functional RV32E golden-model simulator. */
class RefSim
{
  public:
    RefSim();

    /** Reset state and load @p program. */
    void reset(const Program &program);

    /**
     * Execute one instruction.
     * @return the retirement record, with trap/halt flags set when the
     *         instruction stopped the machine.
     */
    RetireEvent step();

    /** Run until halt/trap or @p maxSteps instructions. */
    RunResult run(uint64_t maxSteps = 100'000'000);

    /** Run with explicit dispatch/trace options. All dispatch modes
     *  retire the identical RVFI stream; step() remains the
     *  independent golden statement of the semantics. */
    RunResult run(const SimRunOptions &options);

    uint32_t pc() const { return pcReg; }
    void setPc(uint32_t value) { pcReg = value; }

    uint32_t reg(unsigned idx) const { return regs.at(idx); }
    void setReg(unsigned idx, uint32_t value);

    /** Direct memory access. Writing into the text span through this
     *  handle bypasses the decoded-instruction cache; call reset()
     *  again before executing such a change (icache semantics). */
    Memory &memory() { return mem; }
    const Memory &memory() const { return mem; }

    bool halted() const { return stopped == StopReason::Halted; }
    StopReason stopReason() const { return stopped; }
    uint64_t instret() const { return retired; }

    /** Words written to mmio::kPutWord since reset. */
    const std::vector<uint32_t> &outputWords() const { return outWords; }

    /** Characters written to mmio::kPutChar since reset. */
    const std::string &outputText() const { return outText; }

  private:
    // Interpreter cores over the pre-decoded text span, stamped out
    // from sim/exec_core.inc (one statement of the semantics, two
    // dispatch mechanisms).
    template <bool kTrace>
    RunResult runCoreSwitch(uint64_t maxSteps,
                            std::vector<RetireEvent> *traceOut);
    template <bool kTrace>
    RunResult runCoreThreaded(uint64_t maxSteps,
                              std::vector<RetireEvent> *traceOut);

    // exec_core.inc hooks: the reference executes every valid op,
    // counts nothing, and falls back to step() off-span.
    static bool coreTokenEnabled(uint8_t tok)
    {
        return tok < kNumOps;
    }
    static void coreNoteExec(uint8_t) {}
    RetireEvent coreSlowStep() { return step(); }

    uint32_t pcReg = 0;
    std::array<uint32_t, kNumRegsE> regs{};
    Memory mem;
    DecodedProgram dec;
    StopReason stopped = StopReason::Running;
    uint64_t retired = 0;
    std::vector<uint32_t> outWords;
    std::string outText;
};

} // namespace rissp

#endif // RISSP_SIM_REFSIM_HH
