#include "sim/dispatch.hh"

#include <cstdlib>

#include "util/logging.hh"

// The build default injected by CMake's RISSP_DISPATCH cache option:
// 0 = auto, 1 = switch, 2 = threaded (see CMakeLists.txt).
#ifndef RISSP_DISPATCH_DEFAULT
#define RISSP_DISPATCH_DEFAULT 0
#endif

namespace rissp
{

std::string_view
dispatchModeName(DispatchMode mode)
{
    switch (mode) {
      case DispatchMode::Auto: return "auto";
      case DispatchMode::Switch: return "switch";
      case DispatchMode::Threaded: return "threaded";
    }
    return "auto";
}

std::optional<DispatchMode>
dispatchModeFromName(std::string_view name)
{
    if (name == "auto")
        return DispatchMode::Auto;
    if (name == "switch")
        return DispatchMode::Switch;
    if (name == "threaded")
        return DispatchMode::Threaded;
    return std::nullopt;
}

namespace
{

/** Env var / build default, collapsed to a non-Auto preference or
 *  Auto when neither expresses one. */
DispatchMode
configuredDefault()
{
    if (const char *env = std::getenv("RISSP_DISPATCH")) {
        const std::optional<DispatchMode> mode =
            dispatchModeFromName(env);
        if (mode)
            return *mode;
        // Magic-static init: exactly one warning, thread-safe.
        static const bool warned = [env] {
            warn("RISSP_DISPATCH='%s' is not auto/switch/threaded; "
                 "using auto",
                 env);
            return true;
        }();
        (void)warned;
        return DispatchMode::Auto;
    }
    return static_cast<DispatchMode>(RISSP_DISPATCH_DEFAULT);
}

} // namespace

DispatchMode
resolveDispatchMode(DispatchMode requested)
{
    DispatchMode mode = requested;
    if (mode == DispatchMode::Auto)
        mode = configuredDefault();
    if (mode == DispatchMode::Auto)
        mode = threadedDispatchSupported() ? DispatchMode::Threaded
                                           : DispatchMode::Switch;
    if (mode == DispatchMode::Threaded && !threadedDispatchSupported())
        mode = DispatchMode::Switch;
    return mode;
}

} // namespace rissp
