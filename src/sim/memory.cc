#include "sim/memory.hh"

namespace rissp
{

const Memory::Page *
Memory::findPage(uint32_t addr) const
{
    auto it = pages.find(addr / kPageBytes);
    return it == pages.end() ? nullptr : it->second.get();
}

Memory::Page &
Memory::touchPage(uint32_t addr)
{
    auto &slot = pages[addr / kPageBytes];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

uint8_t
Memory::loadByte(uint32_t addr) const
{
    const Page *page = findPage(addr);
    return page ? (*page)[addr % kPageBytes] : 0;
}

uint16_t
Memory::loadHalf(uint32_t addr) const
{
    return static_cast<uint16_t>(loadByte(addr)) |
        (static_cast<uint16_t>(loadByte(addr + 1)) << 8);
}

uint32_t
Memory::loadWord(uint32_t addr) const
{
    return static_cast<uint32_t>(loadHalf(addr)) |
        (static_cast<uint32_t>(loadHalf(addr + 2)) << 16);
}

void
Memory::storeByte(uint32_t addr, uint8_t value)
{
    touchPage(addr)[addr % kPageBytes] = value;
}

void
Memory::storeHalf(uint32_t addr, uint16_t value)
{
    storeByte(addr, static_cast<uint8_t>(value));
    storeByte(addr + 1, static_cast<uint8_t>(value >> 8));
}

void
Memory::storeWord(uint32_t addr, uint32_t value)
{
    storeHalf(addr, static_cast<uint16_t>(value));
    storeHalf(addr + 2, static_cast<uint16_t>(value >> 16));
}

void
Memory::storeBlock(uint32_t addr, const uint8_t *data, size_t len)
{
    for (size_t i = 0; i < len; ++i)
        storeByte(addr + static_cast<uint32_t>(i), data[i]);
}

std::vector<uint8_t>
Memory::loadBlock(uint32_t addr, size_t len) const
{
    std::vector<uint8_t> out(len);
    for (size_t i = 0; i < len; ++i)
        out[i] = loadByte(addr + static_cast<uint32_t>(i));
    return out;
}

} // namespace rissp
