#include "sim/memory.hh"

#include <cstring>

namespace rissp
{

const Memory::Page *
Memory::findPage(uint32_t addr) const
{
    auto it = pages.find(addr / kPageBytes);
    return it == pages.end() ? nullptr : it->second.get();
}

Memory::Page &
Memory::touchPage(uint32_t addr)
{
    auto &slot = pages[addr / kPageBytes];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

uint8_t
Memory::loadByteSparse(uint32_t addr) const
{
    const Page *page = findPage(addr);
    return page ? (*page)[addr % kPageBytes] : 0;
}

void
Memory::storeByteSparse(uint32_t addr, uint8_t value)
{
    touchPage(addr)[addr % kPageBytes] = value;
}

void
Memory::reserveSpan(uint32_t base, uint32_t size)
{
    denseBase = base;
    dense.assign(size, 0);
    if (size == 0)
        return;
    // Migrate bytes already stored in the span through the page map.
    // Pages swallowed whole by the arena are dropped — in-span reads
    // always hit the arena, so keeping them would only shadow stale
    // duplicates; partially-covered edge pages keep their
    // out-of-span bytes.
    const uint64_t end = static_cast<uint64_t>(base) + size;
    for (auto it = pages.begin(); it != pages.end();) {
        const uint64_t page_base =
            static_cast<uint64_t>(it->first) * kPageBytes;
        const uint64_t lo = page_base > base ? page_base : base;
        const uint64_t hi = page_base + kPageBytes < end
            ? page_base + kPageBytes : end;
        if (lo >= hi) {
            ++it;
            continue;
        }
        std::memcpy(dense.data() + (lo - base),
                    it->second->data() + (lo - page_base), hi - lo);
        if (lo == page_base && hi == page_base + kPageBytes)
            it = pages.erase(it);
        else
            ++it;
    }
}

void
Memory::storeBlock(uint32_t addr, const uint8_t *data, size_t len)
{
    const uint32_t off = addr - denseBase;
    if (off < dense.size() && dense.size() - off >= len) {
        std::memcpy(dense.data() + off, data, len);
        return;
    }
    for (size_t i = 0; i < len; ++i)
        storeByte(addr + static_cast<uint32_t>(i), data[i]);
}

std::vector<uint8_t>
Memory::loadBlock(uint32_t addr, size_t len) const
{
    std::vector<uint8_t> out(len);
    const uint32_t off = addr - denseBase;
    if (off < dense.size() && dense.size() - off >= len) {
        std::memcpy(out.data(), dense.data() + off, len);
        return out;
    }
    for (size_t i = 0; i < len; ++i)
        out[i] = loadByte(addr + static_cast<uint32_t>(i));
    return out;
}

} // namespace rissp
