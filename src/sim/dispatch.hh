/**
 * @file
 * Dispatch-mode selection for the simulator interpreter cores.
 *
 * Both simulators carry two semantically identical interpreter cores
 * over the pre-decoded text span (sim/exec_core.inc): a portable
 * `switch` core and, on compilers with the GNU labels-as-values
 * extension, a computed-goto threaded core. Which one a run() uses is
 * resolved here, in priority order:
 *
 *   1. the mode requested explicitly in the run options;
 *   2. the RISSP_DISPATCH environment variable
 *      ("auto" | "switch" | "threaded");
 *   3. the build default (-DRISSP_DISPATCH= CMake cache option);
 *   4. Auto: threaded when the compiler supports computed goto,
 *      switch otherwise.
 *
 * Requesting Threaded on a toolchain without computed goto degrades
 * to Switch (the cores are bit-identical, so this is a pure
 * performance decision); an unrecognized environment value warns
 * once and is treated as Auto.
 */

#ifndef RISSP_SIM_DISPATCH_HH
#define RISSP_SIM_DISPATCH_HH

#include <cstdint>
#include <optional>
#include <string_view>

#include "sim/trace.hh"

/** 1 when the GNU labels-as-values extension is available and the
 *  threaded interpreter cores are compiled in. */
#if defined(__GNUC__) || defined(__clang__)
#define RISSP_HAS_COMPUTED_GOTO 1
#else
#define RISSP_HAS_COMPUTED_GOTO 0
#endif

namespace rissp
{

/** Which interpreter core run() drives. */
enum class DispatchMode : uint8_t
{
    Auto,     ///< resolve via env var, build default, then detection
    Switch,   ///< portable dense-switch core
    Threaded, ///< computed-goto threaded core (GNU extension)
};

/** True when the threaded cores are compiled into this binary. */
constexpr bool
threadedDispatchSupported()
{
    return RISSP_HAS_COMPUTED_GOTO != 0;
}

/** Canonical lower-case name ("auto", "switch", "threaded"). */
std::string_view dispatchModeName(DispatchMode mode);

/** Parse a mode name; empty optional for anything unrecognized. */
std::optional<DispatchMode> dispatchModeFromName(std::string_view name);

/**
 * Collapse @p requested to the concrete core to run (never Auto):
 * explicit requests win, then the RISSP_DISPATCH environment
 * variable, then the build default, then support detection.
 */
DispatchMode resolveDispatchMode(DispatchMode requested);

namespace sim_detail
{

/** Per-instruction retirement-record storage for the interpreter
 *  cores: a real RetireEvent in traced instantiations, empty (and
 *  thus free) in untraced ones. */
template <bool kTrace>
struct TraceSlot
{
    RetireEvent ev;
};

template <>
struct TraceSlot<false>
{
};

} // namespace sim_detail

} // namespace rissp

#endif // RISSP_SIM_DISPATCH_HH
