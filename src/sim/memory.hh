/**
 * @file
 * Byte-addressable memory shared by the simulators.
 *
 * Little-endian. Two backing stores compose:
 *
 *  - an optional dense arena covering one contiguous span (the
 *    program image plus stack, reserved by the simulators at reset) —
 *    loads and stores inside it are direct array accesses, with
 *    single-instruction word/half fast paths;
 *  - a sparse map of 4 KiB pages allocated on first touch, the
 *    fallback for anything outside the span.
 *
 * Unwritten locations read as zero, matching an idealized
 * zero-initialized SRAM. Multi-byte accessors address each byte at
 * `addr + i` with 32-bit wrap-around; the simulators trap wrapping
 * data accesses before issuing them (see RefSim/Rissp), so the wrap
 * case is never exercised from simulated code.
 */

#ifndef RISSP_SIM_MEMORY_HH
#define RISSP_SIM_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace rissp
{

/** Dense-span + sparse-page little-endian memory. */
class Memory
{
  public:
    static constexpr uint32_t kPageBytes = 4096;

    uint8_t loadByte(uint32_t addr) const
    {
        const uint32_t off = addr - denseBase;
        if (off < dense.size())
            return dense[off];
        return loadByteSparse(addr);
    }

    uint16_t loadHalf(uint32_t addr) const
    {
        const uint32_t off = addr - denseBase;
        if (off < dense.size() && dense.size() - off >= 2) {
            const uint8_t *p = dense.data() + off;
            return static_cast<uint16_t>(p[0] |
                                         (uint32_t{p[1]} << 8));
        }
        return static_cast<uint16_t>(loadByte(addr)) |
            static_cast<uint16_t>(loadByte(addr + 1) << 8);
    }

    uint32_t loadWord(uint32_t addr) const
    {
        const uint32_t off = addr - denseBase;
        if (off < dense.size() && dense.size() - off >= 4) {
            const uint8_t *p = dense.data() + off;
            return p[0] | (uint32_t{p[1]} << 8) |
                (uint32_t{p[2]} << 16) | (uint32_t{p[3]} << 24);
        }
        return static_cast<uint32_t>(loadHalf(addr)) |
            (static_cast<uint32_t>(loadHalf(addr + 2)) << 16);
    }

    void storeByte(uint32_t addr, uint8_t value)
    {
        const uint32_t off = addr - denseBase;
        if (off < dense.size()) {
            dense[off] = value;
            return;
        }
        storeByteSparse(addr, value);
    }

    void storeHalf(uint32_t addr, uint16_t value)
    {
        const uint32_t off = addr - denseBase;
        if (off < dense.size() && dense.size() - off >= 2) {
            dense[off] = static_cast<uint8_t>(value);
            dense[off + 1] = static_cast<uint8_t>(value >> 8);
            return;
        }
        storeByte(addr, static_cast<uint8_t>(value));
        storeByte(addr + 1, static_cast<uint8_t>(value >> 8));
    }

    void storeWord(uint32_t addr, uint32_t value)
    {
        const uint32_t off = addr - denseBase;
        if (off < dense.size() && dense.size() - off >= 4) {
            dense[off] = static_cast<uint8_t>(value);
            dense[off + 1] = static_cast<uint8_t>(value >> 8);
            dense[off + 2] = static_cast<uint8_t>(value >> 16);
            dense[off + 3] = static_cast<uint8_t>(value >> 24);
            return;
        }
        storeHalf(addr, static_cast<uint16_t>(value));
        storeHalf(addr + 2, static_cast<uint16_t>(value >> 16));
    }

    /** Copy a block of bytes into memory. */
    void storeBlock(uint32_t addr, const uint8_t *data, size_t len);

    /** Copy a block of bytes out of memory. */
    std::vector<uint8_t> loadBlock(uint32_t addr, size_t len) const;

    /**
     * Back [base, base+size) with a zero-initialized dense arena.
     * Bytes already stored in the span through the page map are
     * migrated, so reserving over a populated memory is safe. Only
     * one span exists at a time; reserving replaces the previous one
     * (its contents are dropped — callers reserve right after
     * clear()).
     */
    void reserveSpan(uint32_t base, uint32_t size);

    /** Drop all pages and the dense span. */
    void clear()
    {
        pages.clear();
        dense.clear();
        denseBase = 0;
    }

    /** Number of touched pages (for tests; the dense span is not a
     *  page). */
    size_t touchedPages() const { return pages.size(); }

    /** Dense span geometry (for tests). */
    uint32_t spanBase() const { return denseBase; }
    size_t spanSize() const { return dense.size(); }

  private:
    using Page = std::array<uint8_t, kPageBytes>;

    uint8_t loadByteSparse(uint32_t addr) const;
    void storeByteSparse(uint32_t addr, uint8_t value);

    const Page *findPage(uint32_t addr) const;
    Page &touchPage(uint32_t addr);

    uint32_t denseBase = 0;
    std::vector<uint8_t> dense;
    std::unordered_map<uint32_t, std::unique_ptr<Page>> pages;
};

} // namespace rissp

#endif // RISSP_SIM_MEMORY_HH
