/**
 * @file
 * Byte-addressable sparse memory shared by the simulators.
 *
 * Little-endian, allocated in 4 KiB pages on first touch. Unwritten
 * locations read as zero, matching an idealized zero-initialized SRAM.
 */

#ifndef RISSP_SIM_MEMORY_HH
#define RISSP_SIM_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace rissp
{

/** Sparse little-endian memory. */
class Memory
{
  public:
    static constexpr uint32_t kPageBytes = 4096;

    uint8_t loadByte(uint32_t addr) const;
    uint16_t loadHalf(uint32_t addr) const;
    uint32_t loadWord(uint32_t addr) const;

    void storeByte(uint32_t addr, uint8_t value);
    void storeHalf(uint32_t addr, uint16_t value);
    void storeWord(uint32_t addr, uint32_t value);

    /** Copy a block of bytes into memory. */
    void storeBlock(uint32_t addr, const uint8_t *data, size_t len);

    /** Copy a block of bytes out of memory. */
    std::vector<uint8_t> loadBlock(uint32_t addr, size_t len) const;

    /** Drop all pages. */
    void clear() { pages.clear(); }

    /** Number of touched pages (for tests). */
    size_t touchedPages() const { return pages.size(); }

  private:
    using Page = std::array<uint8_t, kPageBytes>;

    const Page *findPage(uint32_t addr) const;
    Page &touchPage(uint32_t addr);

    std::unordered_map<uint32_t, std::unique_ptr<Page>> pages;
};

} // namespace rissp

#endif // RISSP_SIM_MEMORY_HH
