#include "sim/refsim.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace rissp
{

RefSim::RefSim()
{
    regs.fill(0);
}

void
RefSim::reset(const Program &program)
{
    pcReg = program.entry;
    regs.fill(0);
    mem.clear();
    const AddrSpan span = program.denseSpan();
    mem.reserveSpan(span.base, span.size);
    program.load(mem);
    dec.build(program, mem);
    stopped = StopReason::Running;
    retired = 0;
    outWords.clear();
    outText.clear();
}

void
RefSim::setReg(unsigned idx, uint32_t value)
{
    if (idx >= kNumRegsE)
        panic("setReg(%u): out of range", idx);
    if (idx != 0)
        regs[idx] = value;
}

RetireEvent
RefSim::step()
{
    RetireEvent ev;
    ev.order = retired;
    ev.pc = pcReg;

    // Fetch: pre-decoded text words by index; decode-on-fetch only
    // for pcs outside the cached span (or after self-modification,
    // which re-decodes in place — see DecodedProgram).
    const Instr *fetched = dec.fetch(pcReg);
    Instr slow;
    if (!fetched) {
        if (accessWraps(pcReg, 4)) {
            ev.trap = true;
            stopped = StopReason::Trapped;
            return ev;
        }
        slow = decode(mem.loadWord(pcReg));
        fetched = &slow;
    }
    const Instr &in = *fetched;
    ev.raw = in.raw;
    ev.op = in.op;

    if (!in.valid()) {
        ev.trap = true;
        stopped = StopReason::Trapped;
        return ev;
    }

    const uint32_t rs1 = readsRs1(in.op) ? regs[in.rs1] : 0;
    const uint32_t rs2 = readsRs2(in.op) ? regs[in.rs2] : 0;
    if (readsRs1(in.op)) { ev.rs1 = in.rs1; ev.rs1Data = rs1; }
    if (readsRs2(in.op)) { ev.rs2 = in.rs2; ev.rs2Data = rs2; }

    uint32_t next_pc = pcReg + 4;
    uint32_t rd_val = 0;
    bool write_rd = writesRd(in.op);
    const uint32_t imm = static_cast<uint32_t>(in.imm);

    switch (in.op) {
      case Op::Add: rd_val = rs1 + rs2; break;
      case Op::Sub: rd_val = rs1 - rs2; break;
      case Op::Sll: rd_val = rs1 << (rs2 & 31); break;
      case Op::Slt:
        rd_val = asSigned(rs1) < asSigned(rs2) ? 1 : 0;
        break;
      case Op::Sltu: rd_val = rs1 < rs2 ? 1 : 0; break;
      case Op::Xor: rd_val = rs1 ^ rs2; break;
      case Op::Srl: rd_val = rs1 >> (rs2 & 31); break;
      case Op::Sra:
        rd_val = asUnsigned(asSigned(rs1) >> (rs2 & 31));
        break;
      case Op::Or: rd_val = rs1 | rs2; break;
      case Op::And: rd_val = rs1 & rs2; break;
      case Op::Cmul: rd_val = rs1 * rs2; break;

      case Op::Addi: rd_val = rs1 + imm; break;
      case Op::Slti:
        rd_val = asSigned(rs1) < in.imm ? 1 : 0;
        break;
      case Op::Sltiu: rd_val = rs1 < imm ? 1 : 0; break;
      case Op::Xori: rd_val = rs1 ^ imm; break;
      case Op::Ori: rd_val = rs1 | imm; break;
      case Op::Andi: rd_val = rs1 & imm; break;
      case Op::Slli: rd_val = rs1 << (imm & 31); break;
      case Op::Srli: rd_val = rs1 >> (imm & 31); break;
      case Op::Srai:
        rd_val = asUnsigned(asSigned(rs1) >> (imm & 31));
        break;

      case Op::Lb:
      case Op::Lh:
      case Op::Lw:
      case Op::Lbu:
      case Op::Lhu: {
        const uint32_t addr = rs1 + imm;
        ev.memRead = true;
        ev.memAddr = addr;
        ev.memBytes = in.op == Op::Lw ? 4
            : (in.op == Op::Lh || in.op == Op::Lhu) ? 2 : 1;
        if (accessWraps(addr, ev.memBytes)) {
            ev.trap = true;
            stopped = StopReason::Trapped;
            return ev;
        }
        switch (in.op) {
          case Op::Lb:
            rd_val = asUnsigned(sext(mem.loadByte(addr), 8));
            break;
          case Op::Lbu:
            rd_val = mem.loadByte(addr);
            break;
          case Op::Lh:
            rd_val = asUnsigned(sext(mem.loadHalf(addr), 16));
            break;
          case Op::Lhu:
            rd_val = mem.loadHalf(addr);
            break;
          default:
            rd_val = mem.loadWord(addr);
            break;
        }
        ev.memData = rd_val;
        break;
      }

      case Op::Sb:
      case Op::Sh:
      case Op::Sw: {
        const uint32_t addr = rs1 + imm;
        ev.memWrite = true;
        ev.memAddr = addr;
        ev.memData = rs2;
        ev.memBytes = in.op == Op::Sb ? 1 : in.op == Op::Sh ? 2 : 4;
        if (accessWraps(addr, ev.memBytes)) {
            ev.trap = true;
            stopped = StopReason::Trapped;
            return ev;
        }
        if (addr == mmio::kPutWord && in.op == Op::Sw) {
            outWords.push_back(rs2);
        } else if (addr == mmio::kPutChar) {
            outText.push_back(static_cast<char>(rs2 & 0xFF));
        } else {
            switch (in.op) {
              case Op::Sb:
                mem.storeByte(addr, static_cast<uint8_t>(rs2));
                break;
              case Op::Sh:
                mem.storeHalf(addr, static_cast<uint16_t>(rs2));
                break;
              default:
                mem.storeWord(addr, rs2);
                break;
            }
            if (dec.overlaps(addr, ev.memBytes))
                dec.invalidate(mem, addr, ev.memBytes);
        }
        break;
      }

      case Op::Beq: if (rs1 == rs2) next_pc = pcReg + imm; break;
      case Op::Bne: if (rs1 != rs2) next_pc = pcReg + imm; break;
      case Op::Blt:
        if (asSigned(rs1) < asSigned(rs2)) next_pc = pcReg + imm;
        break;
      case Op::Bge:
        if (asSigned(rs1) >= asSigned(rs2)) next_pc = pcReg + imm;
        break;
      case Op::Bltu: if (rs1 < rs2) next_pc = pcReg + imm; break;
      case Op::Bgeu: if (rs1 >= rs2) next_pc = pcReg + imm; break;

      case Op::Lui: rd_val = imm; break;
      case Op::Auipc: rd_val = pcReg + imm; break;

      case Op::Jal:
        rd_val = pcReg + 4;
        next_pc = pcReg + imm;
        break;
      case Op::Jalr:
        rd_val = pcReg + 4;
        next_pc = (rs1 + imm) & ~1u;
        break;

      case Op::Ecall:
      case Op::Ebreak:
        ev.halt = true;
        stopped = StopReason::Halted;
        break;

      case Op::Invalid:
        panic("unreachable: invalid op past decode check");
    }

    if (write_rd && in.rd != 0) {
        regs[in.rd] = rd_val;
        ev.rd = in.rd;
        ev.rdData = rd_val;
    } else if (write_rd) {
        ev.rd = 0;
        ev.rdData = 0;
    }

    if (!ev.halt)
        pcReg = next_pc;
    ev.nextPc = pcReg;
    ++retired;
    return ev;
}

// Stamp out the interpreter cores (see the header in exec_core.inc):
// one statement of the semantics, two dispatch mechanisms.
#define RISSP_CORE_CLASS RefSim
#define RISSP_CORE_NAME runCoreSwitch
#define RISSP_CORE_THREADED 0
#include "sim/exec_core.inc"
#undef RISSP_CORE_NAME
#undef RISSP_CORE_THREADED

#if RISSP_HAS_COMPUTED_GOTO
#define RISSP_CORE_NAME runCoreThreaded
#define RISSP_CORE_THREADED 1
#include "sim/exec_core.inc"
#undef RISSP_CORE_NAME
#undef RISSP_CORE_THREADED
#endif
#undef RISSP_CORE_CLASS

RunResult
RefSim::run(uint64_t maxSteps)
{
    SimRunOptions options;
    options.maxSteps = maxSteps;
    return run(options);
}

RunResult
RefSim::run(const SimRunOptions &options)
{
    const DispatchMode mode = resolveDispatchMode(options.dispatch);
#if RISSP_HAS_COMPUTED_GOTO
    if (mode == DispatchMode::Threaded)
        return options.trace
            ? runCoreThreaded<true>(options.maxSteps, options.trace)
            : runCoreThreaded<false>(options.maxSteps, nullptr);
#else
    (void)mode;
#endif
    return options.trace
        ? runCoreSwitch<true>(options.maxSteps, options.trace)
        : runCoreSwitch<false>(options.maxSteps, nullptr);
}

} // namespace rissp
