/**
 * @file
 * Pre-decoded instruction cache shared by the simulators.
 *
 * Both RefSim and Rissp used to re-decode every instruction word on
 * every fetch, behind four hash-map page lookups. A DecodedProgram
 * decodes each text word exactly once at reset and serves fetches as a
 * single bounds-checked array index. Stores into the text span
 * invalidate (re-decode) the overlapped words, so self-modifying code
 * still observes its own writes; fetches outside the cached span fall
 * back to decode-on-fetch in the caller.
 *
 * For the interpreter cores (sim/exec_core.inc) the cache also keeps
 * two side arrays, maintained in lock-step with the decoded words:
 *
 *  - a handler token per word — the Op as a small integer, with
 *    invalid encodings mapped to the trap token — which is what the
 *    threaded core indexes its label table with;
 *  - a superblock run length per word: how many instructions starting
 *    there execute strictly straight-line (no branch/jump/halt/
 *    invalid) before a control transfer can occur. The cores use it
 *    to retire whole runs between budget/pc rechecks. Stores into the
 *    text span repair both arrays together with the decoded words,
 *    including the backward run-length ripple into preceding
 *    straight-line code, so a patch that extends or splits a
 *    superblock is visible before the next dispatch.
 *
 * Coherence contract: the cache only sees stores issued through the
 * owning simulator's store path. Writing into the text span directly
 * via Memory (e.g. `sim.memory().storeWord(...)`) requires a fresh
 * `reset()` before the change is fetched, exactly like an icache
 * without hardware coherence.
 */

#ifndef RISSP_SIM_DECODED_PROGRAM_HH
#define RISSP_SIM_DECODED_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "isa/instr.hh"
#include "sim/memory.hh"
#include "sim/program.hh"

namespace rissp
{

/** One-time decode of a program's text span, with invalidation. */
class DecodedProgram
{
  public:
    /**
     * Decode the text span of @p program from @p mem (which must
     * already hold the loaded image, so that later re-decodes and the
     * initial decode read the same bytes).
     */
    void build(const Program &program, const Memory &mem);

    /** Drop the cache (fetch() returns nullptr until rebuilt). */
    void clear();

    /**
     * Decoded instruction at @p pc, or nullptr when @p pc is outside
     * the cached span or not word-aligned — the caller then falls
     * back to decode-on-fetch.
     */
    const Instr *fetch(uint32_t pc) const
    {
        const uint32_t off = pc - textBase;
        if (off >= textSize || (off & 3))
            return nullptr;
        return &instrs[off >> 2];
    }

    /** True when a @p len byte store at @p addr touches the span. */
    bool overlaps(uint32_t addr, uint32_t len) const
    {
        return static_cast<uint64_t>(addr) + len > textBase &&
            addr < textBase + textSize;
    }

    /**
     * Re-decode every text word overlapped by a @p len byte store at
     * @p addr, reading the just-stored bytes back from @p mem. Call
     * after the store has been committed to @p mem.
     */
    void invalidate(const Memory &mem, uint32_t addr, uint32_t len);

    uint32_t base() const { return textBase; }
    uint32_t size() const { return textSize; }

    /** Handler token for text word @p idx: `(uint8_t)Op`, with
     *  `(uint8_t)Op::Invalid` (== kNumOps) as the trap token. */
    static constexpr uint8_t kTrapToken =
        static_cast<uint8_t>(Op::Invalid);

    /** Decoded instructions by word index (textSize / 4 entries). */
    const Instr *instrData() const { return instrs.data(); }

    /** Handler tokens by word index, parallel to instrData(). */
    const uint8_t *tokenData() const { return toks.data(); }

    /** Superblock run lengths by word index (always >= 1), parallel
     *  to instrData(); saturates at 0xFFFF. */
    const uint16_t *runLenData() const { return runs.data(); }

  private:
    /** Recompute runs[first, last) and ripple the change into the
     *  straight-line words before @p first. */
    void recomputeRuns(uint32_t first, uint32_t last);

    uint32_t textBase = 0;
    uint32_t textSize = 0;         ///< bytes; always a multiple of 4
    std::vector<Instr> instrs;     ///< one per text word
    std::vector<uint8_t> toks;     ///< handler token per text word
    std::vector<uint16_t> runs;    ///< superblock run length per word
};

} // namespace rissp

#endif // RISSP_SIM_DECODED_PROGRAM_HH
