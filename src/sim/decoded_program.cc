#include "sim/decoded_program.hh"

namespace rissp
{

namespace
{

/** Straight-line runs never extend past a control transfer, a halt
 *  or an invalid word: those always send the cores back to the
 *  dispatch loop head. */
bool
endsRun(Op op)
{
    return op == Op::Invalid || isBranch(op) || isJump(op) ||
        op == Op::Ecall || op == Op::Ebreak;
}

/** Run length of a word given its op and the run length after it. */
uint16_t
runFrom(Op op, uint16_t next)
{
    if (endsRun(op))
        return 1;
    return next == UINT16_MAX ? UINT16_MAX
                              : static_cast<uint16_t>(next + 1);
}

} // namespace

void
DecodedProgram::build(const Program &program, const Memory &mem)
{
    textBase = program.textBase;
    textSize = program.textSize & ~3u;
    const uint32_t words = textSize / 4;
    instrs.clear();
    instrs.reserve(words);
    toks.clear();
    toks.reserve(words);
    for (uint32_t off = 0; off < textSize; off += 4) {
        instrs.push_back(decode(mem.loadWord(textBase + off)));
        toks.push_back(static_cast<uint8_t>(instrs.back().op));
    }
    runs.assign(words, 1);
    recomputeRuns(0, words);
}

void
DecodedProgram::clear()
{
    textBase = 0;
    textSize = 0;
    instrs.clear();
    toks.clear();
    runs.clear();
}

void
DecodedProgram::invalidate(const Memory &mem, uint32_t addr,
                           uint32_t len)
{
    if (!overlaps(addr, len))
        return;
    const uint64_t end = static_cast<uint64_t>(addr) + len;
    const uint32_t first =
        addr <= textBase ? 0u : (addr - textBase) / 4;
    const uint64_t limit = textBase + static_cast<uint64_t>(textSize);
    const uint32_t last = static_cast<uint32_t>(
        ((end < limit ? end : limit) - textBase + 3) / 4);
    for (uint32_t w = first; w < last; ++w) {
        instrs[w] = decode(mem.loadWord(textBase + w * 4));
        toks[w] = static_cast<uint8_t>(instrs[w].op);
    }
    recomputeRuns(first, last);
}

void
DecodedProgram::recomputeRuns(uint32_t first, uint32_t last)
{
    const uint32_t words = static_cast<uint32_t>(runs.size());
    for (uint32_t w = last; w-- > first;)
        runs[w] = runFrom(instrs[w].op,
                          w + 1 < words ? runs[w + 1] : 0);
    // Ripple backwards: a rewritten word can lengthen or shorten the
    // runs of every straight-line word leading into it. Stop at the
    // first unchanged value (everything before it chains off it) or
    // at a run-ending op (its run length is always 1).
    for (uint32_t w = first; w-- > 0;) {
        const uint16_t run = runFrom(instrs[w].op, runs[w + 1]);
        if (run == runs[w])
            break;
        runs[w] = run;
    }
}

} // namespace rissp
