#include "sim/decoded_program.hh"

namespace rissp
{

void
DecodedProgram::build(const Program &program, const Memory &mem)
{
    textBase = program.textBase;
    textSize = program.textSize & ~3u;
    instrs.clear();
    instrs.reserve(textSize / 4);
    for (uint32_t off = 0; off < textSize; off += 4)
        instrs.push_back(decode(mem.loadWord(textBase + off)));
}

void
DecodedProgram::clear()
{
    textBase = 0;
    textSize = 0;
    instrs.clear();
}

void
DecodedProgram::invalidate(const Memory &mem, uint32_t addr,
                           uint32_t len)
{
    if (!overlaps(addr, len))
        return;
    const uint64_t end = static_cast<uint64_t>(addr) + len;
    const uint32_t first =
        addr <= textBase ? 0u : (addr - textBase) / 4;
    const uint64_t limit = textBase + static_cast<uint64_t>(textSize);
    const uint32_t last = static_cast<uint32_t>(
        ((end < limit ? end : limit) - textBase + 3) / 4);
    for (uint32_t w = first; w < last; ++w)
        instrs[w] = decode(mem.loadWord(textBase + w * 4));
}

} // namespace rissp
