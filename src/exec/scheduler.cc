/**
 * @file
 * Scheduler implementation: one mutex-guarded task store with
 * per-worker deques (LIFO own pop, FIFO steal), lazy worker start,
 * dependency counting, failure/cancellation propagation, and a
 * deterministic inline path for single-threaded graph runs.
 *
 * Stages are heavyweight (a compile, a cosimulated workload run, a
 * 117-point synthesis sweep), so one coarse mutex around the graph
 * state is deliberately chosen over lock-free deques: transitions are
 * microseconds apart, and a single lock keeps every state machine —
 * completion, propagation, cancellation, group accounting — trivially
 * race-free under ThreadSanitizer. `bench_micro`'s `sched_overhead`
 * row keeps the dispatch cost honest.
 */

#include "exec/scheduler.hh"

#include <queue>

#include "util/logging.hh"

namespace rissp::exec
{

TaskId
TaskGraph::add(TaskFn fn, const std::vector<TaskId> &deps,
               std::string label)
{
    const TaskId id = static_cast<TaskId>(nodes.size());
    for (TaskId dep : deps) {
        if (dep >= id)
            panic("TaskGraph::add: node %u depends on %u, which is "
                  "not in the graph yet (graphs are acyclic by "
                  "construction)",
                  id, dep);
    }
    Node node;
    node.fn = std::move(fn);
    node.label = std::move(label);
    node.deps = deps;
    nodes.push_back(std::move(node));
    return id;
}

/** One dynamically tracked task (graph nodes get one each too). */
struct Scheduler::Handle::Task
{
    enum class State : uint8_t
    {
        Blocked, ///< has unfinished dependencies
        Ready,   ///< queued on some worker deque
        Running, ///< fn executing on a worker
        Done,    ///< completed cleanly
        Failed,  ///< threw, was cancelled, or a dependency failed
    };

    TaskFn fn;
    std::string label;
    State state = State::Blocked;
    uint32_t pendingDeps = 0;
    std::vector<std::shared_ptr<Task>> dependents;
    std::exception_ptr error; ///< set when state == Failed
    std::promise<void> promise;
    std::shared_future<void> future;
    Group *group = nullptr; ///< owning runToCompletion call, if any
    TaskId node = 0;        ///< id within the group's graph
};

struct Scheduler::Group
{
    size_t pending = 0;
    TaskId firstFailedNode = ~TaskId{0};
    std::exception_ptr firstFailure;
};

namespace
{
using State = Scheduler::Handle::Task::State;
} // namespace

void
Scheduler::Handle::wait() const
{
    if (!task)
        panic("Scheduler::Handle::wait on an empty handle");
    task->future.get();
}

Scheduler::Scheduler(unsigned threads)
    : numThreads(threads)
{
    if (numThreads == 0) {
        numThreads = std::thread::hardware_concurrency();
        if (numThreads == 0)
            numThreads = 1;
    }
}

Scheduler::~Scheduler()
{
    {
        LockGuard lock(mu);
        stopping = true;
    }
    workCv.notify_all();
    // Joining outside the lock on purpose: a worker must reacquire
    // `mu` to observe `stopping` and exit its loop. `workers` is
    // stable here — it is only ever grown under `mu`, and nothing
    // submits during destruction.
    for (std::thread &t : workers)
        t.join();
}

void
Scheduler::ensureWorkersLocked()
{
    if (!workers.empty())
        return;
    queues.resize(numThreads);
    workers.reserve(numThreads);
    for (unsigned w = 0; w < numThreads; ++w)
        workers.emplace_back(&Scheduler::workerLoop, this, w);
}

Scheduler::TaskPtr
Scheduler::popLocked(unsigned self)
{
    // Own deque first, newest task (LIFO keeps caches warm)...
    std::deque<TaskPtr> &own = queues[self];
    if (!own.empty()) {
        TaskPtr task = std::move(own.back());
        own.pop_back();
        return task;
    }
    // ...then steal the oldest task from a victim.
    for (unsigned off = 1; off < numThreads; ++off) {
        std::deque<TaskPtr> &victim =
            queues[(self + off) % numThreads];
        if (!victim.empty()) {
            TaskPtr task = std::move(victim.front());
            victim.pop_front();
            ++steals;
            return task;
        }
    }
    return nullptr;
}

void
Scheduler::enqueueReadyLocked(const TaskPtr &task, unsigned hint)
{
    task->state = State::Ready;
    queues[hint % queues.size()].push_back(task);
    workCv.notify_one();
}

void
Scheduler::failDependentsLocked(const TaskPtr &task,
                                const std::exception_ptr &error)
{
    // Dependents of a failed (or cancelled) task never run; they
    // complete with the same exception, transitively. Dependents
    // that already settled through another path are left alone.
    for (const TaskPtr &dependent : task->dependents) {
        if (dependent->state == State::Blocked)
            completeLocked(dependent, error);
    }
}

void
Scheduler::completeLocked(const TaskPtr &task,
                          std::exception_ptr error)
{
    if (task->state == State::Done || task->state == State::Failed)
        return; // already settled (e.g. raced by a failing dep)
    task->fn = nullptr; // release captures promptly
    if (error) {
        task->state = State::Failed;
        task->error = error;
        task->promise.set_exception(error);
    } else {
        task->state = State::Done;
        task->promise.set_value();
    }
    if (Group *group = task->group) {
        if (error && task->node < group->firstFailedNode) {
            group->firstFailedNode = task->node;
            group->firstFailure = error;
        }
        --group->pending;
    }
    if (error) {
        failDependentsLocked(task, error);
    } else {
        for (const TaskPtr &dependent : task->dependents) {
            if (dependent->state == State::Blocked &&
                --dependent->pendingDeps == 0) {
                // Ready dependents go to the completing thread's
                // nominal queue slot; which worker executes them is
                // whoever pops or steals first.
                enqueueReadyLocked(dependent, nextQueue++);
            }
        }
    }
    task->dependents.clear();
    doneCv.notify_all();
    if (stopping)
        workCv.notify_all();
}

void
Scheduler::workerLoop(unsigned self)
{
    UniqueLock lock(mu);
    for (;;) {
        TaskPtr task = popLocked(self);
        if (!task) {
            if (stopping)
                break;
            workCv.wait(lock);
            continue;
        }
        // A queued task may have been cancelled (settled) while it
        // sat in the deque; drop stale entries.
        if (task->state != State::Ready)
            continue;
        task->state = State::Running;
        ++running;
        lock.unlock();
        std::exception_ptr error;
        try {
            if (task->fn)
                task->fn(); // a null fn is a pure join node
        } catch (...) {
            error = std::current_exception();
        }
        lock.lock();
        --running;
        ++executed;
        completeLocked(task, error);
    }
}

Scheduler::Handle
Scheduler::submit(TaskFn fn, const std::vector<Handle> &deps,
                  std::string label)
{
    auto task = std::make_shared<Handle::Task>();
    task->fn = std::move(fn);
    task->label = std::move(label);
    task->future = task->promise.get_future().share();
    Handle handle;
    handle.task = task;

    LockGuard lock(mu);
    if (stopping)
        panic("Scheduler::submit during shutdown");
    ensureWorkersLocked();
    ++submittedTasks;

    std::exception_ptr depError;
    uint32_t pending = 0;
    for (const Handle &dep : deps) {
        if (!dep.task)
            continue;
        switch (dep.task->state) {
          case State::Done:
            break;
          case State::Failed:
            if (!depError)
                depError = dep.task->error;
            break;
          default:
            dep.task->dependents.push_back(task);
            ++pending;
        }
    }
    if (depError) {
        // A dependency already failed: the task never runs. (If it
        // was also registered with still-pending deps above, their
        // completion will see it settled and skip it.)
        completeLocked(task, depError);
        return handle;
    }
    task->pendingDeps = pending;
    if (pending == 0)
        enqueueReadyLocked(task, nextQueue++);
    return handle;
}

bool
Scheduler::cancel(const Handle &handle)
{
    if (!handle.task)
        return false;
    LockGuard lock(mu);
    const State state = handle.task->state;
    if (state != State::Blocked && state != State::Ready)
        return false;
    completeLocked(handle.task, std::make_exception_ptr(
                                    TaskCancelled(handle.task->label)));
    return true;
}

void
Scheduler::runSerial(TaskGraph &graph)
{
    // Deterministic inline execution: always run the lowest-id
    // ready node next. Because subgraphs are added in work order
    // (e.g. one exploration point's prepare/sim/synth/row before
    // the next point's), this finishes each subgraph before
    // starting the next — exactly the old fully-serial per-point
    // schedule the byte-identical `--threads 1` outputs (and the
    // per-row memo-hit flags) are pinned against, and it keeps at
    // most one subgraph's intermediate state alive at a time.
    const size_t count = graph.nodes.size();
    std::vector<uint32_t> pending(count, 0);
    std::vector<std::vector<TaskId>> dependents(count);
    for (TaskId id = 0; id < count; ++id) {
        for (TaskId dep : graph.nodes[id].deps) {
            dependents[dep].push_back(id);
            ++pending[id];
        }
    }
    std::priority_queue<TaskId, std::vector<TaskId>,
                        std::greater<TaskId>>
        ready;
    for (TaskId id = 0; id < count; ++id)
        if (pending[id] == 0)
            ready.push(id);

    std::vector<uint8_t> skipped(count, 0);
    TaskId firstFailedNode = ~TaskId{0};
    std::exception_ptr firstFailure;
    uint64_t ran = 0;
    while (!ready.empty()) {
        const TaskId id = ready.top();
        ready.pop();
        bool failed = false;
        try {
            if (graph.nodes[id].fn)
                graph.nodes[id].fn(); // null fn = pure join node
            ++ran;
        } catch (...) {
            ++ran;
            failed = true;
            if (id < firstFailedNode) {
                firstFailedNode = id;
                firstFailure = std::current_exception();
            }
        }
        if (failed) {
            // Skip every transitive dependent; independent stages
            // still run, like the concurrent path.
            std::deque<TaskId> frontier(dependents[id].begin(),
                                        dependents[id].end());
            while (!frontier.empty()) {
                const TaskId d = frontier.front();
                frontier.pop_front();
                if (skipped[d])
                    continue;
                skipped[d] = 1;
                frontier.insert(frontier.end(),
                                dependents[d].begin(),
                                dependents[d].end());
            }
            continue;
        }
        for (TaskId d : dependents[id])
            if (!skipped[d] && --pending[d] == 0)
                ready.push(d);
    }
    {
        LockGuard lock(mu);
        executed += ran;
    }
    if (firstFailure)
        std::rethrow_exception(firstFailure);
}

void
Scheduler::runToCompletion(TaskGraph graph)
{
    if (graph.empty())
        return;
    if (numThreads == 1) {
        runSerial(graph);
        return;
    }

    Group group;
    group.pending = graph.nodes.size();
    std::vector<TaskPtr> tasks(graph.nodes.size());
    {
        UniqueLock lock(mu);
        if (stopping)
            panic("Scheduler::runToCompletion during shutdown");
        ensureWorkersLocked();
        for (TaskId id = 0; id < tasks.size(); ++id) {
            auto task = std::make_shared<Handle::Task>();
            task->fn = std::move(graph.nodes[id].fn);
            task->label = std::move(graph.nodes[id].label);
            task->future = task->promise.get_future().share();
            task->group = &group;
            task->node = id;
            tasks[id] = task;
        }
        for (TaskId id = 0; id < tasks.size(); ++id) {
            for (TaskId dep : graph.nodes[id].deps) {
                tasks[dep]->dependents.push_back(tasks[id]);
                ++tasks[id]->pendingDeps;
            }
        }
        // Seed the initially ready nodes in id order so low-id
        // stages start first (plan order under light contention).
        for (TaskId id = 0; id < tasks.size(); ++id)
            if (tasks[id]->pendingDeps == 0)
                enqueueReadyLocked(tasks[id], nextQueue++);
        // Explicit predicate loop so the analysis sees the guarded
        // read in the locked scope (a lambda body is checked as a
        // separate, lock-free function). `group` lives on this
        // stack frame but is mutated by completeLocked under `mu`.
        while (group.pending != 0)
            doneCv.wait(lock);
    }
    if (group.firstFailure)
        std::rethrow_exception(group.firstFailure);
}

uint64_t
Scheduler::stealCount() const
{
    LockGuard lock(mu);
    return steals;
}

uint64_t
Scheduler::tasksRun() const
{
    LockGuard lock(mu);
    return executed;
}

uint64_t
Scheduler::submitted() const
{
    LockGuard lock(mu);
    return submittedTasks;
}

size_t
Scheduler::queueDepth() const
{
    LockGuard lock(mu);
    size_t depth = 0;
    for (const std::deque<TaskPtr> &queue : queues)
        for (const TaskPtr &task : queue)
            if (task->state == State::Ready)
                ++depth; // stale (cancelled) entries don't count
    return depth;
}

size_t
Scheduler::inFlight() const
{
    LockGuard lock(mu);
    return running;
}

} // namespace rissp::exec
