/**
 * @file
 * Work-stealing stage scheduler — the one execution engine under both
 * the design-space `Explorer` and the `FlowService` request verbs.
 *
 * Before this layer existed the repo had two execution models:
 * `Explorer` ran whole plan cells on a batch-only work-stealing pool,
 * and `FlowService` executed every request synchronously on the
 * caller's thread. The `Scheduler` unifies them: the unit of work is
 * a pipeline *stage* (compile, sim, cosim, synth, pnr), stages carry
 * dependency edges, and one instance serves both a blocking
 * whole-graph sweep (`runToCompletion`) and dynamic request traffic
 * (`submit`). Identical in-flight stages are deduplicated one layer
 * up, by the promise-backed entries of `flow::StageCaches`: the first
 * stage to ask for a key computes it on its own worker, racers block
 * on the shared future — so the scheduler never queues the same
 * computation twice, it just runs whatever stage got there first.
 *
 * Execution rules:
 *  - Workers pop their own deque LIFO (cache-warm) and steal FIFO
 *    from victims, like the exploration pool this class absorbed.
 *  - A scheduler constructed with 1 thread runs `runToCompletion`
 *    inline on the caller, always executing the lowest-id ready node
 *    next — the deterministic depth-first schedule the
 *    byte-identical `--threads 1` outputs are pinned against.
 *  - A stage that throws completes exceptionally; its dependents
 *    never run and complete with the *same* exception, transitively.
 *    `runToCompletion` rethrows the failure of the lowest-id failed
 *    node after the whole graph has settled (independent stages
 *    still run). `Handle::wait` rethrows for dynamic tasks.
 *  - `cancel` stops a not-yet-started task; its waiters and
 *    dependents observe `TaskCancelled`. Running tasks finish.
 *
 * Thread-safety: every method is safe to call from any thread,
 * including from inside a running task (but a task must not wait on
 * its own scheduler's unstarted work — block only on work that is
 * computing on some thread, which is exactly what the StageCaches
 * dedup guarantees). The locking discipline is compiler-checked on
 * Clang: all mutable state is `RISSP_GUARDED_BY(mu)` and every
 * `*Locked` helper statically `RISSP_REQUIRES(mu)` (see
 * util/thread_annotations.hh and docs/STATIC_ANALYSIS.md).
 */

#ifndef RISSP_EXEC_SCHEDULER_HH
#define RISSP_EXEC_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/task_graph.hh"
#include "util/mutex.hh"

namespace rissp::exec
{

/** Delivered to waiters and dependents of a cancelled task. */
class TaskCancelled : public std::runtime_error
{
  public:
    explicit TaskCancelled(const std::string &label)
        : std::runtime_error(label.empty()
                                 ? "task cancelled"
                                 : "task cancelled: " + label)
    {
    }
};

/** The work-stealing stage scheduler. */
class Scheduler
{
  public:
    /** @p threads 0 picks std::thread::hardware_concurrency().
     *  Worker threads start lazily on first use. */
    explicit Scheduler(unsigned threads = 0);

    /** Blocks until every submitted task has settled, then joins. */
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** A reference to one dynamically submitted task. */
    class Handle
    {
      public:
        struct Task; ///< opaque; defined by the scheduler

        Handle() = default;

        /** Block until the task settles; rethrows the task's
         *  exception (or `TaskCancelled`, or a failed dependency's
         *  exception) if it did not complete cleanly. */
        void wait() const;

        bool valid() const { return task != nullptr; }

      private:
        friend class Scheduler;
        std::shared_ptr<Task> task;
    };

    /**
     * Submit one task to run after every task in @p deps has
     * completed cleanly. Returns immediately. If a dependency has
     * already failed (or gets cancelled), the task never runs and
     * completes with that dependency's exception.
     */
    Handle submit(TaskFn fn, const std::vector<Handle> &deps = {},
                  std::string label = {});

    /**
     * Cancel a submitted task that has not started. Returns true if
     * the task was cancelled (waiters and dependents observe
     * `TaskCancelled`); false if it already started, settled, or the
     * handle is empty. Never interrupts a running task.
     */
    bool cancel(const Handle &handle);

    /**
     * Execute every node of @p graph, respecting its edges; blocks
     * until the graph has settled. With 1 thread, runs inline on the
     * caller (lowest ready id first); otherwise the worker pool
     * executes ready nodes concurrently, stealing as needed.
     * Reentrant: concurrent graphs (and dynamic tasks) share the
     * workers. If any node threw, rethrows the exception of the
     * lowest-id failed node after the graph settles.
     */
    void runToCompletion(TaskGraph graph);

    unsigned threadCount() const { return numThreads; }

    /** Tasks obtained by stealing rather than from the executing
     *  worker's own deque, over the scheduler's lifetime. */
    uint64_t stealCount() const;

    /** Task bodies actually executed (cancelled and dependency-
     *  failed tasks are not counted). */
    uint64_t tasksRun() const;

    /** Tasks accepted by submit() over the scheduler's lifetime
     *  (whether or not they ran) — with tasksRun(), the lag of the
     *  dynamic request path a /metrics endpoint reports. */
    uint64_t submitted() const;

    /** Ready tasks sitting in worker deques right now — the queue
     *  depth a /metrics endpoint reports. Snapshot only: the value
     *  is stale the moment the lock drops. */
    size_t queueDepth() const;

    /** Task bodies executing on a worker right now (snapshot). */
    size_t inFlight() const;

  private:
    using TaskPtr = std::shared_ptr<Handle::Task>;

    /** Completion accounting for one runToCompletion call. */
    struct Group;

    void ensureWorkersLocked() RISSP_REQUIRES(mu);
    void workerLoop(unsigned self);
    TaskPtr popLocked(unsigned self) RISSP_REQUIRES(mu);
    void enqueueReadyLocked(const TaskPtr &task, unsigned hint)
        RISSP_REQUIRES(mu);
    void completeLocked(const TaskPtr &task,
                        std::exception_ptr error) RISSP_REQUIRES(mu);
    void failDependentsLocked(const TaskPtr &task,
                              const std::exception_ptr &error)
        RISSP_REQUIRES(mu);
    void runSerial(TaskGraph &graph) RISSP_EXCLUDES(mu);

    unsigned numThreads; ///< immutable after construction

    mutable Mutex mu;
    CondVar workCv;  ///< workers: work or stop
    CondVar doneCv;  ///< waiters: a task settled
    /** One deque per worker. Task structs popped from a deque are
     *  also guarded by `mu` (state transitions, dependents, group
     *  accounting all happen under it); only `fn` runs unlocked. */
    std::vector<std::deque<TaskPtr>> queues RISSP_GUARDED_BY(mu);
    /** Created once by ensureWorkersLocked() under `mu`; joined by
     *  the destructor after `stopping` is set (no lock: workers need
     *  `mu` to observe the stop and exit). */
    std::vector<std::thread> workers RISSP_GUARDED_BY(mu);
    bool stopping RISSP_GUARDED_BY(mu) = false;
    /** Round-robin slot for external pushes. */
    unsigned nextQueue RISSP_GUARDED_BY(mu) = 0;
    uint64_t steals RISSP_GUARDED_BY(mu) = 0;
    uint64_t executed RISSP_GUARDED_BY(mu) = 0;
    /** Dynamic tasks accepted by submit(). */
    uint64_t submittedTasks RISSP_GUARDED_BY(mu) = 0;
    /** Task bodies currently executing. */
    size_t running RISSP_GUARDED_BY(mu) = 0;
};

} // namespace rissp::exec

#endif // RISSP_EXEC_SCHEDULER_HH
