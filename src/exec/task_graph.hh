/**
 * @file
 * Dependency-aware task graphs for the unified execution layer.
 *
 * A `TaskGraph` describes one batch of pipeline work at *stage*
 * granularity: each node is a single stage (compile, sim, cosim,
 * synth, pnr, a result-row write, ...) rather than a whole plan cell
 * or request, and edges say which stages must complete first. The
 * graph is pure description — building one runs nothing; handing it
 * to `exec::Scheduler::runToCompletion` does.
 *
 * Graphs are acyclic *by construction*: a node may only depend on
 * nodes that already exist, so dependency ids are always smaller than
 * the dependent's id and no cycle can be expressed. That property is
 * also what makes the single-threaded execution order well-defined
 * (ready nodes run in id order), which the Explorer's byte-identical
 * `--threads 1` guarantee leans on.
 *
 * Thread-safety: a TaskGraph is deliberately lock-free and
 * *single-builder* — it is plain description, built on one thread and
 * then moved into `Scheduler::runToCompletion`, which takes it by
 * value. After the move the scheduler guards every derived task under
 * its own annotated mutex (exec/scheduler.hh); nothing here needs a
 * capability because nothing here is ever shared.
 */

#ifndef RISSP_EXEC_TASK_GRAPH_HH
#define RISSP_EXEC_TASK_GRAPH_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rissp::exec
{

/** One unit of work. Stages communicate through captured state, not
 *  return values; the scheduler only observes completion or a thrown
 *  exception. */
using TaskFn = std::function<void()>;

/** Node id within one TaskGraph; creation-ordered. */
using TaskId = uint32_t;

/** A batch of stages and their dependency edges. */
class TaskGraph
{
  public:
    /**
     * Append a node running @p fn after every node in @p deps.
     * Dependencies must already be in the graph (their ids are
     * smaller), which keeps the graph acyclic by construction;
     * a dep id >= the new node's id panics. @p label is carried
     * verbatim for diagnostics.
     */
    TaskId add(TaskFn fn, const std::vector<TaskId> &deps = {},
               std::string label = {});

    size_t size() const { return nodes.size(); }
    bool empty() const { return nodes.empty(); }

    const std::string &label(TaskId id) const
    {
        return nodes.at(id).label;
    }

  private:
    friend class Scheduler;

    struct Node
    {
        TaskFn fn;
        std::string label;
        std::vector<TaskId> deps;
    };

    std::vector<Node> nodes;
};

} // namespace rissp::exec

#endif // RISSP_EXEC_TASK_GRAPH_HH
