/**
 * @file
 * Bit-manipulation helpers shared by the ISA, blocks and simulators.
 */

#ifndef RISSP_UTIL_BITS_HH
#define RISSP_UTIL_BITS_HH

#include <cstdint>

namespace rissp
{

/** Extract bits [hi:lo] of @p value (inclusive, hi >= lo). */
constexpr uint32_t
bits(uint32_t value, unsigned hi, unsigned lo)
{
    const uint32_t mask = (hi - lo >= 31)
        ? 0xFFFFFFFFu
        : ((1u << (hi - lo + 1)) - 1u);
    return (value >> lo) & mask;
}

/** Extract a single bit of @p value. */
constexpr uint32_t
bit(uint32_t value, unsigned pos)
{
    return (value >> pos) & 1u;
}

/** Sign-extend the low @p width bits of @p value to 32 bits. */
constexpr int32_t
sext(uint32_t value, unsigned width)
{
    const unsigned shift = 32 - width;
    return static_cast<int32_t>(value << shift) >> shift;
}

/** Reinterpret an unsigned word as signed. */
constexpr int32_t
asSigned(uint32_t value)
{
    return static_cast<int32_t>(value);
}

/** Reinterpret a signed word as unsigned. */
constexpr uint32_t
asUnsigned(int32_t value)
{
    return static_cast<uint32_t>(value);
}

/** True when @p value fits in a signed immediate of @p width bits. */
constexpr bool
fitsSigned(int64_t value, unsigned width)
{
    const int64_t lo = -(int64_t{1} << (width - 1));
    const int64_t hi = (int64_t{1} << (width - 1)) - 1;
    return value >= lo && value <= hi;
}

/** Ceil(log2(n)) for n >= 1; 0 for n <= 1. */
constexpr unsigned
ceilLog2(uint32_t n)
{
    unsigned r = 0;
    uint32_t v = 1;
    while (v < n) {
        v <<= 1;
        ++r;
    }
    return r;
}

} // namespace rissp

#endif // RISSP_UTIL_BITS_HH
