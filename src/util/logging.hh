/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * panic() flags an internal invariant violation (a bug in this library)
 * and aborts; fatal() flags a user error (bad input, malformed assembly,
 * unsupported source construct) and exits with code 1; warn()/inform()
 * report conditions without stopping.
 */

#ifndef RISSP_UTIL_LOGGING_HH
#define RISSP_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace rissp
{

/** Abort with a formatted message: something that should never happen. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message: the input was at fault. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr and keep going. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Format printf-style arguments into a std::string. */
std::string vstrFormat(const char *fmt, va_list args);

/** Format printf-style arguments into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace rissp

#endif // RISSP_UTIL_LOGGING_HH
