/**
 * @file
 * String helpers used by the assembler, compiler and report printers.
 */

#ifndef RISSP_UTIL_STRINGS_HH
#define RISSP_UTIL_STRINGS_HH

#include <string>
#include <string_view>
#include <vector>

namespace rissp
{

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split on a delimiter character, keeping empty fields. */
std::vector<std::string> split(std::string_view s, char delim);

/** Split on runs of whitespace, dropping empty fields. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** Case-sensitive prefix test. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Case-sensitive suffix test. */
bool endsWith(std::string_view s, std::string_view suffix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/** Join items with a separator. */
std::string join(const std::vector<std::string> &items,
                 std::string_view sep);

/** Thread-safe strerror: the message for @p errnum via strerror_r.
 *  `std::strerror` returns a pointer into shared static storage and
 *  is flagged by clang-tidy's concurrency-mt-unsafe — concurrent
 *  code (the server, scheduler tasks) must use this instead. */
std::string errnoString(int errnum);

} // namespace rissp

#endif // RISSP_UTIL_STRINGS_HH
