/**
 * @file
 * Clang thread-safety (capability) analysis macros.
 *
 * The repo's locking invariants — "`queues` is only touched under
 * `mu`", "the drain condvar must be notified under `stateMu`", "a
 * `*Locked` helper runs with the scheduler lock held" — used to live
 * in comments and be enforced only dynamically, by the TSan CI job.
 * These macros turn them into compiler-checked contracts: on Clang,
 * `-Wthread-safety` (promoted to an error by the
 * `RISSP_WERROR_THREAD_SAFETY` CMake option and the CI
 * `static-analysis` job) rejects any access to a `RISSP_GUARDED_BY`
 * member without its mutex and any call to a `RISSP_REQUIRES`
 * function from a context that does not hold the lock. On every
 * other compiler the macros expand to nothing, so GCC builds are
 * unchanged.
 *
 * Use the annotated wrappers in util/mutex.hh (`Mutex`, `LockGuard`,
 * `UniqueLock`, `CondVar`) rather than raw `std::mutex`: the
 * analysis only understands lock objects whose acquire/release
 * functions are themselves annotated, and the in-repo linter
 * (`tools/lint/`, check `raw-mutex`) flags raw `std::mutex` in
 * library code for exactly that reason.
 *
 * `RISSP_NO_THREAD_SAFETY_ANALYSIS` is the escape hatch for the rare
 * function whose locking the analysis cannot follow (lock handoff
 * across threads, intentionally unbalanced acquire/release). Every
 * use must carry a comment explaining why the invariant holds anyway
 * — see docs/STATIC_ANALYSIS.md.
 *
 * Macro names and semantics follow the Clang documentation
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed
 * to keep the repo's namespace.
 */

#ifndef RISSP_UTIL_THREAD_ANNOTATIONS_HH
#define RISSP_UTIL_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define RISSP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef RISSP_THREAD_ANNOTATION
#define RISSP_THREAD_ANNOTATION(x) // no-op on non-Clang compilers
#endif

/** Marks a class as a lockable capability (e.g. a mutex wrapper). */
#define RISSP_CAPABILITY(x) RISSP_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class that acquires in its constructor and releases
 *  in its destructor (LockGuard, UniqueLock). */
#define RISSP_SCOPED_CAPABILITY RISSP_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding @p x. */
#define RISSP_GUARDED_BY(x) RISSP_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is guarded by @p x. */
#define RISSP_PT_GUARDED_BY(x) RISSP_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function callable only while holding every listed capability —
 *  the static form of a `*Locked` helper's contract. */
#define RISSP_REQUIRES(...) \
    RISSP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function callable only while holding the listed capabilities in
 *  shared (reader) mode. */
#define RISSP_REQUIRES_SHARED(...) \
    RISSP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function that acquires the capability and holds it on return. */
#define RISSP_ACQUIRE(...) \
    RISSP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define RISSP_ACQUIRE_SHARED(...) \
    RISSP_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function that releases the capability it was called holding. */
#define RISSP_RELEASE(...) \
    RISSP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RISSP_RELEASE_SHARED(...) \
    RISSP_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** Function that acquires the capability only when it returns the
 *  given value (try_lock). */
#define RISSP_TRY_ACQUIRE(...) \
    RISSP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function that must NOT be called while holding the capability —
 *  documents (and rejects) self-deadlock. */
#define RISSP_EXCLUDES(...) \
    RISSP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the calling thread holds the capability;
 *  tells the analysis to assume it from here on. */
#define RISSP_ASSERT_CAPABILITY(x) \
    RISSP_THREAD_ANNOTATION(assert_capability(x))

/** Function returning a reference to the named capability. */
#define RISSP_RETURN_CAPABILITY(x) \
    RISSP_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: skip the analysis for one function. Every use needs
 *  a justifying comment (docs/STATIC_ANALYSIS.md § escape hatch). */
#define RISSP_NO_THREAD_SAFETY_ANALYSIS \
    RISSP_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // RISSP_UTIL_THREAD_ANNOTATIONS_HH
