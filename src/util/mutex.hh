/**
 * @file
 * Capability-annotated mutex and condition-variable wrappers.
 *
 * Thin, zero-overhead wrappers over `std::mutex` /
 * `std::condition_variable` whose acquire/release functions carry the
 * thread-safety annotations from util/thread_annotations.hh — the
 * types every mutex in library code must use so that Clang's
 * `-Wthread-safety` analysis can check `RISSP_GUARDED_BY` /
 * `RISSP_REQUIRES` contracts (raw `std::mutex` members are flagged by
 * the in-repo linter, check `raw-mutex`). On non-Clang compilers the
 * annotations vanish and these classes are exactly their standard
 * counterparts; every method is defined inline in this header, so
 * there is no call overhead either way.
 *
 * `CondVar::wait` returns with the lock re-acquired, which is all the
 * analysis models: the release/re-acquire inside the wait is
 * invisible to it (the standard approximation — the capability is
 * reported as held across the wait, which is what the caller
 * observes). Predicates over guarded state should therefore be
 * written as explicit `while (!pred) cv.wait(lock);` loops in the
 * locked scope, not as lambdas: the analysis checks lambda bodies as
 * separate functions and cannot see the held lock inside one.
 */

#ifndef RISSP_UTIL_MUTEX_HH
#define RISSP_UTIL_MUTEX_HH

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hh"

namespace rissp
{

/** An annotated standard mutex: the one lock type for library code. */
class RISSP_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() RISSP_ACQUIRE() { mu.lock(); }
    void unlock() RISSP_RELEASE() { mu.unlock(); }
    bool try_lock() RISSP_TRY_ACQUIRE(true) { return mu.try_lock(); }

  private:
    friend class UniqueLock;
    std::mutex mu;
};

/** `std::lock_guard` with scope-capability annotations. */
class RISSP_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &m) RISSP_ACQUIRE(m) : mu(m)
    {
        mu.lock();
    }
    ~LockGuard() RISSP_RELEASE() { mu.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &mu;
};

/**
 * `std::unique_lock` with scope-capability annotations: relockable
 * (the analysis tracks `unlock()` / `lock()` pairs inside the scope,
 * the destructor releases only if held) and the lock type `CondVar`
 * waits on.
 */
class RISSP_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &m) RISSP_ACQUIRE(m) : lk(m.mu) {}
    ~UniqueLock() RISSP_RELEASE() {}

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

    /** Re-acquire after an `unlock()` (e.g. around running a task
     *  body outside the lock). */
    void lock() RISSP_ACQUIRE() { lk.lock(); }
    void unlock() RISSP_RELEASE() { lk.unlock(); }

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lk;
};

/**
 * Condition variable waiting on a `UniqueLock`. Waits atomically
 * release and re-acquire the lock exactly like
 * `std::condition_variable::wait`; spurious wakeups are possible, so
 * callers loop on their predicate (in the locked scope — see the
 * file comment for why not as a lambda).
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void wait(UniqueLock &lock) { cv.wait(lock.lk); }

    void notify_one() noexcept { cv.notify_one(); }
    void notify_all() noexcept { cv.notify_all(); }

  private:
    std::condition_variable cv;
};

} // namespace rissp

#endif // RISSP_UTIL_MUTEX_HH
