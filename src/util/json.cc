#include "util/json.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace rissp
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string
jsonNum(double value)
{
    // JSON has no nan/inf literals; a degenerate metric must still
    // produce a parseable document.
    if (!std::isfinite(value))
        return "null";
    std::ostringstream out;
    out.precision(17);
    out << value;
    return out.str();
}

} // namespace rissp
