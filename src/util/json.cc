#include "util/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace rissp
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string
jsonNum(double value)
{
    // JSON has no nan/inf literals; a degenerate metric must still
    // produce a parseable document.
    if (!std::isfinite(value))
        return "null";
    std::ostringstream out;
    out.precision(17);
    out << value;
    return out.str();
}

// ------------------------------------------------------- JsonValue

bool
JsonValue::asBool() const
{
    if (valueKind != Kind::Bool)
        panic("JsonValue::asBool on a %s", kindName(valueKind));
    return boolValue;
}

double
JsonValue::asNumber() const
{
    if (valueKind != Kind::Number)
        panic("JsonValue::asNumber on a %s", kindName(valueKind));
    return numberValue;
}

const std::string &
JsonValue::asString() const
{
    if (valueKind != Kind::String)
        panic("JsonValue::asString on a %s", kindName(valueKind));
    return stringValue;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (valueKind != Kind::Array)
        panic("JsonValue::items on a %s", kindName(valueKind));
    return arrayItems;
}

const std::vector<JsonValue::Member> &
JsonValue::members() const
{
    if (valueKind != Kind::Object)
        panic("JsonValue::members on a %s", kindName(valueKind));
    return objectMembers;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (valueKind != Kind::Object)
        return nullptr;
    for (const Member &member : objectMembers)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

const char *
JsonValue::kindName(Kind kind)
{
    switch (kind) {
      case Kind::Null: return "null";
      case Kind::Bool: return "bool";
      case Kind::Number: return "number";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    return "unknown";
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool value)
{
    JsonValue v;
    v.valueKind = Kind::Bool;
    v.boolValue = value;
    return v;
}

JsonValue
JsonValue::makeNumber(double value)
{
    JsonValue v;
    v.valueKind = Kind::Number;
    v.numberValue = value;
    return v;
}

JsonValue
JsonValue::makeString(std::string value)
{
    JsonValue v;
    v.valueKind = Kind::String;
    v.stringValue = std::move(value);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.valueKind = Kind::Array;
    v.arrayItems = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(std::vector<Member> members)
{
    JsonValue v;
    v.valueKind = Kind::Object;
    v.objectMembers = std::move(members);
    return v;
}

// ---------------------------------------------------- JSON parser

namespace
{

/** Recursive-descent parser over untrusted text. Errors carry the
 *  byte offset; recursion is depth-bounded so a pathological body
 *  ("[[[[[…") cannot blow the stack of a server worker. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text(text) {}

    Result<JsonValue>
    parse()
    {
        JsonValue value;
        Status status = parseValue(value, 0);
        if (!status.isOk())
            return status;
        skipWhitespace();
        if (pos != text.size())
            return fail("trailing garbage after the document");
        return value;
    }

  private:
    static constexpr int kMaxDepth = 64;

    Status
    fail(const std::string &what) const
    {
        return Status::errorf(ErrorCode::ParseError,
                              "JSON error at byte %zu: %s", pos,
                              what.c_str());
    }

    void
    skipWhitespace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(const char *literal)
    {
        size_t len = 0;
        while (literal[len])
            ++len;
        if (text.compare(pos, len, literal) != 0)
            return false;
        pos += len;
        return true;
    }

    Status
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting deeper than 64 levels");
        skipWhitespace();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{')
            return parseObject(out, depth);
        if (c == '[')
            return parseArray(out, depth);
        if (c == '"')
            return parseString(out);
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber(out);
        if (consume("true")) {
            out = JsonValue::makeBool(true);
            return Status::ok();
        }
        if (consume("false")) {
            out = JsonValue::makeBool(false);
            return Status::ok();
        }
        if (consume("null")) {
            out = JsonValue::makeNull();
            return Status::ok();
        }
        return fail("expected a JSON value");
    }

    Status
    parseObject(JsonValue &out, int depth)
    {
        ++pos; // '{'
        std::vector<JsonValue::Member> members;
        skipWhitespace();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            out = JsonValue::makeObject(std::move(members));
            return Status::ok();
        }
        for (;;) {
            skipWhitespace();
            if (pos >= text.size() || text[pos] != '"')
                return fail("expected a string object key");
            JsonValue key;
            Status status = parseString(key);
            if (!status.isOk())
                return status;
            for (const JsonValue::Member &member : members)
                if (member.first == key.asString())
                    return fail("duplicate object key '" +
                                key.asString() + "'");
            skipWhitespace();
            if (pos >= text.size() || text[pos] != ':')
                return fail("expected ':' after object key");
            ++pos;
            JsonValue value;
            status = parseValue(value, depth + 1);
            if (!status.isOk())
                return status;
            members.emplace_back(key.asString(), std::move(value));
            skipWhitespace();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                out = JsonValue::makeObject(std::move(members));
                return Status::ok();
            }
            return fail("expected ',' or '}' in object");
        }
    }

    Status
    parseArray(JsonValue &out, int depth)
    {
        ++pos; // '['
        std::vector<JsonValue> items;
        skipWhitespace();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            out = JsonValue::makeArray(std::move(items));
            return Status::ok();
        }
        for (;;) {
            JsonValue value;
            Status status = parseValue(value, depth + 1);
            if (!status.isOk())
                return status;
            items.push_back(std::move(value));
            skipWhitespace();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                out = JsonValue::makeArray(std::move(items));
                return Status::ok();
            }
            return fail("expected ',' or ']' in array");
        }
    }

    Status
    parseString(JsonValue &out)
    {
        ++pos; // '"'
        std::string value;
        while (pos < text.size()) {
            const unsigned char c =
                static_cast<unsigned char>(text[pos]);
            if (c == '"') {
                ++pos;
                out = JsonValue::makeString(std::move(value));
                return Status::ok();
            }
            if (c < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                value += static_cast<char>(c);
                ++pos;
                continue;
            }
            ++pos; // '\\'
            if (pos >= text.size())
                return fail("unterminated escape");
            const char esc = text[pos++];
            switch (esc) {
              case '"': value += '"'; break;
              case '\\': value += '\\'; break;
              case '/': value += '/'; break;
              case 'b': value += '\b'; break;
              case 'f': value += '\f'; break;
              case 'n': value += '\n'; break;
              case 'r': value += '\r'; break;
              case 't': value += '\t'; break;
              case 'u': {
                uint32_t code = 0;
                if (!parseHex4(code))
                    return fail("bad \\u escape");
                if (code >= 0xD800 && code <= 0xDBFF) {
                    // High surrogate: require its low half.
                    uint32_t low = 0;
                    if (pos + 1 >= text.size() ||
                        text[pos] != '\\' || text[pos + 1] != 'u')
                        return fail("unpaired surrogate");
                    pos += 2;
                    if (!parseHex4(low) || low < 0xDC00 ||
                        low > 0xDFFF)
                        return fail("unpaired surrogate");
                    code = 0x10000 + ((code - 0xD800) << 10) +
                           (low - 0xDC00);
                } else if (code >= 0xDC00 && code <= 0xDFFF) {
                    return fail("unpaired surrogate");
                }
                appendUtf8(value, code);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseHex4(uint32_t &out)
    {
        if (pos + 4 > text.size())
            return false;
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text[pos + i];
            out <<= 4;
            if (c >= '0' && c <= '9') out |= c - '0';
            else if (c >= 'a' && c <= 'f') out |= c - 'a' + 10;
            else if (c >= 'A' && c <= 'F') out |= c - 'A' + 10;
            else return false;
        }
        pos += 4;
        return true;
    }

    static void
    appendUtf8(std::string &out, uint32_t code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    Status
    parseNumber(JsonValue &out)
    {
        // Validate the JSON grammar first — strtod accepts more
        // (hex, "inf", leading '+') than JSON allows.
        const size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        if (pos >= text.size() ||
            !(text[pos] >= '0' && text[pos] <= '9'))
            return fail("malformed number");
        if (text[pos] == '0')
            ++pos;
        else
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9')
                ++pos;
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            if (pos >= text.size() ||
                !(text[pos] >= '0' && text[pos] <= '9'))
                return fail("malformed number");
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9')
                ++pos;
        }
        if (pos < text.size() &&
            (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (pos >= text.size() ||
                !(text[pos] >= '0' && text[pos] <= '9'))
                return fail("malformed number");
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9')
                ++pos;
        }
        const std::string word = text.substr(start, pos - start);
        const double value = std::strtod(word.c_str(), nullptr);
        if (!std::isfinite(value))
            return fail("number out of range");
        out = JsonValue::makeNumber(value);
        return Status::ok();
    }

    const std::string &text;
    size_t pos = 0;
};

} // namespace

Result<JsonValue>
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace rissp
