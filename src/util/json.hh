/**
 * @file
 * Minimal JSON emission helpers shared by the report emitters
 * (explore::ResultTable, flow::toJson): escaping and round-trip
 * number formatting. Emitters build objects by hand — the output
 * formats are small and fixed, and byte-stable output across runs
 * matters more than a DOM.
 */

#ifndef RISSP_UTIL_JSON_HH
#define RISSP_UTIL_JSON_HH

#include <string>

namespace rissp
{

/** Escape for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Shortest round-trip form of a double, so emitted files compare
 *  byte-for-byte across runs and thread counts. Non-finite values
 *  emit "null" — JSON has no nan/inf literals. */
std::string jsonNum(double value);

/** "true"/"false". */
inline const char *
jsonBool(bool value)
{
    return value ? "true" : "false";
}

} // namespace rissp

#endif // RISSP_UTIL_JSON_HH
