/**
 * @file
 * Minimal JSON helpers shared by the report emitters
 * (explore::ResultTable, flow::toJson) and the network front end.
 *
 * Emission stays hand-built — the output formats are small and
 * fixed, and byte-stable output across runs matters more than a DOM.
 * Parsing (`parseJson`) does build a small DOM: the HTTP endpoint
 * receives request bodies from untrusted clients, so the parser
 * returns every syntax problem as a `Status` value (never throws,
 * never aborts) and bounds its recursion depth.
 */

#ifndef RISSP_UTIL_JSON_HH
#define RISSP_UTIL_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.hh"

namespace rissp
{

/** Escape for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Shortest round-trip form of a double, so emitted files compare
 *  byte-for-byte across runs and thread counts. Non-finite values
 *  emit "null" — JSON has no nan/inf literals. */
std::string jsonNum(double value);

/** "true"/"false". */
inline const char *
jsonBool(bool value)
{
    return value ? "true" : "false";
}

/**
 * A parsed JSON value. Object member order is preserved (it carries
 * no meaning, but it keeps diagnostics deterministic); duplicate
 * keys are a parse error, so `find` is unambiguous.
 */
class JsonValue
{
  public:
    enum class Kind : uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    using Member = std::pair<std::string, JsonValue>;

    Kind kind() const { return valueKind; }
    bool isNull() const { return valueKind == Kind::Null; }
    bool isBool() const { return valueKind == Kind::Bool; }
    bool isNumber() const { return valueKind == Kind::Number; }
    bool isString() const { return valueKind == Kind::String; }
    bool isArray() const { return valueKind == Kind::Array; }
    bool isObject() const { return valueKind == Kind::Object; }

    /** Accessors panic() on a kind mismatch — callers check first
     *  (the REST layer turns mismatches into InvalidArgument before
     *  ever touching these). */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &items() const;
    const std::vector<Member> &members() const;

    /** Object member by key; nullptr when absent (or not an
     *  object). */
    const JsonValue *find(const std::string &key) const;

    /** Human name of a kind, for diagnostics ("string", ...). */
    static const char *kindName(Kind kind);

    static JsonValue makeNull();
    static JsonValue makeBool(bool value);
    static JsonValue makeNumber(double value);
    static JsonValue makeString(std::string value);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue makeObject(std::vector<Member> members);

  private:
    Kind valueKind = Kind::Null;
    bool boolValue = false;
    double numberValue = 0;
    std::string stringValue;
    std::vector<JsonValue> arrayItems;
    std::vector<Member> objectMembers;
};

/**
 * Parse one JSON document (trailing whitespace allowed, trailing
 * garbage is an error). Untrusted input: every problem — bad
 * escapes, duplicate keys, nesting deeper than 64 levels, numbers
 * out of double range — comes back as a ParseError Status with the
 * byte offset where parsing stopped.
 */
Result<JsonValue> parseJson(const std::string &text);

} // namespace rissp

#endif // RISSP_UTIL_JSON_HH
