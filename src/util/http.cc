#include "util/http.hh"

#include <cctype>

namespace rissp::http
{

namespace
{

bool
iequals(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    return true;
}

std::string
trim(const std::string &s)
{
    size_t first = s.find_first_not_of(" \t");
    if (first == std::string::npos)
        return "";
    size_t last = s.find_last_not_of(" \t");
    return s.substr(first, last - first + 1);
}

} // namespace

const std::string *
RequestHead::header(const std::string &name) const
{
    for (const auto &[key, value] : headers)
        if (iequals(key, name))
            return &value;
    return nullptr;
}

Result<size_t>
RequestHead::contentLength() const
{
    if (header("Transfer-Encoding"))
        return Status::error(
            ErrorCode::InvalidArgument,
            "Transfer-Encoding is not supported; send a "
            "Content-Length body");
    const std::string *raw = nullptr;
    for (const auto &[key, value] : headers) {
        if (!iequals(key, "Content-Length"))
            continue;
        if (raw && *raw != value)
            return Status::error(ErrorCode::InvalidArgument,
                                 "conflicting Content-Length "
                                 "headers");
        raw = &value;
    }
    if (!raw)
        return size_t{0};
    if (raw->empty() || raw->size() > 15)
        return Status::errorf(ErrorCode::InvalidArgument,
                              "bad Content-Length '%s'",
                              raw->c_str());
    size_t length = 0;
    for (char c : *raw) {
        if (c < '0' || c > '9')
            return Status::errorf(ErrorCode::InvalidArgument,
                                  "bad Content-Length '%s'",
                                  raw->c_str());
        length = length * 10 + static_cast<size_t>(c - '0');
    }
    return length;
}

bool
RequestHead::keepAlive() const
{
    const std::string *connection = header("Connection");
    if (version == "HTTP/1.1")
        return !connection || !iequals(trim(*connection), "close");
    return connection && iequals(trim(*connection), "keep-alive");
}

size_t
findHeadEnd(const std::string &buffer)
{
    const size_t end = buffer.find("\r\n\r\n");
    return end == std::string::npos ? std::string::npos : end + 4;
}

Result<RequestHead>
parseRequestHead(const std::string &head)
{
    if (head.size() > kMaxHeadBytes)
        return Status::error(ErrorCode::InvalidArgument,
                             "request head too large");
    const size_t lineEnd = head.find("\r\n");
    if (lineEnd == std::string::npos)
        return Status::error(ErrorCode::InvalidArgument,
                             "missing request line");
    const std::string line = head.substr(0, lineEnd);
    const size_t sp1 = line.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.find(' ', sp2 + 1) != std::string::npos)
        return Status::errorf(ErrorCode::InvalidArgument,
                              "malformed request line '%s'",
                              line.c_str());
    RequestHead parsed;
    parsed.method = line.substr(0, sp1);
    parsed.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    parsed.version = line.substr(sp2 + 1);
    if (parsed.method.empty() || parsed.target.empty() ||
        parsed.target[0] != '/')
        return Status::errorf(ErrorCode::InvalidArgument,
                              "malformed request line '%s'",
                              line.c_str());
    if (parsed.version != "HTTP/1.1" && parsed.version != "HTTP/1.0")
        return Status::errorf(ErrorCode::InvalidArgument,
                              "unsupported protocol '%s'",
                              parsed.version.c_str());

    size_t cursor = lineEnd + 2;
    while (cursor < head.size()) {
        const size_t end = head.find("\r\n", cursor);
        if (end == std::string::npos)
            return Status::error(ErrorCode::InvalidArgument,
                                 "header line not CRLF-terminated");
        if (end == cursor)
            break; // the blank line closing the head
        const std::string headerLine =
            head.substr(cursor, end - cursor);
        const size_t colon = headerLine.find(':');
        if (colon == std::string::npos || colon == 0)
            return Status::errorf(ErrorCode::InvalidArgument,
                                  "malformed header '%s'",
                                  headerLine.c_str());
        const std::string name = headerLine.substr(0, colon);
        if (name.find(' ') != std::string::npos ||
            name.find('\t') != std::string::npos)
            return Status::errorf(ErrorCode::InvalidArgument,
                                  "malformed header '%s'",
                                  headerLine.c_str());
        parsed.headers.emplace_back(
            name, trim(headerLine.substr(colon + 1)));
        cursor = end + 2;
    }
    return parsed;
}

const char *
reasonPhrase(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 413: return "Payload Too Large";
      case 422: return "Unprocessable Entity";
      case 429: return "Too Many Requests";
      case 500: return "Internal Server Error";
      case 501: return "Not Implemented";
      case 503: return "Service Unavailable";
    }
    return "Unknown";
}

std::string
buildResponse(int status, const std::string &body,
              const std::string &content_type, bool keep_alive,
              const std::vector<std::string> &extra_headers)
{
    std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                      reasonPhrase(status) + "\r\n";
    out += "Content-Type: " + content_type + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += keep_alive ? "Connection: keep-alive\r\n"
                      : "Connection: close\r\n";
    for (const std::string &header : extra_headers)
        out += header + "\r\n";
    out += "\r\n";
    out += body;
    return out;
}

} // namespace rissp::http
