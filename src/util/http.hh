/**
 * @file
 * HTTP/1.1 framing helpers for the serve front end.
 *
 * Pure string-in/string-out parsing and serialization — no sockets,
 * no IO — so the framing layer is unit-testable byte by byte and the
 * server code (net/server.cc) only moves buffers. The subset of
 * HTTP/1.1 implemented is deliberately small and strict: one request
 * head per parse, Content-Length bodies only (a chunked
 * Transfer-Encoding is rejected as unsupported rather than
 * mis-framed), and hard caps on head size enforced by the caller.
 * Every malformed input comes back as a Status value; nothing here
 * throws or aborts on wire bytes.
 */

#ifndef RISSP_UTIL_HTTP_HH
#define RISSP_UTIL_HTTP_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.hh"

namespace rissp::http
{

/** A parsed request head (everything before the body). */
struct RequestHead
{
    std::string method;  ///< e.g. "GET", "POST" (case-sensitive)
    std::string target;  ///< e.g. "/api/v1/run" (query not split)
    std::string version; ///< "HTTP/1.0" or "HTTP/1.1"
    std::vector<std::pair<std::string, std::string>> headers;

    /** Header value by case-insensitive name; nullptr when absent. */
    const std::string *header(const std::string &name) const;

    /** Body length from Content-Length (0 when absent). Rejects
     *  non-numeric, negative, duplicate-conflicting values and any
     *  Transfer-Encoding header. */
    Result<size_t> contentLength() const;

    /** True when the peer asked for the connection to stay open:
     *  HTTP/1.1 without "Connection: close", or HTTP/1.0 with an
     *  explicit keep-alive. */
    bool keepAlive() const;
};

/** Largest request head (request line + headers) the parser will
 *  accept; longer heads are a malformed request, not a buffer. */
constexpr size_t kMaxHeadBytes = 16 * 1024;

/** Offset just past the "\r\n\r\n" head terminator in @p buffer, or
 *  npos while the head is still incomplete. */
size_t findHeadEnd(const std::string &buffer);

/** Parse a request head (the bytes up to and including the blank
 *  line). Strict: CRLF line endings, single-space request line,
 *  ':'-separated headers with optional surrounding whitespace in the
 *  value. */
Result<RequestHead> parseRequestHead(const std::string &head);

/** Reason phrase for the status codes the server emits. */
const char *reasonPhrase(int status);

/**
 * Serialize a complete response: status line, Content-Type,
 * Content-Length, Connection (close unless @p keep_alive), any
 * @p extra_headers ("Name: value" strings, no CRLF), then the body.
 */
std::string buildResponse(
    int status, const std::string &body,
    const std::string &content_type = "application/json",
    bool keep_alive = false,
    const std::vector<std::string> &extra_headers = {});

} // namespace rissp::http

#endif // RISSP_UTIL_HTTP_HH
