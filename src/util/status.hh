/**
 * @file
 * Recoverable error reporting for library code.
 *
 * The gem5-style fatal() in logging.hh terminates the process, which
 * is acceptable at a CLI edge but never inside a library that a
 * long-lived service links: a malformed request must come back to the
 * caller as a value. `Status` carries an error code plus a human
 * message; `Result<T>` is a Status or a T. The convention across the
 * library is:
 *
 *  - user-provided input (plan text, workload names, MiniC sources,
 *    mnemonics, tech overrides) flows through Status/Result APIs;
 *  - panic() remains for internal invariants (bugs in this library);
 *  - fatal() survives only in CLI mains, where exiting is the point.
 *
 * Both types are cheap to copy and safe to share across threads once
 * constructed, which is what lets `FlowService` cache them.
 */

#ifndef RISSP_UTIL_STATUS_HH
#define RISSP_UTIL_STATUS_HH

#include <optional>
#include <string>
#include <utility>

#include "util/logging.hh"

namespace rissp
{

/** What went wrong, service-API style. */
enum class ErrorCode : uint8_t
{
    Ok,              ///< no error
    InvalidArgument, ///< malformed request field (bad mnemonic, plan…)
    NotFound,        ///< named entity absent (workload, symbol)
    ParseError,      ///< structured text did not parse (plan files)
    CompileError,    ///< MiniC source rejected by the compiler
    AsmError,        ///< assembly text rejected by the assembler
    Trap,            ///< program executed an instruction outside the subset
    StepLimit,       ///< run exhausted its cycle budget
    CosimMismatch,   ///< RISSP diverged from the reference ISS
    RetargetError,   ///< retargeting could not rewrite the program
    SynthError,      ///< synthesis met no sweep point
    Unavailable,     ///< service shedding load or draining (retry)
    Internal,        ///< invariant violation surfaced as a value
};

/** Stable lower-snake name, e.g. "invalid_argument" (JSON field). */
const char *errorCodeName(ErrorCode code);

/** An error code plus a formatted message; Ok when default-made. */
class Status
{
  public:
    Status() = default;

    static Status ok() { return Status(); }

    static Status
    error(ErrorCode code, std::string message)
    {
        Status s;
        s.errCode = code;
        s.errMessage = std::move(message);
        return s;
    }

    /** printf-style constructor for error statuses. */
    static Status errorf(ErrorCode code, const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    bool isOk() const { return errCode == ErrorCode::Ok; }
    explicit operator bool() const { return isOk(); }

    ErrorCode code() const { return errCode; }
    const std::string &message() const { return errMessage; }

    /** "invalid_argument: unknown workload 'x'" (or "ok"). */
    std::string toString() const;

  private:
    ErrorCode errCode = ErrorCode::Ok;
    std::string errMessage;
};

/** A Status or a value: the return type of every recoverable API. */
template <typename T>
class Result
{
  public:
    Result(T value) : val(std::move(value)) {}
    Result(Status status) : st(std::move(status))
    {
        if (st.isOk())
            panic("Result constructed from an ok Status");
    }

    bool isOk() const { return st.isOk(); }
    explicit operator bool() const { return isOk(); }

    const Status &status() const { return st; }
    ErrorCode code() const { return st.code(); }

    /** The value; calling this on an error Result is a bug. */
    const T &
    value() const
    {
        if (!isOk())
            panic("Result::value() on error: %s",
                  st.toString().c_str());
        return *val;
    }

    T &
    value()
    {
        if (!isOk())
            panic("Result::value() on error: %s",
                  st.toString().c_str());
        return *val;
    }

    /** Move the value out (the Result is spent afterwards). */
    T
    take()
    {
        if (!isOk())
            panic("Result::take() on error: %s",
                  st.toString().c_str());
        return std::move(*val);
    }

    /** The value, or @p fallback on error. */
    T
    valueOr(T fallback) const
    {
        return isOk() ? *val : std::move(fallback);
    }

  private:
    Status st;
    std::optional<T> val;
};

} // namespace rissp

#endif // RISSP_UTIL_STATUS_HH
