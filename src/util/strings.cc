#include "util/strings.hh"

#include <cctype>
#include <cstdio>
#include <cstring>

namespace rissp
{

std::string_view
trim(std::string_view s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
        s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
        s.substr(s.size() - suffix.size()) == suffix;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string
errnoString(int errnum)
{
    char buf[256];
    buf[0] = '\0';
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
    // GNU variant: returns the message pointer (maybe static, maybe
    // buf) and never fails.
    return std::string(strerror_r(errnum, buf, sizeof buf));
#else
    // POSIX variant: fills buf, returns 0 on success.
    if (strerror_r(errnum, buf, sizeof buf) != 0)
        std::snprintf(buf, sizeof buf, "errno %d", errnum);
    return std::string(buf);
#endif
}

std::string
join(const std::vector<std::string> &items, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += sep;
        out += items[i];
    }
    return out;
}

} // namespace rissp
