#include "util/status.hh"

#include <cstdarg>

namespace rissp
{

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok: return "ok";
      case ErrorCode::InvalidArgument: return "invalid_argument";
      case ErrorCode::NotFound: return "not_found";
      case ErrorCode::ParseError: return "parse_error";
      case ErrorCode::CompileError: return "compile_error";
      case ErrorCode::AsmError: return "asm_error";
      case ErrorCode::Trap: return "trap";
      case ErrorCode::StepLimit: return "step_limit";
      case ErrorCode::CosimMismatch: return "cosim_mismatch";
      case ErrorCode::RetargetError: return "retarget_error";
      case ErrorCode::SynthError: return "synth_error";
      case ErrorCode::Unavailable: return "unavailable";
      case ErrorCode::Internal: return "internal";
    }
    return "unknown";
}

Status
Status::errorf(ErrorCode code, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string message = vstrFormat(fmt, args);
    va_end(args);
    return error(code, std::move(message));
}

std::string
Status::toString() const
{
    if (isOk())
        return "ok";
    return std::string(errorCodeName(errCode)) + ": " + errMessage;
}

} // namespace rissp
