/**
 * @file
 * Small deterministic RNG (xorshift*) so verification runs, mutation
 * sampling and random program generation are reproducible across
 * machines and standard-library versions.
 */

#ifndef RISSP_UTIL_RNG_HH
#define RISSP_UTIL_RNG_HH

#include <cstdint>

namespace rissp
{

/** Deterministic 64-bit xorshift* generator. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545F4914F6CDD1Dull;
    }

    /** Uniform 32-bit value. */
    uint32_t next32() { return static_cast<uint32_t>(next() >> 32); }

    /** Uniform value in [0, bound) for bound >= 1. */
    uint32_t
    below(uint32_t bound)
    {
        return bound <= 1 ? 0 : next32() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    int32_t
    range(int32_t lo, int32_t hi)
    {
        return lo + static_cast<int32_t>(
            below(static_cast<uint32_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability num/den. */
    bool chance(uint32_t num, uint32_t den) { return below(den) < num; }

  private:
    uint64_t state;
};

} // namespace rissp

#endif // RISSP_UTIL_RNG_HH
