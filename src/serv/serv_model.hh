/**
 * @file
 * Model of Serv, "the world's smallest 32-bit RISC-V processor"
 * (olofk/serv), the paper's second baseline.
 *
 * Serv is a bit-serial RV32I core; the paper configures it for RV32E
 * (16 registers) with the register file mapped to on-chip memory. Two
 * things matter for the comparisons and are modelled here:
 *
 *  1. timing/energy: one instruction takes ~32 bit-serial steps plus
 *     per-class overheads, so CPI ~ 32+ (§4.2.4) — run a program and
 *     this model counts cycles per retired instruction class;
 *  2. hardware cost: a tiny 1-bit datapath but a large state budget —
 *     ~60% of placed area is flip-flops (Figure 10), which makes Serv
 *     faster (short paths), small at synthesis, yet power-hungry (FF =
 *     10x NAND2 power) and clock-tree-heavy at P&R.
 */

#ifndef RISSP_SERV_SERV_MODEL_HH
#define RISSP_SERV_SERV_MODEL_HH

#include "sim/refsim.hh"
#include "synth/synthesis.hh"

namespace rissp
{

/** Cycle/instruction statistics for a Serv run. */
struct ServRunStats
{
    uint64_t cycles = 0;      ///< bit-serial cycles consumed
    uint64_t instret = 0;     ///< instructions retired
    RunResult result;         ///< functional outcome

    double cpi() const
    {
        return instret ? static_cast<double>(cycles) /
            static_cast<double>(instret) : 0.0;
    }
};

/** The Serv baseline. */
class ServModel
{
  public:
    /** The model owns its technology by value: passing a temporary
     *  (a parsed spec, a derived corner) is safe. */
    explicit ServModel(Technology tech = {});

    /** Cycle cost of one retired instruction (bit-serial schedule). */
    static uint64_t cyclesFor(const RetireEvent &ev);

    /** Execute a program, counting serial cycles (functional behaviour
     *  delegates to the golden ISS; Serv is ISA-compatible). */
    ServRunStats run(const Program &program,
                     uint64_t maxSteps = 100'000'000) const;

    /** Synthesis-comparable cost report (Figures 6-8). */
    SynthReport synthReport() const;

    /** Average CPI the paper quotes for EPI calculations. */
    static constexpr double kNominalCpi = 32.0;

  private:
    Technology tech;
};

} // namespace rissp

#endif // RISSP_SERV_SERV_MODEL_HH
