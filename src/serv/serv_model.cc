#include "serv/serv_model.hh"

#include <utility>

#include "util/bits.hh"

namespace rissp
{

namespace
{

// Cost constants calibrated against the paper's Figures 6-8 and 10:
// Serv synthesizes smaller than every RISSP (the smallest RISSP is
// ~23% larger), clocks higher (~2.05 MHz vs <= 1.85 MHz), burns ~40%
// more power than RISSP-RV32E, and is ~60% flip-flop by placed area.
constexpr double kServCombGates = 760.0;
constexpr double kServFfCount = 250.0;
// Critical path calibrated at the reference FlexIC corner (485 ns
// total incl. 30 ns sequencing at a 15.4 ns NAND2). On any other
// technology the same bit-serial logic path rescales with the NAND2
// delay ratio; at the reference corner the ratio is exactly 1.0, so
// the calibrated total is reproduced bit-for-bit.
constexpr double kServCriticalPathNs = 485.0;
constexpr double kRefGateDelayNs = 15.4;
constexpr double kRefSeqOverheadNs = 30.0;
// Bit-serial cores keep most of their state and datapath toggling
// every cycle; these land Serv ~40% above RISSP-RV32E (§4.2.3).
constexpr double kServCombActivity = 0.42;
constexpr double kServFfActivity = 0.48;

} // namespace

ServModel::ServModel(Technology t) : tech(std::move(t))
{
}

uint64_t
ServModel::cyclesFor(const RetireEvent &ev)
{
    // A bit-serial core walks all 32 bits for every ALU result, plus a
    // couple of cycles of state-machine overhead; shifts pay per
    // shifted position; memory operations pay the bus handshake.
    constexpr uint64_t k_bits = 32;
    constexpr uint64_t k_overhead = 2;
    switch (ev.op) {
      case Op::Sll:
      case Op::Srl:
      case Op::Sra: {
        const uint64_t amount = ev.rs2Data & 31;
        return k_bits + amount + 4 + k_overhead;
      }
      case Op::Slli:
      case Op::Srli:
      case Op::Srai: {
        const Instr in = decode(ev.raw);
        const uint64_t amount =
            static_cast<uint32_t>(in.imm) & 31;
        return k_bits + amount + 4 + k_overhead;
      }
      case Op::Lb:
      case Op::Lh:
      case Op::Lw:
      case Op::Lbu:
      case Op::Lhu:
      case Op::Sb:
      case Op::Sh:
      case Op::Sw:
        return k_bits + 4 + k_overhead;
      case Op::Jal:
      case Op::Jalr:
        return k_bits + 3 + k_overhead;
      default:
        return k_bits + k_overhead;
    }
}

ServRunStats
ServModel::run(const Program &program, uint64_t maxSteps) const
{
    RefSim sim;
    sim.reset(program);
    ServRunStats stats;
    for (uint64_t i = 0; i < maxSteps; ++i) {
        RetireEvent ev = sim.step();
        if (ev.trap) {
            stats.result.reason = StopReason::Trapped;
            stats.result.stopPc = ev.pc;
            break;
        }
        stats.cycles += cyclesFor(ev);
        ++stats.instret;
        if (ev.halt) {
            stats.result.reason = StopReason::Halted;
            stats.result.exitCode = sim.reg(reg::a0);
            stats.result.stopPc = ev.pc;
            break;
        }
        if (i + 1 == maxSteps)
            stats.result.reason = StopReason::StepLimit;
    }
    stats.result.instret = stats.instret;
    return stats;
}

SynthReport
ServModel::synthReport() const
{
    SynthReport rpt;
    rpt.name = "Serv";
    rpt.subsetSize = kFullIsaSize; // full RV32E support, bit-serially
    rpt.combGates = kServCombGates;
    rpt.ffCount = kServFfCount;
    rpt.baseAreaGe = rpt.combGates + rpt.ffCount * tech.ffAreaGe;
    rpt.criticalPathNs =
        (kServCriticalPathNs - kRefSeqOverheadNs) *
            (tech.gateDelayNs / kRefGateDelayNs) +
        tech.ffClkToQPlusSetupNs;
    rpt.combActivity = kServCombActivity;
    rpt.ffActivity = kServFfActivity;

    // Serv always clocks above the single-cycle cores (shorter
    // path), so any tech whose sweep the RV32E baseline meets is
    // met here too; a window above even Serv's fmax is a
    // trusted-input precondition violation, like synthesize()'s.
    if (runFrequencySweep(rpt, tech) == 0)
        panic("ServModel::synthReport: no sweep point met under "
              "tech '%s' (path %.0f ns)", tech.name.c_str(),
              rpt.criticalPathNs);
    return rpt;
}

} // namespace rissp
