/**
 * @file
 * Parallel design-space exploration engine.
 *
 * For each expanded plan point the Explorer resolves the instruction
 * subset (Step 1), builds the RISSP and runs the workload on it,
 * lock-step co-simulates against the reference ISS (§3.4.2), and
 * pushes the subset through the synthesis and physical-implementation
 * models (§4.2-4.3). Each point expands into a small stage subgraph
 * (prepare → sim/synth → row) on an `exec::TaskGraph`, and the whole
 * plan runs on a work-stealing `exec::Scheduler`, so one point's
 * synthesis overlaps another's co-simulation;
 * simulation results are memoized on (subset fingerprint, workload
 * fingerprint) and synthesis results on (subset fingerprint, tech
 * fingerprint), so cartesian plans — where the same subset meets many
 * workloads and the same pair meets many corners — only pay for each
 * distinct computation once. The caches live in a shared
 * `flow::StageCaches` (by default private to the Explorer, but a
 * `FlowService` passes its own), so they persist across explore()
 * calls — and across every other entry point sharing the set:
 * repeated points are free.
 *
 * Every model underneath is deterministic and every point writes its
 * own pre-allocated result row, so the emitted table is identical for
 * any thread count.
 */

#ifndef RISSP_EXPLORE_EXPLORER_HH
#define RISSP_EXPLORE_EXPLORER_HH

#include <cstdint>
#include <memory>
#include <unordered_set>

#include "compiler/driver.hh"
#include "explore/plan.hh"
#include "explore/result_table.hh"
#include "flow/caches.hh"
#include "physimpl/physical.hh"
#include "util/mutex.hh"
#include "util/thread_annotations.hh"

namespace rissp::explore
{

/** What the Explorer does at each point. */
struct ExplorerOptions
{
    unsigned threads = 0;     ///< 0 = plan's choice, else hw threads
    bool simulate = true;     ///< run the workload on the RISSP
    bool verify = true;       ///< lock-step cosim vs the reference ISS
    bool synthesize = true;   ///< frequency-sweep synthesis
    bool physical = false;    ///< P&R model (adds die area/power)
    uint64_t maxSteps = 500'000'000; ///< per-run cycle budget
    RfStyle rfStyle = RfStyle::LatchArray;
};

/** Cache statistics over *this engine's* lookups: a miss is the
 *  first time this Explorer asks for a key, a hit is a repeat — no
 *  matter whether the shared caches (or a persistent store under
 *  them) already held the value from another engine or an earlier
 *  boot. That makes the numbers a pure function of the plans this
 *  engine has swept: deterministic across thread counts, service
 *  warmth and processes, which is what lets two services produce
 *  byte-identical explore responses. (Service-cumulative cache
 *  counters live on `FlowService::stats()`.) */
struct ExplorerStats
{
    uint64_t points = 0;       ///< points explored so far
    uint64_t compileHits = 0;  ///< workload compilations reused
    uint64_t compileMisses = 0;
    uint64_t simHits = 0;      ///< co-simulations reused
    uint64_t simMisses = 0;
    uint64_t synthHits = 0;    ///< synthesis sweeps reused
    uint64_t synthMisses = 0;
};

/** The exploration engine. */
class Explorer
{
  public:
    /** @param caches stage caches to use; by default the Explorer
     *  makes a private set. Pass a shared set (e.g. a FlowService's)
     *  to pool work across engines and request verbs. */
    explicit Explorer(
        ExplorerOptions options = {},
        std::shared_ptr<flow::StageCaches> caches = nullptr);

    /** Explore every point of @p plan; rows come back in plan order.
     *  The plan must validate() (panic() otherwise) — user-provided
     *  plans are validated by parse()/FlowService before they get
     *  here. */
    ResultTable explore(const ExplorationPlan &plan);

    /** Compile a bundled workload at @p level (memoized; the same
     *  cache the exploration points use). */
    minic::CompileResult compileWorkload(const std::string &name,
                                         minic::OptLevel level);

    /** Resolve a subset spec to concrete ops (compiles the backing
     *  workload for Kind::FromWorkload, memoized). */
    InstrSubset resolveSubset(const SubsetSpec &spec,
                              minic::OptLevel level);

    ExplorerStats stats() const;

    const ExplorerOptions &options() const { return opts; }

  private:
    /** The workload cache key (name, opt level); the same derivation
     *  flow::sourceKey gives request verbs. */
    static uint64_t workloadKey(const std::string &name,
                                minic::OptLevel level);

    flow::SimOutcome
    simulatePoint(const InstrSubset &subset,
                  const minic::CompileResult &compiled);
    flow::SynthOutcome synthesizePoint(const InstrSubset &subset,
                                       const std::string &name,
                                       const Technology &tech);

    /** Record one lookup against this engine's seen-key set; true =
     *  repeat (a hit in the ExplorerStats sense above). */
    bool noteCompileLookup(uint64_t key);
    bool noteSimLookup(const FingerprintPair &key);
    bool noteSynthLookup(const FingerprintPair &key);

    ExplorerOptions opts;
    std::shared_ptr<flow::StageCaches> caches;
    std::atomic<uint64_t> pointCount{0};

    mutable Mutex statsMu;
    std::unordered_set<uint64_t> seenCompile
        RISSP_GUARDED_BY(statsMu);
    std::unordered_set<FingerprintPair, FingerprintPairHash> seenSim
        RISSP_GUARDED_BY(statsMu);
    std::unordered_set<FingerprintPair, FingerprintPairHash>
        seenSynth RISSP_GUARDED_BY(statsMu);
    /** The engine-local hit/miss tallies (points lives in
     *  pointCount). */
    ExplorerStats tallies RISSP_GUARDED_BY(statsMu);
};

} // namespace rissp::explore

#endif // RISSP_EXPLORE_EXPLORER_HH
