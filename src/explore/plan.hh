/**
 * @file
 * Exploration plans: which (subset, workload, technology) points to
 * visit.
 *
 * The paper's premise is that RISSPs are cheap enough to generate
 * per-application, which only pays off when many candidate subsets can
 * be swept against many workloads and process corners quickly. An
 * `ExplorationPlan` names the three axes; `expand()` turns them into a
 * flat, deterministically-ordered point list for the `Explorer`.
 *
 * Plans can be built programmatically (the bench mains do this) or
 * parsed from a small line-oriented plan file (the `rissp-explore`
 * CLI does this; see `ExplorationPlan::parse`).
 */

#ifndef RISSP_EXPLORE_PLAN_HH
#define RISSP_EXPLORE_PLAN_HH

#include <string>
#include <vector>

#include "compiler/driver.hh"
#include "core/subset.hh"
#include "tech/technology.hh"
#include "util/status.hh"

namespace rissp::explore
{

/** A named candidate instruction subset. */
struct SubsetSpec
{
    /** How the ops are obtained. */
    enum class Kind : uint8_t
    {
        Full,         ///< the full RV32E baseline (RISSP-RV32E)
        FromWorkload, ///< extracted from a workload's -O binary (Step 1)
        Explicit,     ///< a hand-written mnemonic list
    };

    std::string name;                    ///< report/CSV label
    Kind kind = Kind::Full;
    std::string workload;                ///< Kind::FromWorkload source
    std::vector<std::string> mnemonics;  ///< Kind::Explicit ops

    static SubsetSpec full(const std::string &name = "RISSP-RV32E");
    static SubsetSpec fromWorkload(const std::string &workload,
                                   const std::string &name = "");
    static SubsetSpec fromNames(const std::string &name,
                                std::vector<std::string> mnemonics);
};

/** One technology axis entry: a `Technology` value (identity +
 *  model constants), usually resolved from the registry by name. */
struct TechSpec
{
    /** The resolved technology; `tech.name` labels result rows. */
    Technology tech;

    /** Resolve a registry spec string `name[:key=value,...]`
     *  (tech/registry.hh grammar) against the built-in registry. */
    static Result<TechSpec> fromSpec(const std::string &spec);

    /** Override one model constant by name, e.g. "gateDelayNs", or
     *  a derived key ("voltage", "ffPowerRatio"), extending
     *  `tech.name` spec-style so the modified corner never reports
     *  under its base technology's label. Tech overrides are user
     *  input: an unknown key or out-of-range value comes back as
     *  InvalidArgument. */
    Status trySet(const std::string &key, double value);

    /** Override a constant whose key is known to be valid (panic()
     *  on an unknown key); user input goes through trySet(). */
    void set(const std::string &key, double value);
};

/** One expanded design-space point (indices into the plan's axes). */
struct PlanPoint
{
    size_t index = 0;        ///< row in the ResultTable
    size_t subsetIdx = 0;
    size_t workloadIdx = 0;
    size_t techIdx = 0;
};

/** The three axes plus expansion policy. */
class ExplorationPlan
{
  public:
    /** How the axes combine into points. */
    enum class Mode : uint8_t
    {
        Cartesian, ///< subsets x workloads x techs
        Paired,    ///< i-th subset with i-th workload, x techs
    };

    std::vector<SubsetSpec> subsets;
    std::vector<std::string> workloads; ///< bundled workload names
    std::vector<TechSpec> techs;        ///< empty means default tech
    minic::OptLevel opt = minic::OptLevel::O2;
    Mode mode = Mode::Cartesian;
    unsigned threads = 0;               ///< 0 = hardware concurrency

    /**
     * Check the plan is explorable: axes non-empty, Paired-mode
     * sizes equal, every workload name bundled, every explicit
     * mnemonic known. The Explorer requires a valid plan; FlowService
     * turns a failed validate() into an error response.
     */
    Status validate() const;

    /** Expand into the deterministic point list. The plan must
     *  validate() (panic() otherwise). */
    std::vector<PlanPoint> expand() const;

    /** Points expand() will produce. */
    size_t pointCount() const;

    /**
     * Parse a plan file. Line-oriented; '#' starts a comment:
     *
     *   opt O2                      # O0|O1|O2|O3|Oz
     *   mode cartesian              # cartesian|paired
     *   threads 4
     *   workload crc32              # bundled workload name
     *   subset tiny = addi add lw sw jal beq
     *   subset full = @full         # the RV32E baseline
     *   subset fit  = @crc32        # extracted from a workload
     *   tech flexic-0.6um           # a registered technology name
     *   tech silicon-65nm
     *   tech flexic-0.6um:voltage=2.4,ffPowerRatio=8
     *   tech flexic-0.6um gateDelayNs=20   # overrides also as words
     *
     * `tech` lines are validated through `TechRegistry::builtins()`:
     * the name must be registered (`risspgen techs` lists them) and
     * every key/value is checked. A spec with overrides — colon or
     * word form — names its result rows after the full composed
     * spec, so an overridden corner never shares a label with its
     * base technology.
     *
     * Plan files are user input: malformed lines are reported as a
     * ParseError carrying every offending line ("plan line N: ...",
     * newline-separated), not just the first one — parsing continues
     * past a bad line so one pass surfaces all mistakes.
     */
    static Result<ExplorationPlan> parse(const std::string &text);

    /**
     * The paper's per-application flow as a plan: for each workload a
     * RISSP generated from that workload's own binary (Paired mode),
     * plus optionally the full-ISA baseline paired with the first
     * workload. This is what Table 3 / Figures 7-9 sweep.
     */
    static ExplorationPlan
    perWorkloadRissps(const std::vector<std::string> &workload_names,
                      bool include_full_baseline = false);
};

} // namespace rissp::explore

#endif // RISSP_EXPLORE_PLAN_HH
