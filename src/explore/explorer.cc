/**
 * @file
 * The exploration engine: point execution, memoization, scheduling.
 */

#include "explore/explorer.hh"

#include "core/rissp.hh"
#include "exec/scheduler.hh"
#include "explore/fingerprint.hh"
#include "util/logging.hh"
#include "verify/integration_verify.hh"
#include "workloads/workloads.hh"

namespace rissp::explore
{

namespace
{

/** Tech used when a plan names none: the registry default. */
const TechSpec &
defaultTechSpec()
{
    static const TechSpec spec{};
    return spec;
}

/** Functional signature of a run: exit code plus all MMIO output. */
uint64_t
runSignature(uint32_t exit_code,
             const std::vector<uint32_t> &out_words,
             const std::string &out_text)
{
    uint64_t hash = fnv1a(&exit_code, sizeof exit_code);
    for (uint32_t w : out_words)
        hash = fnv1a(&w, sizeof w, hash);
    return fnv1a(out_text, hash);
}

} // namespace

Explorer::Explorer(ExplorerOptions options,
                   std::shared_ptr<flow::StageCaches> shared_caches)
    : opts(options),
      caches(shared_caches ? std::move(shared_caches)
                           : std::make_shared<flow::StageCaches>())
{
}

uint64_t
Explorer::workloadKey(const std::string &name, minic::OptLevel level)
{
    return flow::sourceKey(name, workloadByName(name).source, level);
}

bool
Explorer::noteCompileLookup(uint64_t key)
{
    LockGuard lock(statsMu);
    const bool repeat = !seenCompile.insert(key).second;
    ++(repeat ? tallies.compileHits : tallies.compileMisses);
    return repeat;
}

bool
Explorer::noteSimLookup(const FingerprintPair &key)
{
    LockGuard lock(statsMu);
    const bool repeat = !seenSim.insert(key).second;
    ++(repeat ? tallies.simHits : tallies.simMisses);
    return repeat;
}

bool
Explorer::noteSynthLookup(const FingerprintPair &key)
{
    LockGuard lock(statsMu);
    const bool repeat = !seenSynth.insert(key).second;
    ++(repeat ? tallies.synthHits : tallies.synthMisses);
    return repeat;
}

minic::CompileResult
Explorer::compileWorkload(const std::string &name,
                          minic::OptLevel level)
{
    const uint64_t key = workloadKey(name, level);
    noteCompileLookup(key);
    // Bundled workloads always compile, so the cached Result is
    // always a value.
    return caches
        ->compileLookup(key,
                        [&]() -> Result<minic::CompileResult> {
                            return minic::compile(
                                workloadByName(name).source, level);
                        })
        .value();
}

InstrSubset
Explorer::resolveSubset(const SubsetSpec &spec, minic::OptLevel level)
{
    switch (spec.kind) {
      case SubsetSpec::Kind::Full:
        return InstrSubset::fullRv32e();
      case SubsetSpec::Kind::Explicit:
        return InstrSubset::fromNames(spec.mnemonics);
      case SubsetSpec::Kind::FromWorkload:
        return InstrSubset::fromProgram(
            compileWorkload(spec.workload, level).program);
    }
    panic("resolveSubset: bad kind");
}

flow::SimOutcome
Explorer::simulatePoint(const InstrSubset &subset,
                        const minic::CompileResult &compiled)
{
    flow::SimOutcome out;
    Rissp chip(subset, "explore");
    chip.reset(compiled.program);
    const RunResult run = chip.run(opts.maxSteps);
    out.trapped = run.reason == StopReason::Trapped;
    out.cycles = run.instret;
    out.exitCode = run.exitCode;
    out.signature = runSignature(run.exitCode, chip.outputWords(),
                                 chip.outputText());
    if (run.reason != StopReason::Halted) {
        out.cosimPassed = false;
    } else if (!opts.verify) {
        out.cosimPassed = true; // assumed, not checked
    } else {
        CosimOptions cosim;
        cosim.maxSteps = opts.maxSteps;
        cosim.contextEvents = 0; // only the verdict is tabulated
        out.cosimPassed =
            cosimulate(compiled.program, subset, cosim).passed;
    }
    return out;
}

flow::SynthOutcome
Explorer::synthesizePoint(const InstrSubset &subset,
                          const std::string &name,
                          const Technology &tech)
{
    flow::SynthOutcome out;
    const SynthesisModel model(tech);
    const SynthReport report = model.synthesize(subset, name);
    out.fmaxKhz = report.fmaxKhz;
    out.avgAreaGe = report.avgAreaGe;
    out.avgPowerMw = report.avgPowerMw;
    out.epiNj = report.epiNanojoules(1.0, tech); // CPI = 1, §4.2.4
    if (opts.physical) {
        const PhysicalModel phys(tech);
        const PhysReport placed = phys.implement(report, opts.rfStyle);
        out.physRun = true;
        out.dieAreaMm2 = placed.dieAreaMm2;
        out.physPowerMw = placed.powerMw;
    }
    return out;
}

ResultTable
Explorer::explore(const ExplorationPlan &plan)
{
    const std::vector<PlanPoint> points = plan.expand();
    ResultTable table(points.size());

    // Per-point state shared between that point's stage nodes. The
    // sim and synth stages write disjoint members of the same row,
    // so the two can run on different workers without a lock.
    struct PointState
    {
        ExplorationResult row;
        minic::CompileResult compiled; ///< filled when simulating
        uint64_t subsetFp = 0;
    };
    std::vector<PointState> states(points.size());

    // One subgraph per point, at pipeline-stage granularity:
    //
    //      prepare ──► sim ────┐
    //         │    └──► synth ─┴─► row
    //
    // so one point's synthesis overlaps another's co-simulation and
    // the scheduler steals whichever stage is ready. Nodes are added
    // in plan order; with one thread the scheduler always runs the
    // lowest-id ready node next, which finishes each point before
    // starting the next — the old fully-serial schedule the per-row
    // memo-hit flags are pinned against.
    exec::TaskGraph graph;
    for (const PlanPoint &pt : points) {
        const SubsetSpec &sspec = plan.subsets[pt.subsetIdx];
        const std::string &wlName = plan.workloads[pt.workloadIdx];
        const TechSpec &tech = plan.techs.empty()
            ? defaultTechSpec() : plan.techs[pt.techIdx];
        PointState &state = states[pt.index];

        const exec::TaskId prepare = graph.add(
            [this, &plan, &sspec, &wlName, &tech, &state, pt] {
                ExplorationResult &row = state.row;
                row.index = pt.index;
                row.subsetName = sspec.name;
                row.workloadName = wlName;
                row.techName = tech.tech.name;
                row.subset = resolveSubset(sspec, plan.opt);
                row.subsetSize = row.subset.size();
                state.subsetFp = subsetFingerprint(row.subset);
                if (opts.simulate)
                    state.compiled =
                        compileWorkload(wlName, plan.opt);
            },
            {}, "prepare");

        std::vector<exec::TaskId> rowDeps{prepare};
        if (opts.simulate) {
            rowDeps.push_back(graph.add(
                [this, &plan, &wlName, &state] {
                    ExplorationResult &row = state.row;
                    const FingerprintPair simKey{
                        state.subsetFp,
                        workloadKey(wlName, plan.opt)};
                    row.simMemoHit = noteSimLookup(simKey);
                    const flow::SimOutcome sim =
                        caches->simLookup(simKey, [&] {
                            return simulatePoint(row.subset,
                                                 state.compiled);
                        });
                    row.simRun = true;
                    row.trapped = sim.trapped;
                    row.cosimPassed = sim.cosimPassed;
                    row.cycles = sim.cycles;
                    row.exitCode = sim.exitCode;
                    row.signature = sim.signature;
                    // The sim stage is the compiled image's only
                    // consumer; release it so a large plan holds
                    // at most the in-flight images, not one per
                    // point for the whole sweep.
                    state.compiled = {};
                },
                {prepare}, "sim"));
        }
        if (opts.synthesize) {
            rowDeps.push_back(graph.add(
                [this, &sspec, &tech, &state] {
                    ExplorationResult &row = state.row;
                    const FingerprintPair synthKey{
                        state.subsetFp,
                        techFingerprint(tech.tech)};
                    row.synthMemoHit = noteSynthLookup(synthKey);
                    const flow::SynthOutcome synth =
                        caches->synthLookup(synthKey, [&] {
                            return synthesizePoint(row.subset,
                                                   sspec.name,
                                                   tech.tech);
                        });
                    row.synthRun = true;
                    row.fmaxKhz = synth.fmaxKhz;
                    row.avgAreaGe = synth.avgAreaGe;
                    row.avgPowerMw = synth.avgPowerMw;
                    row.epiNj = synth.epiNj;
                    row.physRun = synth.physRun;
                    row.dieAreaMm2 = synth.dieAreaMm2;
                    row.physPowerMw = synth.physPowerMw;
                },
                {prepare}, "synth"));
        }
        graph.add(
            [this, &table, &state] {
                pointCount.fetch_add(1, std::memory_order_relaxed);
                table.set(std::move(state.row));
            },
            rowDeps, "row");
    }

    const unsigned threads =
        opts.threads != 0 ? opts.threads : plan.threads;
    exec::Scheduler scheduler(threads);
    scheduler.runToCompletion(std::move(graph));
    return table;
}

ExplorerStats
Explorer::stats() const
{
    ExplorerStats s;
    {
        LockGuard lock(statsMu);
        s = tallies;
    }
    s.points = pointCount.load(std::memory_order_relaxed);
    return s;
}

} // namespace rissp::explore
