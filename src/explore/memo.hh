/**
 * @file
 * Exactly-once concurrent memoization cache.
 *
 * The first thread to ask for a key computes the value; every other
 * thread — including ones that arrive while the computation is still
 * running — blocks on a shared future and then reuses it. Because each
 * distinct key is computed exactly once, `misses()` equals the number
 * of distinct keys and `hits()` is deterministic for a fixed plan no
 * matter how many worker threads race on the cache.
 */

#ifndef RISSP_EXPLORE_MEMO_HH
#define RISSP_EXPLORE_MEMO_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <unordered_map>
#include <utility>

#include "util/mutex.hh"

namespace rissp::explore
{

/** Key for caches keyed on two fingerprints. */
struct FingerprintPair
{
    uint64_t first = 0;
    uint64_t second = 0;

    bool operator==(const FingerprintPair &) const = default;
};

struct FingerprintPairHash
{
    size_t operator()(const FingerprintPair &k) const
    {
        // Splitmix-style combine; both halves are already hashes.
        uint64_t x = k.first + 0x9e3779b97f4a7c15ull * k.second;
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        return static_cast<size_t>(x);
    }
};

/** Thread-safe exactly-once memoization of Key -> Value. */
template <typename Key, typename Value,
          typename Hash = std::hash<Key>>
class MemoCache
{
  public:
    /**
     * Return the cached value for @p key, computing it with @p fn on
     * first use. @p fn runs outside the cache lock, so long-running
     * computations for different keys proceed in parallel.
     * @p was_hit, when given, reports whether this lookup reused a
     * value (note: which of several racing lookups computes is
     * scheduling-dependent; only the aggregate counters are
     * deterministic).
     *
     * If @p fn throws, the exception propagates to this caller and to
     * every waiter already blocked on the same key, and the entry is
     * removed — the next lookup of the key recomputes. (Callers that
     * want failures cached as values store a Result instead.)
     */
    template <typename Fn>
    Value getOrCompute(const Key &key, Fn &&fn,
                       bool *was_hit = nullptr)
    {
        std::promise<Value> promise;
        std::shared_future<Value> future;
        bool owner = false;
        {
            LockGuard lock(mu);
            auto it = entries.find(key);
            if (it == entries.end()) {
                future = promise.get_future().share();
                entries.emplace(key, future);
                owner = true;
            } else {
                future = it->second;
            }
        }
        if (owner) {
            missCount.fetch_add(1, std::memory_order_relaxed);
            try {
                promise.set_value(fn());
            } catch (...) {
                // Don't poison the key: erase the entry FIRST so no
                // new lookup can latch onto the failed future, then
                // publish the exception to the waiters already
                // blocked on it. A later lookup recomputes instead
                // of receiving broken_promise forever.
                {
                    LockGuard lock(mu);
                    entries.erase(key);
                }
                promise.set_exception(std::current_exception());
            }
        } else {
            hitCount.fetch_add(1, std::memory_order_relaxed);
        }
        if (was_hit)
            *was_hit = !owner;
        return future.get();
    }

    /** Lookups that reused a value (including waits on in-flight
     *  computations by another thread). */
    uint64_t hits() const
    {
        return hitCount.load(std::memory_order_relaxed);
    }

    /** Lookups that computed: equals the number of distinct keys. */
    uint64_t misses() const
    {
        return missCount.load(std::memory_order_relaxed);
    }

    size_t size() const
    {
        LockGuard lock(mu);
        return entries.size();
    }

  private:
    mutable rissp::Mutex mu;
    /** Only the entry *map* is guarded; the shared futures it hands
     *  out synchronize on their own (value published by set_value,
     *  consumed by get). */
    std::unordered_map<Key, std::shared_future<Value>, Hash> entries
        RISSP_GUARDED_BY(mu);
    std::atomic<uint64_t> hitCount{0};
    std::atomic<uint64_t> missCount{0};
};

} // namespace rissp::explore

#endif // RISSP_EXPLORE_MEMO_HH
