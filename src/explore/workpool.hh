/**
 * @file
 * Batch adapter over the unified execution layer.
 *
 * `WorkStealingPool` predates `exec::Scheduler` and used to own the
 * work-stealing loop itself; the scheduler absorbed that loop when
 * the unit of work moved from whole exploration points to pipeline
 * stages. The class survives as a two-line convenience for "run this
 * flat batch of independent tasks and block": it builds a dependency-
 * free `TaskGraph` and hands it to a scheduler. New code with any
 * structure to express should use `exec::Scheduler` directly.
 */

#ifndef RISSP_EXPLORE_WORKPOOL_HH
#define RISSP_EXPLORE_WORKPOOL_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace rissp::explore
{

/** Run a fixed batch of independent tasks on a work-stealing
 *  scheduler. */
class WorkStealingPool
{
  public:
    using Task = std::function<void()>;

    /** @p threads 0 picks std::thread::hardware_concurrency(). */
    explicit WorkStealingPool(unsigned threads = 0);

    /** Execute every task; blocks until all complete. Runs inline,
     *  in order, when constructed with one thread. A task exception
     *  propagates to the caller after the batch settles. */
    void run(std::vector<Task> tasks);

    unsigned threadCount() const { return numThreads; }

    /** Tasks obtained by stealing rather than from the worker's own
     *  deque in the last run() (diagnostic; 0 when single-threaded). */
    uint64_t stealCount() const { return steals; }

  private:
    unsigned numThreads;
    /** Written only by run() after its scheduler has joined; a pool
     *  is driven from one thread (run() blocks), so no lock — and
     *  therefore no capability annotation — applies. Concurrent
     *  run() calls on one pool were never supported; use a shared
     *  `exec::Scheduler` for that. */
    uint64_t steals = 0;
};

} // namespace rissp::explore

#endif // RISSP_EXPLORE_WORKPOOL_HH
