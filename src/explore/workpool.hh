/**
 * @file
 * Work-stealing thread pool for exploration points.
 *
 * Design-space points are wildly uneven — a 7-op subset cosimulates in
 * microseconds while the full-ISA synthesis sweep grinds through 117
 * frequency points — so static partitioning leaves threads idle.
 * Each worker owns a deque seeded round-robin; it pops from the back
 * of its own deque (hot cache) and steals from the front of a
 * victim's (oldest, likely biggest remaining chunk). Tasks never
 * spawn tasks, so a worker may exit once every deque reads empty.
 */

#ifndef RISSP_EXPLORE_WORKPOOL_HH
#define RISSP_EXPLORE_WORKPOOL_HH

#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace rissp::explore
{

/** Run a fixed batch of tasks on a work-stealing pool. */
class WorkStealingPool
{
  public:
    using Task = std::function<void()>;

    /** @p threads 0 picks std::thread::hardware_concurrency(). */
    explicit WorkStealingPool(unsigned threads = 0);

    /** Execute every task; blocks until all complete. Runs inline
     *  when constructed with one thread. */
    void run(std::vector<Task> tasks);

    unsigned threadCount() const { return numThreads; }

    /** Tasks obtained by stealing rather than from the worker's own
     *  deque in the last run() (diagnostic; 0 when single-threaded). */
    uint64_t stealCount() const { return steals; }

  private:
    struct WorkerQueue
    {
        std::mutex mu;
        std::deque<Task> tasks;
    };

    void workerLoop(std::vector<WorkerQueue> &queues, unsigned self);

    unsigned numThreads;
    uint64_t steals = 0;
    std::mutex stealMu;
};

} // namespace rissp::explore

#endif // RISSP_EXPLORE_WORKPOOL_HH
