/**
 * @file
 * Stable 64-bit fingerprints for design-space memoization.
 *
 * The exploration engine memoizes simulation results on
 * (subset fingerprint, workload fingerprint) and synthesis results on
 * (subset fingerprint, technology fingerprint). Fingerprints must be
 * deterministic across threads and across runs so a plan that revisits
 * a point — or a bench binary that sweeps the same subset under many
 * technologies — pays for it exactly once.
 */

#ifndef RISSP_EXPLORE_FINGERPRINT_HH
#define RISSP_EXPLORE_FINGERPRINT_HH

#include <cstdint>
#include <cstring>
#include <string>

#include "core/subset.hh"
#include "tech/technology.hh"

namespace rissp::explore
{

/** FNV-1a offset basis. */
constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ull;

/** Fold @p bytes into an FNV-1a running hash. */
inline uint64_t
fnv1a(const void *bytes, size_t len, uint64_t hash = kFnvBasis)
{
    const auto *p = static_cast<const uint8_t *>(bytes);
    for (size_t i = 0; i < len; ++i) {
        hash ^= p[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/** Fold a string (including a terminator so "ab","c" != "a","bc"). */
inline uint64_t
fnv1a(const std::string &s, uint64_t hash = kFnvBasis)
{
    hash = fnv1a(s.data(), s.size(), hash);
    const uint8_t sep = 0xff;
    return fnv1a(&sep, 1, hash);
}

/**
 * Subset fingerprint: one bit per Op. kNumOps is well under 64, so the
 * bitmask itself is a collision-free fingerprint.
 */
inline uint64_t
subsetFingerprint(const InstrSubset &subset)
{
    static_assert(kNumOps <= 64, "subset bitmask no longer fits");
    uint64_t mask = 0;
    for (Op op : subset.ops())
        mask |= 1ull << static_cast<unsigned>(op);
    return mask;
}

/** Workload fingerprint: name, source text and optimization level. */
inline uint64_t
workloadFingerprint(const std::string &name, const std::string &source,
                    uint8_t opt_level)
{
    uint64_t hash = fnv1a(name);
    hash = fnv1a(source, hash);
    return fnv1a(&opt_level, 1, hash);
}

/** Technology fingerprint over every model constant. Identity
 *  (name, description) is deliberately excluded: two names for the
 *  same constants produce the same results and may share cache
 *  entries, so the fingerprint hashes only the `TechParams` slice. */
inline uint64_t
techFingerprint(const TechParams &tech)
{
    // TechParams is a plain aggregate of doubles; hashing the object
    // representation captures any constant an override set.
    static_assert(std::is_trivially_copyable_v<TechParams>);
    unsigned char bytes[sizeof(TechParams)];
    std::memcpy(bytes, &tech, sizeof bytes);
    return fnv1a(bytes, sizeof bytes);
}

} // namespace rissp::explore

#endif // RISSP_EXPLORE_FINGERPRINT_HH
