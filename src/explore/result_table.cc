/**
 * @file
 * Result table emitters and the Pareto-frontier query.
 */

#include "explore/result_table.hh"

#include <sstream>

#include "util/json.hh"
#include "util/logging.hh"

namespace rissp::explore
{

void
ResultTable::set(ExplorationResult result)
{
    const size_t index = result.index;
    if (index >= table.size())
        panic("ResultTable::set: row %zu out of range (%zu rows)",
              index, table.size());
    table[index] = std::move(result);
}

const ExplorationResult &
ResultTable::row(size_t index) const
{
    if (index >= table.size())
        panic("ResultTable::row: row %zu out of range (%zu rows)",
              index, table.size());
    return table[index];
}

namespace
{

/** Print doubles in shortest round-trip form so CSV/JSON compare
 *  byte-for-byte across runs. */
std::string
num(double value)
{
    return jsonNum(value);
}

/** RFC 4180: quote a field when it contains a comma, quote, CR or
 *  newline, doubling embedded quotes. Overridden-corner technology
 *  names (`flexic-0.6um:voltage=2.8,ffPowerRatio=8`) contain commas
 *  on every row they label, so an unquoted emitter would silently
 *  shift every later column. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\r\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
ResultTable::csv() const
{
    std::ostringstream out;
    out << "index,subset,workload,tech,subset_size,"
        << "sim_run,trapped,cosim_passed,cycles,exit_code,signature,"
        << "synth_run,fmax_khz,avg_area_ge,avg_power_mw,epi_nj,"
        << "phys_run,die_area_mm2,phys_power_mw\n";
    for (const ExplorationResult &r : table) {
        out << r.index << ',' << csvField(r.subsetName) << ','
            << csvField(r.workloadName) << ','
            << csvField(r.techName) << ','
            << r.subsetSize << ',' << r.simRun << ',' << r.trapped
            << ',' << r.cosimPassed << ',' << r.cycles << ','
            << r.exitCode << ',' << r.signature << ',' << r.synthRun
            << ',' << num(r.fmaxKhz) << ',' << num(r.avgAreaGe)
            << ',' << num(r.avgPowerMw) << ',' << num(r.epiNj)
            << ',' << r.physRun << ',' << num(r.dieAreaMm2) << ','
            << num(r.physPowerMw) << '\n';
    }
    return out.str();
}

std::string
ResultTable::json() const
{
    std::ostringstream out;
    out << "[\n";
    for (size_t i = 0; i < table.size(); ++i) {
        const ExplorationResult &r = table[i];
        out << "  {\"index\": " << r.index
            << ", \"subset\": \"" << jsonEscape(r.subsetName)
            << "\", \"workload\": \"" << jsonEscape(r.workloadName)
            << "\", \"tech\": \"" << jsonEscape(r.techName)
            << "\", \"subset_size\": " << r.subsetSize
            << ", \"sim_run\": " << (r.simRun ? "true" : "false")
            << ", \"trapped\": " << (r.trapped ? "true" : "false")
            << ", \"cosim_passed\": "
            << (r.cosimPassed ? "true" : "false")
            << ", \"cycles\": " << r.cycles
            << ", \"exit_code\": " << r.exitCode
            << ", \"signature\": " << r.signature
            << ", \"synth_run\": " << (r.synthRun ? "true" : "false")
            << ", \"fmax_khz\": " << num(r.fmaxKhz)
            << ", \"avg_area_ge\": " << num(r.avgAreaGe)
            << ", \"avg_power_mw\": " << num(r.avgPowerMw)
            << ", \"epi_nj\": " << num(r.epiNj)
            << ", \"phys_run\": " << (r.physRun ? "true" : "false")
            << ", \"die_area_mm2\": " << num(r.dieAreaMm2)
            << ", \"phys_power_mw\": " << num(r.physPowerMw) << "}"
            << (i + 1 < table.size() ? "," : "") << "\n";
    }
    out << "]\n";
    return out.str();
}

bool
ResultTable::dominates(const ExplorationResult &a,
                       const ExplorationResult &b)
{
    const bool noWorse = a.cycles <= b.cycles &&
        a.avgAreaGe <= b.avgAreaGe && a.avgPowerMw <= b.avgPowerMw;
    const bool better = a.cycles < b.cycles ||
        a.avgAreaGe < b.avgAreaGe || a.avgPowerMw < b.avgPowerMw;
    return noWorse && better;
}

std::vector<size_t>
ResultTable::paretoFrontier() const
{
    // Only points that actually work can be on the frontier: the
    // co-simulation must have passed (a trapped RISSP is not a valid
    // implementation of the workload) and synthesis must have run
    // (otherwise area/power are meaningless zeros).
    std::vector<size_t> candidates;
    for (size_t i = 0; i < table.size(); ++i) {
        const ExplorationResult &r = table[i];
        if (r.simRun && r.synthRun && r.cosimPassed && !r.trapped)
            candidates.push_back(i);
    }
    std::vector<size_t> frontier;
    for (size_t i : candidates) {
        bool dominated = false;
        for (size_t j : candidates) {
            if (i != j && dominates(table[j], table[i])) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            frontier.push_back(i);
    }
    return frontier;
}

} // namespace rissp::explore
