/**
 * @file
 * WorkStealingPool: a flat batch is a dependency-free task graph.
 */

#include "explore/workpool.hh"

#include <thread>

#include "exec/scheduler.hh"

namespace rissp::explore
{

WorkStealingPool::WorkStealingPool(unsigned threads)
    : numThreads(threads)
{
    if (numThreads == 0) {
        numThreads = std::thread::hardware_concurrency();
        if (numThreads == 0)
            numThreads = 1;
    }
}

void
WorkStealingPool::run(std::vector<Task> tasks)
{
    steals = 0;
    if (tasks.empty())
        return;
    exec::TaskGraph graph;
    for (Task &task : tasks)
        graph.add(std::move(task));
    exec::Scheduler scheduler(numThreads);
    scheduler.runToCompletion(std::move(graph));
    steals = scheduler.stealCount();
}

} // namespace rissp::explore
