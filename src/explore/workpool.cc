/**
 * @file
 * Work-stealing pool implementation.
 */

#include "explore/workpool.hh"

#include <thread>

namespace rissp::explore
{

WorkStealingPool::WorkStealingPool(unsigned threads)
    : numThreads(threads)
{
    if (numThreads == 0) {
        numThreads = std::thread::hardware_concurrency();
        if (numThreads == 0)
            numThreads = 1;
    }
}

void
WorkStealingPool::run(std::vector<Task> tasks)
{
    steals = 0;
    if (tasks.empty())
        return;
    if (numThreads == 1) {
        for (Task &t : tasks)
            t();
        return;
    }

    std::vector<WorkerQueue> queues(numThreads);
    for (size_t i = 0; i < tasks.size(); ++i)
        queues[i % numThreads].tasks.push_back(std::move(tasks[i]));

    std::vector<std::thread> workers;
    workers.reserve(numThreads);
    for (unsigned w = 0; w < numThreads; ++w)
        workers.emplace_back(&WorkStealingPool::workerLoop, this,
                             std::ref(queues), w);
    for (std::thread &t : workers)
        t.join();
}

void
WorkStealingPool::workerLoop(std::vector<WorkerQueue> &queues,
                             unsigned self)
{
    uint64_t localSteals = 0;
    for (;;) {
        Task task;
        // Own deque first, newest task (LIFO keeps caches warm).
        {
            WorkerQueue &own = queues[self];
            std::lock_guard<std::mutex> lock(own.mu);
            if (!own.tasks.empty()) {
                task = std::move(own.tasks.back());
                own.tasks.pop_back();
            }
        }
        // Then steal the oldest task from another worker.
        if (!task) {
            for (unsigned off = 1; off < numThreads && !task; ++off) {
                WorkerQueue &victim =
                    queues[(self + off) % numThreads];
                std::lock_guard<std::mutex> lock(victim.mu);
                if (!victim.tasks.empty()) {
                    task = std::move(victim.tasks.front());
                    victim.tasks.pop_front();
                    ++localSteals;
                }
            }
        }
        // Tasks never enqueue new tasks: every deque empty means the
        // batch is drained (running tasks add nothing).
        if (!task)
            break;
        task();
    }
    if (localSteals) {
        std::lock_guard<std::mutex> lock(stealMu);
        steals += localSteals;
    }
}

} // namespace rissp::explore
