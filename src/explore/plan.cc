/**
 * @file
 * Plan construction, expansion and plan-file parsing.
 */

#include "explore/plan.hh"

#include <exception>
#include <sstream>

#include "util/logging.hh"
#include "workloads/workloads.hh"

namespace rissp::explore
{

SubsetSpec
SubsetSpec::full(const std::string &name)
{
    SubsetSpec spec;
    spec.name = name;
    spec.kind = Kind::Full;
    return spec;
}

SubsetSpec
SubsetSpec::fromWorkload(const std::string &workload,
                         const std::string &name)
{
    SubsetSpec spec;
    spec.name = name.empty() ? "RISSP-" + workload : name;
    spec.kind = Kind::FromWorkload;
    spec.workload = workload;
    return spec;
}

SubsetSpec
SubsetSpec::fromNames(const std::string &name,
                      std::vector<std::string> mnemonics)
{
    SubsetSpec spec;
    spec.name = name;
    spec.kind = Kind::Explicit;
    spec.mnemonics = std::move(mnemonics);
    return spec;
}

void
TechSpec::set(const std::string &key, double value)
{
    if (key == "gateDelayNs")
        tech.gateDelayNs = value;
    else if (key == "ffClkToQPlusSetupNs")
        tech.ffClkToQPlusSetupNs = value;
    else if (key == "fetchDepthLevels")
        tech.fetchDepthLevels = value;
    else if (key == "switchLevelDelay")
        tech.switchLevelDelay = value;
    else if (key == "ffAreaGe")
        tech.ffAreaGe = value;
    else if (key == "rfLatchAreaGe")
        tech.rfLatchAreaGe = value;
    else if (key == "nand2AreaUm2")
        tech.nand2AreaUm2 = value;
    else if (key == "placementUtilization")
        tech.placementUtilization = value;
    else if (key == "dynUwPerGeMhz")
        tech.dynUwPerGeMhz = value;
    else if (key == "ffPowerMultiplier")
        tech.ffPowerMultiplier = value;
    else if (key == "staticUwPerGe")
        tech.staticUwPerGe = value;
    else if (key == "risspCombActivity")
        tech.risspCombActivity = value;
    else if (key == "risspFfActivity")
        tech.risspFfActivity = value;
    else if (key == "sweepStartKhz")
        tech.sweepStartKhz = value;
    else if (key == "sweepEndKhz")
        tech.sweepEndKhz = value;
    else if (key == "sweepStepKhz")
        tech.sweepStepKhz = value;
    else if (key == "areaEffortAlpha")
        tech.areaEffortAlpha = value;
    else if (key == "routingOverhead")
        tech.routingOverhead = value;
    else if (key == "ctsGePerFf")
        tech.ctsGePerFf = value;
    else if (key == "ctsActivity")
        tech.ctsActivity = value;
    else if (key == "implKhz")
        tech.implKhz = value;
    else
        fatal("tech '%s': unknown constant '%s'", name.c_str(),
              key.c_str());
}

std::vector<PlanPoint>
ExplorationPlan::expand() const
{
    if (subsets.empty())
        fatal("exploration plan has no subsets");
    if (workloads.empty())
        fatal("exploration plan has no workloads");
    if (mode == Mode::Paired && subsets.size() != workloads.size())
        fatal("paired plan needs equal subset/workload counts "
              "(%zu vs %zu)", subsets.size(), workloads.size());

    const size_t numTechs = techs.empty() ? 1 : techs.size();
    std::vector<PlanPoint> points;
    points.reserve(pointCount());
    // Tech is the outermost axis so a multi-corner plan revisits every
    // (subset, workload) pair: the second corner's simulations are all
    // memoization hits.
    for (size_t t = 0; t < numTechs; ++t) {
        if (mode == Mode::Paired) {
            for (size_t i = 0; i < subsets.size(); ++i)
                points.push_back({points.size(), i, i, t});
        } else {
            for (size_t s = 0; s < subsets.size(); ++s)
                for (size_t w = 0; w < workloads.size(); ++w)
                    points.push_back({points.size(), s, w, t});
        }
    }
    return points;
}

size_t
ExplorationPlan::pointCount() const
{
    const size_t numTechs = techs.empty() ? 1 : techs.size();
    if (mode == Mode::Paired)
        return subsets.size() * numTechs;
    return subsets.size() * workloads.size() * numTechs;
}

namespace
{

std::vector<std::string>
splitWords(const std::string &line)
{
    std::istringstream in(line);
    std::vector<std::string> words;
    std::string word;
    while (in >> word)
        words.push_back(word);
    return words;
}

/** Parse an unsigned integer; fatal() with line context on junk. */
unsigned
parseUnsigned(const std::string &word, int lineno)
{
    size_t used = 0;
    unsigned long value = 0;
    try {
        value = std::stoul(word, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != word.size() || word[0] == '-' || value > 4096)
        fatal("plan line %d: bad count '%s'", lineno, word.c_str());
    return static_cast<unsigned>(value);
}

/** Parse a floating-point value; fatal() with line context on junk. */
double
parseDouble(const std::string &word, int lineno)
{
    size_t used = 0;
    double value = 0;
    try {
        value = std::stod(word, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != word.size())
        fatal("plan line %d: bad number '%s'", lineno, word.c_str());
    return value;
}

minic::OptLevel
parseOptLevel(const std::string &word, int lineno)
{
    for (minic::OptLevel level : minic::allOptLevels()) {
        const std::string label = minic::optLevelName(level);
        if (word == label || "-" + word == label)
            return level;
    }
    fatal("plan line %d: unknown optimization level '%s'", lineno,
          word.c_str());
}

} // namespace

ExplorationPlan
ExplorationPlan::parse(const std::string &text)
{
    ExplorationPlan plan;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::vector<std::string> words = splitWords(line);
        if (words.empty())
            continue;
        const std::string &kw = words[0];
        if (kw == "opt" && words.size() == 2) {
            plan.opt = parseOptLevel(words[1], lineno);
        } else if (kw == "mode" && words.size() == 2) {
            if (words[1] == "cartesian")
                plan.mode = Mode::Cartesian;
            else if (words[1] == "paired")
                plan.mode = Mode::Paired;
            else
                fatal("plan line %d: unknown mode '%s'", lineno,
                      words[1].c_str());
        } else if (kw == "threads" && words.size() == 2) {
            plan.threads = parseUnsigned(words[1], lineno);
        } else if (kw == "workload" && words.size() >= 2) {
            for (size_t i = 1; i < words.size(); ++i) {
                workloadByName(words[i]); // validate early
                plan.workloads.push_back(words[i]);
            }
        } else if (kw == "subset" && words.size() >= 4 &&
                   words[2] == "=") {
            const std::string &name = words[1];
            if (words[3][0] == '@') {
                const std::string ref = words[3].substr(1);
                if (ref == "full") {
                    plan.subsets.push_back(SubsetSpec::full(name));
                } else {
                    workloadByName(ref); // validate early
                    plan.subsets.push_back(
                        SubsetSpec::fromWorkload(ref, name));
                }
            } else {
                std::vector<std::string> ops(words.begin() + 3,
                                             words.end());
                plan.subsets.push_back(
                    SubsetSpec::fromNames(name, std::move(ops)));
            }
        } else if (kw == "tech" && words.size() >= 2) {
            TechSpec spec;
            spec.name = words[1];
            for (size_t i = 2; i < words.size(); ++i) {
                const size_t eq = words[i].find('=');
                if (eq == std::string::npos)
                    fatal("plan line %d: tech override '%s' is not "
                          "key=value", lineno, words[i].c_str());
                spec.set(words[i].substr(0, eq),
                         parseDouble(words[i].substr(eq + 1),
                                     lineno));
            }
            plan.techs.push_back(std::move(spec));
        } else {
            fatal("plan line %d: cannot parse '%s'", lineno,
                  line.c_str());
        }
    }
    return plan;
}

ExplorationPlan
ExplorationPlan::perWorkloadRissps(
    const std::vector<std::string> &workload_names,
    bool include_full_baseline)
{
    ExplorationPlan plan;
    plan.mode = Mode::Paired;
    for (const std::string &wl : workload_names) {
        plan.subsets.push_back(SubsetSpec::fromWorkload(wl));
        plan.workloads.push_back(wl);
    }
    if (include_full_baseline && !workload_names.empty()) {
        plan.subsets.push_back(SubsetSpec::full());
        plan.workloads.push_back(workload_names.front());
    }
    return plan;
}

} // namespace rissp::explore
