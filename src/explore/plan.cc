/**
 * @file
 * Plan construction, expansion and plan-file parsing.
 */

#include "explore/plan.hh"

#include <cstdarg>
#include <exception>
#include <optional>
#include <sstream>

#include "tech/registry.hh"
#include "util/logging.hh"
#include "util/strings.hh"
#include "workloads/workloads.hh"

namespace rissp::explore
{

SubsetSpec
SubsetSpec::full(const std::string &name)
{
    SubsetSpec spec;
    spec.name = name;
    spec.kind = Kind::Full;
    return spec;
}

SubsetSpec
SubsetSpec::fromWorkload(const std::string &workload,
                         const std::string &name)
{
    SubsetSpec spec;
    spec.name = name.empty() ? "RISSP-" + workload : name;
    spec.kind = Kind::FromWorkload;
    spec.workload = workload;
    return spec;
}

SubsetSpec
SubsetSpec::fromNames(const std::string &name,
                      std::vector<std::string> mnemonics)
{
    SubsetSpec spec;
    spec.name = name;
    spec.kind = Kind::Explicit;
    spec.mnemonics = std::move(mnemonics);
    return spec;
}

Result<TechSpec>
TechSpec::fromSpec(const std::string &spec)
{
    Result<Technology> tech = TechRegistry::builtins().parse(spec);
    if (!tech)
        return tech.status();
    TechSpec out;
    out.tech = tech.take();
    return out;
}

Status
TechSpec::trySet(const std::string &key, double value)
{
    const Status status = applyTechOverride(tech, key, value);
    if (!status)
        return Status::errorf(
            ErrorCode::InvalidArgument, "tech '%s': %s",
            tech.name.c_str(), status.message().c_str());
    // A modified corner is its own technology: extend the name the
    // same way a registry spec would (the value rendered %g-style,
    // since only the registry path has verbatim override text), so
    // hand-built corners never report under their base label.
    tech.name = appendSpecOverride(
        std::move(tech.name), strFormat("%s=%g", key.c_str(), value));
    return Status::ok();
}

void
TechSpec::set(const std::string &key, double value)
{
    const Status status = trySet(key, value);
    if (!status)
        panic("TechSpec::set: %s (validate with trySet first)",
              status.message().c_str());
}

Status
ExplorationPlan::validate() const
{
    if (subsets.empty())
        return Status::error(ErrorCode::InvalidArgument,
                             "exploration plan has no subsets");
    if (workloads.empty())
        return Status::error(ErrorCode::InvalidArgument,
                             "exploration plan has no workloads");
    if (mode == Mode::Paired && subsets.size() != workloads.size())
        return Status::errorf(
            ErrorCode::InvalidArgument,
            "paired plan needs equal subset/workload counts "
            "(%zu vs %zu)", subsets.size(), workloads.size());
    for (const std::string &wl : workloads)
        if (!findWorkload(wl))
            return Status::errorf(ErrorCode::NotFound,
                                  "unknown workload '%s'",
                                  wl.c_str());
    for (const SubsetSpec &spec : subsets) {
        if (spec.kind == SubsetSpec::Kind::FromWorkload &&
            !findWorkload(spec.workload))
            return Status::errorf(
                ErrorCode::NotFound,
                "subset '%s': unknown workload '%s'",
                spec.name.c_str(), spec.workload.c_str());
        if (spec.kind == SubsetSpec::Kind::Explicit) {
            const Result<InstrSubset> ops =
                InstrSubset::tryFromNames(spec.mnemonics);
            if (!ops)
                return Status::errorf(
                    ErrorCode::InvalidArgument, "subset '%s': %s",
                    spec.name.c_str(),
                    ops.status().message().c_str());
        }
    }
    return Status::ok();
}

std::vector<PlanPoint>
ExplorationPlan::expand() const
{
    const Status status = validate();
    if (!status)
        panic("ExplorationPlan::expand: %s (validate first)",
              status.message().c_str());

    const size_t numTechs = techs.empty() ? 1 : techs.size();
    std::vector<PlanPoint> points;
    points.reserve(pointCount());
    // Tech is the outermost axis so a multi-corner plan revisits every
    // (subset, workload) pair: the second corner's simulations are all
    // memoization hits.
    for (size_t t = 0; t < numTechs; ++t) {
        if (mode == Mode::Paired) {
            for (size_t i = 0; i < subsets.size(); ++i)
                points.push_back({points.size(), i, i, t});
        } else {
            for (size_t s = 0; s < subsets.size(); ++s)
                for (size_t w = 0; w < workloads.size(); ++w)
                    points.push_back({points.size(), s, w, t});
        }
    }
    return points;
}

size_t
ExplorationPlan::pointCount() const
{
    const size_t numTechs = techs.empty() ? 1 : techs.size();
    if (mode == Mode::Paired)
        return subsets.size() * numTechs;
    return subsets.size() * workloads.size() * numTechs;
}

namespace
{

std::vector<std::string>
splitWords(const std::string &line)
{
    std::istringstream in(line);
    std::vector<std::string> words;
    std::string word;
    while (in >> word)
        words.push_back(word);
    return words;
}

/** Collects every "plan line N: ..." diagnostic of one parse pass. */
class ParseErrors
{
  public:
    void
    add(int lineno, std::string message)
    {
        lines.push_back(strFormat("plan line %d: %s", lineno,
                                  message.c_str()));
    }

    __attribute__((format(printf, 3, 4))) void
    addf(int lineno, const char *fmt, ...)
    {
        va_list args;
        va_start(args, fmt);
        std::string message = vstrFormat(fmt, args);
        va_end(args);
        add(lineno, std::move(message));
    }

    bool empty() const { return lines.empty(); }

    Status
    toStatus() const
    {
        return Status::error(ErrorCode::ParseError,
                             join(lines, "\n"));
    }

  private:
    std::vector<std::string> lines;
};

/** Parse an unsigned integer; nullopt + diagnostic on junk. */
std::optional<unsigned>
parseUnsigned(const std::string &word, int lineno, ParseErrors &errs)
{
    size_t used = 0;
    unsigned long value = 0;
    try {
        value = std::stoul(word, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != word.size() || word[0] == '-' || value > 4096) {
        errs.addf(lineno, "bad count '%s'", word.c_str());
        return std::nullopt;
    }
    return static_cast<unsigned>(value);
}

std::optional<minic::OptLevel>
parseOptLevel(const std::string &word, int lineno, ParseErrors &errs)
{
    for (minic::OptLevel level : minic::allOptLevels()) {
        const std::string label = minic::optLevelName(level);
        if (word == label || "-" + word == label)
            return level;
    }
    errs.addf(lineno, "unknown optimization level '%s'",
              word.c_str());
    return std::nullopt;
}

} // namespace

Result<ExplorationPlan>
ExplorationPlan::parse(const std::string &text)
{
    ExplorationPlan plan;
    ParseErrors errs;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::vector<std::string> words = splitWords(line);
        if (words.empty())
            continue;
        const std::string &kw = words[0];
        if (kw == "opt" && words.size() == 2) {
            if (auto opt = parseOptLevel(words[1], lineno, errs))
                plan.opt = *opt;
        } else if (kw == "mode" && words.size() == 2) {
            if (words[1] == "cartesian")
                plan.mode = Mode::Cartesian;
            else if (words[1] == "paired")
                plan.mode = Mode::Paired;
            else
                errs.addf(lineno, "unknown mode '%s'",
                          words[1].c_str());
        } else if (kw == "threads" && words.size() == 2) {
            if (auto n = parseUnsigned(words[1], lineno, errs))
                plan.threads = *n;
        } else if (kw == "workload" && words.size() >= 2) {
            for (size_t i = 1; i < words.size(); ++i) {
                if (!findWorkload(words[i])) {
                    errs.addf(lineno, "unknown workload '%s'",
                              words[i].c_str());
                    continue;
                }
                plan.workloads.push_back(words[i]);
            }
        } else if (kw == "subset" && words.size() >= 4 &&
                   words[2] == "=") {
            const std::string &name = words[1];
            if (words[3][0] == '@') {
                const std::string ref = words[3].substr(1);
                if (ref == "full") {
                    plan.subsets.push_back(SubsetSpec::full(name));
                } else if (!findWorkload(ref)) {
                    errs.addf(lineno, "unknown workload '%s'",
                              ref.c_str());
                } else {
                    plan.subsets.push_back(
                        SubsetSpec::fromWorkload(ref, name));
                }
            } else {
                std::vector<std::string> ops(words.begin() + 3,
                                             words.end());
                const Result<InstrSubset> parsed =
                    InstrSubset::tryFromNames(ops);
                if (!parsed) {
                    errs.add(lineno, parsed.status().message());
                    continue;
                }
                plan.subsets.push_back(
                    SubsetSpec::fromNames(name, std::move(ops)));
            }
        } else if (kw == "tech" && words.size() >= 2) {
            // `tech <name>[:key=value,...] [key=value ...]` —
            // word-form overrides are folded into the colon spec so
            // one grammar implementation (TechRegistry::parse) owns
            // all validation, error collection and the composed-
            // spec naming that keeps an overridden corner's rows
            // distinguishable from its base technology's.
            std::string techSpec = words[1];
            for (size_t i = 2; i < words.size(); ++i)
                techSpec = appendSpecOverride(std::move(techSpec),
                                              words[i]);
            Result<TechSpec> parsed = TechSpec::fromSpec(techSpec);
            if (!parsed) {
                errs.add(lineno, parsed.status().message());
                continue;
            }
            plan.techs.push_back(parsed.take());
        } else {
            errs.addf(lineno, "cannot parse '%s'", line.c_str());
        }
    }
    if (!errs.empty())
        return errs.toStatus();
    return plan;
}

ExplorationPlan
ExplorationPlan::perWorkloadRissps(
    const std::vector<std::string> &workload_names,
    bool include_full_baseline)
{
    ExplorationPlan plan;
    plan.mode = Mode::Paired;
    for (const std::string &wl : workload_names) {
        plan.subsets.push_back(SubsetSpec::fromWorkload(wl));
        plan.workloads.push_back(wl);
    }
    if (include_full_baseline && !workload_names.empty()) {
        plan.subsets.push_back(SubsetSpec::full());
        plan.workloads.push_back(workload_names.front());
    }
    return plan;
}

} // namespace rissp::explore
