/**
 * @file
 * Plan construction, expansion and plan-file parsing.
 */

#include "explore/plan.hh"

#include <cstdarg>
#include <exception>
#include <optional>
#include <sstream>

#include "util/logging.hh"
#include "util/strings.hh"
#include "workloads/workloads.hh"

namespace rissp::explore
{

SubsetSpec
SubsetSpec::full(const std::string &name)
{
    SubsetSpec spec;
    spec.name = name;
    spec.kind = Kind::Full;
    return spec;
}

SubsetSpec
SubsetSpec::fromWorkload(const std::string &workload,
                         const std::string &name)
{
    SubsetSpec spec;
    spec.name = name.empty() ? "RISSP-" + workload : name;
    spec.kind = Kind::FromWorkload;
    spec.workload = workload;
    return spec;
}

SubsetSpec
SubsetSpec::fromNames(const std::string &name,
                      std::vector<std::string> mnemonics)
{
    SubsetSpec spec;
    spec.name = name;
    spec.kind = Kind::Explicit;
    spec.mnemonics = std::move(mnemonics);
    return spec;
}

Status
TechSpec::trySet(const std::string &key, double value)
{
    if (key == "gateDelayNs")
        tech.gateDelayNs = value;
    else if (key == "ffClkToQPlusSetupNs")
        tech.ffClkToQPlusSetupNs = value;
    else if (key == "fetchDepthLevels")
        tech.fetchDepthLevels = value;
    else if (key == "switchLevelDelay")
        tech.switchLevelDelay = value;
    else if (key == "ffAreaGe")
        tech.ffAreaGe = value;
    else if (key == "rfLatchAreaGe")
        tech.rfLatchAreaGe = value;
    else if (key == "nand2AreaUm2")
        tech.nand2AreaUm2 = value;
    else if (key == "placementUtilization")
        tech.placementUtilization = value;
    else if (key == "dynUwPerGeMhz")
        tech.dynUwPerGeMhz = value;
    else if (key == "ffPowerMultiplier")
        tech.ffPowerMultiplier = value;
    else if (key == "staticUwPerGe")
        tech.staticUwPerGe = value;
    else if (key == "risspCombActivity")
        tech.risspCombActivity = value;
    else if (key == "risspFfActivity")
        tech.risspFfActivity = value;
    else if (key == "sweepStartKhz")
        tech.sweepStartKhz = value;
    else if (key == "sweepEndKhz")
        tech.sweepEndKhz = value;
    else if (key == "sweepStepKhz")
        tech.sweepStepKhz = value;
    else if (key == "areaEffortAlpha")
        tech.areaEffortAlpha = value;
    else if (key == "routingOverhead")
        tech.routingOverhead = value;
    else if (key == "ctsGePerFf")
        tech.ctsGePerFf = value;
    else if (key == "ctsActivity")
        tech.ctsActivity = value;
    else if (key == "implKhz")
        tech.implKhz = value;
    else
        return Status::errorf(
            ErrorCode::InvalidArgument,
            "tech '%s': unknown constant '%s'", name.c_str(),
            key.c_str());
    return Status::ok();
}

void
TechSpec::set(const std::string &key, double value)
{
    const Status status = trySet(key, value);
    if (!status)
        panic("TechSpec::set: %s (validate with trySet first)",
              status.message().c_str());
}

Status
ExplorationPlan::validate() const
{
    if (subsets.empty())
        return Status::error(ErrorCode::InvalidArgument,
                             "exploration plan has no subsets");
    if (workloads.empty())
        return Status::error(ErrorCode::InvalidArgument,
                             "exploration plan has no workloads");
    if (mode == Mode::Paired && subsets.size() != workloads.size())
        return Status::errorf(
            ErrorCode::InvalidArgument,
            "paired plan needs equal subset/workload counts "
            "(%zu vs %zu)", subsets.size(), workloads.size());
    for (const std::string &wl : workloads)
        if (!findWorkload(wl))
            return Status::errorf(ErrorCode::NotFound,
                                  "unknown workload '%s'",
                                  wl.c_str());
    for (const SubsetSpec &spec : subsets) {
        if (spec.kind == SubsetSpec::Kind::FromWorkload &&
            !findWorkload(spec.workload))
            return Status::errorf(
                ErrorCode::NotFound,
                "subset '%s': unknown workload '%s'",
                spec.name.c_str(), spec.workload.c_str());
        if (spec.kind == SubsetSpec::Kind::Explicit) {
            const Result<InstrSubset> ops =
                InstrSubset::tryFromNames(spec.mnemonics);
            if (!ops)
                return Status::errorf(
                    ErrorCode::InvalidArgument, "subset '%s': %s",
                    spec.name.c_str(),
                    ops.status().message().c_str());
        }
    }
    return Status::ok();
}

std::vector<PlanPoint>
ExplorationPlan::expand() const
{
    const Status status = validate();
    if (!status)
        panic("ExplorationPlan::expand: %s (validate first)",
              status.message().c_str());

    const size_t numTechs = techs.empty() ? 1 : techs.size();
    std::vector<PlanPoint> points;
    points.reserve(pointCount());
    // Tech is the outermost axis so a multi-corner plan revisits every
    // (subset, workload) pair: the second corner's simulations are all
    // memoization hits.
    for (size_t t = 0; t < numTechs; ++t) {
        if (mode == Mode::Paired) {
            for (size_t i = 0; i < subsets.size(); ++i)
                points.push_back({points.size(), i, i, t});
        } else {
            for (size_t s = 0; s < subsets.size(); ++s)
                for (size_t w = 0; w < workloads.size(); ++w)
                    points.push_back({points.size(), s, w, t});
        }
    }
    return points;
}

size_t
ExplorationPlan::pointCount() const
{
    const size_t numTechs = techs.empty() ? 1 : techs.size();
    if (mode == Mode::Paired)
        return subsets.size() * numTechs;
    return subsets.size() * workloads.size() * numTechs;
}

namespace
{

std::vector<std::string>
splitWords(const std::string &line)
{
    std::istringstream in(line);
    std::vector<std::string> words;
    std::string word;
    while (in >> word)
        words.push_back(word);
    return words;
}

/** Collects every "plan line N: ..." diagnostic of one parse pass. */
class ParseErrors
{
  public:
    void
    add(int lineno, std::string message)
    {
        lines.push_back(strFormat("plan line %d: %s", lineno,
                                  message.c_str()));
    }

    __attribute__((format(printf, 3, 4))) void
    addf(int lineno, const char *fmt, ...)
    {
        va_list args;
        va_start(args, fmt);
        std::string message = vstrFormat(fmt, args);
        va_end(args);
        add(lineno, std::move(message));
    }

    bool empty() const { return lines.empty(); }

    Status
    toStatus() const
    {
        return Status::error(ErrorCode::ParseError,
                             join(lines, "\n"));
    }

  private:
    std::vector<std::string> lines;
};

/** Parse an unsigned integer; nullopt + diagnostic on junk. */
std::optional<unsigned>
parseUnsigned(const std::string &word, int lineno, ParseErrors &errs)
{
    size_t used = 0;
    unsigned long value = 0;
    try {
        value = std::stoul(word, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != word.size() || word[0] == '-' || value > 4096) {
        errs.addf(lineno, "bad count '%s'", word.c_str());
        return std::nullopt;
    }
    return static_cast<unsigned>(value);
}

/** Parse a floating-point value; nullopt + diagnostic on junk. */
std::optional<double>
parseDouble(const std::string &word, int lineno, ParseErrors &errs)
{
    size_t used = 0;
    double value = 0;
    try {
        value = std::stod(word, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != word.size()) {
        errs.addf(lineno, "bad number '%s'", word.c_str());
        return std::nullopt;
    }
    return value;
}

std::optional<minic::OptLevel>
parseOptLevel(const std::string &word, int lineno, ParseErrors &errs)
{
    for (minic::OptLevel level : minic::allOptLevels()) {
        const std::string label = minic::optLevelName(level);
        if (word == label || "-" + word == label)
            return level;
    }
    errs.addf(lineno, "unknown optimization level '%s'",
              word.c_str());
    return std::nullopt;
}

} // namespace

Result<ExplorationPlan>
ExplorationPlan::parse(const std::string &text)
{
    ExplorationPlan plan;
    ParseErrors errs;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::vector<std::string> words = splitWords(line);
        if (words.empty())
            continue;
        const std::string &kw = words[0];
        if (kw == "opt" && words.size() == 2) {
            if (auto opt = parseOptLevel(words[1], lineno, errs))
                plan.opt = *opt;
        } else if (kw == "mode" && words.size() == 2) {
            if (words[1] == "cartesian")
                plan.mode = Mode::Cartesian;
            else if (words[1] == "paired")
                plan.mode = Mode::Paired;
            else
                errs.addf(lineno, "unknown mode '%s'",
                          words[1].c_str());
        } else if (kw == "threads" && words.size() == 2) {
            if (auto n = parseUnsigned(words[1], lineno, errs))
                plan.threads = *n;
        } else if (kw == "workload" && words.size() >= 2) {
            for (size_t i = 1; i < words.size(); ++i) {
                if (!findWorkload(words[i])) {
                    errs.addf(lineno, "unknown workload '%s'",
                              words[i].c_str());
                    continue;
                }
                plan.workloads.push_back(words[i]);
            }
        } else if (kw == "subset" && words.size() >= 4 &&
                   words[2] == "=") {
            const std::string &name = words[1];
            if (words[3][0] == '@') {
                const std::string ref = words[3].substr(1);
                if (ref == "full") {
                    plan.subsets.push_back(SubsetSpec::full(name));
                } else if (!findWorkload(ref)) {
                    errs.addf(lineno, "unknown workload '%s'",
                              ref.c_str());
                } else {
                    plan.subsets.push_back(
                        SubsetSpec::fromWorkload(ref, name));
                }
            } else {
                std::vector<std::string> ops(words.begin() + 3,
                                             words.end());
                const Result<InstrSubset> parsed =
                    InstrSubset::tryFromNames(ops);
                if (!parsed) {
                    errs.add(lineno, parsed.status().message());
                    continue;
                }
                plan.subsets.push_back(
                    SubsetSpec::fromNames(name, std::move(ops)));
            }
        } else if (kw == "tech" && words.size() >= 2) {
            TechSpec spec;
            spec.name = words[1];
            for (size_t i = 2; i < words.size(); ++i) {
                const size_t eq = words[i].find('=');
                if (eq == std::string::npos) {
                    errs.addf(lineno,
                              "tech override '%s' is not key=value",
                              words[i].c_str());
                    continue;
                }
                const auto value = parseDouble(
                    words[i].substr(eq + 1), lineno, errs);
                if (!value)
                    continue;
                const Status set =
                    spec.trySet(words[i].substr(0, eq), *value);
                if (!set)
                    errs.add(lineno, set.message());
            }
            plan.techs.push_back(std::move(spec));
        } else {
            errs.addf(lineno, "cannot parse '%s'", line.c_str());
        }
    }
    if (!errs.empty())
        return errs.toStatus();
    return plan;
}

ExplorationPlan
ExplorationPlan::perWorkloadRissps(
    const std::vector<std::string> &workload_names,
    bool include_full_baseline)
{
    ExplorationPlan plan;
    plan.mode = Mode::Paired;
    for (const std::string &wl : workload_names) {
        plan.subsets.push_back(SubsetSpec::fromWorkload(wl));
        plan.workloads.push_back(wl);
    }
    if (include_full_baseline && !workload_names.empty()) {
        plan.subsets.push_back(SubsetSpec::full());
        plan.workloads.push_back(workload_names.front());
    }
    return plan;
}

} // namespace rissp::explore
