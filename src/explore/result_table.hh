/**
 * @file
 * Thread-safe result collection for design-space exploration.
 *
 * Every expanded plan point owns one pre-allocated row, so workers
 * write disjoint elements without locks or contention, and the table
 * reads back in plan order no
 * matter how the pool scheduled the points — the property that makes
 * a multi-threaded sweep emit byte-identical CSV to a single-threaded
 * one. Emitters cover CSV (spreadsheet/pandas) and JSON (the
 * `BENCH_*.json` trajectory format, see docs/BENCHMARKS.md); the
 * Pareto query answers the question the paper's Figures 7-9 ask:
 * which subsets are worth building?
 */

#ifndef RISSP_EXPLORE_RESULT_TABLE_HH
#define RISSP_EXPLORE_RESULT_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/subset.hh"

namespace rissp::explore
{

/** Everything measured at one (subset, workload, tech) point. */
struct ExplorationResult
{
    size_t index = 0;          ///< plan-order row number
    std::string subsetName;
    std::string workloadName;
    std::string techName;

    InstrSubset subset;        ///< resolved ops (for reports)
    size_t subsetSize = 0;

    // -- co-simulation against the reference ISS --
    bool simRun = false;       ///< simulation stage executed
    bool trapped = false;      ///< RISSP hit an unimplemented op
    bool cosimPassed = false;  ///< lock-step comparison clean
    uint64_t cycles = 0;       ///< RISSP cycles (CPI = 1)
    uint32_t exitCode = 0;     ///< a0 at the halting ecall
    uint64_t signature = 0;    ///< hash of exit code + MMIO output

    // -- synthesis (frequency-sweep averages, Figures 6-8) --
    bool synthRun = false;
    double fmaxKhz = 0;
    double avgAreaGe = 0;
    double avgPowerMw = 0;
    double epiNj = 0;          ///< energy/instruction at fmax, CPI = 1

    // -- physical implementation (Figure 10) --
    bool physRun = false;
    double dieAreaMm2 = 0;
    double physPowerMw = 0;

    // -- bookkeeping --
    bool simMemoHit = false;   ///< sim result reused from the cache
    bool synthMemoHit = false; ///< synth result reused from the cache
};

/** Fixed-size, thread-safe table of exploration results. */
class ResultTable
{
  public:
    ResultTable() = default;
    explicit ResultTable(size_t rows) : table(rows) {}

    size_t size() const { return table.size(); }

    /**
     * Store @p result at its own index. Lock-free: rows are
     * pre-allocated and every plan point owns exactly one index, so
     * concurrent workers write disjoint elements — callers must not
     * write the same index from two threads, and must not read rows
     * until the batch completes.
     */
    void set(ExplorationResult result);

    const ExplorationResult &row(size_t index) const;
    const std::vector<ExplorationResult> &rows() const
    {
        return table;
    }

    /** Plan-ordered CSV with a header row. */
    std::string csv() const;

    /** JSON array of row objects (trajectory-tracking format). */
    std::string json() const;

    /**
     * Row indices of the Pareto frontier minimizing
     * (cycles, avgAreaGe, avgPowerMw) over rows where both stages ran
     * and co-simulation passed without a trap. Rows tied on every
     * objective are all kept, so the frontier is scheduling-agnostic.
     */
    std::vector<size_t> paretoFrontier() const;

    /** True when @p a is no worse on every objective and strictly
     *  better on at least one. */
    static bool dominates(const ExplorationResult &a,
                          const ExplorationResult &b);

  private:
    std::vector<ExplorationResult> table;
};

} // namespace rissp::explore

#endif // RISSP_EXPLORE_RESULT_TABLE_HH
