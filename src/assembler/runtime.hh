/**
 * @file
 * Baremetal RV32E runtime modules.
 *
 * The paper compiles applications baremetal "without support of stdlib,
 * libc, libgcc and startfiles"; multiplies and divides on RV32E (no M
 * extension) therefore lower to helper routines. These are those
 * helpers plus the startup stub, written directly in assembly. The
 * compiler driver links only the modules a program actually calls, so
 * helper instructions join the application's instruction subset exactly
 * as libgcc intrinsics would.
 */

#ifndef RISSP_ASSEMBLER_RUNTIME_HH
#define RISSP_ASSEMBLER_RUNTIME_HH

#include <string>
#include <vector>

namespace rissp
{

/** Stack top installed by crt0 (grows down). */
constexpr uint32_t kStackTop = 0x80000;

/** Startup stub: set sp, call main, halt with main's return in a0. */
std::string crt0Source();

/** Shift-add 32x32 multiply: a0 = a0 * a1. */
std::string mulsi3Source();

/** Unsigned divide: a0 = a0 / a1; remainder in a1. */
std::string udivsi3Source();

/** Unsigned remainder: a0 = a0 % a1. */
std::string umodsi3Source();

/** Signed divide (round toward zero): a0 = a0 / a1. */
std::string divsi3Source();

/** Signed remainder (sign of dividend): a0 = a0 % a1. */
std::string modsi3Source();

/** Look up a runtime module by helper symbol name. */
std::string runtimeModule(const std::string &symbol);

/** All helper symbol names, in link order. */
std::vector<std::string> runtimeHelperNames();

} // namespace rissp

#endif // RISSP_ASSEMBLER_RUNTIME_HH
