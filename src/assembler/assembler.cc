#include "assembler/assembler.hh"

#include <cctype>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "isa/instr.hh"
#include "isa/reg.hh"
#include "util/bits.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace rissp
{

namespace
{

/** Internal diagnostic carrying a source line number. */
class AsmDiag : public std::runtime_error
{
  public:
    AsmDiag(int line, const std::string &msg)
        : std::runtime_error(strFormat("line %d: %s", line, msg.c_str()))
    {}
};

/** How an instruction's immediate is produced in pass 2. */
enum class ImmKind : uint8_t
{
    None,       ///< no immediate
    Value,      ///< literal value
    SymAbs,     ///< symbol + addend, absolute
    SymHi,      ///< %hi(symbol + addend)
    SymLo,      ///< %lo(symbol + addend)
    SymPcRel,   ///< symbol + addend - pc (branches, jal)
};

/** One concrete instruction awaiting encoding. */
struct PendingInstr
{
    Op op = Op::Invalid;
    unsigned rd = 0;
    unsigned rs1 = 0;
    unsigned rs2 = 0;
    ImmKind kind = ImmKind::None;
    int64_t value = 0;
    std::string sym;
    int line = 0;

    /** Sym* kinds reuse `value` as the symbol addend. */
    int64_t &addend() { return value; }
};

/** A data blob or an instruction, placed in a section. */
struct Item
{
    enum class Kind : uint8_t { Instr, Bytes, WordSym } kind;
    uint32_t offset = 0;       ///< offset within its section
    PendingInstr instr;        ///< kind == Instr
    std::vector<uint8_t> bytes;///< kind == Bytes
    std::string sym;           ///< kind == WordSym
    int64_t addend = 0;        ///< kind == WordSym
    int line = 0;
    /** Out-of-range conditional branch rewritten as an inverted
     *  branch over a jal (gas-style branch relaxation). */
    bool relaxed = false;

    uint32_t
    byteSize() const
    {
        switch (kind) {
          case Kind::Instr: return relaxed ? 8 : 4;
          case Kind::Bytes:
            return static_cast<uint32_t>(bytes.size());
          case Kind::WordSym: return 4;
        }
        return 0;
    }
};

struct MacroDef
{
    std::vector<std::string> params;
    std::vector<std::string> body;
};

struct Statement
{
    int line = 0;
    std::string mnemonic;               ///< lower-case
    std::vector<std::string> operands;  ///< raw operand strings
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
        c == '.' || c == '$';
}

/** Split an operand list on top-level commas (parenthesis aware). */
std::vector<std::string>
splitOperands(std::string_view s)
{
    std::vector<std::string> out;
    int depth = 0;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || (s[i] == ',' && depth == 0)) {
            std::string_view piece = trim(s.substr(start, i - start));
            if (!piece.empty())
                out.emplace_back(piece);
            start = i + 1;
        } else if (s[i] == '(') {
            ++depth;
        } else if (s[i] == ')') {
            --depth;
        }
    }
    return out;
}

/** The full two-pass assembler state machine. */
class Assembler
{
  public:
    explicit Assembler(const AsmOptions &opts) : options(opts) {}

    void
    addModule(const std::string &source)
    {
        std::vector<std::string> raw_lines = split(source, '\n');
        std::vector<std::pair<int, std::string>> lines;
        lines.reserve(raw_lines.size());
        for (size_t i = 0; i < raw_lines.size(); ++i)
            lines.emplace_back(static_cast<int>(i + 1) + lineBias,
                               stripComment(raw_lines[i]));
        lineBias += static_cast<int>(raw_lines.size());
        collectMacrosAndStatements(lines);
    }

    Program
    finish()
    {
        layout();
        return encode();
    }

  private:
    // ---- phase A: macro collection + statement extraction ----

    static std::string
    stripComment(std::string_view line)
    {
        bool in_str = false;
        for (size_t i = 0; i < line.size(); ++i) {
            char c = line[i];
            if (c == '"' && (i == 0 || line[i - 1] != '\\'))
                in_str = !in_str;
            if (!in_str && (c == '#' ||
                            (c == '/' && i + 1 < line.size() &&
                             line[i + 1] == '/')))
                return std::string(line.substr(0, i));
        }
        return std::string(line);
    }

    void
    collectMacrosAndStatements(
        const std::vector<std::pair<int, std::string>> &lines)
    {
        std::string cur_macro;
        MacroDef cur_def;
        for (const auto &[num, text] : lines) {
            std::string_view body = trim(text);
            if (body.empty())
                continue;
            std::vector<std::string> fields = splitWhitespace(body);
            std::string head = toLower(fields[0]);
            if (head == ".macro") {
                if (!cur_macro.empty())
                    throw AsmDiag(num, "nested .macro");
                if (fields.size() < 2)
                    throw AsmDiag(num, ".macro needs a name");
                cur_macro = toLower(fields[1]);
                cur_def = MacroDef{};
                std::string rest(trim(body.substr(
                    body.find(fields[1]) + fields[1].size())));
                for (const std::string &p : splitOperands(rest))
                    cur_def.params.push_back(p);
                continue;
            }
            if (head == ".endm") {
                if (cur_macro.empty())
                    throw AsmDiag(num, ".endm without .macro");
                macros[cur_macro] = cur_def;
                cur_macro.clear();
                continue;
            }
            if (!cur_macro.empty()) {
                cur_def.body.emplace_back(body);
                continue;
            }
            ingestLine(num, std::string(body), 0);
        }
        if (!cur_macro.empty())
            throw AsmDiag(lineBias, "unterminated .macro");
    }

    /** Handle labels, expand macros/pseudos, queue statements. */
    void
    ingestLine(int num, std::string text, int depth)
    {
        if (depth > 32)
            throw AsmDiag(num, "macro expansion too deep");
        std::string_view rest = trim(text);
        // Peel leading labels.
        while (true) {
            size_t i = 0;
            while (i < rest.size() && isIdentChar(rest[i]))
                ++i;
            if (i > 0 && i < rest.size() && rest[i] == ':') {
                defineLabel(num, std::string(rest.substr(0, i)));
                rest = trim(rest.substr(i + 1));
            } else {
                break;
            }
        }
        if (rest.empty())
            return;

        size_t i = 0;
        while (i < rest.size() &&
               !std::isspace(static_cast<unsigned char>(rest[i])))
            ++i;
        Statement st;
        st.line = num;
        st.mnemonic = toLower(std::string(rest.substr(0, i)));
        st.operands = splitOperands(rest.substr(i));

        // gas semantics: user macros shadow machine instructions.
        auto mit = macros.find(st.mnemonic);
        if (mit != macros.end() &&
            expandingMacros.count(st.mnemonic) == 0) {
            expandMacro(num, mit->second, st, depth);
            return;
        }
        if (expandPseudo(st, depth))
            return;
        processStatement(st);
    }

    void
    expandMacro(int num, const MacroDef &def, const Statement &st,
                int depth)
    {
        if (st.operands.size() > def.params.size())
            throw AsmDiag(num, strFormat(
                "macro '%s' takes %zu argument(s), got %zu",
                st.mnemonic.c_str(), def.params.size(),
                st.operands.size()));
        expandingMacros.insert(st.mnemonic);
        const int expansion_id = macroExpansionCounter++;
        for (const std::string &body_line : def.body) {
            std::string expanded;
            for (size_t i = 0; i < body_line.size(); ++i) {
                if (body_line[i] == '\\' && i + 1 < body_line.size()
                    && body_line[i + 1] == '@') {
                    // gas-style unique expansion counter.
                    expanded += std::to_string(expansion_id);
                    ++i;
                    continue;
                }
                if (body_line[i] == '\\') {
                    size_t j = i + 1;
                    while (j < body_line.size() &&
                           isIdentChar(body_line[j]))
                        ++j;
                    std::string param =
                        body_line.substr(i + 1, j - i - 1);
                    bool found = false;
                    for (size_t k = 0; k < def.params.size(); ++k) {
                        if (def.params[k] == param) {
                            expanded += k < st.operands.size()
                                ? st.operands[k] : "";
                            found = true;
                            break;
                        }
                    }
                    if (!found)
                        throw AsmDiag(num, strFormat(
                            "unknown macro parameter '\\%s'",
                            param.c_str()));
                    i = j - 1;
                } else {
                    expanded += body_line[i];
                }
            }
            ingestLine(num, expanded, depth + 1);
        }
        expandingMacros.erase(st.mnemonic);
    }

    /** Rewrite pseudo-instructions into base instructions (as text, so
     *  retarget macros still apply to the produced sequence). */
    bool
    expandPseudo(const Statement &st, int depth)
    {
        const auto &ops = st.operands;
        auto need = [&](size_t n) {
            if (ops.size() != n)
                throw AsmDiag(st.line, strFormat(
                    "'%s' expects %zu operand(s), got %zu",
                    st.mnemonic.c_str(), n, ops.size()));
        };
        auto emit = [&](const std::string &text) {
            ingestLine(st.line, text, depth + 1);
        };
        const std::string &m = st.mnemonic;

        if (m == "nop") {
            need(0); emit("addi zero, zero, 0"); return true;
        }
        if (m == "mv") {
            need(2); emit("addi " + ops[0] + ", " + ops[1] + ", 0");
            return true;
        }
        if (m == "not") {
            need(2); emit("xori " + ops[0] + ", " + ops[1] + ", -1");
            return true;
        }
        if (m == "neg") {
            need(2); emit("sub " + ops[0] + ", zero, " + ops[1]);
            return true;
        }
        if (m == "seqz") {
            need(2); emit("sltiu " + ops[0] + ", " + ops[1] + ", 1");
            return true;
        }
        if (m == "snez") {
            need(2); emit("sltu " + ops[0] + ", zero, " + ops[1]);
            return true;
        }
        if (m == "sltz") {
            need(2); emit("slt " + ops[0] + ", " + ops[1] + ", zero");
            return true;
        }
        if (m == "sgtz") {
            need(2); emit("slt " + ops[0] + ", zero, " + ops[1]);
            return true;
        }
        if (m == "beqz") {
            need(2); emit("beq " + ops[0] + ", zero, " + ops[1]);
            return true;
        }
        if (m == "bnez") {
            need(2); emit("bne " + ops[0] + ", zero, " + ops[1]);
            return true;
        }
        if (m == "blez") {
            need(2); emit("bge zero, " + ops[0] + ", " + ops[1]);
            return true;
        }
        if (m == "bgez") {
            need(2); emit("bge " + ops[0] + ", zero, " + ops[1]);
            return true;
        }
        if (m == "bltz") {
            need(2); emit("blt " + ops[0] + ", zero, " + ops[1]);
            return true;
        }
        if (m == "bgtz") {
            need(2); emit("blt zero, " + ops[0] + ", " + ops[1]);
            return true;
        }
        if (m == "bgt") {
            need(3);
            emit("blt " + ops[1] + ", " + ops[0] + ", " + ops[2]);
            return true;
        }
        if (m == "ble") {
            need(3);
            emit("bge " + ops[1] + ", " + ops[0] + ", " + ops[2]);
            return true;
        }
        if (m == "bgtu") {
            need(3);
            emit("bltu " + ops[1] + ", " + ops[0] + ", " + ops[2]);
            return true;
        }
        if (m == "bleu") {
            need(3);
            emit("bgeu " + ops[1] + ", " + ops[0] + ", " + ops[2]);
            return true;
        }
        if (m == "j") {
            need(1); emit("jal zero, " + ops[0]); return true;
        }
        if (m == "jal" && ops.size() == 1) {
            emit("jal ra, " + ops[0]); return true;
        }
        if (m == "jr") {
            need(1); emit("jalr zero, 0(" + ops[0] + ")"); return true;
        }
        if (m == "jalr" && ops.size() == 1) {
            emit("jalr ra, 0(" + ops[0] + ")"); return true;
        }
        if (m == "ret") {
            need(0); emit("jalr zero, 0(ra)"); return true;
        }
        // All images here are < 1 MiB, so a direct jal always reaches.
        if (m == "call") {
            need(1); emit("jal ra, " + ops[0]); return true;
        }
        if (m == "tail") {
            need(1); emit("jal zero, " + ops[0]); return true;
        }
        if (m == "la") {
            need(2);
            emit("lui " + ops[0] + ", %hi(" + ops[1] + ")");
            emit("addi " + ops[0] + ", " + ops[0] + ", %lo(" +
                 ops[1] + ")");
            return true;
        }
        if (m == "li") {
            need(2);
            int64_t v = parseNumber(st.line, ops[1]);
            if (fitsSigned(v, 12)) {
                emit("addi " + ops[0] + ", zero, " +
                     std::to_string(v));
            } else {
                const uint32_t u = static_cast<uint32_t>(v);
                const uint32_t hi = (u + 0x800u) >> 12;
                const int32_t lo = sext(u & 0xFFFu, 12);
                emit("lui " + ops[0] + ", " +
                     std::to_string(static_cast<int64_t>(
                         sext(hi & 0xFFFFFu, 20))));
                if (lo != 0)
                    emit("addi " + ops[0] + ", " + ops[0] + ", " +
                         std::to_string(lo));
            }
            return true;
        }
        return false;
    }

    // ---- statement processing (pass 1: sizes and symbols) ----

    struct Section
    {
        std::vector<Item> items;
        uint32_t size = 0;
    };

    void
    defineLabel(int num, const std::string &name)
    {
        if (symbols.count(name))
            throw AsmDiag(num, strFormat(
                "duplicate label '%s'", name.c_str()));
        // Labels bind to the next item so branch relaxation can move
        // byte offsets around without invalidating them.
        symbols[name] = {inText, currentSection().items.size()};
    }

    Section &currentSection() { return inText ? text : data; }

    void
    processStatement(const Statement &st)
    {
        if (!st.mnemonic.empty() && st.mnemonic[0] == '.') {
            processDirective(st);
            return;
        }
        auto op = opFromName(st.mnemonic);
        if (!op)
            throw AsmDiag(st.line, strFormat(
                "unknown instruction '%s'", st.mnemonic.c_str()));
        if (!inText)
            throw AsmDiag(st.line, "instruction outside .text");
        Item item;
        item.kind = Item::Kind::Instr;
        item.offset = text.size;
        item.line = st.line;
        item.instr = parseInstr(*op, st);
        text.items.push_back(std::move(item));
        text.size += 4;
    }

    void
    processDirective(const Statement &st)
    {
        const std::string &d = st.mnemonic;
        const auto &ops = st.operands;
        if (d == ".text") { inText = true; return; }
        if (d == ".data" || d == ".rodata" || d == ".bss") {
            inText = false;
            return;
        }
        if (d == ".section") {
            if (ops.empty())
                throw AsmDiag(st.line, ".section needs a name");
            inText = startsWith(ops[0], ".text");
            return;
        }
        if (d == ".globl" || d == ".global" || d == ".type" ||
            d == ".size" || d == ".file" || d == ".option" ||
            d == ".attribute" || d == ".p2align" || d == ".ident")
            return; // accepted, no effect on the flat image
        if (d == ".equ" || d == ".set") {
            if (ops.size() != 2)
                throw AsmDiag(st.line, d + " needs name, value");
            equates[ops[0]] = parseNumber(st.line, ops[1]);
            return;
        }
        if (d == ".align" || d == ".balign") {
            if (ops.size() != 1)
                throw AsmDiag(st.line, d + " needs one operand");
            int64_t arg = parseNumber(st.line, ops[0]);
            uint32_t alignment = d == ".align"
                ? (1u << arg) : static_cast<uint32_t>(arg);
            Section &sec = currentSection();
            uint32_t pad =
                (alignment - sec.size % alignment) % alignment;
            if (pad)
                appendBytes(st.line, std::vector<uint8_t>(pad, 0));
            return;
        }
        if (d == ".word" || d == ".half" || d == ".byte") {
            unsigned width = d == ".word" ? 4 : d == ".half" ? 2 : 1;
            for (const std::string &operand : ops) {
                // .word label is the one relocatable data form.
                if (width == 4 && !looksNumeric(operand)) {
                    Item item;
                    item.kind = Item::Kind::WordSym;
                    item.offset = currentSection().size;
                    item.line = st.line;
                    parseSymExpr(st.line, operand, item.sym,
                                 item.addend);
                    currentSection().items.push_back(std::move(item));
                    currentSection().size += 4;
                    continue;
                }
                int64_t v = parseNumber(st.line, operand);
                std::vector<uint8_t> bytes(width);
                for (unsigned b = 0; b < width; ++b)
                    bytes[b] = static_cast<uint8_t>(v >> (8 * b));
                appendBytes(st.line, bytes);
            }
            return;
        }
        if (d == ".space" || d == ".zero" || d == ".skip") {
            if (ops.empty())
                throw AsmDiag(st.line, d + " needs a size");
            int64_t n = parseNumber(st.line, ops[0]);
            uint8_t fill = ops.size() > 1
                ? static_cast<uint8_t>(parseNumber(st.line, ops[1]))
                : 0;
            appendBytes(st.line, std::vector<uint8_t>(
                static_cast<size_t>(n), fill));
            return;
        }
        if (d == ".ascii" || d == ".asciz" || d == ".string") {
            if (ops.size() != 1)
                throw AsmDiag(st.line, d + " needs one string");
            std::vector<uint8_t> bytes =
                parseString(st.line, ops[0]);
            if (d != ".ascii")
                bytes.push_back(0);
            appendBytes(st.line, bytes);
            return;
        }
        throw AsmDiag(st.line, strFormat(
            "unknown directive '%s'", d.c_str()));
    }

    void
    appendBytes(int line, std::vector<uint8_t> bytes)
    {
        Section &sec = currentSection();
        Item item;
        item.kind = Item::Kind::Bytes;
        item.offset = sec.size;
        item.line = line;
        sec.size += static_cast<uint32_t>(bytes.size());
        item.bytes = std::move(bytes);
        sec.items.push_back(std::move(item));
    }

    // ---- operand parsing ----

    unsigned
    parseReg(int line, std::string_view token)
    {
        auto r = regFromName(std::string(trim(token)));
        if (!r)
            throw AsmDiag(line, strFormat(
                "bad register '%s'",
                std::string(trim(token)).c_str()));
        return *r;
    }

    static bool
    looksNumeric(std::string_view s)
    {
        s = trim(s);
        if (s.empty())
            return false;
        if (s[0] == '-' || s[0] == '+')
            s = s.substr(1);
        return !s.empty() &&
            std::isdigit(static_cast<unsigned char>(s[0]));
    }

    /** Parse "a", "a+b", "a-b+c" over plain numeric terms (used by
     *  retarget macros that compute shift complements textually). */
    int64_t
    parseNumber(int line, std::string_view token)
    {
        std::string s(trim(token));
        // Fold infix +/- chains; the sign of the first term is
        // handled by parseNumberTerm itself.
        size_t split = std::string::npos;
        for (size_t i = 1; i < s.size(); ++i) {
            if ((s[i] == '+' || s[i] == '-') &&
                std::isalnum(static_cast<unsigned char>(s[i - 1])))
                split = i; // rightmost operator: left associativity
        }
        if (split != std::string::npos) {
            int64_t lhs = parseNumber(
                line, std::string_view(s).substr(0, split));
            int64_t rhs = parseNumberTerm(
                line, std::string_view(s).substr(split + 1));
            return s[split] == '+' ? lhs + rhs : lhs - rhs;
        }
        return parseNumberTerm(line, s);
    }

    int64_t
    parseNumberTerm(int line, std::string_view token)
    {
        std::string s(trim(token));
        if (s.empty())
            throw AsmDiag(line, "expected a number");
        if (auto it = equates.find(s); it != equates.end())
            return it->second;
        if (s.size() >= 3 && s.front() == '\'' && s.back() == '\'')
            return s[1];
        bool neg = false;
        size_t i = 0;
        if (s[0] == '-' || s[0] == '+') {
            neg = s[0] == '-';
            i = 1;
        }
        int base = 10;
        if (i + 1 < s.size() && s[i] == '0' &&
            (s[i + 1] == 'x' || s[i + 1] == 'X')) {
            base = 16;
            i += 2;
        } else if (i + 1 < s.size() && s[i] == '0' &&
                   (s[i + 1] == 'b' || s[i + 1] == 'B')) {
            base = 2;
            i += 2;
        }
        if (i >= s.size())
            throw AsmDiag(line, strFormat(
                "bad number '%s'", s.c_str()));
        int64_t v = 0;
        for (; i < s.size(); ++i) {
            char c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(s[i])));
            int digit;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (c >= 'a' && c <= 'f')
                digit = 10 + (c - 'a');
            else
                throw AsmDiag(line, strFormat(
                    "bad number '%s'", s.c_str()));
            if (digit >= base)
                throw AsmDiag(line, strFormat(
                    "bad number '%s'", s.c_str()));
            v = v * base + digit;
        }
        return neg ? -v : v;
    }

    /** Parse "sym", "sym+4", "sym-8" into symbol + addend. */
    void
    parseSymExpr(int line, std::string_view token, std::string &sym,
                 int64_t &addend)
    {
        std::string s(trim(token));
        size_t pos = s.find_first_of("+-", 1);
        if (pos == std::string::npos) {
            sym = s;
            addend = 0;
        } else {
            sym = std::string(trim(std::string_view(s).substr(0, pos)));
            addend = parseNumber(line,
                                 std::string_view(s).substr(pos));
        }
        if (sym.empty())
            throw AsmDiag(line, "empty symbol reference");
    }

    /** Fill the immediate slot of @p pi from an operand string. */
    void
    parseImm(int line, std::string_view token, PendingInstr &pi,
             bool pc_relative)
    {
        std::string s(trim(token));
        if (startsWith(s, "%hi(") && endsWith(s, ")")) {
            pi.kind = ImmKind::SymHi;
            std::string inner = s.substr(4, s.size() - 5);
            if (looksNumeric(inner)) {
                pi.kind = ImmKind::Value;
                uint32_t u = static_cast<uint32_t>(
                    parseNumber(line, inner));
                pi.value = sext(((u + 0x800u) >> 12) & 0xFFFFFu, 20);
            } else {
                parseSymExpr(line, inner, pi.sym, pi.addend());
            }
            return;
        }
        if (startsWith(s, "%lo(") && endsWith(s, ")")) {
            pi.kind = ImmKind::SymLo;
            std::string inner = s.substr(4, s.size() - 5);
            if (looksNumeric(inner)) {
                pi.kind = ImmKind::Value;
                uint32_t u = static_cast<uint32_t>(
                    parseNumber(line, inner));
                pi.value = sext(u & 0xFFFu, 12);
            } else {
                parseSymExpr(line, inner, pi.sym, pi.addend());
            }
            return;
        }
        if (looksNumeric(s) || equates.count(s) ||
            (!s.empty() && s.front() == '\'')) {
            pi.kind = ImmKind::Value;
            pi.value = parseNumber(line, s);
            return;
        }
        pi.kind = pc_relative ? ImmKind::SymPcRel : ImmKind::SymAbs;
        parseSymExpr(line, s, pi.sym, pi.addend());
    }

    PendingInstr
    parseInstr(Op op, const Statement &st)
    {
        PendingInstr pi;
        pi.op = op;
        pi.line = st.line;
        const auto &ops = st.operands;
        auto need = [&](size_t n) {
            if (ops.size() != n)
                throw AsmDiag(st.line, strFormat(
                    "'%s' expects %zu operand(s), got %zu",
                    std::string(opName(op)).c_str(), n, ops.size()));
        };
        switch (opInfo(op).type) {
          case InstrType::R:
            need(3);
            pi.rd = parseReg(st.line, ops[0]);
            pi.rs1 = parseReg(st.line, ops[1]);
            pi.rs2 = parseReg(st.line, ops[2]);
            break;
          case InstrType::I:
            if (isLoad(op) || op == Op::Jalr) {
                need(2);
                pi.rd = parseReg(st.line, ops[0]);
                parseAddrOperand(st.line, ops[1], pi);
            } else {
                need(3);
                pi.rd = parseReg(st.line, ops[0]);
                pi.rs1 = parseReg(st.line, ops[1]);
                parseImm(st.line, ops[2], pi, false);
            }
            break;
          case InstrType::S:
            need(2);
            pi.rs2 = parseReg(st.line, ops[0]);
            parseAddrOperand(st.line, ops[1], pi);
            break;
          case InstrType::B:
            need(3);
            pi.rs1 = parseReg(st.line, ops[0]);
            pi.rs2 = parseReg(st.line, ops[1]);
            parseImm(st.line, ops[2], pi, true);
            break;
          case InstrType::U:
            need(2);
            pi.rd = parseReg(st.line, ops[0]);
            parseImm(st.line, ops[1], pi, false);
            break;
          case InstrType::J:
            need(2);
            pi.rd = parseReg(st.line, ops[0]);
            parseImm(st.line, ops[1], pi, true);
            break;
          case InstrType::Sys:
            need(0);
            pi.kind = ImmKind::None;
            break;
        }
        return pi;
    }

    /** Parse "imm(rs1)" or bare "imm" (rs1 = x0). */
    void
    parseAddrOperand(int line, std::string_view token, PendingInstr &pi)
    {
        std::string s(trim(token));
        size_t open = s.rfind('(');
        if (open == std::string::npos || s.back() != ')') {
            pi.rs1 = 0;
            parseImm(line, s, pi, false);
            return;
        }
        pi.rs1 = parseReg(
            line, std::string_view(s).substr(
                open + 1, s.size() - open - 2));
        std::string_view imm_part = trim(
            std::string_view(s).substr(0, open));
        if (imm_part.empty()) {
            pi.kind = ImmKind::Value;
            pi.value = 0;
        } else {
            parseImm(line, imm_part, pi, false);
        }
    }

    // ---- pass 2: layout + encode ----

    void
    assignOffsets(Section &sec)
    {
        uint32_t off = 0;
        for (Item &item : sec.items) {
            item.offset = off;
            off += item.byteSize();
        }
        sec.size = off;
    }

    static bool
    isBranchOp(Op op)
    {
        return opInfo(op).type == InstrType::B;
    }

    static Op
    invertBranch(Op op)
    {
        switch (op) {
          case Op::Beq: return Op::Bne;
          case Op::Bne: return Op::Beq;
          case Op::Blt: return Op::Bge;
          case Op::Bge: return Op::Blt;
          case Op::Bltu: return Op::Bgeu;
          case Op::Bgeu: return Op::Bltu;
          default: panic("invertBranch on non-branch");
        }
    }

    void
    layout()
    {
        textStart = options.textBase;
        dataStart = options.dataBase;
        assignOffsets(data);
        // Branch relaxation: iterate until every conditional branch
        // reaches its target (relaxing one branch can push another
        // out of range).
        for (int iter = 0; ; ++iter) {
            if (iter > 32)
                throw AsmDiag(0, "branch relaxation did not settle");
            assignOffsets(text);
            bool changed = false;
            for (Item &item : text.items) {
                if (item.kind != Item::Kind::Instr || item.relaxed)
                    continue;
                const PendingInstr &pi = item.instr;
                if (!isBranchOp(pi.op) ||
                    pi.kind != ImmKind::SymPcRel)
                    continue;
                const uint32_t pc = textStart + item.offset;
                const int64_t off = resolveImm(pi, pc);
                if (!fitsSigned(off, 13)) {
                    item.relaxed = true;
                    changed = true;
                }
            }
            if (!changed)
                break;
        }
        if (textStart + text.size > dataStart && data.size > 0)
            throw AsmDiag(0, strFormat(
                "text (%u bytes) overlaps data base 0x%x",
                text.size, dataStart));
    }

    uint32_t
    symbolAddr(int line, const std::string &name) const
    {
        auto it = symbols.find(name);
        if (it == symbols.end())
            throw AsmDiag(line, strFormat(
                "undefined symbol '%s'", name.c_str()));
        const bool in_text = it->second.first;
        const Section &sec = in_text ? text : data;
        const size_t idx = it->second.second;
        const uint32_t off = idx < sec.items.size()
            ? sec.items[idx].offset : sec.size;
        return (in_text ? textStart : dataStart) + off;
    }

    int64_t
    resolveImm(const PendingInstr &pi, uint32_t pc) const
    {
        switch (pi.kind) {
          case ImmKind::None:
            return 0;
          case ImmKind::Value:
            return pi.value;
          case ImmKind::SymAbs:
            return symbolAddr(pi.line, pi.sym) + pi.value;
          case ImmKind::SymHi: {
            uint32_t a = symbolAddr(pi.line, pi.sym) +
                static_cast<uint32_t>(pi.value);
            return sext(((a + 0x800u) >> 12) & 0xFFFFFu, 20);
          }
          case ImmKind::SymLo: {
            uint32_t a = symbolAddr(pi.line, pi.sym) +
                static_cast<uint32_t>(pi.value);
            return sext(a & 0xFFFu, 12);
          }
          case ImmKind::SymPcRel: {
            uint32_t a = symbolAddr(pi.line, pi.sym) +
                static_cast<uint32_t>(pi.value);
            return static_cast<int64_t>(a) -
                static_cast<int64_t>(pc);
          }
        }
        panic("unreachable");
    }

    uint32_t
    encodeOne(const PendingInstr &pi, uint32_t pc) const
    {
        int64_t imm = resolveImm(pi, pc);
        auto check = [&](unsigned width, bool even) {
            if (!fitsSigned(imm, width) ||
                (even && (imm & 1)))
                throw AsmDiag(pi.line, strFormat(
                    "immediate %lld out of range for %s",
                    static_cast<long long>(imm),
                    std::string(opName(pi.op)).c_str()));
        };
        switch (opInfo(pi.op).type) {
          case InstrType::R:
            return encodeR(pi.op, pi.rd, pi.rs1, pi.rs2);
          case InstrType::I:
            if (pi.op == Op::Slli || pi.op == Op::Srli ||
                pi.op == Op::Srai) {
                if (imm < 0 || imm > 31)
                    throw AsmDiag(pi.line, strFormat(
                        "shift amount %lld out of range",
                        static_cast<long long>(imm)));
            } else {
                check(12, false);
            }
            return encodeI(pi.op, pi.rd, pi.rs1,
                           static_cast<int32_t>(imm));
          case InstrType::S:
            check(12, false);
            return encodeS(pi.op, pi.rs1, pi.rs2,
                           static_cast<int32_t>(imm));
          case InstrType::B:
            check(13, true);
            return encodeB(pi.op, pi.rs1, pi.rs2,
                           static_cast<int32_t>(imm));
          case InstrType::U:
            if (imm < -(1 << 19) || imm >= (1 << 20))
                throw AsmDiag(pi.line, strFormat(
                    "U-immediate %lld out of range",
                    static_cast<long long>(imm)));
            return encodeU(pi.op, pi.rd,
                           static_cast<int32_t>(imm));
          case InstrType::J:
            check(21, true);
            return encodeJ(pi.op, pi.rd,
                           static_cast<int32_t>(imm));
          case InstrType::Sys:
            return encodeSys(pi.op);
        }
        panic("unreachable");
    }

    Program
    encode()
    {
        Program prog;
        Segment text_seg;
        text_seg.base = textStart;
        text_seg.bytes.resize(text.size, 0);
        for (const Item &item : text.items) {
            if (item.kind == Item::Kind::Instr) {
                const uint32_t pc = textStart + item.offset;
                uint32_t word;
                if (item.relaxed) {
                    // Inverted branch skipping the jal, then the jal
                    // carrying the long-range offset.
                    const PendingInstr &pi = item.instr;
                    word = encodeB(invertBranch(pi.op), pi.rs1,
                                   pi.rs2, 8);
                    for (unsigned b = 0; b < 4; ++b)
                        text_seg.bytes[item.offset + b] =
                            static_cast<uint8_t>(word >> (8 * b));
                    PendingInstr far;
                    far.op = Op::Jal;
                    far.rd = 0;
                    far.kind = pi.kind;
                    far.value = pi.value;
                    far.sym = pi.sym;
                    far.line = pi.line;
                    word = encodeOne(far, pc + 4);
                    for (unsigned b = 0; b < 4; ++b)
                        text_seg.bytes[item.offset + 4 + b] =
                            static_cast<uint8_t>(word >> (8 * b));
                    continue;
                }
                word = encodeOne(item.instr, pc);
                for (unsigned b = 0; b < 4; ++b)
                    text_seg.bytes[item.offset + b] =
                        static_cast<uint8_t>(word >> (8 * b));
            } else if (item.kind == Item::Kind::Bytes) {
                std::copy(item.bytes.begin(), item.bytes.end(),
                          text_seg.bytes.begin() + item.offset);
            } else {
                uint32_t v = symbolAddr(item.line, item.sym) +
                    static_cast<uint32_t>(item.addend);
                for (unsigned b = 0; b < 4; ++b)
                    text_seg.bytes[item.offset + b] =
                        static_cast<uint8_t>(v >> (8 * b));
            }
        }
        Segment data_seg;
        data_seg.base = dataStart;
        data_seg.bytes.resize(data.size, 0);
        for (const Item &item : data.items) {
            if (item.kind == Item::Kind::Bytes) {
                std::copy(item.bytes.begin(), item.bytes.end(),
                          data_seg.bytes.begin() + item.offset);
            } else if (item.kind == Item::Kind::WordSym) {
                uint32_t v = symbolAddr(item.line, item.sym) +
                    static_cast<uint32_t>(item.addend);
                for (unsigned b = 0; b < 4; ++b)
                    data_seg.bytes[item.offset + b] =
                        static_cast<uint8_t>(v >> (8 * b));
            } else {
                throw AsmDiag(item.line, "instruction in .data");
            }
        }

        prog.segments.push_back(std::move(text_seg));
        if (data.size > 0)
            prog.segments.push_back(std::move(data_seg));
        prog.textBase = textStart;
        prog.textSize = text.size;
        for (const auto &[name, loc] : symbols)
            prog.symbols[name] = symbolAddr(0, name);
        (void)dataStart;
        prog.entry = prog.hasSymbol("_start")
            ? prog.symbols.at("_start") : textStart;
        return prog;
    }

    std::vector<uint8_t>
    parseString(int line, std::string_view token)
    {
        std::string s(trim(token));
        if (s.size() < 2 || s.front() != '"' || s.back() != '"')
            throw AsmDiag(line, "expected a quoted string");
        std::vector<uint8_t> out;
        for (size_t i = 1; i + 1 < s.size(); ++i) {
            char c = s[i];
            if (c == '\\' && i + 2 < s.size()) {
                ++i;
                switch (s[i]) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case '0': c = '\0'; break;
                  case '\\': c = '\\'; break;
                  case '"': c = '"'; break;
                  default:
                    throw AsmDiag(line, "bad string escape");
                }
            }
            out.push_back(static_cast<uint8_t>(c));
        }
        return out;
    }

    const AsmOptions &options;
    int lineBias = 0;
    int macroExpansionCounter = 0;
    std::unordered_map<std::string, MacroDef> macros;
    std::unordered_set<std::string> expandingMacros;
    std::unordered_map<std::string, int64_t> equates;
    // label -> (in_text, item index at definition point)
    std::map<std::string, std::pair<bool, size_t>> symbols;
    Section text;
    Section data;
    bool inText = true;
    uint32_t textStart = 0;
    uint32_t dataStart = 0;
};

} // namespace

AsmResult
tryAssemble(const std::string &source, const AsmOptions &options)
{
    return tryAssembleModules({source}, options);
}

AsmResult
tryAssembleModules(const std::vector<std::string> &sources,
                   const AsmOptions &options)
{
    AsmResult result;
    try {
        Assembler as(options);
        for (const std::string &src : sources)
            as.addModule(src);
        result.program = as.finish();
        result.ok = true;
    } catch (const std::exception &e) {
        result.error = e.what();
    }
    return result;
}

Program
assemble(const std::string &source, const AsmOptions &options)
{
    AsmResult r = tryAssemble(source, options);
    if (!r.ok)
        panic("assemble: trusted source failed: %s (user input goes "
              "through tryAssemble)", r.error.c_str());
    return std::move(r.program);
}

Program
assembleModules(const std::vector<std::string> &sources,
                const AsmOptions &options)
{
    AsmResult r = tryAssembleModules(sources, options);
    if (!r.ok)
        panic("assembleModules: trusted source failed: %s (user "
              "input goes through tryAssembleModules)",
              r.error.c_str());
    return std::move(r.program);
}

} // namespace rissp
