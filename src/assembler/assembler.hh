/**
 * @file
 * Two-pass RV32E assembler.
 *
 * Stands in for GNU as in the paper's flow. Supports labels, the full
 * RV32E instruction set, the standard pseudo-instruction repertoire
 * (li/la/mv/call/ret/j/beqz/...), data directives and gas-style
 * .macro/.endm expansion — the feature the Fig. 11/12 retargeting flow
 * builds on: retarget macros shadow unsupported mnemonics and expand
 * them into supported sequences before encoding.
 */

#ifndef RISSP_ASSEMBLER_ASSEMBLER_HH
#define RISSP_ASSEMBLER_ASSEMBLER_HH

#include <optional>
#include <string>
#include <vector>

#include "sim/program.hh"

namespace rissp
{

/** Memory layout knobs for the assembled image. */
struct AsmOptions
{
    uint32_t textBase = 0x0;       ///< load address of .text
    uint32_t dataBase = 0x10000;   ///< load address of .data
    bool listing = false;          ///< dump a listing to stderr
};

/** Result of a tryAssemble() call. */
struct AsmResult
{
    bool ok = false;
    Program program;      ///< valid when ok
    std::string error;    ///< "line N: message" when !ok

    explicit operator bool() const { return ok; }
};

/**
 * Assemble source text into a program image; returns a diagnostic
 * instead of terminating on malformed input.
 */
AsmResult tryAssemble(const std::string &source,
                      const AsmOptions &options = {});

/** Multi-module variant of tryAssemble(). */
AsmResult tryAssembleModules(const std::vector<std::string> &sources,
                             const AsmOptions &options = {});

/** Assemble trusted source text (panic() on malformed input);
 *  user-provided assembly goes through tryAssemble(). */
Program assemble(const std::string &source,
                 const AsmOptions &options = {});

/**
 * Assemble several modules as one unit (e.g. crt0 + libcalls + app);
 * modules share one symbol namespace and are laid out in order.
 */
Program assembleModules(const std::vector<std::string> &sources,
                        const AsmOptions &options = {});

} // namespace rissp

#endif // RISSP_ASSEMBLER_ASSEMBLER_HH
