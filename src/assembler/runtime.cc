#include "assembler/runtime.hh"

#include "util/logging.hh"

namespace rissp
{

std::string
crt0Source()
{
    return R"(
    .text
_start:
    lui sp, 0x80          # sp = 0x80000, top of RAM
    jal ra, main
    ecall                 # halt; exit code = main's return in a0
)";
}

std::string
mulsi3Source()
{
    return R"(
    .text
__mulsi3:                 # a0 = a0 * a1 (low 32 bits)
    addi t0, zero, 0
__mulsi3_loop:
    beq a1, zero, __mulsi3_done
    andi t1, a1, 1
    beq t1, zero, __mulsi3_skip
    add t0, t0, a0
__mulsi3_skip:
    slli a0, a0, 1
    srli a1, a1, 1
    jal zero, __mulsi3_loop
__mulsi3_done:
    addi a0, t0, 0
    jalr zero, 0(ra)
)";
}

namespace
{

/** The restoring-division loop shared by all four divide helpers.
 *  In: a0 dividend, a1 divisor. Out: t0 quotient, t1 remainder.
 *  Clobbers a2, t2. Falls through to the label in @p tail. */
std::string
divLoop(const std::string &prefix)
{
    return
        "    addi t0, zero, 0\n"
        "    addi t1, zero, 0\n"
        "    addi t2, zero, 32\n" +
        prefix + "_loop:\n"
        "    slli t1, t1, 1\n"
        "    srli a2, a0, 31\n"
        "    or t1, t1, a2\n"
        "    slli a0, a0, 1\n"
        "    slli t0, t0, 1\n"
        "    bltu t1, a1, " + prefix + "_skip\n"
        "    sub t1, t1, a1\n"
        "    ori t0, t0, 1\n" +
        prefix + "_skip:\n"
        "    addi t2, t2, -1\n"
        "    bne t2, zero, " + prefix + "_loop\n";
}

} // namespace

std::string
udivsi3Source()
{
    return "    .text\n__udivsi3:\n" + divLoop("__udivsi3") +
        "    addi a0, t0, 0\n"
        "    addi a1, t1, 0\n"
        "    jalr zero, 0(ra)\n";
}

std::string
umodsi3Source()
{
    return "    .text\n__umodsi3:\n" + divLoop("__umodsi3") +
        "    addi a0, t1, 0\n"
        "    jalr zero, 0(ra)\n";
}

std::string
divsi3Source()
{
    return "    .text\n__divsi3:\n"
        "    addi a4, zero, 0\n"
        "    bge a0, zero, __divsi3_p1\n"
        "    sub a0, zero, a0\n"
        "    xori a4, a4, 1\n"
        "__divsi3_p1:\n"
        "    bge a1, zero, __divsi3_p2\n"
        "    sub a1, zero, a1\n"
        "    xori a4, a4, 1\n"
        "__divsi3_p2:\n" +
        divLoop("__divsi3") +
        "    beq a4, zero, __divsi3_done\n"
        "    sub t0, zero, t0\n"
        "__divsi3_done:\n"
        "    addi a0, t0, 0\n"
        "    jalr zero, 0(ra)\n";
}

std::string
modsi3Source()
{
    return "    .text\n__modsi3:\n"
        "    addi a4, zero, 0\n"
        "    bge a0, zero, __modsi3_p1\n"
        "    sub a0, zero, a0\n"
        "    xori a4, a4, 1\n"
        "__modsi3_p1:\n"
        "    bge a1, zero, __modsi3_p2\n"
        "    sub a1, zero, a1\n"
        "__modsi3_p2:\n" +
        divLoop("__modsi3") +
        "    beq a4, zero, __modsi3_done\n"
        "    sub t1, zero, t1\n"
        "__modsi3_done:\n"
        "    addi a0, t1, 0\n"
        "    jalr zero, 0(ra)\n";
}

std::string
runtimeModule(const std::string &symbol)
{
    if (symbol == "__mulsi3")
        return mulsi3Source();
    if (symbol == "__udivsi3")
        return udivsi3Source();
    if (symbol == "__umodsi3")
        return umodsi3Source();
    if (symbol == "__divsi3")
        return divsi3Source();
    if (symbol == "__modsi3")
        return modsi3Source();
    panic("unknown runtime helper '%s'", symbol.c_str());
}

std::vector<std::string>
runtimeHelperNames()
{
    return {"__mulsi3", "__udivsi3", "__umodsi3", "__divsi3",
            "__modsi3"};
}

} // namespace rissp
