/**
 * @file
 * DiskStore implementation: record framing, the atomic publish
 * protocol, corruption quarantine and on-demand eviction.
 *
 * Record frame (all integers little-endian; see store/bytes.hh):
 *
 *     offset  size  field
 *     0       4     magic "RART"
 *     4       4     store format version (kFormatVersion)
 *     8       1     ArtifactKind
 *     9       8     key.a
 *     17      8     key.b
 *     25      8     payload size
 *     33      n     payload
 *     33+n    8     FNV-1a checksum of bytes [4, 33+n)
 *
 * The kind and the full key are inside the checksummed region, so a
 * record renamed onto the wrong name (or a colliding path from a
 * different layout version) can never be served: load() verifies
 * magic, version, kind, key, size and checksum before a single
 * payload byte leaves the store. Anything off moves the file into
 * quarantine/ and reports a miss — the memo layer recomputes and
 * republishes, which is the self-healing path for every corruption
 * mode (torn write, bit rot, version skew).
 *
 * This file is the sanctioned home of raw filesystem publication
 * (rename / output streams): the `raw-fs-publish` lint check bans
 * them everywhere else under src/, so no other library code can
 * accidentally write a non-atomic file.
 */

#include "store/disk_store.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "store/bytes.hh"
#include "util/logging.hh"

namespace rissp::store
{

namespace fs = std::filesystem;

namespace
{

constexpr char kMagic[4] = {'R', 'A', 'R', 'T'};
constexpr size_t kFrameOverhead = 4 + 4 + 1 + 8 + 8 + 8 + 8;

/** The MANIFEST body: human-readable, exact-match verified. */
std::string
manifestText()
{
    return strFormat("rissp-artifact-store %u\n",
                     DiskStore::kFormatVersion);
}

bool
readWholeFile(const std::string &path, std::vector<uint8_t> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string s = buf.str();
    out.assign(s.begin(), s.end());
    return true;
}

std::vector<uint8_t>
frameRecord(ArtifactKind kind, const ArtifactKey &key,
            const std::vector<uint8_t> &payload)
{
    ByteWriter w;
    w.bytes(reinterpret_cast<const uint8_t *>(kMagic),
            sizeof kMagic);
    w.u32(DiskStore::kFormatVersion);
    w.u8(static_cast<uint8_t>(kind));
    w.u64(key.a);
    w.u64(key.b);
    w.u64(payload.size());
    w.bytes(payload.data(), payload.size());
    std::vector<uint8_t> frame = w.take();
    const uint64_t sum =
        checksum64(frame.data() + 4, frame.size() - 4);
    ByteWriter tail;
    tail.u64(sum);
    frame.insert(frame.end(), tail.data().begin(),
                 tail.data().end());
    return frame;
}

/** Verify a raw record against the (kind, key) it was looked up
 *  under; extract the payload. False on *any* discrepancy. */
bool
parseRecord(const std::vector<uint8_t> &raw, ArtifactKind kind,
            const ArtifactKey &key, std::vector<uint8_t> &payload)
{
    if (raw.size() < kFrameOverhead)
        return false;
    if (std::memcmp(raw.data(), kMagic, sizeof kMagic) != 0)
        return false;
    const size_t bodyLen = raw.size() - sizeof kMagic - 8;
    const uint64_t want =
        checksum64(raw.data() + sizeof kMagic, bodyLen);
    ByteReader tail(raw.data() + raw.size() - 8, 8);
    if (tail.u64() != want)
        return false;
    ByteReader r(raw.data() + sizeof kMagic, bodyLen);
    const uint32_t version = r.u32();
    const uint8_t kindByte = r.u8();
    const uint64_t a = r.u64();
    const uint64_t b = r.u64();
    const uint64_t payloadSize = r.u64();
    if (!r.ok() || version != DiskStore::kFormatVersion ||
        kindByte != static_cast<uint8_t>(kind) || a != key.a ||
        b != key.b || payloadSize != r.left())
        return false;
    payload = r.blob(static_cast<size_t>(payloadSize));
    return r.atEnd();
}

} // namespace

DiskStore::DiskStore(std::string directory, const Options &options)
    : dir(std::move(directory)), opts(options)
{
}

Result<std::shared_ptr<DiskStore>>
DiskStore::open(const std::string &directory, Options options)
{
    if (directory.empty())
        return Status::error(ErrorCode::InvalidArgument,
                             "store: empty cache directory");
    std::shared_ptr<DiskStore> store(
        new DiskStore(directory, options));
    const Status status = store->initLayout();
    if (!status.isOk())
        return status;
    return store;
}

Status
DiskStore::initLayout()
{
    std::error_code ec;
    const fs::path base(dir);
    const fs::path subdirs[] = {
        base,
        base / kindName(ArtifactKind::Compile),
        base / kindName(ArtifactKind::Sim),
        base / kindName(ArtifactKind::Synth),
        base / kindName(ArtifactKind::SynthReport),
        base / "tmp",
        base / "quarantine",
    };
    for (const fs::path &sub : subdirs) {
        fs::create_directories(sub, ec);
        if (ec)
            return Status::errorf(
                ErrorCode::InvalidArgument,
                "store: cannot create '%s': %s",
                sub.string().c_str(), ec.message().c_str());
    }

    // The manifest marks the directory as a store of this format. A
    // missing or garbled one is quarantined and rewritten — records
    // are individually verified, so the store recovers whatever is
    // still intact.
    const std::string manifestPath =
        (base / "MANIFEST").string();
    const std::string expected = manifestText();
    std::vector<uint8_t> raw;
    const bool readable = readWholeFile(manifestPath, raw);
    const bool intact =
        readable &&
        std::string(raw.begin(), raw.end()) == expected;
    if (!intact) {
        if (readable)
            quarantineFile(manifestPath);
        const std::vector<uint8_t> bytes(expected.begin(),
                                         expected.end());
        if (!writeDurable(nextTmpPath(), manifestPath, bytes))
            return Status::errorf(
                ErrorCode::InvalidArgument,
                "store: cannot write manifest in '%s'",
                dir.c_str());
    }

    const Usage seeded = usage();
    {
        LockGuard lock(mu);
        approxRecordBytes = seeded.bytes;
    }
    return Status::ok();
}

std::string
DiskStore::recordPath(ArtifactKind kind,
                      const ArtifactKey &key) const
{
    return strFormat("%s/%s/%016llx-%016llx.art", dir.c_str(),
                     kindName(kind),
                     static_cast<unsigned long long>(key.a),
                     static_cast<unsigned long long>(key.b));
}

std::string
DiskStore::nextTmpPath()
{
    uint64_t seq = 0;
    {
        LockGuard lock(mu);
        seq = ++tmpSeq;
    }
    return strFormat("%s/tmp/%ld-%llu.tmp", dir.c_str(),
                     static_cast<long>(::getpid()),
                     static_cast<unsigned long long>(seq));
}

void
DiskStore::quarantineFile(const std::string &path)
{
    uint64_t seq = 0;
    {
        LockGuard lock(mu);
        seq = ++tmpSeq;
    }
    const std::string dest = strFormat(
        "%s/quarantine/%s.%llu", dir.c_str(),
        fs::path(path).filename().string().c_str(),
        static_cast<unsigned long long>(seq));
    if (std::rename(path.c_str(), dest.c_str()) == 0) {
        quarantineCount.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    // Cross-device or permission trouble: removing the bad file is
    // still better than serving it forever.
    std::error_code ec;
    if (fs::remove(path, ec))
        quarantineCount.fetch_add(1, std::memory_order_relaxed);
}

bool
DiskStore::writeDurable(const std::string &tmp_path,
                        const std::string &final_path,
                        const std::vector<uint8_t> &bytes)
{
    const int fd = ::open(tmp_path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0)
        return false;
    size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            ::unlink(tmp_path.c_str());
            return false;
        }
        off += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp_path.c_str());
        return false;
    }
    ::close(fd);
    if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
        ::unlink(tmp_path.c_str());
        return false;
    }
    // Make the rename itself durable: fsync the containing
    // directory, best-effort (some filesystems refuse O_RDONLY
    // directory fsyncs; the data is already safe on those).
    const std::string parent =
        fs::path(final_path).parent_path().string();
    const int dirFd =
        ::open(parent.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dirFd >= 0) {
        ::fsync(dirFd);
        ::close(dirFd);
    }
    return true;
}

bool
DiskStore::load(ArtifactKind kind, const ArtifactKey &key,
                std::vector<uint8_t> &payload)
{
    const std::string path = recordPath(kind, key);
    std::vector<uint8_t> raw;
    if (!readWholeFile(path, raw)) {
        missCount.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (!parseRecord(raw, kind, key, payload)) {
        quarantineFile(path);
        missCount.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    hitCount.fetch_add(1, std::memory_order_relaxed);
    readBytes.fetch_add(payload.size(), std::memory_order_relaxed);
    return true;
}

bool
DiskStore::publish(ArtifactKind kind, const ArtifactKey &key,
                   const std::vector<uint8_t> &payload)
{
    const std::vector<uint8_t> frame =
        frameRecord(kind, key, payload);
    if (!writeDurable(nextTmpPath(), recordPath(kind, key),
                      frame)) {
        writeErrorCount.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    writeCount.fetch_add(1, std::memory_order_relaxed);
    writtenBytes.fetch_add(payload.size(),
                           std::memory_order_relaxed);
    noteBytesAdded(frame.size());
    return true;
}

void
DiskStore::noteBytesAdded(uint64_t bytes)
{
    bool runGc = false;
    {
        LockGuard lock(mu);
        approxRecordBytes += bytes;
        if (opts.autoGcBytes != 0 &&
            approxRecordBytes > opts.autoGcBytes && !gcInFlight) {
            gcInFlight = true;
            runGc = true;
        }
    }
    if (!runGc)
        return;
    GcPolicy policy;
    policy.maxTotalBytes = opts.autoGcBytes;
    gc(policy);
    LockGuard lock(mu);
    gcInFlight = false;
}

DiskStore::GcReport
DiskStore::gc(const GcPolicy &policy)
{
    GcReport report;
    std::error_code ec;
    const fs::path base(dir);

    auto purgeDir = [&](const char *name, uint64_t &counter) {
        for (auto it = fs::directory_iterator(base / name, ec);
             !ec && it != fs::directory_iterator();
             it.increment(ec)) {
            if (!it->is_regular_file(ec))
                continue;
            std::error_code rmEc;
            if (fs::remove(it->path(), rmEc))
                ++counter;
        }
        ec.clear();
    };
    if (policy.purgeTmp)
        purgeDir("tmp", report.tmpPurged);
    if (policy.purgeQuarantine)
        purgeDir("quarantine", report.quarantinePurged);

    struct Rec
    {
        std::string path;
        uint64_t size = 0;
        fs::file_time_type mtime;
    };
    std::vector<Rec> records;
    for (unsigned k = 0; k < kArtifactKindCount; ++k) {
        const fs::path kindDir =
            base / kindName(static_cast<ArtifactKind>(k));
        for (auto it = fs::directory_iterator(kindDir, ec);
             !ec && it != fs::directory_iterator();
             it.increment(ec)) {
            if (!it->is_regular_file(ec))
                continue;
            Rec rec;
            rec.path = it->path().string();
            rec.size = it->file_size(ec);
            rec.mtime = it->last_write_time(ec);
            records.push_back(std::move(rec));
        }
        ec.clear();
    }
    report.scannedRecords = records.size();
    for (const Rec &rec : records)
        report.scannedBytes += rec.size;

    auto evict = [&](const Rec &rec) {
        std::error_code rmEc;
        if (fs::remove(rec.path, rmEc)) {
            ++report.evictedRecords;
            report.evictedBytes += rec.size;
            evictionCount.fetch_add(1, std::memory_order_relaxed);
        }
    };

    std::vector<Rec> kept;
    const auto now = fs::file_time_type::clock::now();
    for (Rec &rec : records) {
        const bool expired =
            policy.maxAgeSeconds > 0 &&
            now - rec.mtime >
                std::chrono::seconds(policy.maxAgeSeconds);
        if (expired)
            evict(rec);
        else
            kept.push_back(std::move(rec));
    }

    // Oldest-first size eviction; ties break on path so the pass is
    // deterministic for a fixed directory state.
    uint64_t keptBytes = 0;
    for (const Rec &rec : kept)
        keptBytes += rec.size;
    if (policy.maxTotalBytes > 0 && keptBytes > policy.maxTotalBytes) {
        std::sort(kept.begin(), kept.end(),
                  [](const Rec &x, const Rec &y) {
                      if (x.mtime != y.mtime)
                          return x.mtime < y.mtime;
                      return x.path < y.path;
                  });
        size_t next = 0;
        while (keptBytes > policy.maxTotalBytes &&
               next < kept.size()) {
            evict(kept[next]);
            keptBytes -= kept[next].size;
            ++next;
        }
        kept.erase(kept.begin(),
                   kept.begin() + static_cast<long>(next));
    }

    report.remainingRecords = kept.size();
    report.remainingBytes = keptBytes;
    {
        LockGuard lock(mu);
        approxRecordBytes = keptBytes;
    }
    return report;
}

DiskStore::Usage
DiskStore::usage() const
{
    Usage total;
    std::error_code ec;
    const fs::path base(dir);
    for (unsigned k = 0; k < kArtifactKindCount; ++k) {
        const fs::path kindDir =
            base / kindName(static_cast<ArtifactKind>(k));
        for (auto it = fs::directory_iterator(kindDir, ec);
             !ec && it != fs::directory_iterator();
             it.increment(ec)) {
            if (!it->is_regular_file(ec))
                continue;
            ++total.kinds[k].records;
            total.kinds[k].bytes += it->file_size(ec);
        }
        ec.clear();
        total.records += total.kinds[k].records;
        total.bytes += total.kinds[k].bytes;
    }
    for (auto it = fs::directory_iterator(base / "quarantine", ec);
         !ec && it != fs::directory_iterator(); it.increment(ec)) {
        if (!it->is_regular_file(ec))
            continue;
        ++total.quarantineFiles;
        total.quarantineBytes += it->file_size(ec);
    }
    ec.clear();
    for (auto it = fs::directory_iterator(base / "tmp", ec);
         !ec && it != fs::directory_iterator(); it.increment(ec)) {
        if (it->is_regular_file(ec))
            ++total.tmpFiles;
    }
    return total;
}

StoreStats
DiskStore::stats() const
{
    StoreStats s;
    s.hits = hitCount.load(std::memory_order_relaxed);
    s.misses = missCount.load(std::memory_order_relaxed);
    s.writes = writeCount.load(std::memory_order_relaxed);
    s.writeErrors =
        writeErrorCount.load(std::memory_order_relaxed);
    s.quarantined =
        quarantineCount.load(std::memory_order_relaxed);
    s.evictions = evictionCount.load(std::memory_order_relaxed);
    s.bytesRead = readBytes.load(std::memory_order_relaxed);
    s.bytesWritten = writtenBytes.load(std::memory_order_relaxed);
    return s;
}

} // namespace rissp::store
