/**
 * @file
 * The pluggable persistence layer under the stage caches.
 *
 * `StageCaches` (flow/caches.hh) memoizes the expensive pipeline
 * stages in promise-backed in-memory caches; everything in them dies
 * with the process. An `ArtifactStore` is the tier below: a
 * content-addressed byte store keyed by the same fingerprints the
 * caches already derive (subset fp × tech fp × options), so a second
 * boot — or a sibling process sharing the directory — loads compiled
 * images, synthesis reports and explore outcomes instead of
 * recomputing them.
 *
 * The split keeps the hot path untouched: the in-memory layer still
 * provides exactly-once computation and in-flight dedup; the store is
 * only consulted *inside* a memo miss (load before compute, publish
 * after), and a null/absent store degrades to exactly the old
 * behavior. Stores traffic in opaque payload bytes — encoding the
 * flow-level artifact types lives flow-side (flow/persist.hh), so
 * this package depends on nothing above util/.
 *
 * Implementations must be thread-safe: one store instance backs all
 * caches of a service and is hit from every scheduler worker.
 */

#ifndef RISSP_STORE_ARTIFACT_STORE_HH
#define RISSP_STORE_ARTIFACT_STORE_HH

#include <cstdint>
#include <vector>

namespace rissp::store
{

/** The artifact families a store shards by (one directory each). */
enum class ArtifactKind : uint8_t
{
    Compile = 0,     ///< Result<minic::CompileResult>
    Sim = 1,         ///< flow::SimOutcome
    Synth = 2,       ///< flow::SynthOutcome
    SynthReport = 3, ///< Result<SynthReport> (full sweep)
};

inline constexpr unsigned kArtifactKindCount = 4;

/** Stable lower-case directory/display name, e.g. "synthreport". */
const char *kindName(ArtifactKind kind);

/** A 128-bit content address — the memo-cache key verbatim (the
 *  compile cache's single 64-bit key uses b = 0). */
struct ArtifactKey
{
    uint64_t a = 0;
    uint64_t b = 0;
};

/** Cumulative counters of one store instance (process lifetime). */
struct StoreStats
{
    uint64_t hits = 0;         ///< loads that returned a payload
    uint64_t misses = 0;       ///< loads with no (valid) record
    uint64_t writes = 0;       ///< records published
    uint64_t writeErrors = 0;  ///< publishes that failed (kept going)
    uint64_t quarantined = 0;  ///< corrupt records moved aside
    uint64_t evictions = 0;    ///< records removed by gc()
    uint64_t bytesRead = 0;    ///< payload bytes served from hits
    uint64_t bytesWritten = 0; ///< payload bytes published
};

/**
 * Abstract artifact store. Both operations are best-effort by
 * contract: a failed load is a miss (the caller recomputes), a failed
 * publish is dropped (the caller already has the value) — persistence
 * is an optimization and must never turn into a crash or a wrong
 * answer.
 */
class ArtifactStore
{
  public:
    virtual ~ArtifactStore() = default;

    /** Fetch the payload stored under (kind, key) into @p payload.
     *  @return true on a valid record; false on any miss, including
     *  corrupt or truncated records (which the store quarantines). */
    virtual bool load(ArtifactKind kind, const ArtifactKey &key,
                      std::vector<uint8_t> &payload) = 0;

    /** Durably publish @p payload under (kind, key), atomically:
     *  readers see the old record or the new one, never a partial
     *  write. @return false if the record could not be published. */
    virtual bool publish(ArtifactKind kind, const ArtifactKey &key,
                         const std::vector<uint8_t> &payload) = 0;

    virtual StoreStats stats() const = 0;
};

/** The no-op store: every load misses, every publish is dropped.
 *  Behaviorally identical to having no store at all — exists so call
 *  sites and tests can exercise the store seam without a disk. */
class NullStore final : public ArtifactStore
{
  public:
    bool load(ArtifactKind, const ArtifactKey &,
              std::vector<uint8_t> &) override
    {
        return false;
    }

    bool publish(ArtifactKind, const ArtifactKey &,
                 const std::vector<uint8_t> &) override
    {
        return true;
    }

    StoreStats stats() const override { return {}; }
};

} // namespace rissp::store

#endif // RISSP_STORE_ARTIFACT_STORE_HH
