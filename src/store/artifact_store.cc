/**
 * @file
 * Shared helpers of the store package.
 */

#include "store/artifact_store.hh"

namespace rissp::store
{

const char *
kindName(ArtifactKind kind)
{
    switch (kind) {
      case ArtifactKind::Compile:
        return "compile";
      case ArtifactKind::Sim:
        return "sim";
      case ArtifactKind::Synth:
        return "synth";
      case ArtifactKind::SynthReport:
        return "synthreport";
    }
    return "unknown";
}

} // namespace rissp::store
