/**
 * @file
 * DiskStore — the on-disk content-addressed artifact store.
 *
 * Layout under the store directory (created on open):
 *
 *     MANIFEST                   store format marker (text, atomic)
 *     compile/<a>-<b>.art        one record per artifact, named by
 *     sim/<a>-<b>.art            its 128-bit key (16 hex digits per
 *     synth/<a>-<b>.art          half)
 *     synthreport/<a>-<b>.art
 *     tmp/                       publish staging (write → fsync →
 *                                rename into the kind directory)
 *     quarantine/                corrupt records moved aside
 *
 * Records are self-verifying: a fixed magic, the store format
 *  version, the kind and the full key are framed around the payload
 * and covered by a trailing FNV-1a checksum (see disk_store.cc for
 * the exact frame). A load that finds anything wrong — short file,
 * bad magic, version skew, key mismatch, checksum failure — reports a
 * miss and moves the file into quarantine/; corruption can cost a
 * recomputation, never a crash or a wrong answer. Publishes are
 * atomic (temp file in tmp/, fsync, rename, directory fsync), so a
 * process killed mid-write leaves either the old record, no record,
 * or a stale tmp file — never a half-written record under a live
 * name.
 *
 * Eviction runs on demand via gc(): stale tmp files and quarantined
 * records are purged, then records are dropped oldest-first to meet
 * an optional age bound and size budget. `Options::autoGcBytes`
 * arms the same policy on the publish path, keeping a long-lived
 * daemon's directory bounded without an operator.
 *
 * Thread-safety: counters are atomics; the tmp-name sequence, the
 * approximate size accounting and the single-flight gc flag are
 * guarded by `mu` (capability-annotated, so Clang checks the
 * contracts). Cross-process safety comes from the publish protocol:
 * concurrent publishers of the same key race benignly (last rename
 * wins; both wrote identical bytes for a content-addressed key).
 */

#ifndef RISSP_STORE_DISK_STORE_HH
#define RISSP_STORE_DISK_STORE_HH

#include <atomic>
#include <memory>
#include <string>

#include "store/artifact_store.hh"
#include "util/mutex.hh"
#include "util/status.hh"
#include "util/thread_annotations.hh"

namespace rissp::store
{

class DiskStore final : public ArtifactStore
{
  public:
    /** Store format version; bumped on any frame/layout change.
     *  Records from another version quarantine on load (self-heal by
     *  recompute), they are never misread. */
    static constexpr uint32_t kFormatVersion = 1;

    struct Options
    {
        /** When non-zero, a publish that pushes the (approximate)
         *  record total past this many bytes triggers a gc back down
         *  to it. 0 = never collect automatically. */
        uint64_t autoGcBytes = 0;
    };

    /** Open (creating if needed) the store at @p directory. Fails
     *  with InvalidArgument when the layout cannot be created or the
     *  path is not usable as a store. A garbled MANIFEST is not an
     *  error: it is quarantined and rewritten, and the records —
     *  each individually verified — speak for themselves. */
    static Result<std::shared_ptr<DiskStore>>
    open(const std::string &directory, Options options);

    static Result<std::shared_ptr<DiskStore>>
    open(const std::string &directory)
    {
        return open(directory, Options());
    }

    bool load(ArtifactKind kind, const ArtifactKey &key,
              std::vector<uint8_t> &payload) override;

    bool publish(ArtifactKind kind, const ArtifactKey &key,
                 const std::vector<uint8_t> &payload) override;

    StoreStats stats() const override;

    // ------------------------------------------------ maintenance

    struct GcPolicy
    {
        uint64_t maxTotalBytes = 0; ///< size budget (0 = unbounded)
        int64_t maxAgeSeconds = 0;  ///< drop older records (0 = keep)
        bool purgeQuarantine = true;
        bool purgeTmp = true;
    };

    struct GcReport
    {
        uint64_t scannedRecords = 0;
        uint64_t scannedBytes = 0;
        uint64_t evictedRecords = 0;
        uint64_t evictedBytes = 0;
        uint64_t quarantinePurged = 0;
        uint64_t tmpPurged = 0;
        uint64_t remainingRecords = 0;
        uint64_t remainingBytes = 0;
    };

    /** Run the eviction policy now. Safe concurrently with loads and
     *  publishes (an evicted record simply misses next time). */
    GcReport gc(const GcPolicy &policy);

    // ----------------------------------------------- introspection

    struct KindUsage
    {
        uint64_t records = 0;
        uint64_t bytes = 0;
    };

    struct Usage
    {
        KindUsage kinds[kArtifactKindCount] = {};
        uint64_t records = 0;
        uint64_t bytes = 0;
        uint64_t quarantineFiles = 0;
        uint64_t quarantineBytes = 0;
        uint64_t tmpFiles = 0;
    };

    /** Scan the directory (records, bytes, quarantine backlog). */
    Usage usage() const;

    const std::string &directory() const { return dir; }

    /** The on-disk path a (kind, key) record lives at — exposed so
     *  tests can corrupt records the way real crashes would. */
    std::string recordPath(ArtifactKind kind,
                           const ArtifactKey &key) const;

  private:
    DiskStore(std::string directory, const Options &options);

    Status initLayout();

    /** Move a bad file into quarantine/ (never deletes in-place —
     *  evidence is kept for post-mortems until gc purges it). */
    void quarantineFile(const std::string &path);

    bool writeDurable(const std::string &tmp_path,
                      const std::string &final_path,
                      const std::vector<uint8_t> &bytes);

    std::string nextTmpPath();

    void noteBytesAdded(uint64_t bytes);

    const std::string dir;
    const Options opts;

    std::atomic<uint64_t> hitCount{0};
    std::atomic<uint64_t> missCount{0};
    std::atomic<uint64_t> writeCount{0};
    std::atomic<uint64_t> writeErrorCount{0};
    std::atomic<uint64_t> quarantineCount{0};
    std::atomic<uint64_t> evictionCount{0};
    std::atomic<uint64_t> readBytes{0};
    std::atomic<uint64_t> writtenBytes{0};

    mutable Mutex mu;
    /** Distinguishes concurrent publishers within one process; the
     *  pid distinguishes processes (see nextTmpPath). */
    uint64_t tmpSeq RISSP_GUARDED_BY(mu) = 0;
    /** Running estimate of record bytes on disk, seeded by the open
     *  scan and bumped per publish — what autoGcBytes compares
     *  against without a directory walk per publish. */
    uint64_t approxRecordBytes RISSP_GUARDED_BY(mu) = 0;
    /** Single-flight latch for the automatic gc. */
    bool gcInFlight RISSP_GUARDED_BY(mu) = false;
};

} // namespace rissp::store

#endif // RISSP_STORE_DISK_STORE_HH
