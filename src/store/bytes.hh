/**
 * @file
 * Bounds-checked little-endian byte (de)serialization for store
 * records, plus the FNV-1a checksum they carry.
 *
 * Artifact payloads and record frames are flat byte strings built
 * with `ByteWriter` and decoded with `ByteReader`. The reader never
 * throws and never reads out of bounds: any short read flips a sticky
 * `ok()` flag and yields zero values, so a decoder can run to the end
 * and check `ok()` once — exactly the discipline a store needs when
 * the input may be a truncated or garbled file.
 *
 * Doubles travel as their IEEE-754 bit pattern, so a value read back
 * is bit-identical to the one written — byte-identical result tables
 * across a store round-trip depend on this.
 *
 * Everything is explicitly little-endian, so a store directory is
 * portable across hosts of the same endianness family (and safely
 * rejected, via checksums/versioning, otherwise).
 */

#ifndef RISSP_STORE_BYTES_HH
#define RISSP_STORE_BYTES_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace rissp::store
{

/** 64-bit FNV-1a over a byte range (the record checksum). */
inline uint64_t
checksum64(const uint8_t *data, size_t size,
           uint64_t seed = 1469598103934665603ull)
{
    uint64_t hash = seed;
    for (size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

/** Append-only little-endian encoder. */
class ByteWriter
{
  public:
    void u8(uint8_t v) { out.push_back(v); }

    void u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void f64(double v)
    {
        uint64_t bits = 0;
        static_assert(sizeof bits == sizeof v);
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void bytes(const uint8_t *data, size_t size)
    {
        out.insert(out.end(), data, data + size);
    }

    /** Length-prefixed string. */
    void str(const std::string &s)
    {
        u64(s.size());
        bytes(reinterpret_cast<const uint8_t *>(s.data()), s.size());
    }

    const std::vector<uint8_t> &data() const { return out; }
    std::vector<uint8_t> take() { return std::move(out); }

  private:
    std::vector<uint8_t> out;
};

/** Bounds-checked little-endian decoder with a sticky error flag. */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t size)
        : ptr(data), remaining(size)
    {
    }

    explicit ByteReader(const std::vector<uint8_t> &buf)
        : ByteReader(buf.data(), buf.size())
    {
    }

    uint8_t u8()
    {
        uint8_t v = 0;
        take(&v, 1);
        return v;
    }

    uint32_t u32()
    {
        uint8_t raw[4] = {};
        take(raw, sizeof raw);
        uint32_t v = 0;
        for (int i = 3; i >= 0; --i)
            v = (v << 8) | raw[i];
        return v;
    }

    uint64_t u64()
    {
        uint8_t raw[8] = {};
        take(raw, sizeof raw);
        uint64_t v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) | raw[i];
        return v;
    }

    double f64()
    {
        const uint64_t bits = u64();
        double v = 0;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string str()
    {
        const uint64_t size = u64();
        if (size > remaining) {
            good = false;
            remaining = 0;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(ptr),
                      static_cast<size_t>(size));
        ptr += size;
        remaining -= static_cast<size_t>(size);
        return s;
    }

    std::vector<uint8_t> blob(size_t size)
    {
        if (size > remaining) {
            good = false;
            remaining = 0;
            return {};
        }
        std::vector<uint8_t> v(ptr, ptr + size);
        ptr += size;
        remaining -= size;
        return v;
    }

    /** True iff every read so far was in bounds. */
    bool ok() const { return good; }

    /** True iff the input was consumed exactly (trailing garbage in a
     *  payload is a decode failure, not ignorable). */
    bool atEnd() const { return good && remaining == 0; }

    size_t left() const { return remaining; }

  private:
    void take(uint8_t *dst, size_t size)
    {
        if (size > remaining) {
            good = false;
            remaining = 0;
            std::memset(dst, 0, size);
            return;
        }
        std::memcpy(dst, ptr, size);
        ptr += size;
        remaining -= size;
    }

    const uint8_t *ptr;
    size_t remaining;
    bool good = true;
};

} // namespace rissp::store

#endif // RISSP_STORE_BYTES_HH
