/**
 * @file
 * The shared stage caches of the RISSP pipeline.
 *
 * Compilation, co-simulation and synthesis are the expensive stages
 * of every flow, and their results are pure functions of small
 * fingerprints. `StageCaches` bundles the three exactly-once memo
 * caches so that one set can back *all* entry points at once: the
 * `FlowService` request verbs, the design-space `Explorer`, and any
 * future server front end share one instance, and a characterize
 * request warms the cache the next explore request hits. The caches
 * were originally private to the Explorer; lifting them here is what
 * makes the facade cheap to call repeatedly.
 *
 * All caches are thread-safe (see explore/memo.hh — their internal
 * locking is capability-annotated, so misuse is a compile error on
 * Clang); a StageCaches can be shared freely across concurrent
 * requests.
 *
 * Since PR 8 the in-memory tier can sit over a persistent
 * `store::ArtifactStore` (the `artifacts` member): the `*Lookup`
 * wrappers consult the store inside a memo miss — load before
 * compute, publish after — so a warm on-disk cache turns a process
 * restart into a read instead of a recompute, while exactly-once
 * computation and in-flight dedup still come from the promise-backed
 * memo layer. A null `artifacts` is a strict no-op: the wrappers
 * then behave exactly like calling `getOrCompute` directly. The
 * wrappers are defined in flow/persist.cc next to the payload codecs.
 *
 * Layering: this header is the *leaf* of the flow package — the
 * Explorer includes it, and flow/flow.hh includes the Explorer, so
 * nothing from flow/flow.hh (or any facade-level type) may ever be
 * included here. store/ sits *below* flow/ (it sees only bytes).
 */

#ifndef RISSP_FLOW_CACHES_HH
#define RISSP_FLOW_CACHES_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "compiler/driver.hh"
#include "explore/fingerprint.hh"
#include "explore/memo.hh"
#include "store/artifact_store.hh"
#include "synth/synthesis.hh"
#include "util/status.hh"

namespace rissp::flow
{

/** Memoized result of simulating one (subset, workload) point. */
struct SimOutcome
{
    bool trapped = false;
    bool cosimPassed = false;
    uint64_t cycles = 0;
    uint32_t exitCode = 0;
    uint64_t signature = 0;
};

/** Memoized result of synthesizing one (subset, tech) point. */
struct SynthOutcome
{
    double fmaxKhz = 0;
    double avgAreaGe = 0;
    double avgPowerMw = 0;
    double epiNj = 0;
    bool physRun = false;
    double dieAreaMm2 = 0;
    double physPowerMw = 0;
};

/** The three shared memo caches of the pipeline. */
struct StageCaches
{
    /** Key: workload/source fingerprint (name, text, opt level).
     *  Failed compilations are cached too — a service retrying a bad
     *  source pays for the diagnosis once. */
    explore::MemoCache<uint64_t, Result<minic::CompileResult>>
        compile;

    /** Key: (subset fingerprint, workload fingerprint). */
    explore::MemoCache<explore::FingerprintPair, SimOutcome,
                       explore::FingerprintPairHash>
        sim;

    /** Key: (subset fingerprint, tech fingerprint). */
    explore::MemoCache<explore::FingerprintPair, SynthOutcome,
                       explore::FingerprintPairHash>
        synth;

    /** Key: `synthReportKey` (design name + subset, tech). The
     *  *full* frequency-sweep report a request verb returns, where
     *  the explore `synth` cache keeps only the tabulated summary.
     *  Because the entries are promise-backed, the cache memoizes
     *  in-flight *work*, not just finished results: ten concurrent
     *  synth requests for the same subset sweep it once, the other
     *  nine block on the first one's future. Impossible corners are
     *  cached as error values like failed compiles. */
    explore::MemoCache<explore::FingerprintPair, Result<SynthReport>,
                       explore::FingerprintPairHash>
        synthReport;

    /** Persistent tier under the memo caches; null = memory only.
     *  Set once, before the caches serve traffic (FlowService does
     *  this in its constructor) — the stores themselves are
     *  thread-safe, the pointer is not re-published. */
    std::shared_ptr<store::ArtifactStore> artifacts;

    // Store-aware lookups (flow/persist.cc). Same contract as the
    // underlying getOrCompute — @p compute runs at most once per key
    // per process, errors are cached as values, @p was_hit reports
    // memo-level reuse — plus persistence: a memo miss first tries
    // the artifact store, and a computed value is published back.
    // Corrupt or undecodable records degrade to a recompute, never
    // an error.

    Result<minic::CompileResult> compileLookup(
        uint64_t key,
        const std::function<Result<minic::CompileResult>()> &compute,
        bool *was_hit = nullptr);

    SimOutcome
    simLookup(const explore::FingerprintPair &key,
              const std::function<SimOutcome()> &compute,
              bool *was_hit = nullptr);

    SynthOutcome
    synthLookup(const explore::FingerprintPair &key,
                const std::function<SynthOutcome()> &compute,
                bool *was_hit = nullptr);

    Result<SynthReport> synthReportLookup(
        const explore::FingerprintPair &key,
        const std::function<Result<SynthReport>()> &compute,
        bool *was_hit = nullptr);
};

/** The one derivation of the full-report synthesis cache key: the
 *  report embeds the design name, so the name is part of the key —
 *  two names for the same subset are distinct entries (unlike the
 *  summary cache, which is name-blind by design). */
inline explore::FingerprintPair
synthReportKey(const std::string &name, uint64_t subset_fp,
               uint64_t tech_fp)
{
    return {explore::fnv1a(name, subset_fp), tech_fp};
}

/** The one place the source cache key is derived from: the same key
 *  must be produced for a workload compiled by an explore plan and
 *  by a request verb, or they stop sharing work. */
inline uint64_t
sourceKey(const std::string &name, const std::string &source,
          minic::OptLevel level, bool custom_mul = false)
{
    return explore::workloadFingerprint(
        name, source,
        static_cast<uint8_t>(
            static_cast<uint8_t>(level) | (custom_mul ? 0x80 : 0)));
}

} // namespace rissp::flow

#endif // RISSP_FLOW_CACHES_HH
