#include "flow/json.hh"

#include <sstream>

#include "util/json.hh"

namespace rissp::flow
{

namespace
{

const char *
stopReasonName(StopReason reason)
{
    switch (reason) {
      case StopReason::Running: return "running";
      case StopReason::Halted: return "halted";
      case StopReason::Trapped: return "trapped";
      case StopReason::StepLimit: return "step_limit";
    }
    return "unknown";
}

std::string
statusJson(const Status &status)
{
    std::ostringstream out;
    out << "\"status\": {\"code\": \""
        << errorCodeName(status.code()) << "\", \"message\": \""
        << jsonEscape(status.message()) << "\"}";
    return out.str();
}

std::string
compileJson(const CompileStage &stage)
{
    std::ostringstream out;
    out << "\"compile\": {\"run\": " << jsonBool(stage.run);
    if (stage.run) {
        out << ", \"opt\": \""
            << minic::optLevelName(stage.opt)
            << "\", \"static_instructions\": "
            << stage.staticInstructions
            << ", \"text_bytes\": " << stage.textBytes
            << ", \"helpers\": [";
        for (size_t i = 0; i < stage.helpers.size(); ++i)
            out << (i ? ", " : "") << '"'
                << jsonEscape(stage.helpers[i]) << '"';
        out << ']';
    }
    out << '}';
    return out.str();
}

std::string
subsetJson(const SubsetStage &stage)
{
    std::ostringstream out;
    out << "\"subset\": {\"run\": " << jsonBool(stage.run);
    if (stage.run) {
        out << ", \"size\": " << stage.subset.size()
            << ", \"full_isa_size\": " << kFullIsaSize
            << ", \"fraction\": "
            << jsonNum(stage.subset.fractionOfFullIsa())
            << ", \"instructions\": [";
        const std::vector<std::string> names = stage.subset.names();
        for (size_t i = 0; i < names.size(); ++i)
            out << (i ? ", " : "") << '"' << jsonEscape(names[i])
                << '"';
        out << ']';
    }
    out << '}';
    return out.str();
}

std::string
execJson(const ExecStage &stage)
{
    std::ostringstream out;
    out << "\"exec\": {\"run\": " << jsonBool(stage.run);
    if (stage.run) {
        out << ", \"reason\": \"" << stopReasonName(stage.reason)
            << "\", \"stop_pc\": " << stage.stopPc
            << ", \"cycles\": " << stage.cycles
            << ", \"exit_code\": " << stage.exitCode
            << ", \"output_words\": [";
        for (size_t i = 0; i < stage.outputWords.size(); ++i)
            out << (i ? ", " : "") << stage.outputWords[i];
        out << "], \"output_text\": \""
            << jsonEscape(stage.outputText) << '"';
    }
    out << '}';
    return out.str();
}

std::string
cosimJson(const CosimStage &stage)
{
    std::ostringstream out;
    out << "\"cosim\": {\"run\": " << jsonBool(stage.run);
    if (stage.run) {
        out << ", \"passed\": " << jsonBool(stage.passed)
            << ", \"instret\": " << stage.instret
            << ", \"rvfi_events_checked\": "
            << stage.rvfiEventsChecked
            << ", \"first_divergence\": \""
            << jsonEscape(stage.firstDivergence) << '"';
    }
    out << '}';
    return out.str();
}

std::string
synthReportJson(const char *field, const SynthReport &report)
{
    std::ostringstream out;
    out << '"' << field << "\": {\"name\": \""
        << jsonEscape(report.name)
        << "\", \"subset_size\": " << report.subsetSize
        << ", \"fmax_khz\": " << jsonNum(report.fmaxKhz)
        << ", \"avg_area_ge\": " << jsonNum(report.avgAreaGe)
        << ", \"avg_power_mw\": " << jsonNum(report.avgPowerMw)
        << '}';
    return out.str();
}

std::string
synthJson(const SynthStage &stage)
{
    std::ostringstream out;
    out << "\"synth\": {\"run\": " << jsonBool(stage.run);
    if (stage.run) {
        out << ", \"tech\": \"" << jsonEscape(stage.tech) << "\""
            << ", " << synthReportJson("app", stage.app)
            << ", \"baselines_run\": "
            << jsonBool(stage.baselinesRun);
        if (stage.baselinesRun)
            out << ", " << synthReportJson("full_isa", stage.fullIsa)
                << ", " << synthReportJson("serv", stage.serv);
    }
    out << '}';
    return out.str();
}

std::string
physJson(const PhysStage &stage)
{
    std::ostringstream out;
    out << "\"phys\": {\"run\": " << jsonBool(stage.run);
    if (stage.run) {
        const PhysReport &r = stage.report;
        out << ", \"die_x_um\": " << jsonNum(r.dieXUm)
            << ", \"die_y_um\": " << jsonNum(r.dieYUm)
            << ", \"die_area_mm2\": " << jsonNum(r.dieAreaMm2)
            << ", \"ff_area_fraction\": "
            << jsonNum(r.ffAreaFraction)
            << ", \"power_mw\": " << jsonNum(r.powerMw);
    }
    out << '}';
    return out.str();
}

std::string
retargetJson(const RetargetStage &stage)
{
    std::ostringstream out;
    out << "\"retarget\": {\"run\": " << jsonBool(stage.run);
    if (stage.run) {
        const RetargetResult &r = stage.result;
        out << ", \"ok\": " << jsonBool(r.ok)
            << ", \"error\": \"" << jsonEscape(r.error)
            << "\", \"macros\": [";
        for (size_t i = 0; i < r.macros.size(); ++i) {
            const MacroExpansion &m = r.macros[i];
            out << (i ? ", " : "") << "{\"op\": \""
                << std::string(opName(m.target))
                << "\", \"attempts\": " << m.attempts << '}';
        }
        out << "], \"initial_text_bytes\": " << r.initialTextBytes
            << ", \"retargeted_text_bytes\": "
            << r.retargetedTextBytes
            << ", \"code_growth\": " << jsonNum(r.codeGrowth())
            << ", \"initial_subset_size\": "
            << r.initialSubset.size()
            << ", \"final_subset_size\": " << r.finalSubset.size();
    }
    out << '}';
    return out.str();
}

std::string
equivalenceJson(const EquivalenceStage &stage)
{
    std::ostringstream out;
    out << "\"equivalence\": {\"run\": " << jsonBool(stage.run);
    if (stage.run) {
        out << ", \"matched\": " << jsonBool(stage.matched)
            << ", \"ref_reason\": \""
            << stopReasonName(stage.refReason)
            << "\", \"dut_reason\": \""
            << stopReasonName(stage.dutReason)
            << "\", \"ref_exit\": " << stage.refExit
            << ", \"dut_exit\": " << stage.dutExit;
    }
    out << '}';
    return out.str();
}

} // namespace

std::string
toJson(const CharacterizeResponse &response)
{
    std::ostringstream out;
    out << '{' << statusJson(response.status) << ", "
        << compileJson(response.compile) << ", "
        << subsetJson(response.subset) << "}\n";
    return out.str();
}

std::string
toJson(const RunResponse &response)
{
    std::ostringstream out;
    out << '{' << statusJson(response.status) << ", "
        << compileJson(response.compile) << ", "
        << subsetJson(response.subset) << ", "
        << execJson(response.exec) << ", "
        << cosimJson(response.cosim) << "}\n";
    return out.str();
}

std::string
toJson(const SynthResponse &response)
{
    std::ostringstream out;
    out << '{' << statusJson(response.status) << ", "
        << compileJson(response.compile) << ", "
        << subsetJson(response.subset) << ", "
        << synthJson(response.synth) << ", "
        << physJson(response.phys) << "}\n";
    return out.str();
}

std::string
toJson(const RetargetResponse &response)
{
    std::ostringstream out;
    out << '{' << statusJson(response.status) << ", "
        << compileJson(response.compile) << ", "
        << retargetJson(response.retarget) << ", "
        << equivalenceJson(response.equivalence) << "}\n";
    return out.str();
}

std::string
toJson(const ExploreResponse &response)
{
    std::ostringstream out;
    out << '{' << statusJson(response.status)
        << ", \"points\": " << response.table.size()
        << ", \"stats\": {\"compile_hits\": "
        << response.stats.compileHits << ", \"compile_misses\": "
        << response.stats.compileMisses << ", \"sim_hits\": "
        << response.stats.simHits << ", \"sim_misses\": "
        << response.stats.simMisses << ", \"synth_hits\": "
        << response.stats.synthHits << ", \"synth_misses\": "
        << response.stats.synthMisses << "}, \"table\": ";
    if (response.table.size() == 0)
        out << "[]\n";
    else
        out << response.table.json(); // ends with its own newline
    // table.json() terminates with '\n'; close the object after it.
    std::string text = out.str();
    if (!text.empty() && text.back() == '\n')
        text.pop_back();
    text += "}\n";
    return text;
}

std::string
toJson(const Response &response)
{
    return std::visit(
        [](const auto &r) { return toJson(r); }, response);
}

std::string
toJson(const Status &status)
{
    return "{" + statusJson(status) + "}\n";
}

} // namespace rissp::flow
