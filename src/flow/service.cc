/**
 * @file
 * FlowService implementation.
 *
 * Every multi-step verb is decomposed into *stage functions* over a
 * per-request job struct: the synchronous verb calls its stages in
 * order on the caller's thread, and `submitAsync` submits the same
 * stages to the shared `exec::Scheduler` with dependency edges — one
 * implementation, two execution disciplines, provably identical
 * responses. Each stage guards on the job's accumulated status, so a
 * failure short-circuits the remaining stages exactly like the old
 * early returns did, while every stage that did complete stays in
 * the response.
 */

#include "flow/flow.hh"

#include <atomic>

#include "core/rissp.hh"
#include "serv/serv_model.hh"
#include "store/disk_store.hh"
#include "util/logging.hh"
#include "workloads/workloads.hh"

namespace rissp::flow
{

namespace
{

void
fillCompileStage(CompileStage &stage,
                 const minic::CompileResult &compiled,
                 minic::OptLevel opt)
{
    stage.run = true;
    stage.opt = opt;
    stage.staticInstructions = compiled.staticInstructions();
    stage.textBytes = compiled.program.textSize;
    stage.helpers.assign(compiled.helpers.begin(),
                         compiled.helpers.end());
}

} // namespace

const Status &
responseStatus(const Response &response)
{
    return std::visit(
        [](const auto &r) -> const Status & { return r.status; },
        response);
}

FlowService::FlowService(std::shared_ptr<StageCaches> caches,
                         unsigned scheduler_threads)
    : stageCaches(caches ? std::move(caches)
                         : std::make_shared<StageCaches>()),
      schedulerThreads(scheduler_threads)
{
}

FlowService::FlowService(const ServiceOptions &options,
                         std::shared_ptr<StageCaches> caches)
    : FlowService(std::move(caches), options.schedulerThreads)
{
    std::shared_ptr<store::ArtifactStore> artifacts =
        options.artifacts;
    if (!artifacts && !options.cacheDir.empty()) {
        Result<std::shared_ptr<store::DiskStore>> opened =
            store::DiskStore::open(options.cacheDir);
        if (opened.isOk())
            artifacts = opened.take();
        else
            warn("flow: persistent cache disabled: %s",
                 opened.status().toString().c_str());
    }
    if (artifacts && !stageCaches->artifacts)
        stageCaches->artifacts = std::move(artifacts);
}

exec::Scheduler &
FlowService::scheduler() const
{
    std::call_once(schedulerOnce, [this] {
        stageScheduler =
            std::make_unique<exec::Scheduler>(schedulerThreads);
    });
    return *stageScheduler;
}

Result<minic::CompileResult>
FlowService::compileSource(const SourceRef &source,
                           minic::OptLevel opt,
                           const minic::MachineOptions &machine) const
{
    const std::string *text = &source.text;
    const std::string *label = &source.label;
    if (!source.workload.empty()) {
        const Workload *wl = findWorkload(source.workload);
        if (!wl)
            return Status::errorf(ErrorCode::NotFound,
                                  "unknown workload '%s'",
                                  source.workload.c_str());
        text = &wl->source;
        label = &wl->name;
    }
    const uint64_t key =
        sourceKey(*label, *text, opt, machine.customMul);
    return stageCaches->compileLookup(key, [&] {
        return minic::tryCompile(*text, opt, machine);
    });
}

// --------------------------------------------------- characterize

CharacterizeResponse
FlowService::characterize(const CharacterizeRequest &request) const
{
    CharacterizeResponse response;
    const Result<minic::CompileResult> compiled =
        compileSource(request.source, request.opt, request.machine);
    if (!compiled) {
        response.status = compiled.status();
        return response;
    }
    fillCompileStage(response.compile, compiled.value(),
                     request.opt);
    response.subset.run = true;
    response.subset.subset =
        InstrSubset::fromProgram(compiled.value().program);
    return response;
}

// ------------------------------------------------------------ run

struct FlowService::RunJob
{
    RunRequest request;
    RunResponse response;
    std::optional<Result<minic::CompileResult>> compiled;
};

void
FlowService::runCompileStage(RunJob &job) const
{
    job.compiled.emplace(
        compileSource(job.request.source, job.request.opt));
    if (!*job.compiled) {
        job.response.status = job.compiled->status();
        return;
    }
    fillCompileStage(job.response.compile, job.compiled->value(),
                     job.request.opt);
    job.response.subset.run = true;
    job.response.subset.subset = job.request.subsetOverride
        ? *job.request.subsetOverride
        : InstrSubset::fromProgram(job.compiled->value().program);
}

void
FlowService::runExecStage(RunJob &job) const
{
    if (!job.response.status.isOk())
        return;
    const Program &program = job.compiled->value().program;
    Rissp chip(job.response.subset.subset, "RISSP");
    chip.reset(program);
    const RunResult run = chip.run(job.request.maxSteps);
    ExecStage &exec = job.response.exec;
    exec.run = true;
    exec.reason = run.reason;
    exec.stopPc = run.stopPc;
    exec.cycles = run.instret;
    exec.exitCode = run.exitCode;
    exec.outputWords = chip.outputWords();
    exec.outputText = chip.outputText();

    switch (run.reason) {
      case StopReason::Trapped:
        job.response.status = Status::errorf(
            ErrorCode::Trap,
            "trapped at pc=0x%x: instruction outside the subset",
            run.stopPc);
        break;
      case StopReason::StepLimit:
        job.response.status = Status::errorf(
            ErrorCode::StepLimit,
            "step limit of %llu cycles reached at pc=0x%x",
            static_cast<unsigned long long>(job.request.maxSteps),
            run.stopPc);
        break;
      default:
        break;
    }
}

void
FlowService::runCosimStage(RunJob &job) const
{
    // Skips after any upstream failure (including a trap or a step
    // limit in the exec stage) and when verification wasn't asked
    // for — the same paths the synchronous early returns took.
    if (!job.response.status.isOk() || !job.request.verify)
        return;
    // cosimulate() re-executes DUT and reference lock-step from
    // reset; a verified run therefore executes the program twice,
    // like the Figure 4 flow it mirrors. Deriving the exec stage
    // from the cosim pass would halve that.
    CosimOptions options;
    options.maxSteps = job.request.maxSteps;
    options.fault = job.request.injectFault
        ? &*job.request.injectFault : nullptr;
    const CosimReport cosim =
        cosimulate(job.compiled->value().program,
                   job.response.subset.subset, options);
    CosimStage &stage = job.response.cosim;
    stage.run = true;
    stage.passed = cosim.passed;
    stage.instret = cosim.instret;
    stage.rvfiEventsChecked = cosim.monitor.eventsChecked;
    stage.firstDivergence = cosim.firstDivergence;
    if (!cosim.passed) {
        job.response.status = Status::error(
            ErrorCode::CosimMismatch,
            "co-simulation diverged: " + cosim.firstDivergence);
    }
}

RunResponse
FlowService::run(const RunRequest &request) const
{
    RunJob job;
    job.request = request;
    runCompileStage(job);
    runExecStage(job);
    runCosimStage(job);
    return std::move(job.response);
}

// ---------------------------------------------------------- synth

struct FlowService::SynthJob
{
    SynthRequest request;
    SynthResponse response;
    /** Raw sweep results; applied to the response in deterministic
     *  order by the finish stage, so the app and baseline sweeps
     *  may run on different workers. */
    std::optional<Result<SynthReport>> app;
    std::optional<Result<SynthReport>> fullIsa;
    std::optional<SynthReport> serv;
};

void
FlowService::synthSubsetStage(SynthJob &job) const
{
    job.response.subset.run = true;
    if (job.request.subsetOverride) {
        job.response.subset.subset = *job.request.subsetOverride;
        return;
    }
    const Result<minic::CompileResult> compiled =
        compileSource(job.request.source, job.request.opt);
    if (!compiled) {
        job.response.status = compiled.status();
        return;
    }
    fillCompileStage(job.response.compile, compiled.value(),
                     job.request.opt);
    job.response.subset.subset =
        InstrSubset::fromProgram(compiled.value().program);
}

void
FlowService::synthAppStage(SynthJob &job) const
{
    if (!job.response.status.isOk())
        return;
    const Technology &tech = job.request.tech.tech;
    const InstrSubset &subset = job.response.subset.subset;
    job.app = stageCaches->synthReportLookup(
        synthReportKey(job.request.name,
                       explore::subsetFingerprint(subset),
                       explore::techFingerprint(tech)),
        [&] {
            return SynthesisModel(tech).trySynthesize(
                subset, job.request.name);
        });
}

void
FlowService::synthBaselineStage(SynthJob &job) const
{
    // Runs concurrently with the app sweep under submitAsync; it
    // only reads the tech and writes its own job slots, and the
    // finish stage discards its results if the app sweep failed —
    // matching the synchronous "baselines only after the app"
    // response shape exactly.
    if (!job.response.status.isOk() || !job.request.baselines)
        return;
    const Technology &tech = job.request.tech.tech;
    const InstrSubset full = InstrSubset::fullRv32e();
    job.fullIsa = stageCaches->synthReportLookup(
        synthReportKey("RISSP-RV32E",
                       explore::subsetFingerprint(full),
                       explore::techFingerprint(tech)),
        [&] {
            return SynthesisModel(tech).trySynthesize(full,
                                                      "RISSP-RV32E");
        });
    if (*job.fullIsa)
        job.serv = ServModel(tech).synthReport();
}

void
FlowService::synthFinishStage(SynthJob &job) const
{
    if (!job.response.status.isOk())
        return;
    if (!*job.app) {
        job.response.status = job.app->status();
        return;
    }
    SynthStage &synth = job.response.synth;
    synth.run = true;
    synth.tech = job.request.tech.tech.name;
    // The job's results are detached copies of the cache entries
    // and dead after this stage: move the sweep vectors out.
    synth.app = job.app->take();

    if (job.request.baselines) {
        if (!*job.fullIsa) {
            // The corner is so hostile even the baseline fails; the
            // app numbers above still stand.
            job.response.status = job.fullIsa->status();
            return;
        }
        synth.baselinesRun = true;
        synth.fullIsa = job.fullIsa->take();
        synth.serv = std::move(*job.serv);
    }

    if (job.request.physical) {
        const PhysicalModel phys(job.request.tech.tech);
        job.response.phys.run = true;
        job.response.phys.report =
            phys.implement(synth.app, job.request.rfStyle);
    }
}

SynthResponse
FlowService::synth(const SynthRequest &request) const
{
    SynthJob job;
    job.request = request;
    synthSubsetStage(job);
    synthAppStage(job);
    // The async graph runs the baseline sweep concurrently with the
    // app sweep and lets the finish stage discard it on app failure;
    // here the app outcome is already known, so a failed app skips
    // the baselines entirely (the old early-return behavior).
    if (!job.app || job.app->isOk())
        synthBaselineStage(job);
    synthFinishStage(job);
    return std::move(job.response);
}

// ------------------------------------------------------- retarget

struct FlowService::RetargetJob
{
    RetargetRequest request;
    RetargetResponse response;
    std::optional<Result<minic::CompileResult>> compiled;
    InstrSubset target;
};

void
FlowService::retargetCompileStage(RetargetJob &job) const
{
    job.compiled.emplace(
        compileSource(job.request.source, job.request.opt));
    if (!*job.compiled) {
        job.response.status = job.compiled->status();
        return;
    }
    fillCompileStage(job.response.compile, job.compiled->value(),
                     job.request.opt);
}

void
FlowService::retargetRewriteStage(RetargetJob &job) const
{
    if (!job.response.status.isOk())
        return;
    job.target = job.request.target
        ? *job.request.target : Retargeter::minimalSubset();
    const Status valid = Retargeter::validateTarget(job.target);
    if (!valid) {
        job.response.status = valid;
        return;
    }
    Retargeter tool(job.target);
    job.response.retarget.run = true;
    job.response.retarget.result =
        tool.retarget(job.compiled->value().program);
    const RetargetResult &result = job.response.retarget.result;
    if (!result.ok) {
        job.response.status = Status::error(ErrorCode::RetargetError,
                                            result.error);
    }
}

void
FlowService::retargetEquivalenceStage(RetargetJob &job) const
{
    if (!job.response.status.isOk() ||
        !job.request.verifyEquivalence) {
        return;
    }
    const Program &program = job.compiled->value().program;
    RefSim golden;
    golden.reset(program);
    const RunResult want = golden.run(job.request.maxSteps);
    Rissp chip(job.target, "retarget-dut");
    chip.reset(job.response.retarget.result.program);
    const RunResult got = chip.run(job.request.maxSteps);

    EquivalenceStage &eq = job.response.equivalence;
    eq.run = true;
    eq.refReason = want.reason;
    eq.dutReason = got.reason;
    eq.refExit = want.exitCode;
    eq.dutExit = got.exitCode;
    eq.matched = want.reason == got.reason &&
        want.exitCode == got.exitCode &&
        golden.outputWords() == chip.outputWords();
    if (!eq.matched) {
        job.response.status = Status::error(
            ErrorCode::CosimMismatch,
            "retargeted program diverges from the original");
    }
}

RetargetResponse
FlowService::retarget(const RetargetRequest &request) const
{
    RetargetJob job;
    job.request = request;
    retargetCompileStage(job);
    retargetRewriteStage(job);
    retargetEquivalenceStage(job);
    return std::move(job.response);
}

// -------------------------------------------------------- explore

ExploreResponse
FlowService::explore(const ExploreRequest &request) const
{
    ExploreResponse response;
    if (request.plan) {
        response.plan = *request.plan;
    } else {
        Result<explore::ExplorationPlan> parsed =
            explore::ExplorationPlan::parse(request.planText);
        if (!parsed) {
            response.status = parsed.status();
            return response;
        }
        response.plan = parsed.take();
    }
    const Status valid = response.plan.validate();
    if (!valid) {
        response.status = valid;
        return response;
    }

    explore::Explorer explorer(request.options, stageCaches);
    response.table = explorer.explore(response.plan);
    response.stats = explorer.stats();
    return response;
}

// -------------------------------------------------- async / batch

Response
FlowService::dispatch(const Request &request) const
{
    return std::visit(
        [this](const auto &r) -> Response {
            using R = std::decay_t<decltype(r)>;
            if constexpr (std::is_same_v<R, CharacterizeRequest>)
                return characterize(r);
            else if constexpr (std::is_same_v<R, RunRequest>)
                return run(r);
            else if constexpr (std::is_same_v<R, SynthRequest>)
                return synth(r);
            else if constexpr (std::is_same_v<R, RetargetRequest>)
                return retarget(r);
            else
                return explore(r);
        },
        request);
}

namespace
{

/** Shared state of one in-flight async request: the job, the
 *  settlement callbacks, and a once-latch so that whichever stage
 *  settles the request first — the finish stage or a throwing
 *  stage — is the only caller of a callback. The callbacks are how
 *  both async front ends share this machinery: submitAsync plugs a
 *  promise in, dispatchAsync a completion handler. */
template <typename Job>
struct AsyncState
{
    Job job;
    std::function<void(Response)> onDone;
    std::function<void(std::exception_ptr)> onError;
    std::atomic<bool> settled{false};

    void
    finish()
    {
        if (!settled.exchange(true))
            onDone(Response(std::move(job.response)));
    }

    /** Called from a stage's catch block; the exception also
     *  propagates to the scheduler so dependent stages are
     *  skipped. */
    void
    fail()
    {
        if (!settled.exchange(true))
            onError(std::current_exception());
    }
};

/** Wrap a stage so an escaping exception settles the request's
 *  future (errors-as-values never throw; this guards internal
 *  bugs from turning into a never-ready future). */
template <typename Job>
exec::TaskFn
guarded(std::shared_ptr<AsyncState<Job>> state,
        void (FlowService::*stage)(Job &) const,
        const FlowService *service)
{
    return [state, stage, service] {
        try {
            (service->*stage)(state->job);
        } catch (...) {
            state->fail();
            throw;
        }
    };
}

/** A default-constructed response of the same alternative as the
 *  request at @p request_index, carrying @p status — how an internal
 *  stage panic is folded into the errors-as-values contract when
 *  there is no future to carry the exception. */
Response
internalErrorResponse(size_t request_index, Status status)
{
    switch (request_index) {
      case 0: {
        CharacterizeResponse response;
        response.status = std::move(status);
        return response;
      }
      case 1: {
        RunResponse response;
        response.status = std::move(status);
        return response;
      }
      case 2: {
        SynthResponse response;
        response.status = std::move(status);
        return response;
      }
      case 3: {
        RetargetResponse response;
        response.status = std::move(status);
        return response;
      }
      default: {
        ExploreResponse response;
        response.status = std::move(status);
        return response;
      }
    }
}

Status
statusFromException(const std::exception_ptr &error)
{
    try {
        std::rethrow_exception(error);
    } catch (const std::exception &ex) {
        return Status::errorf(ErrorCode::Internal,
                              "internal error: %s", ex.what());
    } catch (...) {
        return Status::error(ErrorCode::Internal, "internal error");
    }
}

} // namespace

void
FlowService::submitStages(
    Request request, std::function<void(Response)> on_done,
    std::function<void(std::exception_ptr)> on_error) const
{
    exec::Scheduler &sched = scheduler();

    // Single-stage requests (characterize resolves in one step;
    // explore parallelizes internally through its own graph) run as
    // one task; the multi-stage verbs decompose so the scheduler can
    // interleave their stages with other requests' — and so two
    // requests hitting the same promise-backed cache entry share the
    // computation instead of queueing it twice.
    std::visit(
        [this, &sched, &on_done, &on_error](auto &&req) {
            using R = std::decay_t<decltype(req)>;
            if constexpr (std::is_same_v<R, RunRequest>) {
                auto state = std::make_shared<AsyncState<RunJob>>();
                state->job.request = std::move(req);
                state->onDone = std::move(on_done);
                state->onError = std::move(on_error);
                auto compile = sched.submit(
                    guarded(state, &FlowService::runCompileStage,
                            this),
                    {}, "run:compile");
                auto exec = sched.submit(
                    guarded(state, &FlowService::runExecStage, this),
                    {compile}, "run:exec");
                sched.submit(
                    [this, state] {
                        try {
                            runCosimStage(state->job);
                            state->finish();
                        } catch (...) {
                            state->fail();
                            throw;
                        }
                    },
                    {exec}, "run:cosim");
            } else if constexpr (std::is_same_v<R, SynthRequest>) {
                auto state =
                    std::make_shared<AsyncState<SynthJob>>();
                state->job.request = std::move(req);
                state->onDone = std::move(on_done);
                state->onError = std::move(on_error);
                auto subset = sched.submit(
                    guarded(state, &FlowService::synthSubsetStage,
                            this),
                    {}, "synth:subset");
                auto app = sched.submit(
                    guarded(state, &FlowService::synthAppStage,
                            this),
                    {subset}, "synth:app");
                auto baselines = sched.submit(
                    guarded(state, &FlowService::synthBaselineStage,
                            this),
                    {subset}, "synth:baselines");
                sched.submit(
                    [this, state] {
                        try {
                            synthFinishStage(state->job);
                            state->finish();
                        } catch (...) {
                            state->fail();
                            throw;
                        }
                    },
                    {app, baselines}, "synth:finish");
            } else if constexpr (std::is_same_v<R,
                                                RetargetRequest>) {
                auto state =
                    std::make_shared<AsyncState<RetargetJob>>();
                state->job.request = std::move(req);
                state->onDone = std::move(on_done);
                state->onError = std::move(on_error);
                auto compile = sched.submit(
                    guarded(state, &FlowService::retargetCompileStage,
                            this),
                    {}, "retarget:compile");
                auto rewrite = sched.submit(
                    guarded(state, &FlowService::retargetRewriteStage,
                            this),
                    {compile}, "retarget:rewrite");
                sched.submit(
                    [this, state] {
                        try {
                            retargetEquivalenceStage(state->job);
                            state->finish();
                        } catch (...) {
                            state->fail();
                            throw;
                        }
                    },
                    {rewrite}, "retarget:equivalence");
            } else {
                // Characterize / Explore: one task.
                sched.submit(
                    [this, req = std::move(req),
                     done = std::move(on_done),
                     fail = std::move(on_error)] {
                        try {
                            done(dispatch(req));
                        } catch (...) {
                            fail(std::current_exception());
                            throw;
                        }
                    },
                    {}, "flow:request");
            }
        },
        std::move(request));
}

std::future<Response>
FlowService::submitAsync(Request request) const
{
    auto promise = std::make_shared<std::promise<Response>>();
    std::future<Response> future = promise->get_future();
    submitStages(
        std::move(request),
        [promise](Response response) {
            promise->set_value(std::move(response));
        },
        [promise](std::exception_ptr error) {
            promise->set_exception(std::move(error));
        });
    return future;
}

void
FlowService::dispatchAsync(Request request,
                           std::function<void(Response)> done) const
{
    const size_t which = request.index();
    auto shared =
        std::make_shared<std::function<void(Response)>>(
            std::move(done));
    submitStages(
        std::move(request),
        [shared](Response response) {
            (*shared)(std::move(response));
        },
        [shared, which](std::exception_ptr error) {
            (*shared)(internalErrorResponse(
                which, statusFromException(error)));
        });
}

std::vector<Response>
FlowService::runBatch(const std::vector<Request> &requests) const
{
    std::vector<std::future<Response>> futures;
    futures.reserve(requests.size());
    for (const Request &request : requests)
        futures.push_back(submitAsync(request));
    std::vector<Response> responses;
    responses.reserve(futures.size());
    for (std::future<Response> &future : futures)
        responses.push_back(future.get());
    return responses;
}

explore::ExplorerStats
FlowService::stats() const
{
    explore::ExplorerStats s;
    s.compileHits = stageCaches->compile.hits();
    s.compileMisses = stageCaches->compile.misses();
    s.simHits = stageCaches->sim.hits();
    s.simMisses = stageCaches->sim.misses();
    s.synthHits = stageCaches->synth.hits();
    s.synthMisses = stageCaches->synth.misses();
    return s;
}

} // namespace rissp::flow
