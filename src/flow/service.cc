/**
 * @file
 * FlowService implementation: each verb walks the pipeline stages,
 * recording every stage it completes before a failure can cut the
 * walk short.
 */

#include "flow/flow.hh"

#include "core/rissp.hh"
#include "serv/serv_model.hh"
#include "workloads/workloads.hh"

namespace rissp::flow
{

namespace
{

void
fillCompileStage(CompileStage &stage,
                 const minic::CompileResult &compiled,
                 minic::OptLevel opt)
{
    stage.run = true;
    stage.opt = opt;
    stage.staticInstructions = compiled.staticInstructions();
    stage.textBytes = compiled.program.textSize;
    stage.helpers.assign(compiled.helpers.begin(),
                         compiled.helpers.end());
}

} // namespace

FlowService::FlowService(std::shared_ptr<StageCaches> caches)
    : stageCaches(caches ? std::move(caches)
                         : std::make_shared<StageCaches>())
{
}

Result<minic::CompileResult>
FlowService::compileSource(const SourceRef &source,
                           minic::OptLevel opt,
                           const minic::MachineOptions &machine) const
{
    const std::string *text = &source.text;
    const std::string *label = &source.label;
    if (!source.workload.empty()) {
        const Workload *wl = findWorkload(source.workload);
        if (!wl)
            return Status::errorf(ErrorCode::NotFound,
                                  "unknown workload '%s'",
                                  source.workload.c_str());
        text = &wl->source;
        label = &wl->name;
    }
    const uint64_t key =
        sourceKey(*label, *text, opt, machine.customMul);
    return stageCaches->compile.getOrCompute(key, [&] {
        return minic::tryCompile(*text, opt, machine);
    });
}

CharacterizeResponse
FlowService::characterize(const CharacterizeRequest &request) const
{
    CharacterizeResponse response;
    const Result<minic::CompileResult> compiled =
        compileSource(request.source, request.opt, request.machine);
    if (!compiled) {
        response.status = compiled.status();
        return response;
    }
    fillCompileStage(response.compile, compiled.value(),
                     request.opt);
    response.subset.run = true;
    response.subset.subset =
        InstrSubset::fromProgram(compiled.value().program);
    return response;
}

RunResponse
FlowService::run(const RunRequest &request) const
{
    RunResponse response;
    const Result<minic::CompileResult> compiled =
        compileSource(request.source, request.opt);
    if (!compiled) {
        response.status = compiled.status();
        return response;
    }
    const Program &program = compiled.value().program;
    fillCompileStage(response.compile, compiled.value(),
                     request.opt);

    response.subset.run = true;
    response.subset.subset = request.subsetOverride
        ? *request.subsetOverride
        : InstrSubset::fromProgram(program);

    Rissp chip(response.subset.subset, "RISSP");
    chip.reset(program);
    const RunResult run = chip.run(request.maxSteps);
    response.exec.run = true;
    response.exec.reason = run.reason;
    response.exec.stopPc = run.stopPc;
    response.exec.cycles = run.instret;
    response.exec.exitCode = run.exitCode;
    response.exec.outputWords = chip.outputWords();
    response.exec.outputText = chip.outputText();

    switch (run.reason) {
      case StopReason::Trapped:
        response.status = Status::errorf(
            ErrorCode::Trap,
            "trapped at pc=0x%x: instruction outside the subset",
            run.stopPc);
        return response;
      case StopReason::StepLimit:
        response.status = Status::errorf(
            ErrorCode::StepLimit,
            "step limit of %llu cycles reached at pc=0x%x",
            static_cast<unsigned long long>(request.maxSteps),
            run.stopPc);
        return response;
      default:
        break;
    }

    if (request.verify) {
        // cosimulate() re-executes DUT and reference lock-step from
        // reset; a verified run therefore executes the program
        // twice, like the Figure 4 flow it mirrors. Deriving the
        // exec stage from the cosim pass would halve that.
        CosimOptions options;
        options.maxSteps = request.maxSteps;
        options.fault =
            request.injectFault ? &*request.injectFault : nullptr;
        const CosimReport cosim =
            cosimulate(program, response.subset.subset, options);
        response.cosim.run = true;
        response.cosim.passed = cosim.passed;
        response.cosim.instret = cosim.instret;
        response.cosim.rvfiEventsChecked =
            cosim.monitor.eventsChecked;
        response.cosim.firstDivergence = cosim.firstDivergence;
        if (!cosim.passed) {
            response.status = Status::error(
                ErrorCode::CosimMismatch,
                "co-simulation diverged: " + cosim.firstDivergence);
            return response;
        }
    }
    return response;
}

SynthResponse
FlowService::synth(const SynthRequest &request) const
{
    SynthResponse response;
    response.subset.run = true;
    if (request.subsetOverride) {
        response.subset.subset = *request.subsetOverride;
    } else {
        const Result<minic::CompileResult> compiled =
            compileSource(request.source, request.opt);
        if (!compiled) {
            response.status = compiled.status();
            return response;
        }
        fillCompileStage(response.compile, compiled.value(),
                         request.opt);
        response.subset.subset =
            InstrSubset::fromProgram(compiled.value().program);
    }

    const Technology &tech = request.tech.tech;
    const SynthesisModel model(tech);
    Result<SynthReport> app = model.trySynthesize(
        response.subset.subset, request.name);
    if (!app) {
        response.status = app.status();
        return response;
    }
    response.synth.run = true;
    response.synth.tech = tech.name;
    response.synth.app = app.take();

    if (request.baselines) {
        Result<SynthReport> full = model.trySynthesize(
            InstrSubset::fullRv32e(), "RISSP-RV32E");
        if (!full) {
            // The corner is so hostile even the baseline fails; the
            // app numbers above still stand.
            response.status = full.status();
            return response;
        }
        response.synth.baselinesRun = true;
        response.synth.fullIsa = full.take();
        response.synth.serv = ServModel(tech).synthReport();
    }

    if (request.physical) {
        const PhysicalModel phys(tech);
        response.phys.run = true;
        response.phys.report =
            phys.implement(response.synth.app, request.rfStyle);
    }
    return response;
}

RetargetResponse
FlowService::retarget(const RetargetRequest &request) const
{
    RetargetResponse response;
    const Result<minic::CompileResult> compiled =
        compileSource(request.source, request.opt);
    if (!compiled) {
        response.status = compiled.status();
        return response;
    }
    const Program &program = compiled.value().program;
    fillCompileStage(response.compile, compiled.value(),
                     request.opt);

    const InstrSubset target = request.target
        ? *request.target : Retargeter::minimalSubset();
    const Status valid = Retargeter::validateTarget(target);
    if (!valid) {
        response.status = valid;
        return response;
    }

    Retargeter tool(target);
    response.retarget.run = true;
    response.retarget.result = tool.retarget(program);
    const RetargetResult &result = response.retarget.result;
    if (!result.ok) {
        response.status = Status::error(ErrorCode::RetargetError,
                                        result.error);
        return response;
    }

    if (request.verifyEquivalence) {
        RefSim golden;
        golden.reset(program);
        const RunResult want = golden.run(request.maxSteps);
        Rissp chip(target, "retarget-dut");
        chip.reset(result.program);
        const RunResult got = chip.run(request.maxSteps);

        EquivalenceStage &eq = response.equivalence;
        eq.run = true;
        eq.refReason = want.reason;
        eq.dutReason = got.reason;
        eq.refExit = want.exitCode;
        eq.dutExit = got.exitCode;
        eq.matched = want.reason == got.reason &&
            want.exitCode == got.exitCode &&
            golden.outputWords() == chip.outputWords();
        if (!eq.matched) {
            response.status = Status::error(
                ErrorCode::CosimMismatch,
                "retargeted program diverges from the original");
            return response;
        }
    }
    return response;
}

ExploreResponse
FlowService::explore(const ExploreRequest &request) const
{
    ExploreResponse response;
    if (request.plan) {
        response.plan = *request.plan;
    } else {
        Result<explore::ExplorationPlan> parsed =
            explore::ExplorationPlan::parse(request.planText);
        if (!parsed) {
            response.status = parsed.status();
            return response;
        }
        response.plan = parsed.take();
    }
    const Status valid = response.plan.validate();
    if (!valid) {
        response.status = valid;
        return response;
    }

    explore::Explorer explorer(request.options, stageCaches);
    response.table = explorer.explore(response.plan);
    response.stats = explorer.stats();
    return response;
}

explore::ExplorerStats
FlowService::stats() const
{
    explore::ExplorerStats s;
    s.compileHits = stageCaches->compile.hits();
    s.compileMisses = stageCaches->compile.misses();
    s.simHits = stageCaches->sim.hits();
    s.simMisses = stageCaches->sim.misses();
    s.synthHits = stageCaches->synth.hits();
    s.synthMisses = stageCaches->synth.misses();
    return s;
}

} // namespace rissp::flow
