/**
 * @file
 * FlowService — the service-grade request/response facade over the
 * whole RISSP pipeline (compile → subset → stitch → cosim →
 * synthesize → P&R → retarget → explore).
 *
 * The paper's pitch is that RISSPs are cheap enough to generate per
 * application; that only scales if generating one is a single
 * well-specified call rather than hand-stitched glue. Every client —
 * the `risspgen` verbs, `rissp-explore`, the examples, a future
 * server — sends one of five typed requests and gets back a
 * stage-granular response:
 *
 *  - each stage struct carries a `run` flag and its own data, so
 *    partial results survive downstream failures (a trapped run
 *    still reports the compile and subset stages it completed);
 *  - the response `status` is the overall verdict, with an ErrorCode
 *    a server can map onto a wire protocol;
 *  - nothing in the service aborts on user input: malformed sources,
 *    unknown workloads, bad plans and impossible techs all come back
 *    as values (see util/status.hh).
 *
 * The service owns the shared `StageCaches` and is reentrant: all
 * verbs are `const`, all mutable state lives in the thread-safe
 * caches, so one instance can serve concurrent requests — the shape
 * a daemon or a sharded backend needs. The caches' internal locking
 * is capability-annotated (explore/memo.hh), so holding their locks
 * wrongly is a compile error on Clang; the service itself keeps no
 * mutex — its only lazily written member is `stageScheduler`,
 * published by `std::call_once` (the one concurrency primitive here
 * the analysis cannot model; see the member comment).
 */

#ifndef RISSP_FLOW_FLOW_HH
#define RISSP_FLOW_FLOW_HH

#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "blocks/structural.hh"
#include "compiler/driver.hh"
#include "core/subset.hh"
#include "exec/scheduler.hh"
#include "explore/explorer.hh"
#include "flow/caches.hh"
#include "physimpl/physical.hh"
#include "retarget/retargeter.hh"
#include "sim/refsim.hh"
#include "synth/synthesis.hh"
#include "util/status.hh"
#include "verify/integration_verify.hh"

namespace rissp::flow
{

/**
 * What to compile: a bundled workload by name, or inline MiniC text.
 * File IO stays at the CLI edge — a service never opens paths.
 */
struct SourceRef
{
    std::string workload; ///< bundled workload name, when non-empty
    std::string text;     ///< inline MiniC source otherwise
    std::string label = "<inline>"; ///< report/cache label for text

    static SourceRef
    bundled(std::string name)
    {
        SourceRef ref;
        ref.workload = std::move(name);
        return ref;
    }

    static SourceRef
    inlineText(std::string source, std::string label = "<inline>")
    {
        SourceRef ref;
        ref.text = std::move(source);
        ref.label = std::move(label);
        return ref;
    }
};

// --------------------------------------------------------- stages

/** Step 1 front half: MiniC → linked RV32E image. */
struct CompileStage
{
    bool run = false;
    minic::OptLevel opt = minic::OptLevel::O2;
    size_t staticInstructions = 0;
    size_t textBytes = 0;
    std::vector<std::string> helpers; ///< runtime helpers linked in
};

/** Step 1 back half: the distinct-instruction subset. */
struct SubsetStage
{
    bool run = false;
    InstrSubset subset;
};

/** Execution on the generated RISSP. */
struct ExecStage
{
    bool run = false;
    StopReason reason = StopReason::Running;
    uint32_t stopPc = 0;
    uint64_t cycles = 0;     ///< CPI = 1: cycles == instret
    uint32_t exitCode = 0;
    std::vector<uint32_t> outputWords;
    std::string outputText;
};

/** Lock-step co-simulation against the reference ISS (§3.4.2). */
struct CosimStage
{
    bool run = false;
    bool passed = false;
    uint64_t instret = 0;
    uint64_t rvfiEventsChecked = 0;
    std::string firstDivergence;
};

/** Frequency-sweep synthesis (§4.2), with optional baselines. */
struct SynthStage
{
    bool run = false;
    std::string tech;           ///< technology the numbers belong to
    SynthReport app;            ///< the requested design
    bool baselinesRun = false;
    SynthReport fullIsa;        ///< RISSP-RV32E baseline
    SynthReport serv;           ///< bit-serial Serv baseline
};

/** Physical implementation (§4.3). */
struct PhysStage
{
    bool run = false;
    PhysReport report;
};

/** §5 retargeting onto a fabricated subset. */
struct RetargetStage
{
    bool run = false;
    RetargetResult result;
};

/** Original-vs-retargeted equivalence: the original program on the
 *  reference ISS against the rewritten one on a RISSP that
 *  implements only the target subset. */
struct EquivalenceStage
{
    bool run = false;
    bool matched = false;
    StopReason refReason = StopReason::Running;
    StopReason dutReason = StopReason::Running;
    uint32_t refExit = 0;
    uint32_t dutExit = 0;
};

// ------------------------------------------------------- requests

/** Characterize: compile and report the subset (risspgen verb 1). */
struct CharacterizeRequest
{
    SourceRef source;
    minic::OptLevel opt = minic::OptLevel::O2;
    minic::MachineOptions machine;
};

struct CharacterizeResponse
{
    Status status;
    CompileStage compile;
    SubsetStage subset;
};

/** Run: execute on the generated RISSP, optionally co-simulating
 *  against the reference ISS (risspgen verb 2). */
struct RunRequest
{
    SourceRef source;
    minic::OptLevel opt = minic::OptLevel::O2;
    uint64_t maxSteps = 2'000'000'000ull;
    bool verify = false; ///< lock-step cosim after a clean halt

    /** Run on this subset instead of the program's own — how a
     *  domain chip or an underprovisioned (trapping) RISSP is
     *  requested. */
    std::optional<InstrSubset> subsetOverride;

    /** Inject a netlist fault into the RISSP during cosim (mutation
     *  testing of the verification flow; requires verify). */
    std::optional<Mutation> injectFault;
};

struct RunResponse
{
    Status status;
    CompileStage compile;
    SubsetStage subset;
    ExecStage exec;
    CosimStage cosim;
};

/** Synth: frequency-sweep synthesis + P&R, with the paper's two
 *  baselines (risspgen verb 3). */
struct SynthRequest
{
    SourceRef source;    ///< ignored when subsetOverride is set
    minic::OptLevel opt = minic::OptLevel::O2;
    std::optional<InstrSubset> subsetOverride;
    std::string name = "RISSP-app";
    /** Technology to cost the design on: a registry entry resolved
     *  via `TechSpec::fromSpec` (the `risspgen --tech` path) or any
     *  hand-built corner. Held by value — the models copy it, so a
     *  temporary is safe. */
    explore::TechSpec tech;
    bool baselines = true;   ///< also synthesize RV32E + Serv
    bool physical = true;    ///< P&R the app design
    RfStyle rfStyle = RfStyle::LatchArray;
};

struct SynthResponse
{
    Status status;
    CompileStage compile;
    SubsetStage subset;
    SynthStage synth;
    PhysStage phys;
};

/** Retarget: rewrite onto a fabricated subset and prove equivalence
 *  (risspgen verb 4). */
struct RetargetRequest
{
    SourceRef source;
    minic::OptLevel opt = minic::OptLevel::O2;
    /** Fabricated subset; Retargeter::minimalSubset() when unset.
     *  Validated against the §5 kernel ops. */
    std::optional<InstrSubset> target;
    uint64_t maxSteps = 2'000'000'000ull;
    bool verifyEquivalence = true;
};

struct RetargetResponse
{
    Status status;
    CompileStage compile;
    RetargetStage retarget;
    EquivalenceStage equivalence;
};

/** Explore: sweep a (subset × workload × tech) design space. */
struct ExploreRequest
{
    /** Plan text (the rissp-explore grammar)… */
    std::string planText;
    /** …or a programmatic plan; wins over planText when set. */
    std::optional<explore::ExplorationPlan> plan;
    explore::ExplorerOptions options;
};

struct ExploreResponse
{
    Status status;
    explore::ExplorationPlan plan; ///< the plan that was swept
    explore::ResultTable table;
    /** Stats of the engine that swept *this* request: a miss is the
     *  first lookup of a key within the sweep, a hit is a repeat —
     *  regardless of how warm the service's shared caches (or the
     *  persistent store under them) already were. The response,
     *  including its toJson form, is therefore byte-identical across
     *  services, boots and thread counts for the same request; the
     *  service-cumulative view lives on `FlowService::stats()`. */
    explore::ExplorerStats stats;
};

// -------------------------------------------------------- service

/** Any request the service accepts — the batch/async currency. */
using Request = std::variant<CharacterizeRequest, RunRequest,
                             SynthRequest, RetargetRequest,
                             ExploreRequest>;

/** The response matching each Request alternative. */
using Response = std::variant<CharacterizeResponse, RunResponse,
                              SynthResponse, RetargetResponse,
                              ExploreResponse>;

/** The overall status of any response alternative. */
const Status &responseStatus(const Response &response);

/** Construction options beyond the caches themselves. */
struct ServiceOptions
{
    /** Worker threads for the async/batch scheduler (0 = hardware
     *  concurrency); the scheduler starts lazily on first use. */
    unsigned schedulerThreads = 0;

    /** Attach a persistent `store::DiskStore` at this directory
     *  (created on first use); empty = in-memory caches only. An
     *  unusable directory is reported with warn() and the service
     *  runs without persistence — the store is an optimization, not
     *  a dependency. CLIs that want a loud failure open the store
     *  themselves and pass it via `artifacts`. */
    std::string cacheDir;

    /** Explicit store to attach; wins over cacheDir. */
    std::shared_ptr<store::ArtifactStore> artifacts;
};

/** The facade. One instance serves any number of clients.
 *
 *  Requests can be served three ways, all against the same shared
 *  `StageCaches`:
 *   - the synchronous verbs below, on the caller's thread;
 *   - `submitAsync`, which decomposes the request into pipeline
 *     stages (compile → exec → cosim; compile → app synth ∥
 *     baselines → P&R; ...) on the service's work-stealing
 *     `exec::Scheduler` and returns a future;
 *   - `runBatch`, which submits a mixed batch and collects the
 *     responses in request order.
 *  Both paths run the *same* stage functions, so a batched response
 *  is byte-identical to its synchronous twin; identical in-flight
 *  work is deduplicated by the promise-backed cache entries (ten
 *  concurrent requests for the same subset compile — and sweep — it
 *  once). */
class FlowService
{
  public:
    /** @param caches stage caches to adopt; by default the service
     *  creates its own set.
     *  @param scheduler_threads worker threads for the async/batch
     *  scheduler (0 = hardware concurrency); the scheduler starts
     *  lazily on the first submitAsync/runBatch call. */
    explicit FlowService(
        std::shared_ptr<StageCaches> caches = nullptr,
        unsigned scheduler_threads = 0);

    /** Construct with service options (persistent store, scheduler
     *  sizing); @p caches as above. When both the options and the
     *  adopted caches carry a store, the caches' existing one wins —
     *  an already-serving cache set is never re-pointed. */
    explicit FlowService(const ServiceOptions &options,
                         std::shared_ptr<StageCaches> caches =
                             nullptr);

    CharacterizeResponse
    characterize(const CharacterizeRequest &request) const;

    RunResponse run(const RunRequest &request) const;

    SynthResponse synth(const SynthRequest &request) const;

    RetargetResponse retarget(const RetargetRequest &request) const;

    ExploreResponse explore(const ExploreRequest &request) const;

    /** Serve any request synchronously on the caller's thread. */
    Response dispatch(const Request &request) const;

    /** Submit a request onto the shared scheduler, decomposed into
     *  its pipeline stages; returns immediately. The future carries
     *  the same response the synchronous verb would produce (errors
     *  stay values — the future only throws on an internal stage
     *  panic-equivalent exception). */
    std::future<Response> submitAsync(Request request) const;

    /** The callback-based twin of submitAsync, for callers that hand
     *  completions back to an event loop (the serve reactor) instead
     *  of blocking a thread on a future: the same stage
     *  decomposition on the same scheduler, with @p done invoked
     *  exactly once, on the worker that ran the final stage. Errors
     *  stay values inside the response; an internal stage
     *  panic-equivalent exception is folded into a response with
     *  `ErrorCode::Internal` status rather than thrown (there is no
     *  future to carry it). */
    void dispatchAsync(Request request,
                       std::function<void(Response)> done) const;

    /** Serve a mixed batch concurrently; blocks until every request
     *  has settled and returns responses in request order. */
    std::vector<Response>
    runBatch(const std::vector<Request> &requests) const;

    /** Cumulative cache statistics across all requests served
     *  (`points` stays 0 — it is a per-Explorer counter). */
    explore::ExplorerStats stats() const;

    const std::shared_ptr<StageCaches> &caches() const
    {
        return stageCaches;
    }

    /** The service's stage scheduler (started on first use). */
    exec::Scheduler &scheduler() const;

  private:
    // Per-verb pipeline state shared by a verb's stage functions;
    // the synchronous verbs call the stages in order, submitAsync
    // wires the same stages into a scheduler dependency graph.
    struct RunJob;
    struct SynthJob;
    struct RetargetJob;

    void runCompileStage(RunJob &job) const;
    void runExecStage(RunJob &job) const;
    void runCosimStage(RunJob &job) const;

    void synthSubsetStage(SynthJob &job) const;
    void synthAppStage(SynthJob &job) const;
    void synthBaselineStage(SynthJob &job) const;
    void synthFinishStage(SynthJob &job) const;

    void retargetCompileStage(RetargetJob &job) const;
    void retargetRewriteStage(RetargetJob &job) const;
    void retargetEquivalenceStage(RetargetJob &job) const;

    /** The one async submission path: decompose @p request into its
     *  stage graph on the shared scheduler; exactly one of the two
     *  callbacks fires when the request settles. submitAsync and
     *  dispatchAsync are both thin adapters over this. */
    void submitStages(
        Request request, std::function<void(Response)> on_done,
        std::function<void(std::exception_ptr)> on_error) const;

    /** Resolve + compile a source, memoized in the shared cache. */
    Result<minic::CompileResult>
    compileSource(const SourceRef &source, minic::OptLevel opt,
                  const minic::MachineOptions &machine = {}) const;

    std::shared_ptr<StageCaches> stageCaches;
    unsigned schedulerThreads;
    /** stageScheduler is written exactly once, inside
     *  std::call_once(schedulerOnce), and only read afterwards —
     *  call_once publishes the write, so no mutex guards it and no
     *  capability annotation applies. The service must outlive its
     *  async futures; these members are declared after the caches so
     *  the scheduler joins (destructor order) before the caches die. */
    mutable std::once_flag schedulerOnce;
    mutable std::unique_ptr<exec::Scheduler> stageScheduler;
};

} // namespace rissp::flow

#endif // RISSP_FLOW_FLOW_HH
