/**
 * @file
 * Machine-readable renderings of Flow API responses.
 *
 * One JSON object per response, stage-granular like the structs:
 * every stage appears with a "run" flag, so a consumer can tell "the
 * run trapped" apart from "the run was never attempted". The status
 * object always comes first; its "code" field uses the stable
 * errorCodeName() strings. `risspgen --json` prints these verbatim —
 * the CLI adds nothing, which is the point: the JSON a script parses
 * is exactly what a server would return.
 */

#ifndef RISSP_FLOW_JSON_HH
#define RISSP_FLOW_JSON_HH

#include <string>

#include "flow/flow.hh"

namespace rissp::flow
{

std::string toJson(const CharacterizeResponse &response);
std::string toJson(const RunResponse &response);
std::string toJson(const SynthResponse &response);
std::string toJson(const RetargetResponse &response);

/** Status + cache statistics + the full result table (the table
 *  rows use the ResultTable::json row schema). */
std::string toJson(const ExploreResponse &response);

/** Any batch/async response, dispatched to the emitter above. */
std::string toJson(const Response &response);

/** A bare status (e.g. a CLI-edge error) as a response-shaped
 *  object: {"status": {...}}. */
std::string toJson(const Status &status);

} // namespace rissp::flow

#endif // RISSP_FLOW_JSON_HH
