/**
 * @file
 * Payload codecs between the flow-level artifact types and the byte
 * payloads an `ArtifactStore` traffics in.
 *
 * The store layer (src/store/) is deliberately type-blind; this is
 * where the pipeline's artifacts gain a durable byte format. Each
 * codec leads with its own payload version, independent of the
 * store's record-frame version: bumping a codec (say the compile
 * payload grows a field) invalidates only that kind — old records
 * fail to decode, the caller recomputes and republishes, and the
 * other kinds stay warm.
 *
 * Decoders are total functions over arbitrary bytes: they return
 * `nullopt` instead of crashing on anything unexpected (the reader
 * is bounds-checked, trailing bytes are rejected, enums are
 * range-checked). By the time a payload gets here it already passed
 * the record checksum, so a decode failure means version skew, not
 * corruption — either way the contract is "miss, recompute".
 *
 * Determinism contract: encode(decode(p)) == p and the decoded value
 * is bit-identical to the encoded one (doubles travel as raw IEEE
 * bits), so a result table served from the store is byte-identical
 * to one computed fresh.
 */

#ifndef RISSP_FLOW_PERSIST_HH
#define RISSP_FLOW_PERSIST_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "flow/caches.hh"

namespace rissp::flow::persist
{

std::vector<uint8_t>
encodeCompile(const Result<minic::CompileResult> &value);
std::optional<Result<minic::CompileResult>>
decodeCompile(const std::vector<uint8_t> &payload);

std::vector<uint8_t> encodeSim(const SimOutcome &value);
std::optional<SimOutcome>
decodeSim(const std::vector<uint8_t> &payload);

std::vector<uint8_t> encodeSynth(const SynthOutcome &value);
std::optional<SynthOutcome>
decodeSynth(const std::vector<uint8_t> &payload);

std::vector<uint8_t>
encodeSynthReport(const Result<SynthReport> &value);
std::optional<Result<SynthReport>>
decodeSynthReport(const std::vector<uint8_t> &payload);

} // namespace rissp::flow::persist

#endif // RISSP_FLOW_PERSIST_HH
