/**
 * @file
 * Artifact payload codecs and the store-aware StageCaches lookups.
 *
 * The lookup wrappers implement the two-tier read path:
 *
 *     memo hit ──────────────────────────────► return (no disk IO)
 *     memo miss ─► store load + decode ok ───► adopt + return
 *                └─ else ─► compute() ───────► publish + return
 *
 * Everything runs inside the memo cache's compute slot, so the
 * promise-backed exactly-once/in-flight-dedup semantics extend to
 * the disk tier for free: concurrent lookups of one key do one store
 * read (or one compute + one publish) between them, and waiters
 * block on the same shared future as before.
 */

#include "flow/persist.hh"

#include "store/bytes.hh"

namespace rissp::flow::persist
{

namespace
{

using store::ByteReader;
using store::ByteWriter;

// Per-kind payload versions: bump when a codec's layout changes so
// stale records decode-fail (⇒ recompute) instead of misparse.
constexpr uint32_t kCompileVersion = 1;
constexpr uint32_t kSimVersion = 1;
constexpr uint32_t kSynthVersion = 1;
constexpr uint32_t kSynthReportVersion = 1;

/** Shared error-Result framing: flag byte, then code + message. */
template <typename T>
bool
writeResultHeader(ByteWriter &w, const Result<T> &value)
{
    w.u8(value.isOk() ? 1 : 0);
    if (value.isOk())
        return true;
    w.u8(static_cast<uint8_t>(value.code()));
    w.str(value.status().message());
    return false;
}

/** Reads the error arm; empty optional = "value follows", an
 *  engaged optional carries the decoded error (or nothing on a
 *  malformed error arm — the caller checks reader.ok()). */
std::optional<Status>
readResultError(ByteReader &r)
{
    if (r.u8() != 0)
        return std::nullopt;
    const uint8_t code = r.u8();
    const std::string message = r.str();
    if (!r.ok() || code == 0 ||
        code > static_cast<uint8_t>(ErrorCode::Internal))
        return Status(); // ok-Status = marker for "malformed"
    return Status::error(static_cast<ErrorCode>(code), message);
}

} // namespace

// ------------------------------------------------ compile results

std::vector<uint8_t>
encodeCompile(const Result<minic::CompileResult> &value)
{
    ByteWriter w;
    w.u32(kCompileVersion);
    if (!writeResultHeader(w, value))
        return w.take();
    const minic::CompileResult &c = value.value();
    w.str(c.appAsm);
    w.u64(c.helpers.size());
    for (const std::string &helper : c.helpers) // set: sorted
        w.str(helper);
    const Program &p = c.program;
    w.u32(p.entry);
    w.u32(p.textBase);
    w.u32(p.textSize);
    w.u64(p.segments.size());
    for (const Segment &seg : p.segments) {
        w.u32(seg.base);
        w.u64(seg.bytes.size());
        w.bytes(seg.bytes.data(), seg.bytes.size());
    }
    w.u64(p.symbols.size());
    for (const auto &[name, addr] : p.symbols) { // map: sorted
        w.str(name);
        w.u32(addr);
    }
    return w.take();
}

std::optional<Result<minic::CompileResult>>
decodeCompile(const std::vector<uint8_t> &payload)
{
    ByteReader r(payload);
    if (r.u32() != kCompileVersion)
        return std::nullopt;
    if (std::optional<Status> error = readResultError(r)) {
        if (!error->isOk() && r.atEnd())
            return Result<minic::CompileResult>(*error);
        return std::nullopt;
    }
    minic::CompileResult c;
    c.appAsm = r.str();
    const uint64_t helperCount = r.u64();
    for (uint64_t i = 0; r.ok() && i < helperCount; ++i)
        c.helpers.insert(r.str());
    Program &p = c.program;
    p.entry = r.u32();
    p.textBase = r.u32();
    p.textSize = r.u32();
    const uint64_t segCount = r.u64();
    for (uint64_t i = 0; r.ok() && i < segCount; ++i) {
        Segment seg;
        seg.base = r.u32();
        const uint64_t size = r.u64();
        seg.bytes = r.blob(static_cast<size_t>(size));
        p.segments.push_back(std::move(seg));
    }
    const uint64_t symCount = r.u64();
    for (uint64_t i = 0; r.ok() && i < symCount; ++i) {
        const std::string name = r.str();
        p.symbols[name] = r.u32();
    }
    if (!r.atEnd())
        return std::nullopt;
    return Result<minic::CompileResult>(std::move(c));
}

// --------------------------------------------------- sim outcomes

std::vector<uint8_t>
encodeSim(const SimOutcome &value)
{
    ByteWriter w;
    w.u32(kSimVersion);
    w.u8(value.trapped ? 1 : 0);
    w.u8(value.cosimPassed ? 1 : 0);
    w.u64(value.cycles);
    w.u32(value.exitCode);
    w.u64(value.signature);
    return w.take();
}

std::optional<SimOutcome>
decodeSim(const std::vector<uint8_t> &payload)
{
    ByteReader r(payload);
    if (r.u32() != kSimVersion)
        return std::nullopt;
    SimOutcome out;
    out.trapped = r.u8() != 0;
    out.cosimPassed = r.u8() != 0;
    out.cycles = r.u64();
    out.exitCode = r.u32();
    out.signature = r.u64();
    if (!r.atEnd())
        return std::nullopt;
    return out;
}

// ------------------------------------------------- synth outcomes

std::vector<uint8_t>
encodeSynth(const SynthOutcome &value)
{
    ByteWriter w;
    w.u32(kSynthVersion);
    w.f64(value.fmaxKhz);
    w.f64(value.avgAreaGe);
    w.f64(value.avgPowerMw);
    w.f64(value.epiNj);
    w.u8(value.physRun ? 1 : 0);
    w.f64(value.dieAreaMm2);
    w.f64(value.physPowerMw);
    return w.take();
}

std::optional<SynthOutcome>
decodeSynth(const std::vector<uint8_t> &payload)
{
    ByteReader r(payload);
    if (r.u32() != kSynthVersion)
        return std::nullopt;
    SynthOutcome out;
    out.fmaxKhz = r.f64();
    out.avgAreaGe = r.f64();
    out.avgPowerMw = r.f64();
    out.epiNj = r.f64();
    out.physRun = r.u8() != 0;
    out.dieAreaMm2 = r.f64();
    out.physPowerMw = r.f64();
    if (!r.atEnd())
        return std::nullopt;
    return out;
}

// -------------------------------------------- full synth reports

std::vector<uint8_t>
encodeSynthReport(const Result<SynthReport> &value)
{
    ByteWriter w;
    w.u32(kSynthReportVersion);
    if (!writeResultHeader(w, value))
        return w.take();
    const SynthReport &rep = value.value();
    w.str(rep.name);
    w.u64(rep.subsetSize);
    w.f64(rep.combGates);
    w.f64(rep.ffCount);
    w.f64(rep.baseAreaGe);
    w.f64(rep.criticalPathNs);
    w.f64(rep.fmaxKhz);
    w.u64(rep.sweep.size());
    for (const FreqPoint &point : rep.sweep) {
        w.f64(point.targetKhz);
        w.f64(point.slackNs);
        w.f64(point.areaGe);
        w.f64(point.powerMw);
    }
    w.f64(rep.avgAreaGe);
    w.f64(rep.avgPowerMw);
    w.f64(rep.combActivity);
    w.f64(rep.ffActivity);
    return w.take();
}

std::optional<Result<SynthReport>>
decodeSynthReport(const std::vector<uint8_t> &payload)
{
    ByteReader r(payload);
    if (r.u32() != kSynthReportVersion)
        return std::nullopt;
    if (std::optional<Status> error = readResultError(r)) {
        if (!error->isOk() && r.atEnd())
            return Result<SynthReport>(*error);
        return std::nullopt;
    }
    SynthReport rep;
    rep.name = r.str();
    rep.subsetSize = static_cast<size_t>(r.u64());
    rep.combGates = r.f64();
    rep.ffCount = r.f64();
    rep.baseAreaGe = r.f64();
    rep.criticalPathNs = r.f64();
    rep.fmaxKhz = r.f64();
    const uint64_t sweepCount = r.u64();
    for (uint64_t i = 0; r.ok() && i < sweepCount; ++i) {
        FreqPoint point;
        point.targetKhz = r.f64();
        point.slackNs = r.f64();
        point.areaGe = r.f64();
        point.powerMw = r.f64();
        rep.sweep.push_back(point);
    }
    rep.avgAreaGe = r.f64();
    rep.avgPowerMw = r.f64();
    rep.combActivity = r.f64();
    rep.ffActivity = r.f64();
    if (!r.atEnd())
        return std::nullopt;
    return Result<SynthReport>(std::move(rep));
}

} // namespace rissp::flow::persist

// --------------------------------------- StageCaches lookup seams

namespace rissp::flow
{

namespace
{

/** The memo-miss body shared by all four lookups: try the store,
 *  else compute and publish. */
template <typename Value, typename Encode, typename Decode>
Value
throughStore(store::ArtifactStore *artifacts,
             store::ArtifactKind kind, const store::ArtifactKey &key,
             const std::function<Value()> &compute,
             const Encode &encode, const Decode &decode)
{
    if (artifacts) {
        std::vector<uint8_t> payload;
        if (artifacts->load(kind, key, payload)) {
            if (std::optional<Value> value = decode(payload))
                return std::move(*value);
            // Checksum-valid but undecodable: version skew. Fall
            // through to recompute; the publish below overwrites
            // the stale record with the current format.
        }
    }
    Value value = compute();
    if (artifacts)
        artifacts->publish(kind, key, encode(value));
    return value;
}

} // namespace

Result<minic::CompileResult>
StageCaches::compileLookup(
    uint64_t key,
    const std::function<Result<minic::CompileResult>()> &compute,
    bool *was_hit)
{
    return compile.getOrCompute(
        key,
        [&] {
            return throughStore<Result<minic::CompileResult>>(
                artifacts.get(), store::ArtifactKind::Compile,
                {key, 0}, compute, persist::encodeCompile,
                persist::decodeCompile);
        },
        was_hit);
}

SimOutcome
StageCaches::simLookup(const explore::FingerprintPair &key,
                       const std::function<SimOutcome()> &compute,
                       bool *was_hit)
{
    return sim.getOrCompute(
        key,
        [&] {
            return throughStore<SimOutcome>(
                artifacts.get(), store::ArtifactKind::Sim,
                {key.first, key.second}, compute,
                persist::encodeSim, persist::decodeSim);
        },
        was_hit);
}

SynthOutcome
StageCaches::synthLookup(const explore::FingerprintPair &key,
                         const std::function<SynthOutcome()> &compute,
                         bool *was_hit)
{
    return synth.getOrCompute(
        key,
        [&] {
            return throughStore<SynthOutcome>(
                artifacts.get(), store::ArtifactKind::Synth,
                {key.first, key.second}, compute,
                persist::encodeSynth, persist::decodeSynth);
        },
        was_hit);
}

Result<SynthReport>
StageCaches::synthReportLookup(
    const explore::FingerprintPair &key,
    const std::function<Result<SynthReport>()> &compute,
    bool *was_hit)
{
    return synthReport.getOrCompute(
        key,
        [&] {
            return throughStore<Result<SynthReport>>(
                artifacts.get(), store::ArtifactKind::SynthReport,
                {key.first, key.second}, compute,
                persist::encodeSynthReport,
                persist::decodeSynthReport);
        },
        was_hit);
}

} // namespace rissp::flow
