/**
 * @file
 * HttpServer implementation. Routing and metrics only — byte framing
 * lives in util/http.cc, schema in net/rest.cc, and all socket IO in
 * net/reactor.cc (this file opens and binds the listener, then hands
 * it to the reactor; it never reads or writes a connection itself —
 * enforced by the `blocking-socket-io` lint check).
 *
 * Thread model: one reactor thread owns every connection fd and runs
 * the routing handler; API verbs are submitted to the FlowService's
 * scheduler as a parse task followed by the verb's stage graph
 * (flow::FlowService::dispatchAsync), and the completion callback
 * hands the finished response bytes back to the reactor from
 * whichever worker ran the final stage. Counters the handler and the
 * workers both touch are atomics.
 */

#include "net/server.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <sstream>

#include "flow/json.hh"
#include "util/json.hh"
#include "util/strings.hh"

namespace rissp::net
{

namespace
{

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

std::string
toJson(const MetricsSnapshot &snapshot)
{
    std::ostringstream out;
    out << "{\"server\": {\"accepted\": " << snapshot.accepted
        << ", \"active\": " << snapshot.activeConnections
        << ", \"connections\": {\"open\": "
        << snapshot.activeConnections
        << ", \"reading\": " << snapshot.readingConnections
        << ", \"dispatched\": " << snapshot.dispatchDepth
        << ", \"writing\": " << snapshot.writingConnections
        << ", \"idle\": " << snapshot.idleConnections
        << ", \"lingering\": " << snapshot.lingeringConnections
        << "}, \"dispatch_depth\": " << snapshot.dispatchDepth
        << ", \"queue_capacity\": " << snapshot.queueCapacity
        << ", \"max_connections\": " << snapshot.connectionCapacity
        << ", \"rejected_shed_load\": " << snapshot.rejectedShedLoad
        << ", \"rejected_queue_full\": "
        << snapshot.rejectedQueueFull
        << ", \"idle_reaped\": " << snapshot.idleReaped
        << ", \"timed_out\": " << snapshot.timedOut
        << ", \"partial_writes\": " << snapshot.partialWrites
        << ", \"http_errors\": " << snapshot.httpErrors
        << ", \"poller\": \"" << snapshot.pollerBackend << '"'
        << ", \"draining\": " << jsonBool(snapshot.draining)
        << "}, \"requests\": {";
    for (size_t i = 0; i < kVerbCount; ++i)
        out << (i ? ", " : "") << '"'
            << verbName(static_cast<Verb>(i)) << "\": {\"total\": "
            << snapshot.verbTotals[i] << ", \"errors\": "
            << snapshot.verbErrors[i] << '}';
    out << "}, \"scheduler\": {\"threads\": "
        << snapshot.schedulerThreads << ", \"queue_depth\": "
        << snapshot.schedulerQueueDepth << ", \"in_flight\": "
        << snapshot.schedulerInFlight << ", \"submitted\": "
        << snapshot.schedulerSubmitted << ", \"executed\": "
        << snapshot.schedulerExecuted << ", \"steals\": "
        << snapshot.schedulerSteals << "}, \"caches\": {"
        << "\"compile\": {\"hits\": " << snapshot.compileHits
        << ", \"misses\": " << snapshot.compileMisses
        << "}, \"sim\": {\"hits\": " << snapshot.simHits
        << ", \"misses\": " << snapshot.simMisses
        << "}, \"synth\": {\"hits\": " << snapshot.synthHits
        << ", \"misses\": " << snapshot.synthMisses
        << "}, \"synth_report\": {\"hits\": "
        << snapshot.synthReportHits << ", \"misses\": "
        << snapshot.synthReportMisses << "}}, \"store\": {"
        << "\"attached\": " << jsonBool(snapshot.storeAttached)
        << ", \"hits\": " << snapshot.storeHits
        << ", \"misses\": " << snapshot.storeMisses
        << ", \"writes\": " << snapshot.storeWrites
        << ", \"write_errors\": " << snapshot.storeWriteErrors
        << ", \"evictions\": " << snapshot.storeEvictions
        << ", \"quarantined\": " << snapshot.storeQuarantined
        << ", \"bytes_read\": " << snapshot.storeBytesRead
        << ", \"bytes_written\": " << snapshot.storeBytesWritten
        << "}}\n";
    return out.str();
}

HttpServer::HttpServer(const flow::FlowService &service,
                       ServeOptions options)
    : service(service), options(std::move(options))
{
}

HttpServer::~HttpServer()
{
    if (started) {
        requestShutdown();
        waitUntilStopped();
    }
}

Status
HttpServer::start()
{
    if (started)
        return Status::error(ErrorCode::Internal,
                             "server already started");

    int listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0)
        return Status::errorf(ErrorCode::Internal, "socket: %s",
                              errnoString(errno).c_str());
    const int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options.port);
    if (::inet_pton(AF_INET, options.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        closeFd(listenFd);
        return Status::errorf(ErrorCode::InvalidArgument,
                              "bad bind address '%s'",
                              options.bindAddress.c_str());
    }
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listenFd, options.backlog) != 0) {
        const Status status = Status::errorf(
            ErrorCode::Unavailable, "cannot listen on %s:%u: %s",
            options.bindAddress.c_str(), options.port,
            errnoString(errno).c_str());
        closeFd(listenFd);
        return status;
    }
    socklen_t len = sizeof addr;
    ::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    boundPort = ntohs(addr.sin_port);

    ReactorOptions ropts;
    ropts.maxConnections = options.maxConnections;
    ropts.maxBodyBytes = options.maxBodyBytes;
    ropts.idleTimeoutMs = options.idleTimeoutMs;
    ropts.sendBufferBytes = options.sendBufferBytes;
    ropts.usePollBackend = options.usePollBackend;
    ropts.shedResponse = http::buildResponse(
        429,
        flow::toJson(Status::errorf(
            ErrorCode::Unavailable,
            "server at capacity (%zu connections open); "
            "retry later",
            options.maxConnections)));

    // The reactor owns the listener from here on (it closes it at
    // drain); routing and error bodies stay in this class.
    reactor = std::make_unique<Reactor>(
        listenFd,
        [this](Reactor::ConnToken token,
               const http::RequestHead &head, std::string body) {
            return onRequest(token, head, std::move(body));
        },
        [this](int http_status, Status reason, bool keep_alive) {
            return errorResponse(http_status, std::move(reason),
                                 keep_alive);
        },
        ropts);
    const Status ready = reactor->init();
    if (!ready) {
        reactor.reset(); // closes the listener
        return ready;
    }

    // Start the scheduler's workers before the first connection so
    // dispatch never races lazy worker creation.
    service.scheduler();

    started = true;
    reactorThread = std::thread([this] { reactor->run(); });
    return Status::ok();
}

void
HttpServer::requestShutdown()
{
    // Async-signal-safe on purpose: an atomic store plus the
    // reactor's own wake-pipe write. `reactor` is set before any
    // signal handler can be wired to this method and never
    // reassigned while running.
    drainFlag.store(true, std::memory_order_release);
    if (reactor)
        reactor->requestStop();
}

void
HttpServer::waitUntilStopped()
{
    if (reactorThread.joinable())
        reactorThread.join();
    // The loop only exits after handing back every dispatched
    // response, but a completion callback may still be returning on
    // its worker; don't let the destructor free the reactor under
    // it.
    while (inflightDispatches.load(std::memory_order_acquire) != 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

std::string
HttpServer::errorResponse(int http_status, Status status,
                          bool keep_alive)
{
    noteResponse(http_status);
    return http::buildResponse(http_status,
                               flow::toJson(std::move(status)),
                               "application/json", keep_alive);
}

void
HttpServer::noteResponse(int http_status)
{
    if (http_status >= 400)
        httpErrors.fetch_add(1, std::memory_order_relaxed);
}

Reactor::RequestAction
HttpServer::onRequest(Reactor::ConnToken token,
                      const http::RequestHead &head,
                      std::string body)
{
    // Keep-alive survives routed errors (framing stayed intact) but
    // not a drain: once draining, every response closes so the
    // reactor's table can settle.
    const bool keepAlive = head.keepAlive() && !draining();
    std::string target = head.target;
    const size_t query = target.find('?');
    if (query != std::string::npos)
        target.erase(query);

    if (target == "/healthz") {
        if (head.method != "GET")
            return Reactor::RequestAction::respond(
                errorResponse(
                    405,
                    Status::error(ErrorCode::InvalidArgument,
                                  "use GET on /healthz"),
                    false),
                false);
        noteResponse(200);
        return Reactor::RequestAction::respond(
            http::buildResponse(200, flow::toJson(Status::ok()),
                                "application/json", keepAlive),
            keepAlive);
    }

    if (target == "/metrics") {
        if (head.method != "GET")
            return Reactor::RequestAction::respond(
                errorResponse(
                    405,
                    Status::error(ErrorCode::InvalidArgument,
                                  "use GET on /metrics"),
                    false),
                false);
        noteResponse(200);
        return Reactor::RequestAction::respond(
            http::buildResponse(200, toJson(metrics()),
                                "application/json", keepAlive),
            keepAlive);
    }

    if (target == "/shutdown") {
        if (head.method != "POST")
            return Reactor::RequestAction::respond(
                errorResponse(
                    405,
                    Status::error(ErrorCode::InvalidArgument,
                                  "use POST on /shutdown"),
                    false),
                false);
        // Flush the acknowledgement on a closing connection, then
        // trip the drain: the reactor stops listening and every
        // in-flight request (including this response) completes.
        requestShutdown();
        noteResponse(200);
        return Reactor::RequestAction::respond(
            http::buildResponse(
                200,
                flow::toJson(
                    Status::error(ErrorCode::Ok, "draining")),
                "application/json", false),
            false);
    }

    const std::string apiPrefix = "/api/v1/";
    if (target.rfind(apiPrefix, 0) != 0)
        return Reactor::RequestAction::respond(
            errorResponse(
                404,
                Status::errorf(
                    ErrorCode::NotFound,
                    "no endpoint '%s' (POST /api/v1/<verb>, "
                    "GET /metrics, GET /healthz, "
                    "POST /shutdown)",
                    target.c_str()),
                keepAlive),
            keepAlive);

    Result<Verb> verb =
        verbFromName(target.substr(apiPrefix.size()));
    if (!verb)
        return Reactor::RequestAction::respond(
            errorResponse(404,
                          Status::error(ErrorCode::NotFound,
                                        verb.status().message()),
                          keepAlive),
            keepAlive);
    if (head.method != "POST")
        return Reactor::RequestAction::respond(
            errorResponse(
                405,
                Status::errorf(ErrorCode::InvalidArgument,
                               "use POST on /api/v1/%s",
                               verbName(verb.value())),
                false),
            false);

    // Bounded dispatch admission: the reactor's Dispatched gauge
    // only moves on this thread, so the check cannot race itself.
    // Shed requests close through the lingering discipline — the
    // client may be mid-pipeline and must still read its 429.
    if (options.maxQueue > 0 &&
        reactor->stats().dispatched >= options.maxQueue) {
        rejectedQueueFull.fetch_add(1, std::memory_order_relaxed);
        return Reactor::RequestAction::respond(
            errorResponse(
                429,
                Status::errorf(ErrorCode::Unavailable,
                               "server at capacity (%zu requests "
                               "in flight); retry later",
                               options.maxQueue),
                false),
            false, /*linger_close=*/true);
    }

    dispatchRequest(token, verb.value(), std::move(body),
                    keepAlive);
    return Reactor::RequestAction::dispatched();
}

void
HttpServer::dispatchRequest(Reactor::ConnToken token, Verb verb,
                            std::string body, bool keep_alive)
{
    inflightDispatches.fetch_add(1, std::memory_order_acq_rel);
    service.scheduler().submit(
        [this, token, verb, body = std::move(body), keep_alive] {
            // Parse off the reactor thread: a 4 MB explore plan
            // must not stall a thousand other connections.
            Result<flow::Request> request =
                requestFromBody(verb, body);
            if (!request) {
                reactor->complete(
                    token,
                    errorResponse(httpStatusFor(request.status()),
                                  request.status(), keep_alive),
                    keep_alive);
                inflightDispatches.fetch_sub(
                    1, std::memory_order_acq_rel);
                return;
            }
            verbTotals[static_cast<size_t>(verb)].fetch_add(
                1, std::memory_order_relaxed);
            service.dispatchAsync(
                request.take(),
                [this, token, verb,
                 keep_alive](flow::Response response) {
                    const Status &status =
                        flow::responseStatus(response);
                    if (!status.isOk())
                        verbErrors[static_cast<size_t>(verb)]
                            .fetch_add(1,
                                       std::memory_order_relaxed);
                    const int httpStatus = httpStatusFor(status);
                    noteResponse(httpStatus);
                    // The body is flow::toJson(...) verbatim:
                    // byte-identical to `risspgen <verb> --json`
                    // for the same request. The server adds
                    // framing, never schema.
                    reactor->complete(
                        token,
                        http::buildResponse(httpStatus,
                                            flow::toJson(response),
                                            "application/json",
                                            keep_alive),
                        keep_alive);
                    inflightDispatches.fetch_sub(
                        1, std::memory_order_acq_rel);
                });
        },
        {}, "http:request");
}

MetricsSnapshot
HttpServer::metrics() const
{
    MetricsSnapshot snapshot;
    const ReactorStats reactorStats = reactor->stats();
    snapshot.accepted = reactorStats.accepted;
    snapshot.rejectedShedLoad = reactorStats.shed;
    snapshot.rejectedQueueFull =
        rejectedQueueFull.load(std::memory_order_relaxed);
    snapshot.httpErrors =
        httpErrors.load(std::memory_order_relaxed);
    snapshot.idleReaped = reactorStats.idleReaped;
    snapshot.timedOut = reactorStats.timedOut;
    snapshot.partialWrites = reactorStats.partialWrites;
    snapshot.activeConnections = reactorStats.open;
    snapshot.readingConnections = reactorStats.reading;
    snapshot.dispatchDepth = reactorStats.dispatched;
    snapshot.writingConnections = reactorStats.writing;
    snapshot.idleConnections = reactorStats.idle;
    snapshot.lingeringConnections = reactorStats.lingering;
    snapshot.queueCapacity = options.maxQueue;
    snapshot.connectionCapacity = options.maxConnections;
    snapshot.draining = draining();
    snapshot.pollerBackend = reactor->backendName();
    for (size_t i = 0; i < kVerbCount; ++i) {
        snapshot.verbTotals[i] =
            verbTotals[i].load(std::memory_order_relaxed);
        snapshot.verbErrors[i] =
            verbErrors[i].load(std::memory_order_relaxed);
    }

    const exec::Scheduler &scheduler = service.scheduler();
    snapshot.schedulerThreads = scheduler.threadCount();
    snapshot.schedulerQueueDepth = scheduler.queueDepth();
    snapshot.schedulerInFlight = scheduler.inFlight();
    snapshot.schedulerSubmitted = scheduler.submitted();
    snapshot.schedulerExecuted = scheduler.tasksRun();
    snapshot.schedulerSteals = scheduler.stealCount();

    const flow::StageCaches &caches = *service.caches();
    snapshot.compileHits = caches.compile.hits();
    snapshot.compileMisses = caches.compile.misses();
    snapshot.simHits = caches.sim.hits();
    snapshot.simMisses = caches.sim.misses();
    snapshot.synthHits = caches.synth.hits();
    snapshot.synthMisses = caches.synth.misses();
    snapshot.synthReportHits = caches.synthReport.hits();
    snapshot.synthReportMisses = caches.synthReport.misses();

    if (caches.artifacts) {
        const store::StoreStats stats = caches.artifacts->stats();
        snapshot.storeAttached = true;
        snapshot.storeHits = stats.hits;
        snapshot.storeMisses = stats.misses;
        snapshot.storeWrites = stats.writes;
        snapshot.storeWriteErrors = stats.writeErrors;
        snapshot.storeEvictions = stats.evictions;
        snapshot.storeQuarantined = stats.quarantined;
        snapshot.storeBytesRead = stats.bytesRead;
        snapshot.storeBytesWritten = stats.bytesWritten;
    }
    return snapshot;
}

} // namespace rissp::net
