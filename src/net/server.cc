/**
 * @file
 * HttpServer implementation. Socket plumbing only — everything
 * schema-shaped lives in net/rest.cc, everything byte-framing-shaped
 * in util/http.cc.
 *
 * Thread model: the accept thread owns the listener and is the only
 * admitter; each admitted connection runs as one task on the
 * FlowService's scheduler and owns its fd until it closes it. The
 * admission count is the number of admitted-but-unfinished
 * connections, so a client that stalls mid-request occupies its slot
 * (bounded by the socket IO timeout) — that is the point: slots
 * bound server memory, and a stalled client is load.
 */

#include "net/server.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sstream>

#include "flow/json.hh"
#include "util/http.hh"
#include "util/json.hh"
#include "util/strings.hh"

namespace rissp::net
{

namespace
{

/** Append whatever is readable right now (bounded by the socket's
 *  SO_RCVTIMEO). >0 bytes appended, 0 orderly close, -1 error or
 *  timeout. */
ssize_t
recvSome(int fd, std::string &buffer)
{
    char chunk[16384];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n > 0)
            buffer.append(chunk, static_cast<size_t>(n));
        return n;
    }
}

/** Send the whole buffer (bounded by SO_SNDTIMEO); false when the
 *  peer went away or stopped reading. */
bool
sendAll(int fd, const std::string &data)
{
    size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        sent += static_cast<size_t>(n);
    }
    return true;
}

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

std::string
toJson(const MetricsSnapshot &snapshot)
{
    std::ostringstream out;
    out << "{\"server\": {\"accepted\": " << snapshot.accepted
        << ", \"active\": " << snapshot.activeConnections
        << ", \"queue_capacity\": " << snapshot.queueCapacity
        << ", \"rejected_shed_load\": " << snapshot.rejectedShedLoad
        << ", \"http_errors\": " << snapshot.httpErrors
        << ", \"draining\": " << jsonBool(snapshot.draining)
        << "}, \"requests\": {";
    for (size_t i = 0; i < kVerbCount; ++i)
        out << (i ? ", " : "") << '"'
            << verbName(static_cast<Verb>(i)) << "\": {\"total\": "
            << snapshot.verbTotals[i] << ", \"errors\": "
            << snapshot.verbErrors[i] << '}';
    out << "}, \"scheduler\": {\"threads\": "
        << snapshot.schedulerThreads << ", \"queue_depth\": "
        << snapshot.schedulerQueueDepth << ", \"in_flight\": "
        << snapshot.schedulerInFlight << ", \"executed\": "
        << snapshot.schedulerExecuted << ", \"steals\": "
        << snapshot.schedulerSteals << "}, \"caches\": {"
        << "\"compile\": {\"hits\": " << snapshot.compileHits
        << ", \"misses\": " << snapshot.compileMisses
        << "}, \"sim\": {\"hits\": " << snapshot.simHits
        << ", \"misses\": " << snapshot.simMisses
        << "}, \"synth\": {\"hits\": " << snapshot.synthHits
        << ", \"misses\": " << snapshot.synthMisses
        << "}, \"synth_report\": {\"hits\": "
        << snapshot.synthReportHits << ", \"misses\": "
        << snapshot.synthReportMisses << "}}, \"store\": {"
        << "\"attached\": " << jsonBool(snapshot.storeAttached)
        << ", \"hits\": " << snapshot.storeHits
        << ", \"misses\": " << snapshot.storeMisses
        << ", \"writes\": " << snapshot.storeWrites
        << ", \"write_errors\": " << snapshot.storeWriteErrors
        << ", \"evictions\": " << snapshot.storeEvictions
        << ", \"quarantined\": " << snapshot.storeQuarantined
        << ", \"bytes_read\": " << snapshot.storeBytesRead
        << ", \"bytes_written\": " << snapshot.storeBytesWritten
        << "}}\n";
    return out.str();
}

HttpServer::HttpServer(const flow::FlowService &service,
                       ServeOptions options)
    : service(service), options(std::move(options))
{
}

HttpServer::~HttpServer()
{
    if (started) {
        requestShutdown();
        waitUntilStopped();
    }
    closeFd(wakeReadFd);
    closeFd(wakeWriteFd);
    closeFd(listenFd);
}

Status
HttpServer::start()
{
    if (started)
        return Status::error(ErrorCode::Internal,
                             "server already started");

    int pipeFds[2];
    if (::pipe(pipeFds) != 0)
        return Status::errorf(ErrorCode::Internal, "pipe: %s",
                              errnoString(errno).c_str());
    wakeReadFd = pipeFds[0];
    wakeWriteFd = pipeFds[1];

    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0) {
        closeFd(wakeReadFd);
        closeFd(wakeWriteFd);
        return Status::errorf(ErrorCode::Internal, "socket: %s",
                              errnoString(errno).c_str());
    }
    const int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options.port);
    if (::inet_pton(AF_INET, options.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        closeFd(listenFd);
        closeFd(wakeReadFd);
        closeFd(wakeWriteFd);
        return Status::errorf(ErrorCode::InvalidArgument,
                              "bad bind address '%s'",
                              options.bindAddress.c_str());
    }
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listenFd, options.backlog) != 0) {
        const Status status = Status::errorf(
            ErrorCode::Unavailable, "cannot listen on %s:%u: %s",
            options.bindAddress.c_str(), options.port,
            errnoString(errno).c_str());
        closeFd(listenFd);
        closeFd(wakeReadFd);
        closeFd(wakeWriteFd);
        return status;
    }
    socklen_t len = sizeof addr;
    ::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    boundPort = ntohs(addr.sin_port);

    // Start the scheduler's workers before the first connection so
    // admission never races lazy worker creation.
    service.scheduler();

    started = true;
    acceptThread = std::thread(&HttpServer::acceptLoop, this);
    return Status::ok();
}

void
HttpServer::requestShutdown()
{
    // Async-signal-safe on purpose: one write(2) on a fd that was
    // opened before the accept thread existed and is never
    // reassigned while it runs. No locks, no allocation.
    if (wakeWriteFd >= 0) {
        const char byte = 1;
        [[maybe_unused]] ssize_t n =
            ::write(wakeWriteFd, &byte, 1);
    }
}

void
HttpServer::waitUntilStopped()
{
    if (acceptThread.joinable())
        acceptThread.join();
}

void
HttpServer::acceptLoop()
{
    for (;;) {
        pollfd fds[2] = {{listenFd, POLLIN, 0},
                         {wakeReadFd, POLLIN, 0}};
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[1].revents != 0)
            break; // shutdown requested
        if ((fds[0].revents & POLLIN) == 0)
            continue;

        sockaddr_in peer{};
        socklen_t len = sizeof peer;
        const int fd = ::accept(
            listenFd, reinterpret_cast<sockaddr *>(&peer), &len);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            break;
        }
        timeval tv{};
        tv.tv_sec = options.ioTimeoutMs / 1000;
        tv.tv_usec = (options.ioTimeoutMs % 1000) * 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

        bool admit = false;
        {
            LockGuard lock(stateMu);
            if (activeCount < options.maxQueue) {
                ++activeCount;
                admit = true;
            }
        }
        if (!admit) {
            // Shed load at the door: a bounded structured refusal
            // instead of an unbounded queue. The client can retry.
            rejected.fetch_add(1, std::memory_order_relaxed);
            const std::string body = flow::toJson(Status::errorf(
                ErrorCode::Unavailable,
                "server at capacity (%zu connections in flight); "
                "retry later",
                options.maxQueue));
            sendAll(fd, http::buildResponse(429, body));
            ::close(fd);
            continue;
        }
        accepted.fetch_add(1, std::memory_order_relaxed);
        service.scheduler().submit(
            [this, fd] { handleConnection(fd); }, {}, "http:conn");
    }

    // Drain: stop accepting (closing the listener makes the kernel
    // refuse new connections), then wait for every admitted
    // connection to finish and flush.
    drainFlag.store(true, std::memory_order_release);
    closeFd(listenFd);
    // Explicit predicate loop: the analysis checks the guarded read
    // of activeCount in this locked scope (a wait-lambda would be
    // analyzed as a separate, lock-free function).
    UniqueLock lock(stateMu);
    while (activeCount != 0)
        idleCv.wait(lock);
}

std::string
HttpServer::errorResponse(int http_status, Status status,
                          bool keep_alive)
{
    noteResponse(http_status);
    return http::buildResponse(http_status,
                               flow::toJson(std::move(status)),
                               "application/json", keep_alive);
}

void
HttpServer::noteResponse(int http_status)
{
    if (http_status >= 400)
        httpErrors.fetch_add(1, std::memory_order_relaxed);
}

void
HttpServer::handleConnection(int fd)
{
    std::string buffer;
    for (;;) {
        // ---- read one request head
        size_t headEnd;
        bool peerGone = false;
        while ((headEnd = http::findHeadEnd(buffer)) ==
               std::string::npos) {
            if (buffer.size() > http::kMaxHeadBytes) {
                sendAll(fd, errorResponse(
                                400,
                                Status::error(
                                    ErrorCode::InvalidArgument,
                                    "request head too large"),
                                false));
                peerGone = true;
                break;
            }
            if (recvSome(fd, buffer) <= 0) {
                // Orderly close between requests is a clean end;
                // anything else (timeout, reset, bytes then EOF)
                // just drops the connection — there is nobody to
                // answer.
                peerGone = true;
                break;
            }
        }
        if (peerGone)
            break;

        Result<http::RequestHead> head =
            http::parseRequestHead(buffer.substr(0, headEnd));
        if (!head) {
            sendAll(fd, errorResponse(400, head.status(), false));
            break;
        }

        // ---- read the body
        Result<size_t> bodyLen = head.value().contentLength();
        if (!bodyLen) {
            sendAll(fd,
                    errorResponse(400, bodyLen.status(), false));
            break;
        }
        if (bodyLen.value() > options.maxBodyBytes) {
            sendAll(fd, errorResponse(
                            413,
                            Status::errorf(
                                ErrorCode::InvalidArgument,
                                "request body of %zu bytes exceeds "
                                "the %zu-byte limit",
                                bodyLen.value(),
                                options.maxBodyBytes),
                            false));
            break;
        }
        bool truncated = false;
        while (buffer.size() < headEnd + bodyLen.value()) {
            if (recvSome(fd, buffer) <= 0) {
                truncated = true;
                break;
            }
        }
        if (truncated)
            break; // peer vanished mid-body; nothing to answer
        const std::string body =
            buffer.substr(headEnd, bodyLen.value());
        buffer.erase(0, headEnd + bodyLen.value());

        // ---- route and respond
        bool keepAlive = false;
        const std::string response =
            routeRequest(head.value(), body, keepAlive);
        if (!sendAll(fd, response) || !keepAlive)
            break;
    }
    ::close(fd);
    {
        LockGuard lock(stateMu);
        finishConnectionLocked();
    }
}

void
HttpServer::finishConnectionLocked()
{
    // Notify under the lock: the drain waiter may destroy this
    // condvar the moment it observes activeCount == 0, so the
    // notify must complete before the mutex is released. The
    // RISSP_REQUIRES(stateMu) on the declaration makes calling this
    // without the lock a compile error on Clang.
    --activeCount;
    idleCv.notify_all();
}

std::string
HttpServer::routeRequest(const http::RequestHead &head,
                         const std::string &body, bool &keep_alive)
{
    // Keep-alive survives routed errors (framing stayed intact) but
    // not a drain: once draining, every response closes so the
    // accept thread's wait can settle.
    keep_alive = head.keepAlive() && !draining();
    std::string target = head.target;
    const size_t query = target.find('?');
    if (query != std::string::npos)
        target.erase(query);

    if (target == "/healthz") {
        if (head.method != "GET") {
            keep_alive = false;
            return errorResponse(
                405,
                Status::error(ErrorCode::InvalidArgument,
                              "use GET on /healthz"),
                false);
        }
        noteResponse(200);
        return http::buildResponse(200, flow::toJson(Status::ok()),
                                   "application/json", keep_alive);
    }

    if (target == "/metrics") {
        if (head.method != "GET") {
            keep_alive = false;
            return errorResponse(
                405,
                Status::error(ErrorCode::InvalidArgument,
                              "use GET on /metrics"),
                false);
        }
        noteResponse(200);
        return http::buildResponse(200, toJson(metrics()),
                                   "application/json", keep_alive);
    }

    if (target == "/shutdown") {
        if (head.method != "POST") {
            keep_alive = false;
            return errorResponse(
                405,
                Status::error(ErrorCode::InvalidArgument,
                              "use POST on /shutdown"),
                false);
        }
        // Flush the acknowledgement on a closing connection, then
        // trip the drain: the accept thread stops listening and
        // waits for the in-flight requests (including this one).
        requestShutdown();
        keep_alive = false;
        noteResponse(200);
        return http::buildResponse(
            200,
            flow::toJson(Status::error(ErrorCode::Ok, "draining")),
            "application/json", false);
    }

    const std::string apiPrefix = "/api/v1/";
    if (target.rfind(apiPrefix, 0) != 0)
        return errorResponse(
            404,
            Status::errorf(ErrorCode::NotFound,
                           "no endpoint '%s' (POST /api/v1/<verb>, "
                           "GET /metrics, GET /healthz, "
                           "POST /shutdown)",
                           target.c_str()),
            keep_alive);

    Result<Verb> verb =
        verbFromName(target.substr(apiPrefix.size()));
    if (!verb)
        return errorResponse(
            404,
            Status::error(ErrorCode::NotFound,
                          verb.status().message()),
            keep_alive);
    if (head.method != "POST") {
        keep_alive = false;
        return errorResponse(
            405,
            Status::errorf(ErrorCode::InvalidArgument,
                           "use POST on /api/v1/%s",
                           verbName(verb.value())),
            false);
    }

    Result<flow::Request> request =
        requestFromBody(verb.value(), body);
    if (!request)
        return errorResponse(httpStatusFor(request.status()),
                             request.status(), keep_alive);

    verbTotals[static_cast<size_t>(verb.value())].fetch_add(
        1, std::memory_order_relaxed);
    const flow::Response response =
        service.dispatch(request.value());
    const Status &status = flow::responseStatus(response);
    if (!status.isOk())
        verbErrors[static_cast<size_t>(verb.value())].fetch_add(
            1, std::memory_order_relaxed);
    const int httpStatus = httpStatusFor(status);
    noteResponse(httpStatus);
    // The body is flow::toJson(...) verbatim: byte-identical to
    // `risspgen <verb> --json` for the same request. The server
    // adds framing, never schema.
    return http::buildResponse(httpStatus, flow::toJson(response),
                               "application/json", keep_alive);
}

MetricsSnapshot
HttpServer::metrics() const
{
    MetricsSnapshot snapshot;
    snapshot.accepted = accepted.load(std::memory_order_relaxed);
    snapshot.rejectedShedLoad =
        rejected.load(std::memory_order_relaxed);
    snapshot.httpErrors =
        httpErrors.load(std::memory_order_relaxed);
    {
        LockGuard lock(stateMu);
        snapshot.activeConnections = activeCount;
    }
    snapshot.queueCapacity = options.maxQueue;
    snapshot.draining = draining();
    for (size_t i = 0; i < kVerbCount; ++i) {
        snapshot.verbTotals[i] =
            verbTotals[i].load(std::memory_order_relaxed);
        snapshot.verbErrors[i] =
            verbErrors[i].load(std::memory_order_relaxed);
    }

    const exec::Scheduler &scheduler = service.scheduler();
    snapshot.schedulerThreads = scheduler.threadCount();
    snapshot.schedulerQueueDepth = scheduler.queueDepth();
    snapshot.schedulerInFlight = scheduler.inFlight();
    snapshot.schedulerExecuted = scheduler.tasksRun();
    snapshot.schedulerSteals = scheduler.stealCount();

    const flow::StageCaches &caches = *service.caches();
    snapshot.compileHits = caches.compile.hits();
    snapshot.compileMisses = caches.compile.misses();
    snapshot.simHits = caches.sim.hits();
    snapshot.simMisses = caches.sim.misses();
    snapshot.synthHits = caches.synth.hits();
    snapshot.synthMisses = caches.synth.misses();
    snapshot.synthReportHits = caches.synthReport.hits();
    snapshot.synthReportMisses = caches.synthReport.misses();

    if (caches.artifacts) {
        const store::StoreStats stats = caches.artifacts->stats();
        snapshot.storeAttached = true;
        snapshot.storeHits = stats.hits;
        snapshot.storeMisses = stats.misses;
        snapshot.storeWrites = stats.writes;
        snapshot.storeWriteErrors = stats.writeErrors;
        snapshot.storeEvictions = stats.evictions;
        snapshot.storeQuarantined = stats.quarantined;
        snapshot.storeBytesRead = stats.bytesRead;
        snapshot.storeBytesWritten = stats.bytesWritten;
    }
    return snapshot;
}

} // namespace rissp::net
