#include "net/rest.hh"

#include <cmath>
#include <initializer_list>

namespace rissp::net
{

namespace
{

/** Reject members outside @p allowed, naming the first offender. */
Status
checkFields(const JsonValue &body,
            std::initializer_list<const char *> allowed)
{
    for (const JsonValue::Member &member : body.members()) {
        bool known = false;
        for (const char *name : allowed)
            if (member.first == name) {
                known = true;
                break;
            }
        if (!known)
            return Status::errorf(ErrorCode::InvalidArgument,
                                  "unknown field '%s'",
                                  member.first.c_str());
    }
    return Status::ok();
}

Status
wrongKind(const char *field, const JsonValue &value,
          const char *wanted)
{
    return Status::errorf(ErrorCode::InvalidArgument,
                          "field '%s' must be a %s, not a %s", field,
                          wanted, JsonValue::kindName(value.kind()));
}

Result<std::string>
stringField(const JsonValue &body, const char *name)
{
    const JsonValue *value = body.find(name);
    if (!value)
        return std::string();
    if (!value->isString())
        return wrongKind(name, *value, "string");
    return value->asString();
}

Result<bool>
boolField(const JsonValue &body, const char *name, bool fallback)
{
    const JsonValue *value = body.find(name);
    if (!value)
        return fallback;
    if (!value->isBool())
        return wrongKind(name, *value, "bool");
    return value->asBool();
}

Result<uint64_t>
countField(const JsonValue &body, const char *name,
           uint64_t fallback, uint64_t max)
{
    const JsonValue *value = body.find(name);
    if (!value)
        return fallback;
    if (!value->isNumber())
        return wrongKind(name, *value, "number");
    const double number = value->asNumber();
    if (number < 0 || number > static_cast<double>(max) ||
        number != std::floor(number))
        return Status::errorf(ErrorCode::InvalidArgument,
                              "field '%s' must be an integer in "
                              "[0, %llu]",
                              name,
                              static_cast<unsigned long long>(max));
    return static_cast<uint64_t>(number);
}

/** "workload" XOR "source" (+ "label") → SourceRef. */
Result<flow::SourceRef>
sourceFromJson(const JsonValue &body)
{
    const JsonValue *workload = body.find("workload");
    const JsonValue *source = body.find("source");
    if (workload && source)
        return Status::error(ErrorCode::InvalidArgument,
                             "give either 'workload' or 'source', "
                             "not both");
    if (workload) {
        if (!workload->isString())
            return wrongKind("workload", *workload, "string");
        return flow::SourceRef::bundled(workload->asString());
    }
    if (!source)
        return Status::error(ErrorCode::InvalidArgument,
                             "missing 'workload' or 'source'");
    if (!source->isString())
        return wrongKind("source", *source, "string");
    Result<std::string> label = stringField(body, "label");
    if (!label)
        return label.status();
    return flow::SourceRef::inlineText(
        source->asString(),
        label.value().empty() ? "<inline>" : label.take());
}

Result<minic::OptLevel>
optFromJson(const JsonValue &body)
{
    Result<std::string> word = stringField(body, "opt");
    if (!word)
        return word.status();
    const std::string &opt = word.value();
    if (opt.empty() || opt == "O2") return minic::OptLevel::O2;
    if (opt == "O0") return minic::OptLevel::O0;
    if (opt == "O1") return minic::OptLevel::O1;
    if (opt == "O3") return minic::OptLevel::O3;
    if (opt == "Oz") return minic::OptLevel::Oz;
    return Status::errorf(ErrorCode::InvalidArgument,
                          "field 'opt' must be one of O0, O1, O2, "
                          "O3, Oz, not '%s'",
                          opt.c_str());
}

/** A mnemonic array field → subset; nullopt when absent. */
Result<std::optional<InstrSubset>>
subsetField(const JsonValue &body, const char *name)
{
    const JsonValue *value = body.find(name);
    if (!value)
        return std::optional<InstrSubset>();
    if (!value->isArray())
        return wrongKind(name, *value, "array");
    std::vector<std::string> names;
    for (const JsonValue &item : value->items()) {
        if (!item.isString())
            return Status::errorf(ErrorCode::InvalidArgument,
                                  "field '%s' must hold mnemonic "
                                  "strings",
                                  name);
        names.push_back(item.asString());
    }
    Result<InstrSubset> subset = InstrSubset::tryFromNames(names);
    if (!subset)
        return subset.status();
    return std::optional<InstrSubset>(subset.take());
}

Result<flow::Request>
characterizeFromJson(const JsonValue &body)
{
    Status fields =
        checkFields(body, {"workload", "source", "label", "opt"});
    if (!fields.isOk())
        return fields;
    Result<flow::SourceRef> source = sourceFromJson(body);
    if (!source)
        return source.status();
    Result<minic::OptLevel> opt = optFromJson(body);
    if (!opt)
        return opt.status();
    flow::CharacterizeRequest request;
    request.source = source.take();
    request.opt = opt.value();
    return flow::Request(std::move(request));
}

Result<flow::Request>
runFromJson(const JsonValue &body)
{
    Status fields =
        checkFields(body, {"workload", "source", "label", "opt",
                           "verify", "max_steps", "subset"});
    if (!fields.isOk())
        return fields;
    Result<flow::SourceRef> source = sourceFromJson(body);
    if (!source)
        return source.status();
    Result<minic::OptLevel> opt = optFromJson(body);
    if (!opt)
        return opt.status();
    flow::RunRequest request;
    Result<bool> verify = boolField(body, "verify", request.verify);
    if (!verify)
        return verify.status();
    Result<uint64_t> maxSteps = countField(
        body, "max_steps", request.maxSteps, uint64_t{1} << 53);
    if (!maxSteps)
        return maxSteps.status();
    Result<std::optional<InstrSubset>> subset =
        subsetField(body, "subset");
    if (!subset)
        return subset.status();
    request.source = source.take();
    request.opt = opt.value();
    request.verify = verify.value();
    request.maxSteps = maxSteps.value();
    request.subsetOverride = subset.take();
    return flow::Request(std::move(request));
}

Result<flow::Request>
synthFromJson(const JsonValue &body)
{
    Status fields = checkFields(
        body, {"workload", "source", "label", "opt", "name", "tech",
               "baselines", "physical", "subset"});
    if (!fields.isOk())
        return fields;
    Result<flow::SourceRef> source = sourceFromJson(body);
    if (!source)
        return source.status();
    Result<minic::OptLevel> opt = optFromJson(body);
    if (!opt)
        return opt.status();
    flow::SynthRequest request;
    Result<std::string> name = stringField(body, "name");
    if (!name)
        return name.status();
    Result<std::string> tech = stringField(body, "tech");
    if (!tech)
        return tech.status();
    Result<bool> baselines =
        boolField(body, "baselines", request.baselines);
    if (!baselines)
        return baselines.status();
    Result<bool> physical =
        boolField(body, "physical", request.physical);
    if (!physical)
        return physical.status();
    Result<std::optional<InstrSubset>> subset =
        subsetField(body, "subset");
    if (!subset)
        return subset.status();
    request.source = source.take();
    request.opt = opt.value();
    if (!name.value().empty())
        request.name = name.take();
    if (!tech.value().empty()) {
        Result<explore::TechSpec> spec =
            explore::TechSpec::fromSpec(tech.value());
        if (!spec)
            return spec.status();
        request.tech = spec.take();
    }
    request.baselines = baselines.value();
    request.physical = physical.value();
    request.subsetOverride = subset.take();
    return flow::Request(std::move(request));
}

Result<flow::Request>
retargetFromJson(const JsonValue &body)
{
    Status fields = checkFields(
        body, {"workload", "source", "label", "opt", "target",
               "max_steps", "verify_equivalence"});
    if (!fields.isOk())
        return fields;
    Result<flow::SourceRef> source = sourceFromJson(body);
    if (!source)
        return source.status();
    Result<minic::OptLevel> opt = optFromJson(body);
    if (!opt)
        return opt.status();
    flow::RetargetRequest request;
    Result<uint64_t> maxSteps = countField(
        body, "max_steps", request.maxSteps, uint64_t{1} << 53);
    if (!maxSteps)
        return maxSteps.status();
    Result<bool> verify = boolField(body, "verify_equivalence",
                                    request.verifyEquivalence);
    if (!verify)
        return verify.status();
    Result<std::optional<InstrSubset>> target =
        subsetField(body, "target");
    if (!target)
        return target.status();
    request.source = source.take();
    request.opt = opt.value();
    request.maxSteps = maxSteps.value();
    request.verifyEquivalence = verify.value();
    request.target = target.take();
    return flow::Request(std::move(request));
}

Result<flow::Request>
exploreFromJson(const JsonValue &body)
{
    Status fields = checkFields(body, {"plan", "threads"});
    if (!fields.isOk())
        return fields;
    const JsonValue *plan = body.find("plan");
    if (!plan)
        return Status::error(ErrorCode::InvalidArgument,
                             "missing 'plan'");
    if (!plan->isString())
        return wrongKind("plan", *plan, "string");
    Result<uint64_t> threads =
        countField(body, "threads", 0, 4096);
    if (!threads)
        return threads.status();
    flow::ExploreRequest request;
    request.planText = plan->asString();
    request.options.threads =
        static_cast<unsigned>(threads.value());
    return flow::Request(std::move(request));
}

} // namespace

const char *
verbName(Verb verb)
{
    switch (verb) {
      case Verb::Characterize: return "characterize";
      case Verb::Run: return "run";
      case Verb::Synth: return "synth";
      case Verb::Retarget: return "retarget";
      case Verb::Explore: return "explore";
    }
    return "unknown";
}

Result<Verb>
verbFromName(const std::string &name)
{
    for (size_t i = 0; i < kVerbCount; ++i) {
        const Verb verb = static_cast<Verb>(i);
        if (name == verbName(verb))
            return verb;
    }
    return Status::errorf(ErrorCode::InvalidArgument,
                          "unknown verb '%s' (characterize, run, "
                          "synth, retarget, explore)",
                          name.c_str());
}

Verb
verbOf(const flow::Request &request)
{
    struct Visitor
    {
        Verb operator()(const flow::CharacterizeRequest &) const
        {
            return Verb::Characterize;
        }
        Verb operator()(const flow::RunRequest &) const
        {
            return Verb::Run;
        }
        Verb operator()(const flow::SynthRequest &) const
        {
            return Verb::Synth;
        }
        Verb operator()(const flow::RetargetRequest &) const
        {
            return Verb::Retarget;
        }
        Verb operator()(const flow::ExploreRequest &) const
        {
            return Verb::Explore;
        }
    };
    return std::visit(Visitor{}, request);
}

Result<flow::Request>
requestFromJson(Verb verb, const JsonValue &body)
{
    if (!body.isObject())
        return Status::errorf(ErrorCode::InvalidArgument,
                              "request body must be a JSON object, "
                              "not a %s",
                              JsonValue::kindName(body.kind()));
    switch (verb) {
      case Verb::Characterize: return characterizeFromJson(body);
      case Verb::Run: return runFromJson(body);
      case Verb::Synth: return synthFromJson(body);
      case Verb::Retarget: return retargetFromJson(body);
      case Verb::Explore: return exploreFromJson(body);
    }
    return Status::error(ErrorCode::Internal, "impossible verb");
}

Result<flow::Request>
requestFromBody(Verb verb, const std::string &body)
{
    Result<JsonValue> parsed = parseJson(body);
    if (!parsed)
        return parsed.status();
    return requestFromJson(verb, parsed.value());
}

int
httpStatusFor(const Status &status)
{
    switch (status.code()) {
      case ErrorCode::Ok: return 200;
      case ErrorCode::InvalidArgument:
      case ErrorCode::ParseError:
      case ErrorCode::CompileError:
      case ErrorCode::AsmError: return 400;
      case ErrorCode::NotFound: return 404;
      case ErrorCode::Trap:
      case ErrorCode::StepLimit:
      case ErrorCode::CosimMismatch:
      case ErrorCode::RetargetError:
      case ErrorCode::SynthError: return 422;
      case ErrorCode::Unavailable: return 429;
      case ErrorCode::Internal: return 500;
    }
    return 500;
}

} // namespace rissp::net
