/**
 * @file
 * The connection reactor — a single-threaded, readiness-driven event
 * loop that owns every client socket of the serve daemon.
 *
 * PR 6's server pinned one FlowService scheduler worker per
 * keep-alive connection for the life of the session, so N mostly-idle
 * clients consumed N compute threads (ROADMAP item 1's named
 * follow-up). The reactor decouples them: all connection fds are
 * nonblocking and multiplexed by one thread over a readiness poller
 * (`epoll` on Linux, `poll(2)` elsewhere — same interface, selected
 * at runtime), and the scheduler's workers only ever see *complete*
 * requests. A thousand parked keep-alive connections cost a thousand
 * fds and their buffers, not a thousand threads.
 *
 * Each connection is an explicit state machine:
 *
 *     ReadingHead → ReadingBody → Dispatched → Writing → Idle
 *          ↑                                               │
 *          └────────────── next request ────────────────────┘
 *
 *  - **ReadingHead / ReadingBody** accumulate bytes incrementally
 *    through the pure `util/http.*` framing; a dribbled byte costs
 *    one loop turn, never a blocked thread (slow-loris immunity).
 *  - **Dispatched** marks a complete request handed to the handler,
 *    which chose to answer later: the connection parks with poller
 *    interest off until `complete()` posts the response bytes back
 *    through the wake pipe. Dispatched connections are never reaped
 *    or destroyed — `complete()` always finds its target.
 *  - **Writing** flushes the response; a short write arms write
 *    readiness and yields (`EPOLLOUT`-driven backpressure), so one
 *    slow reader of a multi-MB explore table stalls only itself.
 *  - **Idle** waits for the next request under the idle timer; the
 *    timer heap reaps connections idle past the configured timeout.
 *  - **Lingering** (shed/framing-error exits): the response is
 *    flushed, the write side shut down, and input is drained and
 *    discarded until EOF or a short deadline — so a rejected client
 *    that already sent its request bytes reads the structured 429
 *    instead of an RST clobbering its receive buffer (the PR 6
 *    gotcha).
 *
 * Admission is bounded at accept: over `maxConnections`, the
 * pre-built shed response is written through the lingering-close
 * discipline. Graceful drain (`requestStop()`, async-signal-safe)
 * closes the listener and every idle connection immediately, lets
 * mid-request and dispatched connections finish their current
 * request, and returns from `run()` once the table is empty.
 *
 * The reactor knows framing and readiness, nothing else: routing,
 * response bodies and scheduling live in the handler callbacks
 * (net/server.cc). Everything here except `complete()`, `stats()`
 * and `requestStop()` runs on the single reactor thread.
 */

#ifndef RISSP_NET_REACTOR_HH
#define RISSP_NET_REACTOR_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/http.hh"
#include "util/mutex.hh"
#include "util/status.hh"

namespace rissp::net
{

/**
 * Readiness multiplexer behind one interface: `epoll` on Linux,
 * portable `poll(2)` elsewhere (and on demand, for test coverage of
 * the fallback). Level-triggered semantics in both backends: an fd
 * with unconsumed readiness reports again on the next wait.
 */
class Poller
{
  public:
    struct Event
    {
        int fd = -1;
        bool readable = false; ///< data, EOF or error to read out
        bool writable = false;
    };

    virtual ~Poller() = default;

    /** Register @p fd with the given interest set. */
    virtual Status add(int fd, bool want_read, bool want_write) = 0;

    /** Change the interest set of a registered fd. */
    virtual Status modify(int fd, bool want_read,
                          bool want_write) = 0;

    /** Deregister; must precede close(fd). */
    virtual void remove(int fd) = 0;

    /** Block up to @p timeout_ms (-1 = forever) and append ready
     *  events to @p events (cleared first). EINTR comes back as ok
     *  with no events. */
    virtual Status wait(int timeout_ms,
                        std::vector<Event> &events) = 0;

    /** The backend's name, for logs and tests. */
    virtual const char *name() const = 0;

    /** @p use_poll forces the portable backend; otherwise epoll is
     *  picked where available. */
    static std::unique_ptr<Poller> create(bool use_poll);
};

struct ReactorOptions
{
    size_t maxConnections = 1024; ///< open-connection cap (shed over)
    size_t maxBodyBytes = 4u << 20; ///< request bodies over this: 413
    int idleTimeoutMs = 60'000; ///< reap idle keep-alives; 0 = never
    /** SO_SNDBUF for accepted sockets (0 = kernel default). Bounds
     *  per-connection kernel memory when thousands are open; small
     *  values exercise the partial-write path deterministically. */
    int sendBufferBytes = 0;
    bool usePollBackend = false; ///< force the poll(2) fallback
    /** Pre-built HTTP bytes written (with lingering close) to
     *  connections shed over maxConnections. */
    std::string shedResponse;
};

/** One consistent snapshot of the reactor counters and gauges. */
struct ReactorStats
{
    uint64_t accepted = 0;      ///< connections admitted
    uint64_t shed = 0;          ///< refused over maxConnections
    uint64_t idleReaped = 0;    ///< idle keep-alives timed out
    uint64_t timedOut = 0;      ///< mid-request/write stalls reaped
    uint64_t partialWrites = 0; ///< responses that armed EPOLLOUT
    size_t open = 0;            ///< connections in the table
    size_t reading = 0;         ///< ReadingHead + ReadingBody
    size_t dispatched = 0;      ///< parked awaiting a completion
    size_t writing = 0;
    size_t idle = 0;
    size_t lingering = 0;
};

/** The event loop. Constructed around a listening socket (ownership
 *  transfers; the reactor closes it at drain) and two callbacks. */
class Reactor
{
  public:
    /** Stable identity of one connection across its whole life —
     *  tokens are never reused, unlike fds, so a completion can
     *  never alias a newer connection. */
    using ConnToken = uint64_t;

    /** What the request handler decided. */
    struct RequestAction
    {
        /** True: the response arrives later via `complete()`; the
         *  connection parks in Dispatched. */
        bool dispatch = false;
        /** Full HTTP response bytes, when not dispatching. */
        std::string response;
        bool keepAlive = false;
        /** Deliver through lingering close (drain + discard input
         *  first) — for rejections that race the client's own
         *  pipelined bytes. Implies the connection closes. */
        bool linger = false;

        static RequestAction
        dispatched()
        {
            RequestAction action;
            action.dispatch = true;
            return action;
        }

        static RequestAction
        respond(std::string bytes, bool keep_alive,
                bool linger_close = false)
        {
            RequestAction action;
            action.response = std::move(bytes);
            action.keepAlive = keep_alive && !linger_close;
            action.linger = linger_close;
            return action;
        }
    };

    /** Route one *complete* request. Runs on the reactor thread, so
     *  it must not block — heavy work is dispatched. @p body is the
     *  exact Content-Length bytes. */
    using RequestHandler = std::function<RequestAction(
        ConnToken, const http::RequestHead &, std::string)>;

    /** Build a full HTTP response for a framing-level error (bad
     *  head, oversized body, ...) — keeps response bodies out of the
     *  reactor. Runs on the reactor thread. */
    using ErrorResponder =
        std::function<std::string(int http_status, Status reason,
                                  bool keep_alive)>;

    Reactor(int listen_fd, RequestHandler handler,
            ErrorResponder error_responder, ReactorOptions options);

    /** run() must have returned (or never started). */
    ~Reactor();

    Reactor(const Reactor &) = delete;
    Reactor &operator=(const Reactor &) = delete;

    /** Create the poller and wake pipe and register the listener.
     *  Must succeed before run(). */
    Status init();

    /** The event loop: blocks until a requested stop has fully
     *  drained (every connection finished and closed). */
    void run();

    /** Begin graceful drain. Async-signal-safe — one atomic store
     *  and one write(2) on the pre-opened wake pipe — and
     *  idempotent. */
    void requestStop();

    /** Hand a response back to a Dispatched connection. Callable
     *  from any thread; wakes the loop via the pipe. */
    void complete(ConnToken token, std::string response_bytes,
                  bool keep_alive);

    /** Callable from any thread. */
    ReactorStats stats() const;

    /** The active backend's name ("epoll" / "poll"); valid after
     *  init(). */
    const char *backendName() const;

  private:
    struct Connection
    {
        enum class State
        {
            ReadingHead,
            ReadingBody,
            Dispatched,
            Writing,
            Idle,
            Lingering,
        };
        static constexpr size_t kStateCount = 6;

        int fd = -1;
        ConnToken token = 0;
        State state = State::ReadingHead;
        std::string in;  ///< received, not yet consumed
        std::string out; ///< response bytes not yet flushed
        size_t outOff = 0;
        size_t headEnd = 0; ///< set once the head parsed
        http::RequestHead head;
        size_t bodyLen = 0;
        bool keepAliveAfterWrite = false;
        /** Read-and-drop mode: shed / framing-error exits that
         *  linger-close instead of racing an RST. */
        bool discardInput = false;
        /** EOF seen while a response is still owed (Dispatched /
         *  Writing); close once it has been delivered or abandoned. */
        bool peerClosed = false;
        bool wantRead = true;    ///< current poller interest
        bool wantWrite = false;
        /** Monotonic-ms reap deadline; 0 = no timer (Dispatched). */
        int64_t deadline = 0;
    };

    struct TimerEntry
    {
        int64_t deadline;
        ConnToken token;
    };
    struct TimerLater
    {
        bool
        operator()(const TimerEntry &a, const TimerEntry &b) const
        {
            return a.deadline > b.deadline;
        }
    };

    struct Completion
    {
        ConnToken token;
        std::string bytes;
        bool keepAlive;
    };

    static int64_t nowMs();

    Connection *get(ConnToken token);
    void setState(Connection &conn, Connection::State next);
    void armTimer(Connection &conn, int64_t deadline);
    void refreshIdleTimer(Connection &conn);
    void updateInterest(Connection &conn);
    void closeConnection(Connection &conn);

    void acceptReady();
    void shedConnection(int fd);
    void onReadable(ConnToken token);
    void onWritable(ConnToken token);
    void advance(ConnToken token);
    void queueResponse(Connection &conn, std::string bytes,
                       bool keep_alive);
    void flushOutput(Connection &conn);
    void finishResponse(Connection &conn);
    void failRequest(Connection &conn, int http_status,
                     Status reason);

    void beginDrain();
    void processCompletions();
    void expireTimers();
    int pollTimeoutMs() const;

    const ReactorOptions options;
    const RequestHandler handler;
    const ErrorResponder errorResponder;

    int listenFd;
    int wakeReadFd = -1;
    int wakeWriteFd = -1;
    std::unique_ptr<Poller> poller;

    std::unordered_map<ConnToken, std::unique_ptr<Connection>>
        connections;
    std::unordered_map<int, ConnToken> byFd;
    ConnToken nextToken = 1;
    std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                        TimerLater>
        timers;
    bool draining = false; ///< reactor thread only

    std::atomic<bool> stopRequested{false};

    Mutex completionMu;
    std::vector<Completion> completions
        RISSP_GUARDED_BY(completionMu);

    // Gauges have a single writer (the reactor thread); atomics make
    // the cross-thread stats() snapshot well-defined.
    std::atomic<uint64_t> statAccepted{0};
    std::atomic<uint64_t> statShed{0};
    std::atomic<uint64_t> statIdleReaped{0};
    std::atomic<uint64_t> statTimedOut{0};
    std::atomic<uint64_t> statPartialWrites{0};
    std::atomic<size_t> statOpen{0};
    std::atomic<size_t> stateGauge[Connection::kStateCount] = {};
};

} // namespace rissp::net

#endif // RISSP_NET_REACTOR_HH
