/**
 * @file
 * Reactor implementation. The only file in src/net/ allowed to make
 * raw socket IO calls (`recv`/`send`/`accept` — enforced by the
 * `blocking-socket-io` lint check): every such call here is on a
 * nonblocking fd inside the readiness loop, so "blocking call" and
 * "reactor-owned call" are the same boundary.
 */

#include "net/reactor.hh"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <chrono>

#include "util/strings.hh"

namespace rissp::net
{

namespace
{

/** Lingering-close grace: how long a shed/errored connection may
 *  take to read its rejection before the fd is reclaimed. */
constexpr int64_t kLingerTimeoutMs = 1'000;

/** Lingering connections are a courtesy, not a commitment: over this
 *  many, further sheds close immediately. */
constexpr size_t kMaxLingering = 128;

/** Drain bound for stalled non-dispatched connections when the idle
 *  timeout is disabled — a drain must always terminate. */
constexpr int64_t kDrainGraceMs = 10'000;

/** Per-readiness-event read budget: level-triggered polling re-fires
 *  for the remainder, so capping keeps one firehose connection from
 *  starving the rest of the loop. */
constexpr int kMaxReadsPerEvent = 16;

bool
setNonblocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

#ifdef __linux__

class EpollPoller final : public Poller
{
  public:
    explicit EpollPoller(int epfd) : epfd(epfd) {}
    ~EpollPoller() override { ::close(epfd); }

    static std::unique_ptr<Poller>
    open()
    {
        const int fd = ::epoll_create1(EPOLL_CLOEXEC);
        if (fd < 0)
            return nullptr;
        return std::make_unique<EpollPoller>(fd);
    }

    Status
    add(int fd, bool want_read, bool want_write) override
    {
        return control(EPOLL_CTL_ADD, fd, want_read, want_write);
    }

    Status
    modify(int fd, bool want_read, bool want_write) override
    {
        return control(EPOLL_CTL_MOD, fd, want_read, want_write);
    }

    void
    remove(int fd) override
    {
        ::epoll_ctl(epfd, EPOLL_CTL_DEL, fd, nullptr);
    }

    Status
    wait(int timeout_ms, std::vector<Event> &events) override
    {
        events.clear();
        epoll_event ready[256];
        const int n = ::epoll_wait(epfd, ready, 256, timeout_ms);
        if (n < 0) {
            if (errno == EINTR)
                return Status::ok();
            return Status::errorf(ErrorCode::Internal,
                                  "epoll_wait: %s",
                                  errnoString(errno).c_str());
        }
        events.reserve(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
            Event event;
            event.fd = ready[i].data.fd;
            // HUP/ERR surface as readable so the next recv observes
            // the EOF or the pending socket error.
            event.readable = (ready[i].events &
                              (EPOLLIN | EPOLLRDHUP | EPOLLHUP |
                               EPOLLERR)) != 0;
            event.writable = (ready[i].events & EPOLLOUT) != 0;
            events.push_back(event);
        }
        return Status::ok();
    }

    const char *name() const override { return "epoll"; }

  private:
    Status
    control(int op, int fd, bool want_read, bool want_write)
    {
        epoll_event event{};
        event.data.fd = fd;
        if (want_read)
            event.events |= EPOLLIN | EPOLLRDHUP;
        if (want_write)
            event.events |= EPOLLOUT;
        if (::epoll_ctl(epfd, op, fd, &event) != 0)
            return Status::errorf(ErrorCode::Internal,
                                  "epoll_ctl(fd=%d): %s", fd,
                                  errnoString(errno).c_str());
        return Status::ok();
    }

    int epfd;
};

#endif // __linux__

/** Portable fallback: one pollfd array, fd → slot index map,
 *  swap-pop removal. O(n) per wait — fine for the connection counts
 *  a non-epoll host sees, and it keeps the reactor semantics
 *  testable everywhere. */
class PollPoller final : public Poller
{
  public:
    Status
    add(int fd, bool want_read, bool want_write) override
    {
        if (slots.count(fd))
            return Status::errorf(ErrorCode::Internal,
                                  "poll: fd %d already registered",
                                  fd);
        slots[fd] = fds.size();
        fds.push_back({fd, events(want_read, want_write), 0});
        return Status::ok();
    }

    Status
    modify(int fd, bool want_read, bool want_write) override
    {
        const auto it = slots.find(fd);
        if (it == slots.end())
            return Status::errorf(ErrorCode::Internal,
                                  "poll: fd %d not registered", fd);
        fds[it->second].events = events(want_read, want_write);
        return Status::ok();
    }

    void
    remove(int fd) override
    {
        const auto it = slots.find(fd);
        if (it == slots.end())
            return;
        const size_t slot = it->second;
        slots.erase(it);
        if (slot + 1 != fds.size()) {
            fds[slot] = fds.back();
            slots[fds[slot].fd] = slot;
        }
        fds.pop_back();
    }

    Status
    wait(int timeout_ms, std::vector<Event> &events) override
    {
        events.clear();
        const int n =
            ::poll(fds.data(), fds.size(), timeout_ms);
        if (n < 0) {
            if (errno == EINTR)
                return Status::ok();
            return Status::errorf(ErrorCode::Internal, "poll: %s",
                                  errnoString(errno).c_str());
        }
        for (const pollfd &p : fds) {
            if (p.revents == 0)
                continue;
            Event event;
            event.fd = p.fd;
            event.readable = (p.revents &
                              (POLLIN | POLLHUP | POLLERR |
                               POLLNVAL)) != 0;
            event.writable = (p.revents & POLLOUT) != 0;
            events.push_back(event);
            if (events.size() == static_cast<size_t>(n))
                break;
        }
        return Status::ok();
    }

    const char *name() const override { return "poll"; }

  private:
    static short
    events(bool want_read, bool want_write)
    {
        short mask = 0;
        if (want_read)
            mask |= POLLIN;
        if (want_write)
            mask |= POLLOUT;
        return mask;
    }

    std::vector<pollfd> fds;
    std::unordered_map<int, size_t> slots;
};

} // namespace

std::unique_ptr<Poller>
Poller::create(bool use_poll)
{
#ifdef __linux__
    if (!use_poll) {
        std::unique_ptr<Poller> poller = EpollPoller::open();
        if (poller)
            return poller;
        // epoll_create1 failing (fd exhaustion, odd sandbox) falls
        // back to poll rather than refusing to serve.
    }
#else
    (void)use_poll;
#endif
    return std::make_unique<PollPoller>();
}

Reactor::Reactor(int listen_fd, RequestHandler handler,
                 ErrorResponder error_responder,
                 ReactorOptions options)
    : options(std::move(options)), handler(std::move(handler)),
      errorResponder(std::move(error_responder)),
      listenFd(listen_fd)
{
}

Reactor::~Reactor()
{
    for (auto &[token, conn] : connections)
        closeFd(conn->fd);
    connections.clear();
    byFd.clear();
    closeFd(listenFd);
    closeFd(wakeReadFd);
    closeFd(wakeWriteFd);
}

Status
Reactor::init()
{
    int pipeFds[2];
    if (::pipe(pipeFds) != 0)
        return Status::errorf(ErrorCode::Internal, "pipe: %s",
                              errnoString(errno).c_str());
    wakeReadFd = pipeFds[0];
    wakeWriteFd = pipeFds[1];
    if (!setNonblocking(wakeReadFd) ||
        !setNonblocking(wakeWriteFd) ||
        !setNonblocking(listenFd)) {
        return Status::errorf(ErrorCode::Internal, "fcntl: %s",
                              errnoString(errno).c_str());
    }

    poller = Poller::create(options.usePollBackend);
    Status status = poller->add(listenFd, true, false);
    if (status.isOk())
        status = poller->add(wakeReadFd, true, false);
    return status;
}

const char *
Reactor::backendName() const
{
    return poller ? poller->name() : "unstarted";
}

void
Reactor::requestStop()
{
    // Async-signal-safe on purpose: one atomic store and one
    // write(2) on a fd opened before the loop started. No locks, no
    // allocation. A full pipe is fine — a wake byte is already
    // pending, which is all the write was for.
    stopRequested.store(true, std::memory_order_release);
    if (wakeWriteFd >= 0) {
        const char byte = 1;
        [[maybe_unused]] ssize_t n =
            ::write(wakeWriteFd, &byte, 1);
    }
}

void
Reactor::complete(ConnToken token, std::string response_bytes,
                  bool keep_alive)
{
    // The wake write happens under the same lock as the queue push:
    // the loop can only exit after processing this completion (the
    // connection stays Dispatched until then), so the fd is
    // guaranteed alive while any completer is inside this section.
    LockGuard lock(completionMu);
    completions.push_back(
        {token, std::move(response_bytes), keep_alive});
    if (wakeWriteFd >= 0) {
        const char byte = 1;
        [[maybe_unused]] ssize_t n =
            ::write(wakeWriteFd, &byte, 1);
    }
}

ReactorStats
Reactor::stats() const
{
    const auto gauge = [this](Connection::State state) {
        return stateGauge[static_cast<size_t>(state)].load(
            std::memory_order_relaxed);
    };
    ReactorStats stats;
    stats.accepted = statAccepted.load(std::memory_order_relaxed);
    stats.shed = statShed.load(std::memory_order_relaxed);
    stats.idleReaped =
        statIdleReaped.load(std::memory_order_relaxed);
    stats.timedOut = statTimedOut.load(std::memory_order_relaxed);
    stats.partialWrites =
        statPartialWrites.load(std::memory_order_relaxed);
    stats.open = statOpen.load(std::memory_order_relaxed);
    stats.reading = gauge(Connection::State::ReadingHead) +
        gauge(Connection::State::ReadingBody);
    stats.dispatched = gauge(Connection::State::Dispatched);
    stats.writing = gauge(Connection::State::Writing);
    stats.idle = gauge(Connection::State::Idle);
    stats.lingering = gauge(Connection::State::Lingering);
    return stats;
}

int64_t
Reactor::nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

Reactor::Connection *
Reactor::get(ConnToken token)
{
    const auto it = connections.find(token);
    return it == connections.end() ? nullptr : it->second.get();
}

void
Reactor::setState(Connection &conn, Connection::State next)
{
    stateGauge[static_cast<size_t>(conn.state)].fetch_sub(
        1, std::memory_order_relaxed);
    conn.state = next;
    stateGauge[static_cast<size_t>(next)].fetch_add(
        1, std::memory_order_relaxed);
}

void
Reactor::armTimer(Connection &conn, int64_t deadline)
{
    conn.deadline = deadline;
    if (deadline != 0)
        timers.push({deadline, conn.token});
}

void
Reactor::refreshIdleTimer(Connection &conn)
{
    if (options.idleTimeoutMs > 0)
        armTimer(conn, nowMs() + options.idleTimeoutMs);
    else if (draining)
        armTimer(conn, nowMs() + kDrainGraceMs);
    else
        conn.deadline = 0;
}

void
Reactor::updateInterest(Connection &conn)
{
    bool read = true;
    switch (conn.state) {
      case Connection::State::Dispatched:
        read = false;
        break;
      case Connection::State::Writing:
        // No new bytes are consumed while a response flushes — the
        // peer's pipelined follow-up waits in its socket buffer
        // (and TCP backpressure does the rest), so a client cannot
        // grow our input buffer unboundedly. Discard-mode (shed)
        // connections keep reading: dropping the rejected request's
        // bytes is the whole point.
        read = conn.discardInput;
        break;
      default:
        break;
    }
    // Write interest tracks an *unflushable* buffer, armed by
    // flushOutput on EAGAIN, not by state: most responses flush in
    // one call and never touch the poller.
    const bool write =
        conn.state == Connection::State::Writing && conn.wantWrite;
    if (read != conn.wantRead || write != conn.wantWrite) {
        conn.wantRead = read;
        poller->modify(conn.fd, read, write);
    }
}

void
Reactor::closeConnection(Connection &conn)
{
    poller->remove(conn.fd);
    ::close(conn.fd);
    byFd.erase(conn.fd);
    stateGauge[static_cast<size_t>(conn.state)].fetch_sub(
        1, std::memory_order_relaxed);
    statOpen.fetch_sub(1, std::memory_order_relaxed);
    connections.erase(conn.token); // invalidates conn
}

void
Reactor::run()
{
    std::vector<Poller::Event> events;
    while (!(draining && connections.empty())) {
        const Status polled = poller->wait(pollTimeoutMs(), events);
        if (!polled)
            break; // unusable poller; fall out and close everything

        bool wake = false;
        bool acceptable = false;
        for (const Poller::Event &event : events) {
            if (event.fd == wakeReadFd) {
                wake = true;
                continue;
            }
            if (event.fd == listenFd) {
                acceptable = true;
                continue;
            }
            const auto it = byFd.find(event.fd);
            if (it == byFd.end())
                continue; // closed earlier in this batch
            const ConnToken token = it->second;
            if (event.writable)
                onWritable(token);
            // onWritable may have closed it; re-check.
            if (event.readable && get(token) != nullptr)
                onReadable(token);
        }

        // Accepts and completions run after the event batch so no
        // fd closed above can be reused inside the same batch (a
        // stale event would alias the newcomer).
        if (acceptable && !draining)
            acceptReady();
        if (wake) {
            char buf[256];
            while (::read(wakeReadFd, buf, sizeof buf) > 0) {
            }
            processCompletions();
            if (stopRequested.load(std::memory_order_acquire) &&
                !draining)
                beginDrain();
        }
        expireTimers();
    }

    // Normal exit has an empty table; the fatal-poller path closes
    // whatever is left so fds never leak.
    while (!connections.empty())
        closeConnection(*connections.begin()->second);
    draining = true;
    closeFd(listenFd);
}

int
Reactor::pollTimeoutMs() const
{
    if (timers.empty())
        return -1;
    const int64_t delta = timers.top().deadline - nowMs();
    if (delta <= 0)
        return 0;
    return static_cast<int>(std::min<int64_t>(delta, 60'000));
}

void
Reactor::acceptReady()
{
    for (;;) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            break; // EAGAIN (drained) or a real error: next wait
        }
        if (!setNonblocking(fd)) {
            ::close(fd);
            continue;
        }
        if (options.sendBufferBytes > 0) {
            const int bytes = options.sendBufferBytes;
            ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes,
                         sizeof bytes);
        }

        const size_t lingering =
            stateGauge[static_cast<size_t>(
                           Connection::State::Lingering)]
                .load(std::memory_order_relaxed);
        if (connections.size() - lingering >=
            options.maxConnections) {
            shedConnection(fd);
            continue;
        }

        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        conn->token = nextToken++;
        Connection &ref = *conn;
        connections.emplace(ref.token, std::move(conn));
        byFd[fd] = ref.token;
        stateGauge[static_cast<size_t>(
                       Connection::State::ReadingHead)]
            .fetch_add(1, std::memory_order_relaxed);
        statOpen.fetch_add(1, std::memory_order_relaxed);
        statAccepted.fetch_add(1, std::memory_order_relaxed);
        if (!poller->add(fd, true, false).isOk()) {
            closeConnection(ref);
            continue;
        }
        refreshIdleTimer(ref);
    }
}

void
Reactor::shedConnection(int fd)
{
    statShed.fetch_add(1, std::memory_order_relaxed);
    const size_t lingering =
        stateGauge[static_cast<size_t>(
                       Connection::State::Lingering)]
            .load(std::memory_order_relaxed);
    if (options.shedResponse.empty() ||
        lingering >= kMaxLingering) {
        // Beyond the politeness budget the fd is simply reclaimed;
        // an abusive burst cannot park unbounded lingering state.
        ::close(fd);
        return;
    }

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->token = nextToken++;
    conn->discardInput = true;
    Connection &ref = *conn;
    connections.emplace(ref.token, std::move(conn));
    byFd[fd] = ref.token;
    stateGauge[static_cast<size_t>(Connection::State::ReadingHead)]
        .fetch_add(1, std::memory_order_relaxed);
    statOpen.fetch_add(1, std::memory_order_relaxed);
    if (!poller->add(fd, true, false).isOk()) {
        closeConnection(ref);
        return;
    }

    // The client may already have sent its request (the PR 6 RST
    // gotcha): drain whatever has arrived before answering, then
    // deliver the 429 through the lingering-close discipline.
    char buf[16384];
    for (;;) {
        const ssize_t n = ::recv(ref.fd, buf, sizeof buf, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
    }
    queueResponse(ref, options.shedResponse, false);
}

void
Reactor::onReadable(ConnToken token)
{
    Connection *conn = get(token);
    if (conn == nullptr)
        return;
    bool sawEof = false;
    bool progressed = false;
    char buf[16384];
    for (int round = 0; round < kMaxReadsPerEvent; ++round) {
        const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 &&
            (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n <= 0) {
            sawEof = true; // orderly EOF or a dead socket
            break;
        }
        progressed = true;
        if (!conn->discardInput)
            conn->in.append(buf, static_cast<size_t>(n));
    }

    if (sawEof) {
        switch (conn->state) {
          case Connection::State::Dispatched:
          case Connection::State::Writing:
            // A response is still owed (half-close: the peer may
            // well be reading it); deliver first, close after.
            conn->peerClosed = true;
            return;
          default:
            // Idle/mid-request EOF: nobody left to answer.
            closeConnection(*conn);
            return;
        }
    }
    if (!progressed)
        return;
    switch (conn->state) {
      case Connection::State::ReadingHead:
      case Connection::State::ReadingBody:
      case Connection::State::Idle:
        refreshIdleTimer(*conn);
        advance(token);
        break;
      default:
        break; // Writing/Lingering/Dispatched: bytes held or dropped
    }
}

void
Reactor::advance(ConnToken token)
{
    for (;;) {
        Connection *conn = get(token);
        if (conn == nullptr)
            return;

        if (conn->state == Connection::State::Idle) {
            if (conn->in.empty())
                return;
            setState(*conn, Connection::State::ReadingHead);
        }

        if (conn->state == Connection::State::ReadingHead) {
            const size_t end = http::findHeadEnd(conn->in);
            if (end == std::string::npos) {
                if (conn->in.size() > http::kMaxHeadBytes)
                    failRequest(
                        *conn, 400,
                        Status::error(ErrorCode::InvalidArgument,
                                      "request head too large"));
                return;
            }
            Result<http::RequestHead> head =
                http::parseRequestHead(conn->in.substr(0, end));
            if (!head) {
                failRequest(*conn, 400, head.status());
                return;
            }
            conn->head = head.take();
            Result<size_t> bodyLen = conn->head.contentLength();
            if (!bodyLen) {
                failRequest(*conn, 400, bodyLen.status());
                return;
            }
            if (bodyLen.value() > options.maxBodyBytes) {
                failRequest(
                    *conn, 413,
                    Status::errorf(
                        ErrorCode::InvalidArgument,
                        "request body of %zu bytes exceeds the "
                        "%zu-byte limit",
                        bodyLen.value(), options.maxBodyBytes));
                return;
            }
            conn->headEnd = end;
            conn->bodyLen = bodyLen.value();
            setState(*conn, Connection::State::ReadingBody);
        }

        if (conn->state != Connection::State::ReadingBody)
            return;
        if (conn->in.size() < conn->headEnd + conn->bodyLen)
            return; // need more bytes

        std::string body =
            conn->in.substr(conn->headEnd, conn->bodyLen);
        conn->in.erase(0, conn->headEnd + conn->bodyLen);
        conn->headEnd = 0;
        conn->bodyLen = 0;

        RequestAction action =
            handler(conn->token, conn->head, std::move(body));
        if (action.dispatch) {
            setState(*conn, Connection::State::Dispatched);
            conn->deadline = 0; // in-flight work is never reaped
            updateInterest(*conn);
            return;
        }
        conn->discardInput |= action.linger;
        queueResponse(*conn, std::move(action.response),
                      action.keepAlive);
        // Fully flushed and kept alive → Idle: loop once more for
        // any pipelined request already buffered. Anything else
        // (mid-flush, lingering, closed) leaves via the poller.
        conn = get(token);
        if (conn == nullptr ||
            conn->state != Connection::State::Idle)
            return;
    }
}

void
Reactor::failRequest(Connection &conn, int http_status,
                     Status reason)
{
    // Framing errors end the connection, but through the lingering
    // discipline: the peer may still be pushing the bytes we just
    // rejected (oversized body, garbled head), and a close with
    // unread input would RST the error response out from under it.
    conn.discardInput = true;
    conn.in.clear();
    queueResponse(
        conn, errorResponder(http_status, std::move(reason), false),
        false);
}

void
Reactor::queueResponse(Connection &conn, std::string bytes,
                       bool keep_alive)
{
    conn.out = std::move(bytes);
    conn.outOff = 0;
    conn.keepAliveAfterWrite = keep_alive;
    setState(conn, Connection::State::Writing);
    updateInterest(conn);
    flushOutput(conn); // most responses complete right here
}

void
Reactor::flushOutput(Connection &conn)
{
    while (conn.outOff < conn.out.size()) {
        const ssize_t n =
            ::send(conn.fd, conn.out.data() + conn.outOff,
                   conn.out.size() - conn.outOff, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Backpressure: the peer reads slower than we produce.
            // Arm write readiness and yield the loop to everyone
            // else; EPOLLOUT resumes this flush where it stopped.
            if (!conn.wantWrite) {
                conn.wantWrite = true;
                statPartialWrites.fetch_add(
                    1, std::memory_order_relaxed);
                poller->modify(conn.fd, conn.wantRead, true);
            }
            if (conn.deadline == 0)
                refreshIdleTimer(conn); // bound a stalled reader
            return;
        }
        if (n <= 0) {
            closeConnection(conn); // peer gone; response abandoned
            return;
        }
        conn.outOff += static_cast<size_t>(n);
    }
    finishResponse(conn);
}

void
Reactor::finishResponse(Connection &conn)
{
    conn.out.clear();
    conn.outOff = 0;
    conn.wantWrite = false;

    if (conn.discardInput && !conn.peerClosed) {
        // Rejection delivered; now let the peer read it: half-close
        // our side and keep draining theirs until EOF or the linger
        // deadline. Closing outright would race an RST against the
        // bytes they already sent.
        ::shutdown(conn.fd, SHUT_WR);
        conn.in.clear();
        setState(conn, Connection::State::Lingering);
        updateInterest(conn);
        armTimer(conn, nowMs() + kLingerTimeoutMs);
        return;
    }
    if (!conn.keepAliveAfterWrite || conn.peerClosed || draining) {
        closeConnection(conn);
        return;
    }
    setState(conn, Connection::State::Idle);
    updateInterest(conn);
    refreshIdleTimer(conn);
}

void
Reactor::onWritable(ConnToken token)
{
    Connection *conn = get(token);
    if (conn == nullptr ||
        conn->state != Connection::State::Writing)
        return;
    flushOutput(*conn);
    conn = get(token);
    if (conn != nullptr && conn->state == Connection::State::Idle)
        advance(token); // pipelined request buffered during Writing
}

void
Reactor::processCompletions()
{
    std::vector<Completion> batch;
    {
        LockGuard lock(completionMu);
        batch.swap(completions);
    }
    for (Completion &completion : batch) {
        Connection *conn = get(completion.token);
        if (conn == nullptr ||
            conn->state != Connection::State::Dispatched)
            continue; // can't happen: Dispatched conns are pinned
        // A peer that half-closed after sending its request is
        // still reading: deliver, then finishResponse's peerClosed
        // check closes. A truly dead peer fails the send instead.
        queueResponse(*conn, std::move(completion.bytes),
                      completion.keepAlive && !draining);
        conn = get(completion.token);
        if (conn != nullptr &&
            conn->state == Connection::State::Idle)
            advance(completion.token);
    }
}

void
Reactor::beginDrain()
{
    draining = true;
    poller->remove(listenFd);
    closeFd(listenFd); // the kernel now refuses new connections

    std::vector<ConnToken> closeNow;
    for (const auto &[token, conn] : connections) {
        switch (conn->state) {
          case Connection::State::Idle:
          case Connection::State::Lingering:
            closeNow.push_back(token);
            break;
          case Connection::State::ReadingHead:
            if (conn->in.empty())
                closeNow.push_back(token);
            break;
          default:
            // Mid-request, dispatched or flushing: the current
            // request completes; finishResponse closes after (it
            // checks `draining`).
            break;
        }
    }
    for (const ConnToken token : closeNow) {
        Connection *conn = get(token);
        if (conn != nullptr)
            closeConnection(*conn);
    }
    // A connection stalled mid-request with timers disabled would
    // hang the drain; give every survivor a terminal deadline.
    for (const auto &[token, conn] : connections) {
        if (conn->state != Connection::State::Dispatched &&
            conn->deadline == 0)
            armTimer(*conn, nowMs() + kDrainGraceMs);
    }
}

void
Reactor::expireTimers()
{
    const int64_t now = nowMs();
    while (!timers.empty() && timers.top().deadline <= now) {
        const TimerEntry entry = timers.top();
        timers.pop();
        Connection *conn = get(entry.token);
        // Lazy deletion: fire only when this entry is the
        // connection's *current* deadline (re-arming pushes a new
        // entry; stale ones fall through here).
        if (conn == nullptr || conn->deadline != entry.deadline ||
            conn->deadline == 0)
            continue;
        if (conn->state == Connection::State::Dispatched)
            continue; // in-flight work finishes at its own pace
        if (conn->state == Connection::State::Idle)
            statIdleReaped.fetch_add(1, std::memory_order_relaxed);
        else if (conn->state != Connection::State::Lingering)
            statTimedOut.fetch_add(1, std::memory_order_relaxed);
        closeConnection(*conn);
    }
}

} // namespace rissp::net
