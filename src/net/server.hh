/**
 * @file
 * `risspgen serve` — the HTTP/JSON daemon over FlowService.
 *
 * The PR 5 engine made the pipeline a reentrant request/response
 * service; this layer puts a socket in front of it. Self-contained
 * HTTP/1.1 over plain POSIX sockets (no external dependencies),
 * served by a single-threaded connection reactor (net/reactor.hh):
 * every connection fd is nonblocking and readiness-driven, so parked
 * keep-alive sessions cost file descriptors, not threads. Only a
 * *complete* request is handed to the FlowService's work-stealing
 * scheduler — the same scheduler that runs batch and async requests,
 * so server traffic shares the promise-backed in-flight dedup of the
 * stage caches (a thousand clients asking for the same synth sweep
 * compile and sweep it once) — and the response is queued back to
 * the reactor through its wake pipe. `--threads` sizes *compute*,
 * decoupled from the connection count.
 *
 * Operational semantics, in order of importance:
 *
 *  - **Admission control.** Two independent bounds. Open connections
 *    are capped by `ServeOptions::maxConnections`: over it, the
 *    reactor sheds at accept with a structured 429 (`unavailable`)
 *    delivered through a lingering close, so a client that already
 *    sent its request reads the refusal instead of an RST.
 *    Dispatched-but-unfinished requests are capped by
 *    `ServeOptions::maxQueue`: over it, API requests get the same
 *    429 — while /metrics and /healthz keep answering inline, so a
 *    saturated server is still observable.
 *  - **Graceful drain.** `requestShutdown()` (wired to SIGTERM by
 *    the CLI, and to the POST /shutdown endpoint) is
 *    async-signal-safe: the listener closes (new connections are
 *    refused by the kernel), idle keep-alive connections close
 *    immediately, every in-flight request — including one whose
 *    body is still dribbling in — runs to completion and flushes,
 *    and `waitUntilStopped()` returns.
 *  - **Observability.** GET /metrics reports the reactor's
 *    connection-state gauges (open/reading/dispatched/writing/idle),
 *    dispatch depth, admission and timeout counters, the StageCaches
 *    hit/miss counters, scheduler depth and per-verb totals.
 *
 * Endpoints (see docs/SERVE.md):
 *
 *   POST /api/v1/{characterize,run,synth,retarget,explore}
 *                       body: net/rest.hh JSON schema; response:
 *                       flow::toJson(...) verbatim — byte-identical
 *                       to `risspgen <verb> --json`
 *   GET  /metrics       counters (JSON)
 *   GET  /healthz       liveness probe
 *   POST /shutdown      begin graceful drain
 */

#ifndef RISSP_NET_SERVER_HH
#define RISSP_NET_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "flow/flow.hh"
#include "net/reactor.hh"
#include "net/rest.hh"
#include "util/http.hh"
#include "util/status.hh"

namespace rissp::net
{

struct ServeOptions
{
    /** Loopback by default: exposing the daemon beyond the host is
     *  a deployment decision, not a default. */
    std::string bindAddress = "127.0.0.1";
    uint16_t port = 0;    ///< 0 picks an ephemeral port
    /** Dispatched-but-unfinished request cap: over it, API requests
     *  shed with a structured 429 (inline endpoints still serve). */
    size_t maxQueue = 64;
    /** Open-connection cap: over it, accepts shed with a structured
     *  429 through a lingering close. */
    size_t maxConnections = 1024;
    size_t maxBodyBytes = 4u << 20; ///< request bodies over this: 413
    /** Idle keep-alive connections are reaped after this long
     *  (0 = never). Also bounds mid-request and mid-write stalls. */
    int idleTimeoutMs = 60'000;
    int backlog = 128;      ///< listen(2) backlog
    /** SO_SNDBUF for accepted sockets (0 = kernel default); bounds
     *  kernel memory under thousands of connections and makes the
     *  partial-write backpressure path deterministic in tests. */
    int sendBufferBytes = 0;
    /** Force the portable poll(2) readiness backend instead of
     *  epoll (the fallback non-Linux builds always use). */
    bool usePollBackend = false;
};

/** One consistent read of every server counter (plus the cache and
 *  scheduler counters of the FlowService behind it). */
struct MetricsSnapshot
{
    uint64_t accepted = 0;         ///< connections admitted
    uint64_t rejectedShedLoad = 0; ///< shed over maxConnections
    uint64_t rejectedQueueFull = 0; ///< API 429s over maxQueue
    uint64_t httpErrors = 0;       ///< non-2xx responses sent
    uint64_t idleReaped = 0;       ///< idle keep-alives timed out
    uint64_t timedOut = 0;         ///< mid-request stalls reaped
    uint64_t partialWrites = 0;    ///< responses that needed EPOLLOUT
    size_t activeConnections = 0;  ///< open connections (all states)
    size_t readingConnections = 0; ///< receiving head or body
    size_t dispatchDepth = 0;      ///< requests in flight on workers
    size_t writingConnections = 0;
    size_t idleConnections = 0;
    size_t lingeringConnections = 0;
    size_t queueCapacity = 0;      ///< maxQueue
    size_t connectionCapacity = 0; ///< maxConnections
    bool draining = false;
    std::string pollerBackend;     ///< "epoll" or "poll"

    uint64_t verbTotals[kVerbCount] = {}; ///< requests dispatched
    uint64_t verbErrors[kVerbCount] = {}; ///< ...with error status

    unsigned schedulerThreads = 0;
    size_t schedulerQueueDepth = 0;
    size_t schedulerInFlight = 0;
    uint64_t schedulerSubmitted = 0;
    uint64_t schedulerExecuted = 0;
    uint64_t schedulerSteals = 0;

    uint64_t compileHits = 0, compileMisses = 0;
    uint64_t simHits = 0, simMisses = 0;
    uint64_t synthHits = 0, synthMisses = 0;
    uint64_t synthReportHits = 0, synthReportMisses = 0;

    /** Persistent artifact-store counters; all zero (and
     *  `storeAttached` false) when the service runs memory-only. */
    bool storeAttached = false;
    uint64_t storeHits = 0, storeMisses = 0;
    uint64_t storeWrites = 0, storeWriteErrors = 0;
    uint64_t storeEvictions = 0, storeQuarantined = 0;
    uint64_t storeBytesRead = 0, storeBytesWritten = 0;
};

/** Render a snapshot as the GET /metrics JSON document. */
std::string toJson(const MetricsSnapshot &snapshot);

/** The daemon. One instance fronts one FlowService. */
class HttpServer
{
  public:
    /** @p service must outlive the server. The service's scheduler
     *  runs the request pipelines, so its thread count is the
     *  *compute* parallelism — connection count is bounded only by
     *  `maxConnections`. */
    explicit HttpServer(const flow::FlowService &service,
                        ServeOptions options = {});

    /** Drains (requestShutdown + waitUntilStopped) if running. */
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Bind, listen, start the reactor thread. Fails as a value on
     *  an unusable address or an occupied port. */
    Status start();

    /** The bound port (the ephemeral one when options.port was 0).
     *  Valid after start(). */
    uint16_t port() const { return boundPort; }

    /** Begin graceful drain. Async-signal-safe (one atomic store and
     *  one write(2) on the reactor's pre-opened wake pipe) so the
     *  CLI can call it from a SIGTERM handler; also idempotent. */
    void requestShutdown();

    /** Block until the drain completes: listener closed, every
     *  connection finished and flushed, every in-flight dispatch
     *  handed back. */
    void waitUntilStopped();

    bool draining() const
    {
        return drainFlag.load(std::memory_order_acquire);
    }

    MetricsSnapshot metrics() const;

  private:
    /** Route one complete request (reactor thread; must not
     *  block — API verbs are dispatched to the scheduler). */
    Reactor::RequestAction onRequest(Reactor::ConnToken token,
                                     const http::RequestHead &head,
                                     std::string body);
    /** Submit the verb pipeline; the completion hands the response
     *  bytes back to the reactor from a scheduler worker. */
    void dispatchRequest(Reactor::ConnToken token, Verb verb,
                         std::string body, bool keep_alive);
    std::string errorResponse(int http_status, Status status,
                              bool keep_alive);
    void noteResponse(int http_status);

    const flow::FlowService &service;
    ServeOptions options;

    std::unique_ptr<Reactor> reactor;
    std::thread reactorThread;
    uint16_t boundPort = 0;
    bool started = false;

    std::atomic<bool> drainFlag{false};
    /** Dispatches whose completion callback has not yet returned;
     *  waitUntilStopped() waits for zero so the reactor is never
     *  destroyed under a worker still handing a response back. */
    std::atomic<size_t> inflightDispatches{0};

    std::atomic<uint64_t> rejectedQueueFull{0};
    std::atomic<uint64_t> httpErrors{0};
    std::atomic<uint64_t> verbTotals[kVerbCount] = {};
    std::atomic<uint64_t> verbErrors[kVerbCount] = {};
};

} // namespace rissp::net

#endif // RISSP_NET_SERVER_HH
