/**
 * @file
 * `risspgen serve` — the HTTP/JSON daemon over FlowService.
 *
 * The PR 5 engine made the pipeline a reentrant request/response
 * service; this layer puts a socket in front of it. Self-contained
 * HTTP/1.1 over plain POSIX sockets (no external dependencies): an
 * accept thread owns the listener, and every accepted connection
 * becomes a task on the FlowService's work-stealing scheduler — the
 * same scheduler that runs batch and async requests, so server
 * traffic shares the promise-backed in-flight dedup of the stage
 * caches (a thousand clients asking for the same synth sweep compile
 * and sweep it once).
 *
 * Operational semantics, in order of importance:
 *
 *  - **Admission control.** The number of connections admitted but
 *    not yet finished is bounded by `ServeOptions::maxQueue`. Over
 *    capacity, the accept thread answers immediately with a
 *    structured 429 JSON status (`unavailable`) and closes — load is
 *    shed at the door instead of growing an unbounded queue.
 *  - **Graceful drain.** `requestShutdown()` (wired to SIGTERM by
 *    the CLI, and to the POST /shutdown endpoint) is one
 *    async-signal-safe write to a wake pipe: the accept thread stops
 *    listening (new connections are refused by the kernel), every
 *    in-flight request runs to completion and flushes its response,
 *    keep-alive connections are closed after their current request,
 *    and `waitUntilStopped()` returns.
 *  - **Observability.** GET /metrics reports the StageCaches
 *    hit/miss counters, scheduler queue depth and in-flight count,
 *    per-verb request totals and the admission counters.
 *
 * Endpoints (see docs/SERVE.md):
 *
 *   POST /api/v1/{characterize,run,synth,retarget,explore}
 *                       body: net/rest.hh JSON schema; response:
 *                       flow::toJson(...) verbatim — byte-identical
 *                       to `risspgen <verb> --json`
 *   GET  /metrics       counters (JSON)
 *   GET  /healthz       liveness probe
 *   POST /shutdown      begin graceful drain
 */

#ifndef RISSP_NET_SERVER_HH
#define RISSP_NET_SERVER_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "flow/flow.hh"
#include "net/rest.hh"
#include "util/http.hh"
#include "util/mutex.hh"
#include "util/status.hh"

namespace rissp::net
{

struct ServeOptions
{
    /** Loopback by default: exposing the daemon beyond the host is
     *  a deployment decision, not a default. */
    std::string bindAddress = "127.0.0.1";
    uint16_t port = 0;      ///< 0 picks an ephemeral port
    size_t maxQueue = 64;   ///< admitted-but-unfinished connection cap
    size_t maxBodyBytes = 4u << 20; ///< request bodies over this: 413
    int ioTimeoutMs = 10'000; ///< per-recv/send socket timeout
    int backlog = 128;      ///< listen(2) backlog
};

/** One consistent read of every server counter (plus the cache and
 *  scheduler counters of the FlowService behind it). */
struct MetricsSnapshot
{
    uint64_t accepted = 0;         ///< connections admitted
    uint64_t rejectedShedLoad = 0; ///< connections answered 429
    uint64_t httpErrors = 0;       ///< non-2xx responses sent
    size_t activeConnections = 0;  ///< admitted, not yet finished
    size_t queueCapacity = 0;
    bool draining = false;

    uint64_t verbTotals[kVerbCount] = {}; ///< requests dispatched
    uint64_t verbErrors[kVerbCount] = {}; ///< ...with error status

    unsigned schedulerThreads = 0;
    size_t schedulerQueueDepth = 0;
    size_t schedulerInFlight = 0;
    uint64_t schedulerExecuted = 0;
    uint64_t schedulerSteals = 0;

    uint64_t compileHits = 0, compileMisses = 0;
    uint64_t simHits = 0, simMisses = 0;
    uint64_t synthHits = 0, synthMisses = 0;
    uint64_t synthReportHits = 0, synthReportMisses = 0;

    /** Persistent artifact-store counters; all zero (and
     *  `storeAttached` false) when the service runs memory-only. */
    bool storeAttached = false;
    uint64_t storeHits = 0, storeMisses = 0;
    uint64_t storeWrites = 0, storeWriteErrors = 0;
    uint64_t storeEvictions = 0, storeQuarantined = 0;
    uint64_t storeBytesRead = 0, storeBytesWritten = 0;
};

/** Render a snapshot as the GET /metrics JSON document. */
std::string toJson(const MetricsSnapshot &snapshot);

/** The daemon. One instance fronts one FlowService. */
class HttpServer
{
  public:
    /** @p service must outlive the server. The service's scheduler
     *  runs the connection handlers, so its thread count is the
     *  request-handling parallelism. */
    explicit HttpServer(const flow::FlowService &service,
                        ServeOptions options = {});

    /** Drains (requestShutdown + waitUntilStopped) if running. */
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Bind, listen, start the accept thread. Fails as a value on
     *  an unusable address or an occupied port. */
    Status start();

    /** The bound port (the ephemeral one when options.port was 0).
     *  Valid after start(). */
    uint16_t port() const { return boundPort; }

    /** Begin graceful drain. Async-signal-safe (one write(2) on a
     *  pre-opened pipe) so the CLI can call it from a SIGTERM
     *  handler; also idempotent. */
    void requestShutdown();

    /** Block until the drain completes: listener closed, every
     *  admitted connection finished and flushed. */
    void waitUntilStopped();

    bool draining() const
    {
        return drainFlag.load(std::memory_order_acquire);
    }

    MetricsSnapshot metrics() const;

  private:
    void acceptLoop();
    void handleConnection(int fd);
    /** Route one parsed request; returns the full response bytes
     *  and whether the connection may stay open. */
    std::string routeRequest(const http::RequestHead &head,
                             const std::string &body,
                             bool &keep_alive);
    std::string errorResponse(int http_status, Status status,
                              bool keep_alive);
    void noteResponse(int http_status);
    /** Release one admission slot and wake the drain waiter. The
     *  notify MUST happen under `stateMu`: the waiter may destroy
     *  the condvar the moment it observes `activeCount == 0`
     *  (TSan-caught in PR 6) — the annotation makes that prose
     *  invariant a compile-time contract. */
    void finishConnectionLocked() RISSP_REQUIRES(stateMu);

    const flow::FlowService &service;
    ServeOptions options;

    int listenFd = -1;
    int wakeReadFd = -1;
    int wakeWriteFd = -1;
    uint16_t boundPort = 0;
    std::thread acceptThread;
    bool started = false;

    std::atomic<bool> drainFlag{false};

    mutable Mutex stateMu;
    /** Signalled when activeCount drops to 0. Notified only from
     *  finishConnectionLocked (i.e. under stateMu — see there). */
    CondVar idleCv;
    /** Admitted-but-unfinished connections. */
    size_t activeCount RISSP_GUARDED_BY(stateMu) = 0;

    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> httpErrors{0};
    std::atomic<uint64_t> verbTotals[kVerbCount] = {};
    std::atomic<uint64_t> verbErrors[kVerbCount] = {};
};

} // namespace rissp::net

#endif // RISSP_NET_SERVER_HH
