/**
 * @file
 * REST mapping between the wire and the Flow API.
 *
 * The serve front end does not fork the schema: a request body is a
 * small JSON object naming the same fields the `risspgen` verbs
 * accept, and the response body is `flow::toJson(...)` *verbatim* —
 * byte-identical to what `risspgen <verb> --json` prints for the
 * same request. This file owns the request direction (JSON body →
 * typed `flow::Request`) plus the status-code mapping; the socket
 * loop in net/server.cc owns nothing schema-shaped.
 *
 * Per-verb body fields (all optional unless noted):
 *
 *   common        "workload": bundled name  XOR  "source": MiniC
 *                 text (+ optional "label"); "opt": "O0".."O3"/"Oz"
 *   characterize  (common only)
 *   run           "verify": bool, "max_steps": number,
 *                 "subset": [mnemonics] (run on this subset instead)
 *   synth         "name": string, "tech": registry spec string,
 *                 "baselines": bool, "physical": bool,
 *                 "subset": [mnemonics]
 *   retarget      "target": [mnemonics], "max_steps": number,
 *                 "verify_equivalence": bool
 *   explore       "plan": plan text (required; replaces the common
 *                 source), "threads": number
 *
 * Unknown fields are rejected with InvalidArgument naming the field:
 * a client typo ("verfy") must never silently change behavior.
 */

#ifndef RISSP_NET_REST_HH
#define RISSP_NET_REST_HH

#include <string>

#include "flow/flow.hh"
#include "util/json.hh"
#include "util/status.hh"

namespace rissp::net
{

/** The five verbs, as they appear in /api/v1/<verb> targets. */
enum class Verb : uint8_t
{
    Characterize,
    Run,
    Synth,
    Retarget,
    Explore,
};

constexpr size_t kVerbCount = 5;

/** Wire name of a verb ("characterize", ...). */
const char *verbName(Verb verb);

/** Parse a wire name; InvalidArgument on anything else. */
Result<Verb> verbFromName(const std::string &name);

/** Which verb a dispatched request was (for per-verb counters). */
Verb verbOf(const flow::Request &request);

/** Build the typed request for @p verb from a parsed JSON body. */
Result<flow::Request> requestFromJson(Verb verb,
                                      const JsonValue &body);

/** Convenience: parse @p body as JSON, then map it. */
Result<flow::Request> requestFromBody(Verb verb,
                                      const std::string &body);

/**
 * The HTTP status code a response status maps onto. Client-side
 * problems (bad fields, unknown workloads, sources that don't
 * compile) are 4xx; pipeline outcomes on a well-formed request
 * (trap, cosim mismatch, impossible corner) are 422; shed load is
 * 429; internal invariants surfaced as values are 500.
 */
int httpStatusFor(const Status &status);

} // namespace rissp::net

#endif // RISSP_NET_REST_HH
