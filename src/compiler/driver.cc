#include "compiler/driver.hh"

#include "assembler/assembler.hh"
#include "assembler/runtime.hh"
#include "compiler/emit.hh"
#include "compiler/lower.hh"
#include "compiler/parser.hh"
#include "compiler/passes.hh"
#include "util/logging.hh"

namespace rissp::minic
{

std::vector<OptLevel>
allOptLevels()
{
    return {OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3,
            OptLevel::Oz};
}

std::string
optLevelName(OptLevel level)
{
    switch (level) {
      case OptLevel::O0: return "-O0";
      case OptLevel::O1: return "-O1";
      case OptLevel::O2: return "-O2";
      case OptLevel::O3: return "-O3";
      case OptLevel::Oz: return "-Oz";
    }
    return "?";
}

namespace
{

LowerOptions
lowerOptionsFor(OptLevel level,
                const MachineOptions &machine = {})
{
    LowerOptions o;
    o.useCustomMul = machine.customMul;
    switch (level) {
      case OptLevel::O0:
        o.spillAll = true;
        o.foldConstants = false;
        o.inlineMulConst = false;
        o.inlineDivPow2 = false;
        break;
      case OptLevel::O1:
        o.mulMaxOps = 2;
        o.inlineDivPow2 = false;
        break;
      case OptLevel::O2:
        o.mulMaxOps = 3;
        break;
      case OptLevel::O3:
        o.mulMaxOps = 5;
        break;
      case OptLevel::Oz:
        // Size-biased: only single-shift multiplies inline; division
        // always goes through the (shared) helper.
        o.mulMaxOps = 1;
        o.inlineDivPow2 = false;
        break;
    }
    return o;
}

PassOptions
passOptionsFor(OptLevel level)
{
    PassOptions p;
    switch (level) {
      case OptLevel::O0:
        p.optimize = false;
        break;
      case OptLevel::O1:
        p.inlineThreshold = 0;
        break;
      case OptLevel::O2:
        p.inlineThreshold = 14;
        break;
      case OptLevel::O3:
        // Aggressive inlining grows code (the -O3 bumps in Fig. 5).
        p.inlineThreshold = 48;
        break;
      case OptLevel::Oz:
        p.inlineThreshold = 4;
        break;
    }
    return p;
}

/** Compile to IR + emit; shared by compile() and compileToAsm(). */
std::string
compileInternal(const std::string &source, OptLevel level,
                std::set<std::string> &helpers,
                const MachineOptions &machine = {})
{
    TranslationUnit unit = parse(source);
    LowerResult lowered =
        lowerUnit(unit, lowerOptionsFor(level, machine));
    optimize(lowered.ir, passOptionsFor(level));

    // Passes may remove unreachable helper calls: recompute the
    // helper set from the surviving IR so no dead runtime module
    // pollutes the instruction subset.
    helpers.clear();
    for (const IrFunction &fn : lowered.ir.funcs)
        for (const IrInstr &in : fn.code)
            if (in.op == IrOp::Call && in.sym.rfind("__", 0) == 0)
                helpers.insert(in.sym);

    return emitUnit(lowered.ir, level == OptLevel::O0);
}

} // namespace

Program
linkProgram(const std::string &app_asm,
            const std::set<std::string> &helpers,
            const std::string &macro_file)
{
    std::vector<std::string> modules;
    if (!macro_file.empty())
        modules.push_back(macro_file);
    modules.push_back(crt0Source());
    for (const std::string &h : helpers)
        modules.push_back(runtimeModule(h));
    modules.push_back(app_asm);
    return assembleModules(modules);
}

CompileResult
compile(const std::string &source, OptLevel level)
{
    return compile(source, level, MachineOptions{});
}

CompileResult
compile(const std::string &source, OptLevel level,
        const MachineOptions &machine)
{
    CompileResult result;
    result.appAsm = compileInternal(source, level, result.helpers,
                                    machine);
    result.program = linkProgram(result.appAsm, result.helpers);
    return result;
}

Result<CompileResult>
tryCompile(const std::string &source, OptLevel level,
           const MachineOptions &machine)
{
    try {
        return compile(source, level, machine);
    } catch (const CompileError &e) {
        return Status::error(ErrorCode::CompileError, e.what());
    }
}

std::string
compileToAsm(const std::string &source, OptLevel level,
             std::set<std::string> *helpers_out)
{
    std::set<std::string> helpers;
    std::string text = compileInternal(source, level, helpers);
    if (helpers_out)
        *helpers_out = helpers;
    return text;
}

} // namespace rissp::minic
