/**
 * @file
 * Token definitions for MiniC, the C-subset compiler that stands in
 * for riscv32-unknown-elf-gcc in the paper's Step 1 characterization
 * flow (see DESIGN.md for the substitution rationale).
 */

#ifndef RISSP_COMPILER_TOKEN_HH
#define RISSP_COMPILER_TOKEN_HH

#include <cstdint>
#include <string>

namespace rissp::minic
{

/** Token kinds. Multi-character operators get their own kind. */
enum class Tok : uint8_t
{
    End, Ident, Number, StringLit, CharLit,
    // keywords
    KwInt, KwUnsigned, KwChar, KwShort, KwVoid, KwConst,
    KwIf, KwElse, KwWhile, KwFor, KwDo, KwReturn, KwBreak,
    KwContinue, KwSizeof, KwStatic,
    // punctuation
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semi, Question, Colon,
    // operators
    Assign, Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Bang,
    Lt, Gt, Le, Ge, EqEq, NotEq,
    AndAnd, OrOr, Shl, Shr,
    PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
    AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign,
    PlusPlus, MinusMinus,
};

/** One lexed token with source position. */
struct Token
{
    Tok kind = Tok::End;
    std::string text;     ///< identifier / string body
    int64_t value = 0;    ///< numeric / char literal value
    int line = 0;         ///< 1-based source line

    bool is(Tok t) const { return kind == t; }
};

/** Printable name for diagnostics. */
std::string tokName(Tok kind);

} // namespace rissp::minic

#endif // RISSP_COMPILER_TOKEN_HH
