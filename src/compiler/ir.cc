#include "compiler/ir.hh"

#include "util/logging.hh"

namespace rissp::minic
{

bool
IrFunction::hasCalls() const
{
    for (const IrInstr &in : code)
        if (in.op == IrOp::Call)
            return true;
    return false;
}

size_t
IrFunction::bodySize() const
{
    size_t n = 0;
    for (const IrInstr &in : code)
        if (in.op != IrOp::Label)
            ++n;
    return n;
}

IrFunction *
IrUnit::findFunc(const std::string &name)
{
    for (IrFunction &fn : funcs)
        if (fn.name == name)
            return &fn;
    return nullptr;
}

bool
isPure(IrOp op)
{
    switch (op) {
      case IrOp::Const:
      case IrOp::Copy:
      case IrOp::Add:
      case IrOp::Sub:
      case IrOp::Mul: // only emitted when the cmul block exists
      case IrOp::And:
      case IrOp::Or:
      case IrOp::Xor:
      case IrOp::Shl:
      case IrOp::ShrL:
      case IrOp::ShrA:
      case IrOp::AddI:
      case IrOp::AndI:
      case IrOp::OrI:
      case IrOp::XorI:
      case IrOp::ShlI:
      case IrOp::ShrLI:
      case IrOp::ShrAI:
      case IrOp::SetCc:
      case IrOp::SetCcI:
      case IrOp::AddrLocal:
      case IrOp::AddrGlobal:
        return true;
      // Division is pure in value terms but can fault on zero in real
      // hardware; keep it (and loads) anchored.
      default:
        return false;
    }
}

namespace
{

const char *
opName(IrOp op)
{
    switch (op) {
      case IrOp::Const: return "const";
      case IrOp::Copy: return "copy";
      case IrOp::Add: return "add";
      case IrOp::Sub: return "sub";
      case IrOp::Mul: return "mul";
      case IrOp::DivS: return "divs";
      case IrOp::DivU: return "divu";
      case IrOp::RemS: return "rems";
      case IrOp::RemU: return "remu";
      case IrOp::And: return "and";
      case IrOp::Or: return "or";
      case IrOp::Xor: return "xor";
      case IrOp::Shl: return "shl";
      case IrOp::ShrL: return "shrl";
      case IrOp::ShrA: return "shra";
      case IrOp::AddI: return "addi";
      case IrOp::AndI: return "andi";
      case IrOp::OrI: return "ori";
      case IrOp::XorI: return "xori";
      case IrOp::ShlI: return "shli";
      case IrOp::ShrLI: return "shrli";
      case IrOp::ShrAI: return "shrai";
      case IrOp::SetCc: return "setcc";
      case IrOp::SetCcI: return "setcci";
      case IrOp::AddrLocal: return "addrlocal";
      case IrOp::AddrGlobal: return "addrglobal";
      case IrOp::Load: return "load";
      case IrOp::Store: return "store";
      case IrOp::Call: return "call";
      case IrOp::Ret: return "ret";
      case IrOp::Jump: return "jump";
      case IrOp::Branch: return "branch";
      case IrOp::Label: return "label";
    }
    return "?";
}

const char *
ccName(Cond cc)
{
    switch (cc) {
      case Cond::Eq: return "eq";
      case Cond::Ne: return "ne";
      case Cond::LtS: return "lts";
      case Cond::GeS: return "ges";
      case Cond::LtU: return "ltu";
      case Cond::GeU: return "geu";
    }
    return "?";
}

} // namespace

std::string
dumpIr(const IrFunction &fn)
{
    std::string out = strFormat("func %s (vregs=%d)\n",
                                fn.name.c_str(), fn.nextVreg);
    for (const IrInstr &in : fn.code) {
        if (in.op == IrOp::Label) {
            out += strFormat("%s:\n", in.sym.c_str());
            continue;
        }
        out += "    ";
        out += opName(in.op);
        if (in.op == IrOp::Branch || in.op == IrOp::SetCc ||
            in.op == IrOp::SetCcI)
            out += strFormat(".%s", ccName(in.cc));
        if (in.dst >= 0)
            out += strFormat(" v%d <-", in.dst);
        if (in.a >= 0)
            out += strFormat(" v%d", in.a);
        if (in.b >= 0)
            out += strFormat(" v%d", in.b);
        switch (in.op) {
          case IrOp::Const:
          case IrOp::AddI:
          case IrOp::AndI:
          case IrOp::OrI:
          case IrOp::XorI:
          case IrOp::ShlI:
          case IrOp::ShrLI:
          case IrOp::ShrAI:
          case IrOp::SetCcI:
          case IrOp::AddrLocal:
            out += strFormat(" %lld", static_cast<long long>(in.imm));
            break;
          case IrOp::Load:
          case IrOp::Store:
            out += strFormat(" [+%lld] w%u%s",
                             static_cast<long long>(in.imm), in.width,
                             in.signExt ? " sx" : "");
            break;
          default:
            break;
        }
        if (!in.sym.empty())
            out += " " + in.sym;
        if (in.op == IrOp::Call) {
            out += "(";
            for (size_t i = 0; i < in.args.size(); ++i)
                out += strFormat("%sv%d", i ? ", " : "", in.args[i]);
            out += ")";
        }
        out += "\n";
    }
    return out;
}

} // namespace rissp::minic
