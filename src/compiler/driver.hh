/**
 * @file
 * MiniC compiler driver: source -> optimized RV32E program image.
 *
 * Mirrors the paper's Step 1 toolflow: compile the application
 * baremetal for the full RV32E ISA at a chosen optimization level,
 * linking the startup stub and only the runtime helpers the code
 * actually calls, and hand the binary to the subset extractor.
 */

#ifndef RISSP_COMPILER_DRIVER_HH
#define RISSP_COMPILER_DRIVER_HH

#include <set>
#include <string>
#include <vector>

#include "sim/program.hh"
#include "util/status.hh"

namespace rissp::minic
{

/** The five optimization levels of Figure 5. */
enum class OptLevel : uint8_t { O0, O1, O2, O3, Oz };

/** All levels, in Figure 5 order. */
std::vector<OptLevel> allOptLevels();

/** "-O2" style label. */
std::string optLevelName(OptLevel level);

/** Output of a compilation. */
struct CompileResult
{
    std::string appAsm;       ///< assembly of the application itself
    Program program;          ///< linked image (crt0 + helpers + app)
    std::set<std::string> helpers; ///< runtime helpers linked in

    /** Static instruction count (codesize/4, the Figure 5 metric). */
    size_t staticInstructions() const
    {
        return program.textSize / 4;
    }
};

/** Target-machine configuration (custom-extension opt-ins). */
struct MachineOptions
{
    /** Generate the custom cmul instruction for multiplies (the
     *  paper's §6 custom-instruction extension path). */
    bool customMul = false;
};

/** Compile MiniC source; throws CompileError on bad input. */
CompileResult compile(const std::string &source, OptLevel level);

/** Compile with explicit machine options. */
CompileResult compile(const std::string &source, OptLevel level,
                      const MachineOptions &machine);

/** Compile MiniC source, reporting bad input as a value instead of
 *  an exception: ErrorCode::CompileError with "line N: ..." in the
 *  message. This is the entry point for user-provided sources. */
Result<CompileResult> tryCompile(const std::string &source,
                                 OptLevel level,
                                 const MachineOptions &machine = {});

/** Compile to application assembly only (no linking); used by the
 *  retargeting flow, which reassembles against macro files. */
std::string compileToAsm(const std::string &source, OptLevel level,
                         std::set<std::string> *helpers_out = nullptr);

/** Assemble an application's assembly together with crt0 and the
 *  named helpers (the "link" step, shared with the retargeter). */
Program linkProgram(const std::string &app_asm,
                    const std::set<std::string> &helpers,
                    const std::string &macro_file = "");

} // namespace rissp::minic

#endif // RISSP_COMPILER_DRIVER_HH
