#include "compiler/regalloc.hh"

#include <algorithm>
#include <map>

#include "isa/reg.hh"
#include "util/logging.hh"

namespace rissp::minic
{

namespace
{

struct Interval
{
    int vreg = -1;
    int start = 0;
    int end = 0;
    bool crossesCall = false;
};

} // namespace

Allocation
allocateRegisters(IrFunction &fn, bool spill_all)
{
    Allocation alloc;
    alloc.locs.resize(static_cast<size_t>(fn.nextVreg));

    if (spill_all) {
        for (int v = 0; v < fn.nextVreg; ++v) {
            alloc.locs[static_cast<size_t>(v)].kind =
                VregLoc::Kind::Spill;
            alloc.locs[static_cast<size_t>(v)].slot = fn.newSlot(4);
            ++alloc.spillCount;
        }
        return alloc;
    }

    const int n = static_cast<int>(fn.code.size());

    // Live intervals over the linearized code.
    std::vector<int> first(static_cast<size_t>(fn.nextVreg), -1);
    std::vector<int> last(static_cast<size_t>(fn.nextVreg), -1);
    auto touch = [&](int v, int pos) {
        if (v < 0)
            return;
        if (first[static_cast<size_t>(v)] < 0)
            first[static_cast<size_t>(v)] = pos;
        last[static_cast<size_t>(v)] =
            std::max(last[static_cast<size_t>(v)], pos);
    };
    // Position 0 is the prologue (parameter definitions); instruction
    // i sits at position i + 1 so that an interval born in the
    // prologue correctly crosses a call in the very first instruction.
    for (int v : fn.paramVregs)
        if (v >= 0)
            touch(v, 0);
    for (int i = 0; i < n; ++i) {
        const IrInstr &in = fn.code[static_cast<size_t>(i)];
        touch(in.dst, i + 1);
        touch(in.a, i + 1);
        touch(in.b, i + 1);
        for (int arg : in.args)
            touch(arg, i + 1);
    }

    // Loop extension: a backward branch at position i to a label at
    // position j keeps every interval overlapping [j, i] alive
    // through i. Iterate to a fixed point (nested loops).
    std::map<std::string, int> label_pos;
    for (int i = 0; i < n; ++i)
        if (fn.code[static_cast<size_t>(i)].op == IrOp::Label)
            label_pos[fn.code[static_cast<size_t>(i)].sym] = i + 1;
    bool grew = true;
    int guard = 0;
    while (grew && guard++ < 8) {
        grew = false;
        for (int i = 0; i < n; ++i) {
            const IrInstr &in = fn.code[static_cast<size_t>(i)];
            if (in.op != IrOp::Jump && in.op != IrOp::Branch)
                continue;
            auto it = label_pos.find(in.sym);
            if (it == label_pos.end())
                panic("branch to unknown label '%s'",
                      in.sym.c_str());
            const int branch_pos = i + 1;
            const int j = it->second;
            if (j >= branch_pos)
                continue; // forward edge
            for (int v = 0; v < fn.nextVreg; ++v) {
                auto idx = static_cast<size_t>(v);
                if (first[idx] < 0)
                    continue;
                if (first[idx] <= branch_pos && last[idx] >= j &&
                    last[idx] < branch_pos) {
                    last[idx] = branch_pos;
                    grew = true;
                }
            }
        }
    }

    // Call positions (strictly-inside test marks call crossings).
    std::vector<int> call_pos;
    for (int i = 0; i < n; ++i)
        if (fn.code[static_cast<size_t>(i)].op == IrOp::Call)
            call_pos.push_back(i + 1);

    std::vector<Interval> intervals;
    for (int v = 0; v < fn.nextVreg; ++v) {
        auto idx = static_cast<size_t>(v);
        if (first[idx] < 0)
            continue;
        Interval iv;
        iv.vreg = v;
        iv.start = first[idx];
        iv.end = last[idx];
        for (int c : call_pos) {
            if (iv.start < c && iv.end > c) {
                iv.crossesCall = true;
                break;
            }
        }
        intervals.push_back(iv);
    }
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval &a, const Interval &b) {
                  return a.start < b.start;
              });

    // Linear scan with two pools.
    const unsigned caller_pool[] = {reg::t0, reg::t1, reg::t2};
    const unsigned callee_pool[] = {reg::s0, reg::s1};
    struct Active
    {
        int end;
        unsigned reg;
        bool callee;
    };
    std::vector<Active> active;
    std::vector<bool> in_use(16, false);

    for (const Interval &iv : intervals) {
        // Expire finished intervals.
        for (size_t i = 0; i < active.size();) {
            if (active[i].end < iv.start) {
                in_use[active[i].reg] = false;
                active.erase(active.begin() +
                             static_cast<long>(i));
            } else {
                ++i;
            }
        }
        unsigned chosen = 0;
        bool found = false;
        bool callee = false;
        if (!iv.crossesCall) {
            for (unsigned r : caller_pool) {
                if (!in_use[r]) {
                    chosen = r;
                    found = true;
                    break;
                }
            }
        }
        if (!found) {
            for (unsigned r : callee_pool) {
                if (!in_use[r]) {
                    chosen = r;
                    found = true;
                    callee = true;
                    break;
                }
            }
        }
        auto &loc = alloc.locs[static_cast<size_t>(iv.vreg)];
        if (found) {
            in_use[chosen] = true;
            active.push_back({iv.end, chosen, callee});
            loc.kind = VregLoc::Kind::Reg;
            loc.reg = chosen;
            if (chosen == reg::s0)
                alloc.usesS0 = true;
            if (chosen == reg::s1)
                alloc.usesS1 = true;
        } else {
            loc.kind = VregLoc::Kind::Spill;
            loc.slot = fn.newSlot(4);
            ++alloc.spillCount;
        }
    }
    return alloc;
}

} // namespace rissp::minic
