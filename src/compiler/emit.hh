/**
 * @file
 * IR to RV32E assembly emission.
 */

#ifndef RISSP_COMPILER_EMIT_HH
#define RISSP_COMPILER_EMIT_HH

#include <string>

#include "compiler/ir.hh"
#include "compiler/regalloc.hh"

namespace rissp::minic
{

/** Emit one function (prologue, body, epilogue) as assembly text. */
std::string emitFunction(IrFunction &fn, bool spill_all);

/** Emit .data definitions for globals and string literals. */
std::string emitGlobals(const TranslationUnit &unit);

/** Emit a whole unit: all functions plus the data section. */
std::string emitUnit(IrUnit &ir, bool spill_all);

} // namespace rissp::minic

#endif // RISSP_COMPILER_EMIT_HH
