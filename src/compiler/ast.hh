/**
 * @file
 * MiniC abstract syntax tree, types and symbols.
 *
 * MiniC covers the C subset the paper's workloads need: 32-bit
 * integer arithmetic with char/short widths, pointers, 1-D/2-D
 * arrays, functions, and full statement-level control flow. The
 * parser performs symbol resolution and typing as it goes (C's
 * declare-before-use makes that natural), so the tree it produces is
 * fully annotated.
 */

#ifndef RISSP_COMPILER_AST_HH
#define RISSP_COMPILER_AST_HH

#include <memory>
#include <string>
#include <vector>

#include "compiler/token.hh"

namespace rissp::minic
{

/** Scalar base types. */
enum class BaseTy : uint8_t
{
    Void, Int, UInt, Char, UChar, Short, UShort
};

/** A MiniC type: base scalar, pointer depth, optional array dims. */
struct Type
{
    BaseTy base = BaseTy::Int;
    int ptr = 0;                ///< pointer indirection depth
    std::vector<int> dims;      ///< array dimensions, outermost first

    bool isVoid() const { return base == BaseTy::Void && ptr == 0; }
    bool isArray() const { return !dims.empty(); }
    bool isPointer() const { return ptr > 0 && dims.empty(); }

    /** Size of the scalar element (load/store width). */
    unsigned scalarSize() const;

    /** Total object size in bytes (arrays included). */
    unsigned sizeInBytes() const;

    /** Unsigned semantics for compares/shifts/div. */
    bool isUnsignedTy() const;

    /** Type after one [] subscript (drops a dim or a ptr level). */
    Type subscripted() const;

    /** Type of the element a pointer/array step moves over. */
    unsigned strideBytes() const;

    /** Decayed type for expression use (array -> pointer). */
    Type decayed() const;

    bool operator==(const Type &other) const = default;

    static Type
    scalar(BaseTy b, int ptr_depth = 0)
    {
        Type t;
        t.base = b;
        t.ptr = ptr_depth;
        return t;
    }
};

/** What a name refers to. */
enum class SymKind : uint8_t { Global, Local, Param, Func };

/** A declared symbol. */
struct Symbol
{
    std::string name;
    Type type;
    SymKind kind = SymKind::Local;
    int id = 0;               ///< unique per function (locals/params)
    bool addressTaken = false;///< &x or array: lives in memory
    // functions only:
    Type retType;
    std::vector<Type> paramTypes;
    bool defined = false;
};

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/** Expression node kinds. */
enum class ExprKind : uint8_t
{
    IntLit,    ///< ival
    StrLit,    ///< name = assembler label, text in unit string table
    Var,       ///< sym
    Unary,     ///< op in {-, ~, !, *, &, ++, --}, kids[0]
    Binary,    ///< op arithmetic/relational/logical, kids[0], kids[1]
    Assign,    ///< op in {=, +=, ...}, kids[0] = lhs, kids[1] = rhs
    Cond,      ///< kids[0] ? kids[1] : kids[2]
    Call,      ///< name + kids = args, sym = callee
    Index,     ///< kids[0][kids[1]]
    Cast,      ///< (castTy)kids[0]
};

/** One expression node (annotated with its type by the parser). */
struct Expr
{
    ExprKind kind;
    int line = 0;
    Tok op = Tok::End;       ///< operator for Unary/Binary/Assign
    bool postfix = false;    ///< x++ / x-- vs ++x / --x
    int64_t ival = 0;        ///< IntLit value
    std::string name;        ///< Var/Call/StrLit
    Type castTy;             ///< Cast target
    std::vector<ExprPtr> kids;
    Type ty;                 ///< result type
    Symbol *sym = nullptr;   ///< Var/Call binding
};

/** One local declaration inside a Decl statement. */
struct DeclVar
{
    std::string name;
    Type type;
    ExprPtr init;                  ///< scalar initializer (may be null)
    std::vector<int64_t> arrayInit;///< brace/string initializer
    bool hasArrayInit = false;
    Symbol *sym = nullptr;
};

/** Statement node kinds. */
enum class StmtKind : uint8_t
{
    Expr, Decl, If, While, DoWhile, For, Return, Break, Continue,
    Block, Empty
};

/** One statement node. */
struct Stmt
{
    StmtKind kind;
    int line = 0;
    ExprPtr expr;            ///< Expr/Return value; If/While/Do cond
    ExprPtr stepExpr;        ///< For step
    StmtPtr init;            ///< For init (Decl or Expr stmt)
    StmtPtr body;            ///< loop body / If then
    StmtPtr elseBody;        ///< If else
    std::vector<StmtPtr> stmts; ///< Block
    std::vector<DeclVar> decls; ///< Decl
};

/** A parsed function definition. */
struct Function
{
    std::string name;
    Type retType;
    std::vector<DeclVar> params;
    StmtPtr body;
    Symbol *sym = nullptr;
    int line = 0;
};

/** A global variable with its (constant) initializer bytes. */
struct Global
{
    std::string name;
    Type type;
    std::vector<int64_t> init;  ///< element values (empty = zero)
    bool isConst = false;
    Symbol *sym = nullptr;
    int line = 0;
};

/** A deduplicated string literal placed in .data. */
struct StringLiteral
{
    std::string label;
    std::string bytes;   ///< NUL added at emission
};

/** Whole translation unit. */
struct TranslationUnit
{
    std::vector<Function> functions;
    std::vector<Global> globals;
    std::vector<StringLiteral> strings;
    // Owned symbols (stable addresses for Expr::sym).
    std::vector<std::unique_ptr<Symbol>> symbols;
};

/** Size helpers shared across the compiler. */
unsigned baseSize(BaseTy b);
bool baseUnsigned(BaseTy b);

} // namespace rissp::minic

#endif // RISSP_COMPILER_AST_HH
