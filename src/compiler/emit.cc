#include "compiler/emit.hh"

#include "compiler/lexer.hh"
#include "compiler/lower.hh"
#include "isa/reg.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace rissp::minic
{

namespace
{

const char *
branchMnemonic(Cond cc)
{
    switch (cc) {
      case Cond::Eq: return "beq";
      case Cond::Ne: return "bne";
      case Cond::LtS: return "blt";
      case Cond::GeS: return "bge";
      case Cond::LtU: return "bltu";
      case Cond::GeU: return "bgeu";
    }
    panic("unreachable");
}

const char *
loadMnemonic(uint8_t width, bool sign_ext)
{
    switch (width) {
      case 1: return sign_ext ? "lb" : "lbu";
      case 2: return sign_ext ? "lh" : "lhu";
      case 4: return "lw";
    }
    panic("bad load width %u", width);
}

const char *
storeMnemonic(uint8_t width)
{
    switch (width) {
      case 1: return "sb";
      case 2: return "sh";
      case 4: return "sw";
    }
    panic("bad store width %u", width);
}

class FnEmitter
{
  public:
    FnEmitter(IrFunction &f, bool spill_all)
        : fn(f), alloc(allocateRegisters(f, spill_all))
    {
        needRa = fn.hasCalls();
        layoutFrame();
    }

    std::string
    run()
    {
        prologue();
        const size_t n = fn.code.size();
        for (size_t i = 0; i < n; ++i)
            emitInstr(fn.code[i], i + 1 == n);
        epilogue();
        return std::move(text);
    }

  private:
    void
    o(const std::string &line)
    {
        text += "    " + line + "\n";
    }

    void
    label(const std::string &name)
    {
        text += name + ":\n";
    }

    void
    layoutFrame()
    {
        slotOffsets.resize(fn.slots.size());
        uint32_t off = 0;
        for (size_t i = 0; i < fn.slots.size(); ++i) {
            slotOffsets[i] = off;
            off += fn.slots[i].size;
        }
        savedBytes = 0;
        if (needRa)
            savedBytes += 4;
        if (alloc.usesS0)
            savedBytes += 4;
        if (alloc.usesS1)
            savedBytes += 4;
        frameBytes = (off + savedBytes + 7u) & ~7u;
        // User source can overflow the frame (huge locals): report it
        // as a compile diagnostic, not a process exit.
        if (frameBytes > 2032)
            throw CompileError(0, strFormat(
                "frame of '%s' too large (%u bytes)",
                fn.name.c_str(), frameBytes));
    }

    uint32_t slotOff(int slot) const
    {
        return slotOffsets[static_cast<size_t>(slot)];
    }

    const VregLoc &
    loc(int v) const
    {
        if (v < 0)
            panic("loc() of pseudo vreg %d", v);
        return alloc.locs[static_cast<size_t>(v)];
    }

    /** Register holding vreg @p v, loading spills into @p scratch. */
    std::string
    use(int v, unsigned scratch)
    {
        if (v == kZeroVreg)
            return "zero";
        const VregLoc &l = loc(v);
        if (l.kind == VregLoc::Kind::Reg)
            return std::string(regName(l.reg));
        if (l.kind == VregLoc::Kind::Spill) {
            std::string r(regName(scratch));
            o(strFormat("lw %s, %u(sp)", r.c_str(),
                        slotOff(l.slot)));
            return r;
        }
        panic("use of unallocated vreg v%d in %s", v,
              fn.name.c_str());
    }

    /** Register to compute the result of @p v into. */
    std::string
    defReg(int v)
    {
        const VregLoc &l = loc(v);
        if (l.kind == VregLoc::Kind::Reg)
            return std::string(regName(l.reg));
        return std::string(regName(reg::a4));
    }

    /** Store the computed result if @p v is spilled. */
    void
    finishDef(int v, const std::string &reg_used)
    {
        const VregLoc &l = loc(v);
        if (l.kind == VregLoc::Kind::Spill)
            o(strFormat("sw %s, %u(sp)", reg_used.c_str(),
                        slotOff(l.slot)));
    }

    void
    prologue()
    {
        label(fn.name);
        if (frameBytes > 0)
            o(strFormat("addi sp, sp, -%u", frameBytes));
        uint32_t save_off = frameBytes - 4;
        if (needRa) {
            o(strFormat("sw ra, %u(sp)", save_off));
            save_off -= 4;
        }
        if (alloc.usesS0) {
            o(strFormat("sw s0, %u(sp)", save_off));
            s0Off = save_off;
            save_off -= 4;
        }
        if (alloc.usesS1) {
            o(strFormat("sw s1, %u(sp)", save_off));
            s1Off = save_off;
        }
        // Home the incoming arguments.
        for (size_t i = 0; i < fn.paramVregs.size(); ++i) {
            const std::string areg(regName(reg::a0 +
                                           static_cast<unsigned>(i)));
            if (fn.paramVregs[i] >= 0) {
                const VregLoc &l = loc(fn.paramVregs[i]);
                if (l.kind == VregLoc::Kind::Reg) {
                    o(strFormat("mv %s, %s",
                                std::string(regName(l.reg)).c_str(),
                                areg.c_str()));
                } else if (l.kind == VregLoc::Kind::Spill) {
                    o(strFormat("sw %s, %u(sp)", areg.c_str(),
                                slotOff(l.slot)));
                }
                // Unused parameters need no move at all.
            } else {
                o(strFormat("sw %s, %u(sp)", areg.c_str(),
                            slotOff(fn.paramSlots[i])));
            }
        }
    }

    void
    epilogue()
    {
        label(retLabel());
        if (needRa)
            o(strFormat("lw ra, %u(sp)", frameBytes - 4));
        if (alloc.usesS0)
            o(strFormat("lw s0, %u(sp)", s0Off));
        if (alloc.usesS1)
            o(strFormat("lw s1, %u(sp)", s1Off));
        if (frameBytes > 0)
            o(strFormat("addi sp, sp, %u", frameBytes));
        o("ret");
    }

    std::string
    retLabel() const
    {
        return strFormat(".Lret_%s", fn.name.c_str());
    }

    void
    emitInstr(const IrInstr &in, bool is_last)
    {
        switch (in.op) {
          case IrOp::Label:
            label(in.sym);
            return;
          case IrOp::Const: {
            std::string d = defReg(in.dst);
            o(strFormat("li %s, %lld", d.c_str(),
                        static_cast<long long>(
                            static_cast<int32_t>(in.imm))));
            finishDef(in.dst, d);
            return;
          }
          case IrOp::Copy: {
            std::string s = use(in.a, reg::a4);
            std::string d = defReg(in.dst);
            if (d != s)
                o(strFormat("mv %s, %s", d.c_str(), s.c_str()));
            finishDef(in.dst, d);
            return;
          }
          case IrOp::Add:
          case IrOp::Sub:
          case IrOp::Mul:
          case IrOp::And:
          case IrOp::Or:
          case IrOp::Xor:
          case IrOp::Shl:
          case IrOp::ShrL:
          case IrOp::ShrA: {
            static const std::unordered_map<int, const char *> m = {
                {static_cast<int>(IrOp::Add), "add"},
                {static_cast<int>(IrOp::Sub), "sub"},
                {static_cast<int>(IrOp::Mul), "cmul"},
                {static_cast<int>(IrOp::And), "and"},
                {static_cast<int>(IrOp::Or), "or"},
                {static_cast<int>(IrOp::Xor), "xor"},
                {static_cast<int>(IrOp::Shl), "sll"},
                {static_cast<int>(IrOp::ShrL), "srl"},
                {static_cast<int>(IrOp::ShrA), "sra"},
            };
            std::string a = use(in.a, reg::a4);
            std::string b = use(in.b, reg::a5);
            std::string d = defReg(in.dst);
            o(strFormat("%s %s, %s, %s",
                        m.at(static_cast<int>(in.op)), d.c_str(),
                        a.c_str(), b.c_str()));
            finishDef(in.dst, d);
            return;
          }
          case IrOp::AddI:
          case IrOp::AndI:
          case IrOp::OrI:
          case IrOp::XorI:
          case IrOp::ShlI:
          case IrOp::ShrLI:
          case IrOp::ShrAI: {
            static const std::unordered_map<int, const char *> m = {
                {static_cast<int>(IrOp::AddI), "addi"},
                {static_cast<int>(IrOp::AndI), "andi"},
                {static_cast<int>(IrOp::OrI), "ori"},
                {static_cast<int>(IrOp::XorI), "xori"},
                {static_cast<int>(IrOp::ShlI), "slli"},
                {static_cast<int>(IrOp::ShrLI), "srli"},
                {static_cast<int>(IrOp::ShrAI), "srai"},
            };
            std::string a = use(in.a, reg::a4);
            std::string d = defReg(in.dst);
            o(strFormat("%s %s, %s, %lld",
                        m.at(static_cast<int>(in.op)), d.c_str(),
                        a.c_str(),
                        static_cast<long long>(in.imm)));
            finishDef(in.dst, d);
            return;
          }
          case IrOp::SetCc: {
            std::string a = use(in.a, reg::a4);
            std::string b = use(in.b, reg::a5);
            std::string d = defReg(in.dst);
            o(strFormat("%s %s, %s, %s",
                        in.cc == Cond::LtS ? "slt" : "sltu",
                        d.c_str(), a.c_str(), b.c_str()));
            finishDef(in.dst, d);
            return;
          }
          case IrOp::SetCcI: {
            std::string a = use(in.a, reg::a4);
            std::string d = defReg(in.dst);
            o(strFormat("%s %s, %s, %lld",
                        in.cc == Cond::LtS ? "slti" : "sltiu",
                        d.c_str(), a.c_str(),
                        static_cast<long long>(in.imm)));
            finishDef(in.dst, d);
            return;
          }
          case IrOp::AddrLocal: {
            std::string d = defReg(in.dst);
            o(strFormat("addi %s, sp, %u", d.c_str(),
                        slotOff(static_cast<int>(in.imm))));
            finishDef(in.dst, d);
            return;
          }
          case IrOp::AddrGlobal: {
            std::string d = defReg(in.dst);
            o(strFormat("la %s, %s", d.c_str(), in.sym.c_str()));
            finishDef(in.dst, d);
            return;
          }
          case IrOp::Load: {
            std::string a = use(in.a, reg::a4);
            std::string d = defReg(in.dst);
            o(strFormat("%s %s, %lld(%s)",
                        loadMnemonic(in.width, in.signExt),
                        d.c_str(),
                        static_cast<long long>(in.imm),
                        a.c_str()));
            finishDef(in.dst, d);
            return;
          }
          case IrOp::Store: {
            std::string value = use(in.a, reg::a4);
            std::string addr = use(in.b, reg::a5);
            o(strFormat("%s %s, %lld(%s)", storeMnemonic(in.width),
                        value.c_str(),
                        static_cast<long long>(in.imm),
                        addr.c_str()));
            return;
          }
          case IrOp::Branch: {
            std::string a = use(in.a, reg::a4);
            std::string b = use(in.b, reg::a5);
            o(strFormat("%s %s, %s, %s", branchMnemonic(in.cc),
                        a.c_str(), b.c_str(), in.sym.c_str()));
            return;
          }
          case IrOp::Jump:
            o(strFormat("j %s", in.sym.c_str()));
            return;
          case IrOp::Call: {
            for (size_t i = 0; i < in.args.size(); ++i) {
                const std::string areg(
                    regName(reg::a0 + static_cast<unsigned>(i)));
                const int v = in.args[i];
                if (v == kZeroVreg) {
                    o(strFormat("mv %s, zero", areg.c_str()));
                    continue;
                }
                const VregLoc &l = loc(v);
                if (l.kind == VregLoc::Kind::Reg)
                    o(strFormat("mv %s, %s", areg.c_str(),
                                std::string(
                                    regName(l.reg)).c_str()));
                else
                    o(strFormat("lw %s, %u(sp)", areg.c_str(),
                                slotOff(l.slot)));
            }
            o(strFormat("call %s", in.sym.c_str()));
            if (in.dst >= 0) {
                const VregLoc &l = loc(in.dst);
                if (l.kind == VregLoc::Kind::Reg) {
                    o(strFormat("mv %s, a0",
                                std::string(
                                    regName(l.reg)).c_str()));
                } else if (l.kind == VregLoc::Kind::Spill) {
                    o(strFormat("sw a0, %u(sp)",
                                slotOff(l.slot)));
                }
            }
            return;
          }
          case IrOp::Ret: {
            if (in.a >= 0 || in.a == kZeroVreg) {
                if (in.a == kZeroVreg) {
                    o("mv a0, zero");
                } else {
                    const VregLoc &l = loc(in.a);
                    if (l.kind == VregLoc::Kind::Reg) {
                        if (l.reg != reg::a0)
                            o(strFormat(
                                "mv a0, %s",
                                std::string(
                                    regName(l.reg)).c_str()));
                    } else {
                        o(strFormat("lw a0, %u(sp)",
                                    slotOff(l.slot)));
                    }
                }
            }
            if (!is_last)
                o(strFormat("j %s", retLabel().c_str()));
            return;
          }
          default:
            panic("emit: unlowered IR op %d in %s",
                  static_cast<int>(in.op), fn.name.c_str());
        }
    }

    IrFunction &fn;
    Allocation alloc;
    bool needRa = false;
    uint32_t frameBytes = 0;
    uint32_t savedBytes = 0;
    uint32_t s0Off = 0;
    uint32_t s1Off = 0;
    std::vector<uint32_t> slotOffsets;
    std::string text;
};

std::string
escapeAsm(const std::string &bytes)
{
    std::string out;
    for (char c : bytes) {
        switch (c) {
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\0': out += "\\0"; break;
          default: out += c; break;
        }
    }
    return out;
}

} // namespace

std::string
emitFunction(IrFunction &fn, bool spill_all)
{
    return FnEmitter(fn, spill_all).run();
}

std::string
emitGlobals(const TranslationUnit &unit)
{
    std::string out;
    if (unit.globals.empty() && unit.strings.empty())
        return out;
    out += "    .data\n";
    for (const Global &g : unit.globals) {
        out += "    .align 2\n";
        out += g.name + ":\n";
        if (g.init.empty()) {
            out += strFormat("    .space %u\n",
                             g.type.sizeInBytes());
            continue;
        }
        const unsigned esize = g.type.scalarSize();
        const char *dir = esize == 4 ? ".word"
            : esize == 2 ? ".half" : ".byte";
        for (int64_t v : g.init)
            out += strFormat("    %s %lld\n", dir,
                             static_cast<long long>(v));
    }
    for (const StringLiteral &s : unit.strings) {
        out += s.label + ":\n";
        out += "    .asciz \"" + escapeAsm(s.bytes) + "\"\n";
    }
    return out;
}

std::string
emitUnit(IrUnit &ir, bool spill_all)
{
    std::string out = "    .text\n";
    for (IrFunction &fn : ir.funcs)
        out += emitFunction(fn, spill_all);
    out += emitGlobals(*ir.ast);
    return out;
}

} // namespace rissp::minic
