/**
 * @file
 * Recursive-descent parser for MiniC with integrated symbol
 * resolution and typing.
 */

#ifndef RISSP_COMPILER_PARSER_HH
#define RISSP_COMPILER_PARSER_HH

#include "compiler/ast.hh"
#include "compiler/lexer.hh"

namespace rissp::minic
{

/** Parse a MiniC source into a typed translation unit.
 *  Throws CompileError on malformed or unsupported input. */
TranslationUnit parse(const std::string &source);

} // namespace rissp::minic

#endif // RISSP_COMPILER_PARSER_HH
